"""Shared benchmark fixtures and output capture.

Every bench prints the same rows/series the paper's figure reports, so
``pytest benchmarks/ --benchmark-only -s`` regenerates the evaluation
tables.  Runs use the scaled-down config (`bench_scale`) by default; set
``REPRO_PAPER_SCALE=1`` to use the paper's full simulation parameters
(hours of CPU in pure Python).

Result blocks are printed through :func:`repro.bench.report.emit_block`,
the same emitter the kernel benchmark CLI (``python -m repro.bench``)
uses, so all benchmark output shares one format.
"""

import os

import pytest

from repro.bench.report import emit_block as emit  # noqa: F401  (re-export)
from repro.experiments.config import bench_scale, paper_scale


@pytest.fixture
def config_factory():
    """The experiment config builder for the selected scale."""
    if os.environ.get("REPRO_PAPER_SCALE"):
        return paper_scale
    return bench_scale
