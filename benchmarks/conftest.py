"""Shared benchmark fixtures and output capture.

Every bench prints the same rows/series the paper's figure reports, so
``pytest benchmarks/ --benchmark-only -s`` regenerates the evaluation
tables.  Runs use the scaled-down config (`bench_scale`) by default; set
``REPRO_PAPER_SCALE=1`` to use the paper's full simulation parameters
(hours of CPU in pure Python).
"""

import os

import pytest

from repro.experiments.config import bench_scale, paper_scale


@pytest.fixture
def config_factory():
    if os.environ.get("REPRO_PAPER_SCALE"):
        return paper_scale
    return bench_scale


def emit(text: str) -> None:
    """Print a results block (visible with -s / captured in reports)."""
    print()
    print("=" * 72)
    print(text)
    print("=" * 72)
