"""Figure 8: new query arrival (Random vs Online vs Online-Adaptive)."""

from conftest import emit

from repro.experiments import fig8


def test_fig8(benchmark, config_factory):
    series = benchmark.pedantic(
        fig8.run,
        kwargs={
            "config": config_factory(800),
            "intervals": 8,
            "batch_size": 40,
        },
        rounds=1,
        iterations=1,
    )
    emit(fig8.format_series(series))

    # 8(a): online insertion keeps the communication cost below Random's,
    # and adding adaptation does not lose that advantage
    assert series.online_cost[-1] < series.random_cost[-1]
    assert series.online_adaptive_cost[-1] < series.random_cost[-1]
    # 8(b): the adaptive variant ends at least as balanced as online-only
    assert series.online_adaptive_std[-1] <= series.online_std[-1] * 1.05
