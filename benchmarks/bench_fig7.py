"""Figure 7: adapting to inaccurate a-priori statistics."""

from conftest import emit

from repro.experiments import fig7


def test_fig7(benchmark, config_factory):
    series = benchmark.pedantic(
        fig7.run,
        kwargs={"config": config_factory(1000), "rounds": 8},
        rounds=1,
        iterations=1,
    )
    emit(fig7.format_series(series))

    # 7(a): the adaptive runs repair the random start -- final cost is
    # clearly below the non-adaptive line and approaches the accurate run
    assert series.a_inaccurate_cost[-1] < 0.95 * series.na_inaccurate_cost[-1]
    assert series.a_inaccurate_cost[-1] <= 1.10 * series.a_accurate_cost[-1]
    # 7(b): adaptation keeps the load deviation at or below the
    # non-adaptive random allocation
    assert series.a_inaccurate_std[-1] <= series.na_inaccurate_std[-1] * 1.05
