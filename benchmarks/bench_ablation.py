"""Ablations of the design choices DESIGN.md calls out.

1. Overlap edges on/off: without q-q overlap edges the optimizer cannot
   see pub/sub sharing (the Scheme 2 vs Scheme 3 distinction of Table 2)
   and the measured communication cost suffers.
2. Benefit window x: Algorithm 3's quality/migration trade-off knob.
"""

from dataclasses import replace

from conftest import emit

from repro.experiments.config import bench_scale, build_testbed


def _distribute_cost(bed, overlap_neighbors: int) -> float:
    cfg = replace(bed.config.cosmos, max_overlap_neighbors=overlap_neighbors)
    cosmos = bed.new_cosmos(cfg)
    placement = cosmos.distribute(bed.workload.queries)
    return bed.cost(dict(placement))


def test_overlap_edges_ablation(benchmark, config_factory):
    bed = build_testbed(config_factory(1200))

    def run():
        return (
            _distribute_cost(bed, 0),
            _distribute_cost(bed, 30),
        )

    cost_without, cost_with = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Ablation: q-q overlap edges\n"
        f"  without overlap edges: cost = {cost_without / 1e3:10.1f}\n"
        f"  with overlap edges:    cost = {cost_with / 1e3:10.1f}\n"
        f"  overlap edges help: {cost_with <= cost_without}"
    )
    assert cost_with <= cost_without * 1.02


def test_benefit_window_ablation(benchmark, config_factory):
    """Sweep Algorithm 3's x parameter (the paper fixes x = 10%)."""
    import random

    from repro.core.rebalance import rebalance
    from repro.baselines.simple import (
        global_network_graph,
        global_query_graph,
        random_placement,
    )

    bed = build_testbed(config_factory(600))
    ng = global_network_graph(bed.processors, bed.oracle)
    qg = global_query_graph(bed.workload.queries, bed.workload.space, ng)

    def run():
        out = {}
        for x in (0.0, 0.10, 0.50):
            assignment = {
                vid: ("p", random_placement(
                    [bed.workload.by_id(qv.members[0])], bed.processors,
                    seed=17,
                )[qv.members[0]])
                for vid, qv in qg.qverts.items()
            }
            assignment.update(qg.pinned_mapping(ng))
            stats = rebalance(
                qg, ng, assignment, benefit_window=x,
                rng=random.Random(1),
            )
            out[x] = (stats.moved_vertices, stats.moved_state)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation: Algorithm 3 benefit window x"]
    for x, (moves, state) in sorted(results.items()):
        lines.append(f"  x={x:4.2f}: moves={moves:5d} state moved={state:10.1f}")
    emit("\n".join(lines))
    assert all(moves > 0 for moves, _ in results.values())
