"""Figure 9: cluster size parameter k vs quality and throughput."""

from conftest import emit

from repro.experiments import fig9


def test_fig9(benchmark, config_factory):
    rows = benchmark.pedantic(
        fig9.run,
        kwargs={
            "config": config_factory(800),
            "ks": (2, 4, 8, 16),
            "insertions": 150,
        },
        rounds=1,
        iterations=1,
    )
    emit(fig9.format_rows(rows))

    by_k = {r.k: r for r in rows}
    # smaller k -> taller tree
    assert by_k[2].tree_height >= by_k[16].tree_height
    # 9(a): larger k -> flatter tree, less coarsening, better quality
    assert by_k[16].cost <= by_k[2].cost
    # 9(b): root throughput improves with smaller k (fewer children to
    # score per insertion) -- compare the extremes
    assert by_k[2].throughput >= by_k[16].throughput
