"""Optimizer-kernel benchmarks: reference vs vectorised fast paths.

Runs the :mod:`repro.bench` scenario registry at the quick scale inside
the pytest-benchmark harness and writes ``BENCH_core.json`` next to the
working directory, mirroring what ``python -m repro.bench`` does
standalone.  Set ``REPRO_BENCH_SCALE=full`` for the acceptance-scale run
(10k queries / 1k processors).
"""

import os

from conftest import emit

from repro.bench import format_table, run_scenarios, validate_report, write_report


def test_core_kernels(benchmark):
    scale = os.environ.get("REPRO_BENCH_SCALE", "quick")
    results = benchmark.pedantic(
        run_scenarios, args=(scale,), rounds=1, iterations=1
    )
    emit(format_table(results))
    out = os.environ.get("REPRO_BENCH_OUT", "BENCH_core.json")
    write_report(results, out, scale)
    validate_report(out)

    by_name = {r["name"]: r for r in results}
    # the vectorised kernels must beat their references comfortably
    assert by_name["wec_eval"]["speedup"] >= 5.0
    assert by_name["wec_eval"]["parity"]["rel_err"] < 1e-9
    assert by_name["diffusion"]["speedup"] >= 1.0
    assert by_name["diffusion"]["parity"]["max_flow_err"] < 1e-9
    assert by_name["coarsening"]["parity"]["identical_partition"]
    assert by_name["attach_costs"]["parity"]["max_abs_err"] < 1e-6
    # dissemination sweep: indexed and reference paths deliver identically,
    # and the index must win (the >= 5x acceptance gate applies at full
    # scale, inside the scenario itself)
    assert by_name["sim_scale"]["parity"]["identical_deliveries"]
    assert by_name["sim_scale"]["speedup"] >= 1.5
    # columnar batch plane: bit-identical to the scalar reference, and it
    # must win on the join-heavy engine sweep (the >= 5x acceptance gate
    # applies at full scale, inside the scenario itself)
    assert by_name["engine_batch"]["parity"]["identical_results"]
    assert by_name["engine_batch"]["parity"]["identical_cpu"]
    assert by_name["engine_batch"]["speedup"] >= 1.5
    assert all(by_name["sim_batch"]["parity"].values())
