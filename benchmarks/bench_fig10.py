"""Figure 10: perturbation of stream rates."""

from conftest import emit

from repro.experiments import fig10


def test_fig10(benchmark, config_factory):
    series = benchmark.pedantic(
        fig10.run,
        kwargs={"config": config_factory(800), "perturbed_streams": 160},
        rounds=1,
        iterations=1,
    )
    emit(fig10.format_series(series))

    # the adaptive scheme tracks centralized remapping on cost (within
    # 20%) without losing to the non-adaptive baseline
    assert series.adaptive_cost[-1] <= series.no_adaptive_cost[-1] * 1.05
    assert series.adaptive_cost[-1] <= series.remapping_cost[-1] * 1.25
    # the paper's headline: full remapping costs several times more query
    # migrations than the adaptive algorithm
    assert series.remapping_migrations > 2 * series.adaptive_migrations
