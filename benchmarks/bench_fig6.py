"""Figure 6: initial distribution quality (a) and running time (b)."""

from conftest import emit

from repro.experiments import fig6


def test_fig6(benchmark, config_factory):
    rows = benchmark.pedantic(
        fig6.run,
        kwargs={
            "config": config_factory(),
            "query_counts": (300, 600, 1200, 2400),
        },
        rounds=1,
        iterations=1,
    )
    emit(fig6.format_rows(rows))

    for r in rows:
        # Figure 6(a): Naive is the worst scheme; the hierarchical scheme
        # tracks the centralized benchmark (within 15%)
        assert r.cost_naive >= r.cost_hierarchical
        assert r.cost_naive >= r.cost_centralized
        assert r.cost_hierarchical <= 1.15 * r.cost_centralized

    # Figure 6(b): the hierarchical response time stays below the
    # centralized optimizer's at the largest population
    last = rows[-1]
    assert last.time_hierarchical_response <= last.time_centralized
