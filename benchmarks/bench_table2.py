"""Table 2: WEC of the three mapping schemes on the Figure 5 example."""

from conftest import emit

from repro.experiments import table2


def test_table2(benchmark):
    results = benchmark.pedantic(table2.run, rounds=1, iterations=1)
    emit(table2.format_results(results))
    assert results["scheme3"] < results["scheme2"] < results["scheme1"]
    # Algorithm 2 never does worse than the naive local scheme
    assert results["algorithm2"] <= results["scheme1"] + 1e-9
    # and with slack to pass through infeasible intermediate states it
    # reaches (or beats) the sharing-aware optimum
    assert results["algorithm2_relaxed"] <= results["scheme3"] + 1e-9
