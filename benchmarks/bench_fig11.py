"""Figure 11: prototype study -- COSMOS vs two-phase operator placement."""

from conftest import emit

from repro.experiments import fig11


def test_fig11(benchmark):
    rows = benchmark.pedantic(
        fig11.run,
        kwargs={"query_counts": (250, 1000, 4000)},
        rounds=1,
        iterations=1,
    )
    emit(fig11.format_rows(rows))

    # 11(a): comparable communication efficiency at moderate sizes, and
    # the two-phase baseline loses its edge as the query count grows
    first, last = rows[0], rows[-1]
    ratio_first = first.cost_op_placement / first.cost_cosmos
    ratio_last = last.cost_op_placement / last.cost_cosmos
    assert ratio_last >= ratio_first  # the baseline's advantage shrinks
    # 11(b): the baseline's running time grows with the query count
    assert last.time_op_placement > first.time_op_placement
