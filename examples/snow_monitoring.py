"""Snow-drift monitoring with result-stream sharing (the paper's Section 2).

Reproduces the Q3/Q4/Q5 example end to end: two scientists submit
overlapping snow-monitoring queries; COSMOS runs a single merged query
(Q5) at the processor and each user carves their own result out of the
shared result stream with a pub/sub subscription.

Run:  python examples/snow_monitoring.py
"""

from repro.engine import Engine, SensorFleet
from repro.pubsub import Event
from repro.query import merge_queries, parse_query, split_subscription

Q3_TEXT = """
SELECT S2.*
FROM Station1 [Range 30 Minutes] S1, Station2 [Now] S2
WHERE S1.snowHeight > S2.snowHeight AND S1.snowHeight >= 10
"""

Q4_TEXT = """
SELECT S1.snowHeight, S1.timestamp, S2.snowHeight, S2.timestamp
FROM Station1 [Range 1 Hour] S1, Station2 [Now] S2
WHERE S1.snowHeight > S2.snowHeight
"""


def main() -> None:
    q3 = parse_query(Q3_TEXT, name="Q3")
    q4 = parse_query(Q4_TEXT, name="Q4")
    print("Q3:", q3)
    print("Q4:", q4)

    # COSMOS composes the superset query and runs only that one
    q5 = merge_queries(q3, q4, name="Q5")
    print("merged Q5:", q5)

    # each user receives a subscription that carves their result out of
    # Q5's result stream (the paper's p^3_2 and p^4_2)
    p32 = split_subscription(q5, q3, "s5")
    p42 = split_subscription(q5, q4, "s5")
    print("p3_2:", p32)
    print("p4_2:", p42)

    # synthetic SensorScope-like stations drive both station streams
    fleet = SensorFleet.build(2, stream_prefix="Station", seed=42)
    trace = fleet.trace(start=0.0, steps=240)  # 4 hours at 1/minute

    shared = Engine()
    shared.add_query(q5, result_stream="s5")
    direct = Engine()
    direct.add_query(q3, result_stream="s3")
    direct.add_query(q4, result_stream="s4")
    for t in trace:
        shared.push(t)
        direct.push(t)

    merged_results = shared.results["Q5"]
    carved3 = [t for t in merged_results if p32.matches(Event("s5", t.values))]
    carved4 = [t for t in merged_results if p42.matches(Event("s5", t.values))]
    print(f"shared engine ran 1 query, emitted {len(merged_results)} tuples")
    print(f"  Q3 via p3_2: {len(carved3):5d} tuples"
          f" (direct run: {len(direct.results['Q3'])})")
    print(f"  Q4 via p4_2: {len(carved4):5d} tuples"
          f" (direct run: {len(direct.results['Q4'])})")
    assert len(carved3) == len(direct.results["Q3"])
    assert len(carved4) == len(direct.results["Q4"])
    print("result-stream sharing is lossless for both users")


if __name__ == "__main__":
    main()
