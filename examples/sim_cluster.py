"""Run COSMOS end to end in the discrete-event cluster simulator.

Starts from a deliberately *skewed* placement, lets query churn and a
mid-run hot-spot shift stress the system, and watches Section 3.7
adaptation re-balance the cluster using loads measured on the running
engines -- printing the resulting time series: throughput, end-to-end
result latency (driven by topology transit delays), measured load
stddev, and migration counts.

Run:  python examples/sim_cluster.py
"""

from repro.sim import (
    ChurnParams,
    HotSpotShift,
    ScenarioParams,
    SimWorkloadParams,
    run_scenario,
)


def main() -> None:
    report = run_scenario(
        seed=42,
        num_sources=6,
        num_processors=16,
        workload=SimWorkloadParams(num_substreams=80, num_queries=48),
        scenario=ScenarioParams(
            duration=40.0,
            sample_interval=5.0,
            adapt_interval=10.0,
            initial_placement="skewed",
            churn=ChurnParams(arrival_rate=0.5, mean_lifetime=25.0),
            hotspot=HotSpotShift(at=20.0, substreams=12, factor=3.0),
        ),
    )

    trace = report.trace
    print(f"{len(report.queries)} queries over the run, "
          f"{report.tuples_emitted} source tuples, "
          f"{report.events_processed} simulator events\n")
    header = (f"{'t(s)':>6} {'thru(r/s)':>10} {'lat(ms)':>9} "
              f"{'load std':>9} {'alive':>6} {'migr':>5}")
    print(header)
    print("-" * len(header))
    for s in trace.samples:
        print(f"{s.t:>6.1f} {s.throughput:>10.1f} "
              f"{s.mean_latency * 1e3:>9.1f} {s.load_stddev:>9.2f} "
              f"{s.alive_queries:>6} {s.migrations_total:>5}")

    print("\nadaptation rounds (measured-load stddev before -> after):")
    for a in trace.adaptations:
        print(f"  t={a.t:>5.1f}s  {a.stddev_before:>8.2f} -> "
              f"{a.stddev_after:<8.2f}  migrated {a.migrated_queries} "
              f"queries ({a.moved_state:.0f} state tuples)")

    print("\nlifecycle events:")
    for t, kind, detail in trace.events:
        print(f"  t={t:>6.2f}s  {kind:<12} {detail}")


if __name__ == "__main__":
    main()
