"""Content-based routing walkthrough (the paper's Figure 2).

Builds the seven-node example network of the paper's introduction,
advertises stream R from n3, subscribes n6 (a > 20) and n7 (a > 10), and
publishes two messages -- showing advertisement flooding, covering-based
subscription propagation, early filtering, and per-link traffic.

Run:  python examples/pubsub_routing.py
"""

from repro.pubsub import (
    Advertisement,
    Event,
    Filter,
    PubSubNetwork,
    Subscription,
)
from repro.topology import OverlayTree


def main() -> None:
    # Figure 2's backbone: n3 - n2 - n1 with n1 fanning out to n4..n7
    #        n3 -- n2 -- n1 -- n6
    #                     |\-- n7
    #                     |--- n4
    #                     \--- n5
    tree = OverlayTree(nodes=[1, 2, 3, 4, 5, 6, 7])
    for a, b in [(3, 2), (2, 1), (1, 4), (1, 5), (1, 6), (1, 7)]:
        tree.add_link(a, b, 1.0)
    net = PubSubNetwork(tree)

    # (a) the source advertises what it will publish
    net.advertise(3, Advertisement(stream="R", filter=Filter.of(("a", ">=", 0))))
    print("advertised stream R from n3 (flooded to all brokers)")

    # (b) receivers subscribe; n1 merges them on the way to n2
    sub7 = Subscription.to_streams(["R"], filter=Filter.of(("a", ">", 10)))
    sub6 = Subscription.to_streams(["R"], filter=Filter.of(("a", ">", 20)))
    net.subscribe(7, sub7)
    net.subscribe(6, sub6)
    print("subscribed: n7 wants a>10, n6 wants a>20")

    # (c) the routing tables now point toward the interested parties
    for node in (1, 2, 3):
        table = net.brokers[node].table
        entries = {
            iface: [str(s.filter) for s in subs]
            for iface, subs in table.subscriptions.items()
        }
        print(f"  routing table at n{node}: {entries}")

    # (d) two messages: m1 (a=15) reaches only n7; m2 (a=25) reaches both
    for value in (15, 25):
        net.reset_traffic()
        deliveries = net.publish(3, Event("R", {"a": value}, size=1.0))
        receivers = sorted(n for n, _, _ in deliveries)
        links = sorted(net.link_bytes)
        print(f"m(a={value}): delivered to {receivers}; links used {links}")

    # early filtering: a message nobody wants dies at the source broker
    net.reset_traffic()
    assert net.publish(3, Event("R", {"a": 5})) == []
    assert net.total_data_bytes() == 0.0
    print("m(a=5): filtered at n3, zero bytes on the wire")


if __name__ == "__main__":
    main()
