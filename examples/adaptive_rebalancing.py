"""Runtime adaptation under stream-rate perturbations (Section 3.7).

Distributes a workload, then repeatedly perturbs substream rates (as in
the Figure 10 experiment) and lets the adaptive redistribution re-balance
load and repair communication cost -- printing cost, load deviation and
migration counts per round.

Run:  python examples/adaptive_rebalancing.py
"""

import random

from repro.core import Cosmos, CosmosConfig
from repro.query import WorkloadParams, generate_workload
from repro.sim import CostModel, load_stddev
from repro.topology import (
    LatencyOracle,
    TransitStubParams,
    generate_transit_stub,
    select_roles,
)


def main() -> None:
    topology = generate_transit_stub(
        TransitStubParams(transit_domains=2, transit_nodes=4,
                          stubs_per_transit_node=4, stub_nodes=6),
        seed=1,
    )
    oracle = LatencyOracle(topology)
    sources, processors = select_roles(topology, 8, 16, seed=2)
    workload = generate_workload(
        WorkloadParams(num_substreams=1500, num_queries=500,
                       substreams_per_query=(10, 25)),
        sources, processors, seed=3,
    )
    cosmos = Cosmos(oracle, processors, workload.space,
                    CosmosConfig(k=4, vmax=60))
    cosmos.distribute(workload.queries)
    cost_model = CostModel.over(None, workload.space, distance=oracle)

    rng = random.Random(7)
    pattern = ["I", "D", "I", "I", "D"]
    print(f"{'round':>5} {'perturb':>7} {'cost(k)':>9} {'stddev':>7}"
          f" {'migrations':>10}")
    for rnd, kind in enumerate(pattern, start=1):
        streams = rng.sample(range(len(workload.space)), 100)
        factor = 3.0 if kind == "I" else 1.0 / 3.0
        workload.space.perturb_rates(streams, factor)

        # statistics collection notices, then one adaptation round runs
        cosmos.refresh_statistics(workload)
        report = cosmos.adapt()

        placement = dict(cosmos.placement)
        cost = cost_model.weighted_cost(placement, workload.queries)
        std = load_stddev(placement, workload.queries, processors)
        print(f"{rnd:>5} {kind:>7} {cost / 1e3:>9.1f} {std:>7.2f}"
              f" {report.migrated_queries:>10}")


if __name__ == "__main__":
    main()
