"""Quickstart: distribute a continuous-query workload with COSMOS.

Builds a small WAN, generates a zipf-clustered query population, runs the
hierarchical initial distribution, and compares its weighted communication
cost against the naive place-at-proxy policy.

Run:  python examples/quickstart.py
"""

from repro.baselines import naive_placement
from repro.core import Cosmos, CosmosConfig
from repro.query import WorkloadParams, generate_workload
from repro.sim import CostModel, load_stddev
from repro.topology import (
    LatencyOracle,
    TransitStubParams,
    generate_transit_stub,
    select_roles,
)


def main() -> None:
    # 1. a transit-stub WAN with 10 stream sources and 24 processors
    topology = generate_transit_stub(
        TransitStubParams(transit_domains=2, transit_nodes=4,
                          stubs_per_transit_node=4, stub_nodes=6),
        seed=1,
    )
    oracle = LatencyOracle(topology)
    sources, processors = select_roles(topology, 10, 24, seed=2)
    print(f"topology: {topology.n} nodes, "
          f"{len(sources)} sources, {len(processors)} processors")

    # 2. a query population with group hot spots (Section 4.1's workload)
    workload = generate_workload(
        WorkloadParams(num_substreams=2000, num_queries=1000,
                       substreams_per_query=(10, 20),
                       selectivity_range=(0.01, 0.05)),
        sources, processors, seed=3,
    )
    print(f"workload: {len(workload.queries)} queries over "
          f"{len(workload.space)} substreams")

    # 3. the COSMOS middleware: coordinator tree + hierarchical mapping
    cosmos = Cosmos(oracle, processors, workload.space,
                    CosmosConfig(k=4, vmax=60))
    placement = cosmos.distribute(workload.queries)
    print(f"coordinator tree height {cosmos.tree_height()}, "
          f"{cosmos.coordinator_count()} coordinators")

    # 4. measure: weighted communication cost and load balance
    cost_model = CostModel.over(None, workload.space, distance=oracle)
    for name, pl in (
        ("naive (stay at proxy)", naive_placement(workload.queries)),
        ("COSMOS", placement),
    ):
        cost = cost_model.weighted_cost(pl, workload.queries)
        std = load_stddev(pl, workload.queries, processors)
        print(f"  {name:<22} cost = {cost / 1e3:9.1f}k   load stddev = {std:6.2f}")

    # 5. online insertion: a new query arrives and is routed level by level
    new_query = workload.new_queries(1, processors)[0]
    host = cosmos.insert(new_query)
    print(f"new query {new_query.query_id} routed to processor {host}")

    # 6. one adaptation round
    report = cosmos.adapt()
    print(f"adaptation: {report.migrated_queries} queries migrated, "
          f"{report.coordinator_moves} coordinator-level moves")


if __name__ == "__main__":
    main()
