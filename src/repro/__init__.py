"""COSMOS: massive query optimization for large-scale distributed stream
systems (Middleware 2008 reproduction).

Subpackages
-----------
``repro.topology``
    Transit-stub WAN generation, latency oracle, overlay trees.
``repro.pubsub``
    Siena-like content-based publish/subscribe substrate.
``repro.query``
    CQL subset, window-query containment/merging, interest bit vectors,
    workload generation.
``repro.engine``
    Continuous-query engine (windows, joins) and synthetic sensors.
``repro.core``
    The COSMOS optimizer: graph mapping, coordinator hierarchy, online
    insertion, adaptive redistribution, sharing deployment.
``repro.baselines`` / ``repro.placement``
    Evaluation baselines, including the two-phase operator-placement
    comparator.
``repro.sim`` / ``repro.experiments``
    Metrics and one driver per paper figure/table.
"""

__version__ = "0.1.0"
