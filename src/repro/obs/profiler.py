"""Subsystem wall-clock profiler: where do the real seconds go?

:class:`SubsystemProfiler` attributes elapsed wall-clock time to named
subsystems — ``event_loop``, ``dissemination``, ``operator_exec``,
``coordinator``, ``sampling``, ``recovery``, ``setup`` — via scoped
sections.  Sections nest; each section's *exclusive* time (its elapsed
minus time spent in child sections) is what accumulates, so the totals
partition the run's wall time and sum to ≤ the observed wall clock.

The profiler reads only :func:`time.perf_counter`; it never touches
simulated state, so it cannot perturb a run.  The converse also holds:
the simulation never reads the profiler, so wall-clock jitter cannot
leak into simulated behaviour.

Hot paths use explicit ``start``/``stop`` pairs on single-exit bodies
(no try/finally, no context-manager allocation); the ``section``
context manager is for cold paths.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, List

__all__ = ["SubsystemProfiler"]


class SubsystemProfiler:
    """Nested scoped timers with exclusive-time attribution."""

    def __init__(self) -> None:
        #: subsystem name -> exclusive seconds
        self.totals: Dict[str, float] = {}
        #: subsystem name -> number of sections entered
        self.calls: Dict[str, int] = {}
        #: open sections: [name, t0, child_seconds]
        self._stack: List[list] = []

    # -- scoping --------------------------------------------------------
    def start(self, name: str) -> None:
        self._stack.append([name, time.perf_counter(), 0.0])

    def stop(self) -> None:
        name, t0, child_s = self._stack.pop()
        elapsed = time.perf_counter() - t0
        exclusive = elapsed - child_s
        self.totals[name] = self.totals.get(name, 0.0) + exclusive
        self.calls[name] = self.calls.get(name, 0) + 1
        if self._stack:
            self._stack[-1][2] += elapsed

    @contextmanager
    def section(self, name: str):
        self.start(name)
        try:
            yield
        finally:
            self.stop()

    # -- export ---------------------------------------------------------
    def coverage(self, wall_s: float) -> float:
        """Fraction of ``wall_s`` attributed to named subsystems."""
        if wall_s <= 0:
            return 0.0
        return sum(self.totals.values()) / wall_s

    def to_dict(self, wall_s: float = 0.0) -> Dict:
        out = {
            "totals_s": {k: self.totals[k] for k in sorted(self.totals)},
            "calls": {k: self.calls[k] for k in sorted(self.calls)},
        }
        if wall_s > 0:
            out["wall_s"] = wall_s
            out["coverage"] = self.coverage(wall_s)
        return out
