"""Metrics registry: counters, gauges and histograms for one run.

A :class:`MetricsRegistry` is a plain in-memory accumulator.  All values
are derived from *simulated* quantities (event counts, tuple counts,
bytes), never from wall clocks or rngs, so recording them cannot
perturb a seeded run.

Instrumented call sites fall in two groups:

* components the simulator wires an :class:`~repro.obs.observer.Observer`
  into (network, cluster, fault injector) read their registry off that
  observer;
* library code with no path to the observer (the coordinator tree, the
  WEC evaluator, the diffusion solver) reports to the module-global
  :data:`ACTIVE` registry, set for the duration of an observed run via
  :func:`set_active`.  When no run is observed ``ACTIVE`` is ``None``
  and the instrumentation is a single attribute check.
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = ["MetricsRegistry", "ACTIVE", "set_active"]


class MetricsRegistry:
    """Counters (monotone), gauges (last value), histograms (all values).

    Metric names are dotted strings (``"broker.index_probes"``).  The
    exported dict is deterministic: keys sorted, values plain ints and
    floats.
    """

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, List[float]] = {}

    # -- recording ------------------------------------------------------
    def inc(self, name: str, value: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        self.histograms.setdefault(name, []).append(value)

    # -- export ---------------------------------------------------------
    @staticmethod
    def _hist_summary(values: List[float]) -> Dict:
        ordered = sorted(values)
        n = len(ordered)
        return {
            "count": n,
            "sum": sum(ordered),
            "min": ordered[0],
            "max": ordered[-1],
            "p50": ordered[n // 2],
            "p95": ordered[min(n - 1, (n * 95) // 100)],
        }

    def to_dict(self) -> Dict:
        """JSON-ready, deterministically ordered snapshot."""
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {
                k: self._hist_summary(v)
                for k, v in sorted(self.histograms.items())
            },
        }


#: registry for the currently observed run, or ``None`` (see module doc)
ACTIVE: Optional[MetricsRegistry] = None


def set_active(registry: Optional[MetricsRegistry]) -> None:
    """Install (or clear, with ``None``) the process-wide registry."""
    global ACTIVE
    ACTIVE = registry
