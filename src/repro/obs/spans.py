"""Provenance spans: per-result causal records in simulated time.

A span traces one *sampled* source tuple from emission through every
hop it takes — broker forwarding, queueing at a delivery unit, engine
execution, shared-group carve, sink delivery — plus annotations for
lifecycle events (migration, crash, query removal) that touched it
while in flight.

Two properties keep spans perturbation-free:

* **Sampling is keyed off tuple identity** — the emission sequence
  number — never an rng.  ``seq % sample_every == 0`` selects the same
  tuples in every seeded run regardless of whether anyone is watching.
* **All recorded times are simulated time.**  The recorder only reads
  state the simulator already computed; it draws nothing, schedules
  nothing, and allocates only on its own behalf.

Tuples are tracked by object identity: the simulator threads the same
``StreamTuple`` object from emission to delivery (batches carry the
original objects in their row tuples), so ``id()`` is a stable key for
a tuple's lifetime.  The recorder holds a reference to each tracked
tuple, which both prevents id reuse and keeps lookups O(1).
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = ["Span", "SpanRecorder"]


class Span:
    """The causal record of one sampled tuple."""

    __slots__ = ("seq", "substream", "t_emit", "hops", "annotations")

    def __init__(self, seq: int, substream: int, t_emit: float) -> None:
        self.seq = seq
        self.substream = substream
        self.t_emit = t_emit
        #: ordered (kind, t, fields) hops: publish / queued / engine /
        #: carve / sink
        self.hops: List[Dict] = []
        #: out-of-band events that touched this tuple while in flight
        self.annotations: List[Dict] = []

    def hop(self, kind: str, t: float, **fields) -> None:
        self.hops.append({"kind": kind, "t": round(t, 9), **fields})

    def annotate(self, kind: str, t: float, **fields) -> None:
        self.annotations.append({"kind": kind, "t": round(t, 9), **fields})

    def to_dict(self) -> Dict:
        return {
            "seq": self.seq,
            "substream": self.substream,
            "t_emit": round(self.t_emit, 9),
            "hops": self.hops,
            "annotations": self.annotations,
        }


class SpanRecorder:
    """Samples tuples by sequence number and records their spans."""

    def __init__(self, sample_every: int = 64) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.sample_every = sample_every
        #: id(tuple) -> (tuple ref, span); the ref pins the id
        self._by_tuple: Dict[int, tuple] = {}
        self.spans: List[Span] = []

    # -- sampling -------------------------------------------------------
    def wants(self, seq: int) -> bool:
        """Deterministic sampling decision for emission number ``seq``."""
        return seq % self.sample_every == 0

    def begin(self, seq: int, substream: int, tup, t: float) -> Span:
        """Start tracking ``tup`` (already decided by :meth:`wants`)."""
        span = Span(seq, substream, t)
        self.spans.append(span)
        self._by_tuple[id(tup)] = (tup, span)
        return span

    def lookup(self, tup) -> Optional[Span]:
        """The span tracking ``tup``, or ``None`` if it is unsampled."""
        entry = self._by_tuple.get(id(tup))
        if entry is not None and entry[0] is tup:
            return entry[1]
        return None

    # -- recording ------------------------------------------------------
    def hop(self, tup, kind: str, t: float, **fields) -> None:
        span = self.lookup(tup)
        if span is not None:
            span.hop(kind, t, **fields)

    def annotate(self, tup, kind: str, t: float, **fields) -> None:
        span = self.lookup(tup)
        if span is not None:
            span.annotate(kind, t, **fields)

    # -- export ---------------------------------------------------------
    def to_list(self) -> List[Dict]:
        """All spans in emission order, JSON-ready."""
        return [s.to_dict() for s in self.spans]
