"""Cross-layer observability for the simulated middleware.

Three instruments behind one :class:`Observer` facade:

* :mod:`~repro.obs.spans` — per-result provenance spans in simulated
  time, sampled by tuple identity (never an rng);
* :mod:`~repro.obs.registry` — a metrics registry of counters, gauges
  and histograms fed by engines, brokers, the optimizer and recovery;
* :mod:`~repro.obs.profiler` — scoped wall-clock timers attributing
  real seconds to subsystems (event loop, dissemination, operator
  execution, coordinator).

The package-wide contract is no perturbation: seeded simulations are
bit-identical with observability off, on, or at any sampling rate.
"""

from .observer import SCHEMA, Observer
from .profiler import SubsystemProfiler
from .registry import MetricsRegistry, set_active
from .spans import Span, SpanRecorder
from .timing import Stopwatch, Timing, measure

__all__ = [
    "Observer",
    "SCHEMA",
    "SubsystemProfiler",
    "MetricsRegistry",
    "set_active",
    "Span",
    "SpanRecorder",
    "Stopwatch",
    "Timing",
    "measure",
]
