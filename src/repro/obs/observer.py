"""The :class:`Observer` facade: one object per observed run.

An observer bundles the three instruments — metrics registry, span
recorder, subsystem profiler — behind a single handle the simulator
threads through its layers.  ``run_scenario(observer=...)`` wires it
up; ``None`` (the default) keeps every instrumented call site on its
zero-cost "nobody is watching" branch.

The no-perturbation contract: an observer only *reads* simulated state.
It never draws from an rng, never schedules events, and never feeds a
wall-clock value back into the simulation, so seeded runs are
bit-identical in traces, per-query results, link bytes and cpu_costs
with observability off, on, or at any sampling rate.
"""

from __future__ import annotations

import json
from typing import Dict, Optional

from . import registry as _registry
from .profiler import SubsystemProfiler
from .registry import MetricsRegistry
from .spans import SpanRecorder
from .timing import Stopwatch

__all__ = ["Observer", "SCHEMA"]

#: export schema tag; bump when the envelope shape changes
SCHEMA = "cosmos-obs/1"


class Observer:
    """Per-run bundle of registry, span recorder and profiler.

    Any instrument can be switched off independently: ``metrics=False``
    skips the registry, ``profile=False`` the profiler, and
    ``span_sample_every=0`` disables span recording entirely (a positive
    value samples every Nth emitted tuple, ``1`` = all).
    """

    def __init__(
        self,
        *,
        span_sample_every: int = 64,
        metrics: bool = True,
        profile: bool = True,
    ) -> None:
        self.registry: Optional[MetricsRegistry] = (
            MetricsRegistry() if metrics else None
        )
        self.spans: Optional[SpanRecorder] = (
            SpanRecorder(span_sample_every) if span_sample_every else None
        )
        self.profiler: Optional[SubsystemProfiler] = (
            SubsystemProfiler() if profile else None
        )
        self.seed: Optional[int] = None
        self.wall_s: float = 0.0
        self._watch: Optional[Stopwatch] = None
        #: counters of plans/engines that retired before run end (crash,
        #: departure, query removal); folded into the final snapshot
        self._retired_engines: Dict[int, Dict[str, Dict[str, int]]] = {}
        self._snapshot: Dict = {}

    # -- lifecycle ------------------------------------------------------
    def begin(self, seed: int) -> None:
        """Called by ``run_scenario`` before the cluster is built."""
        self.seed = seed
        self._watch = Stopwatch()
        if self.registry is not None:
            _registry.set_active(self.registry)

    def finish(self, cluster) -> None:
        """Snapshot final cluster state; called after the run completes."""
        if self._watch is not None:
            self.wall_s = self._watch.elapsed()
        if self.registry is not None:
            _registry.set_active(None)
        engines: Dict[str, Dict] = {}
        for node in sorted(self._retired_engines):
            engines[str(node)] = {
                name: dict(counters)
                for name, counters in self._retired_engines[node].items()
            }
        for node in sorted(cluster.engines):
            live = cluster.engines[node].operator_metrics()
            merged = engines.setdefault(str(node), {})
            for name, counters in live.items():
                prior = merged.get(name)
                if prior is not None:
                    # a plan name can retire (crash, migration teardown)
                    # and later live again on the same node -- sum, don't
                    # clobber the retired counters
                    for key, value in counters.items():
                        prior[key] = prior.get(key, 0) + value
                else:
                    merged[name] = dict(counters)
        brokers = {
            str(node): {"delivered_total": broker.delivered_total}
            for node, broker in sorted(cluster.network.brokers.items())
        }
        links = {
            f"{u}->{v}": amount
            for (u, v), amount in sorted(cluster.network.link_bytes.items())
        }
        if self.registry is not None:
            # flat aggregates over the merged per-plan counter dicts
            agg: Dict[str, float] = {}
            for per_node in engines.values():
                for plan_counters in per_node.values():
                    for key, value in plan_counters.items():
                        agg[key] = agg.get(key, 0) + value
            for key in sorted(agg):
                self.registry.gauge(f"engine.total.{key}", agg[key])
            self.registry.gauge(
                "network.total_link_bytes", sum(links.values())
            )
            self.registry.gauge(
                "broker.total_delivered",
                sum(b["delivered_total"] for b in brokers.values()),
            )
        self._snapshot = {
            "engines": engines,
            "brokers": brokers,
            "links": links,
        }

    # -- retirement hooks (crash / departure / query removal) -----------
    def plan_retired(self, node: int, name: str, plan) -> None:
        """Preserve a removed plan's counters before the plan is dropped."""
        per_node = self._retired_engines.setdefault(node, {})
        counters = plan.operator_counters()
        prior = per_node.get(name)
        if prior is not None:
            for key, value in counters.items():
                prior[key] = prior.get(key, 0) + value
        else:
            per_node[name] = counters

    def engine_retired(self, node: int, engine) -> None:
        """Preserve a whole engine's counters before it is torn down."""
        for name, counters in engine.operator_metrics().items():
            per_node = self._retired_engines.setdefault(node, {})
            prior = per_node.get(name)
            if prior is not None:
                for key, value in counters.items():
                    prior[key] = prior.get(key, 0) + value
            else:
                per_node[name] = counters

    # -- export ---------------------------------------------------------
    def export(self) -> Dict:
        """JSON-ready record of the whole observed run."""
        out: Dict = {"schema": SCHEMA, "seed": self.seed, "wall_s": self.wall_s}
        out["metrics"] = (
            self.registry.to_dict() if self.registry is not None else None
        )
        out["spans"] = self.spans.to_list() if self.spans is not None else None
        out["profile"] = (
            self.profiler.to_dict(self.wall_s)
            if self.profiler is not None
            else None
        )
        out.update(self._snapshot)
        return out

    def write(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.export(), fh, indent=2, sort_keys=True)
