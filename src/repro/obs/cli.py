"""``cosmos-obs``: summarize and query a recorded observability run.

Subcommands operate on the JSON file written by
:meth:`repro.obs.Observer.write`::

    cosmos-obs summary OBS.json            # headline numbers
    cosmos-obs metrics OBS.json [--like X] # counters/gauges/histograms
    cosmos-obs profile OBS.json            # subsystem wall-clock table
    cosmos-obs spans OBS.json [--seq N] [--limit K]
    cosmos-obs record --out OBS.json [--seed S] [--duration D]
                      [--sample-every N] [--batches/--no-batches]
                      [--sharing]          # run + record a scenario
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import sys
from typing import Dict

__all__ = ["main"]


def _load(path: str) -> Dict:
    with open(path) as fh:
        data = json.load(fh)
    schema = data.get("schema", "")
    if not str(schema).startswith("cosmos-obs/"):
        raise SystemExit(f"{path}: not a cosmos-obs record (schema={schema!r})")
    return data


def _cmd_summary(args) -> int:
    data = _load(args.record)
    spans = data.get("spans") or []
    metrics = data.get("metrics") or {}
    profile = data.get("profile") or {}
    print(f"schema:   {data['schema']}")
    print(f"seed:     {data.get('seed')}")
    print(f"wall:     {data.get('wall_s', 0.0):.3f} s")
    print(f"spans:    {len(spans)} sampled tuples")
    print(f"counters: {len(metrics.get('counters', {}))}")
    print(f"gauges:   {len(metrics.get('gauges', {}))}")
    print(f"links:    {len(data.get('links', {}))}")
    if profile.get("totals_s"):
        cov = profile.get("coverage")
        cov_s = f" ({cov:.0%} of wall attributed)" if cov is not None else ""
        print(f"profiled: {len(profile['totals_s'])} subsystems{cov_s}")
    return 0


def _cmd_metrics(args) -> int:
    data = _load(args.record)
    metrics = data.get("metrics") or {}
    pattern = args.like or "*"
    for group in ("counters", "gauges"):
        rows = [
            (name, value)
            for name, value in sorted(metrics.get(group, {}).items())
            if fnmatch.fnmatch(name, pattern)
        ]
        if rows:
            print(f"[{group}]")
            for name, value in rows:
                print(f"  {name} = {value:g}")
    hists = {
        name: h
        for name, h in sorted(metrics.get("histograms", {}).items())
        if fnmatch.fnmatch(name, pattern)
    }
    if hists:
        print("[histograms]")
        for name, h in hists.items():
            print(
                f"  {name}: n={h['count']} sum={h['sum']:g} "
                f"min={h['min']:g} p50={h['p50']:g} p95={h['p95']:g} "
                f"max={h['max']:g}"
            )
    return 0


def _cmd_profile(args) -> int:
    data = _load(args.record)
    profile = data.get("profile") or {}
    totals = profile.get("totals_s", {})
    calls = profile.get("calls", {})
    wall = profile.get("wall_s", data.get("wall_s", 0.0))
    if not totals:
        print("no profile in record")
        return 1
    width = max(len(n) for n in totals)
    for name, secs in sorted(totals.items(), key=lambda kv: -kv[1]):
        share = f"{secs / wall:6.1%}" if wall else "     -"
        print(f"  {name:<{width}}  {secs:9.4f} s  {share}  "
              f"x{calls.get(name, 0)}")
    if wall:
        attributed = sum(totals.values())
        print(f"  {'(attributed)':<{width}}  {attributed:9.4f} s  "
              f"{attributed / wall:6.1%}  of {wall:.4f} s wall")
    return 0


def _cmd_spans(args) -> int:
    data = _load(args.record)
    spans = data.get("spans") or []
    if args.seq is not None:
        spans = [s for s in spans if s["seq"] == args.seq]
        if not spans:
            print(f"no span for seq {args.seq}")
            return 1
    for span in spans[: args.limit]:
        print(
            f"seq {span['seq']} substream {span['substream']} "
            f"t_emit {span['t_emit']:.6f}"
        )
        for hop in span["hops"]:
            extra = {
                k: v for k, v in hop.items() if k not in ("kind", "t")
            }
            detail = " ".join(f"{k}={v}" for k, v in sorted(extra.items()))
            print(f"  {hop['t']:12.6f}  {hop['kind']:<10} {detail}")
        for note in span["annotations"]:
            extra = {
                k: v for k, v in note.items() if k not in ("kind", "t")
            }
            detail = " ".join(f"{k}={v}" for k, v in sorted(extra.items()))
            print(f"  {note['t']:12.6f}  !{note['kind']:<9} {detail}")
    shown = min(len(spans), args.limit)
    if shown < len(spans):
        print(f"... {len(spans) - shown} more (raise --limit)")
    return 0


def _cmd_record(args) -> int:
    from ..sim.cluster import ChurnParams, ScenarioParams, run_scenario
    from .observer import Observer

    obs = Observer(span_sample_every=args.sample_every)
    scenario = ScenarioParams(
        duration=args.duration,
        churn=ChurnParams(),
        use_batches=args.batches,
        use_sharing=args.sharing,
    )
    run_scenario(seed=args.seed, scenario=scenario, observer=obs)
    obs.write(args.out)
    spans = obs.spans.to_list() if obs.spans is not None else []
    print(
        f"wrote {args.out}: wall {obs.wall_s:.3f} s, {len(spans)} spans"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="cosmos-obs", description=__doc__.splitlines()[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("summary", help="headline numbers of a record")
    p.add_argument("record")
    p.set_defaults(fn=_cmd_summary)

    p = sub.add_parser("metrics", help="dump counters/gauges/histograms")
    p.add_argument("record")
    p.add_argument("--like", help="glob filter on metric names")
    p.set_defaults(fn=_cmd_metrics)

    p = sub.add_parser("profile", help="subsystem wall-clock table")
    p.add_argument("record")
    p.set_defaults(fn=_cmd_profile)

    p = sub.add_parser("spans", help="print sampled provenance spans")
    p.add_argument("record")
    p.add_argument("--seq", type=int, help="only the span for this seq")
    p.add_argument("--limit", type=int, default=5)
    p.set_defaults(fn=_cmd_spans)

    p = sub.add_parser("record", help="run a scenario under observation")
    p.add_argument("--out", required=True)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--duration", type=float, default=30.0)
    p.add_argument("--sample-every", type=int, default=16)
    p.add_argument("--batches", action="store_true", default=True)
    p.add_argument(
        "--no-batches", dest="batches", action="store_false"
    )
    p.add_argument("--sharing", action="store_true")
    p.set_defaults(fn=_cmd_record)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
