"""Wall-clock timing primitives shared by bench and instrumentation.

Every wall-clock attribution in the repo flows through this module:
the bench scenarios' ``measure`` best-of-N harness, the ``Stopwatch``
used by one-shot elapsed measurements (placement search, experiment
scripts), and the :mod:`repro.obs.profiler` subsystem timers.  Keeping
one code path means one place to swap the clock source or add
calibration later.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Tuple

__all__ = ["Timing", "measure", "Stopwatch"]


@dataclass(frozen=True)
class Timing:
    """Aggregate of repeated timed runs of one callable.

    ``best`` is the headline number (least noise on a shared machine);
    ``mean`` and ``repeat`` qualify it.
    """

    best: float
    mean: float
    repeat: int

    def as_dict(self) -> dict:
        """JSON-ready representation (seconds, floats)."""
        return {"best_s": self.best, "mean_s": self.mean, "repeat": self.repeat}


def measure(
    fn: Callable[[], Any], repeat: int = 3, warmup: int = 0
) -> Tuple[Any, Timing]:
    """Time ``fn()`` ``repeat`` times; returns (last result, timing).

    ``warmup`` extra untimed calls run first (JIT-less Python still
    benefits: imports, caches and allocator warm-up).
    """
    if repeat < 1:
        raise ValueError("repeat must be >= 1")
    for _ in range(warmup):
        fn()
    result = None
    samples = []
    for _ in range(repeat):
        t0 = time.perf_counter()
        result = fn()
        samples.append(time.perf_counter() - t0)
    return result, Timing(
        best=min(samples), mean=sum(samples) / len(samples), repeat=repeat
    )


class Stopwatch:
    """One-shot elapsed-seconds measurement around a code region.

    Usage::

        sw = Stopwatch()        # starts immediately
        ...work...
        elapsed = sw.elapsed()  # seconds since construction (float)

    ``elapsed()`` can be called repeatedly; ``restart()`` resets the
    origin.  This replaces ad-hoc ``t0 = time.perf_counter()`` pairs so
    grep finds every wall-clock read in the codebase here.
    """

    __slots__ = ("_t0",)

    def __init__(self) -> None:
        self._t0 = time.perf_counter()

    def restart(self) -> None:
        self._t0 = time.perf_counter()

    def elapsed(self) -> float:
        return time.perf_counter() - self._t0
