"""Shortest-path latency computation over a :class:`Topology`.

The COSMOS optimizer needs transfer latencies ``d(ni, nj)`` between the
*relevant* nodes only (sources, processors, proxies) -- not all 4096
routers.  :class:`LatencyOracle` therefore runs Dijkstra once per relevant
node and caches the distance rows.  Rows are computed lazily so callers can
pass the full topology and only pay for the nodes they ask about.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Sequence

from .transit_stub import Topology

__all__ = ["dijkstra", "LatencyOracle", "select_roles"]


def dijkstra(topo: Topology, source: int) -> List[float]:
    """Single-source shortest path latencies from ``source``.

    Unreachable nodes get ``float('inf')``.
    """
    dist = [float("inf")] * topo.n
    dist[source] = 0.0
    heap = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        for v, lat in topo.adjacency[u]:
            nd = d + lat
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist


class LatencyOracle:
    """Lazy all-pairs latency oracle over a topology.

    ``oracle(u, v)`` returns the shortest-path latency between two nodes.
    Distance rows are computed on first use and memoised; ``prefetch`` can
    be used to compute rows for a known set of relevant nodes up front.
    """

    def __init__(self, topo: Topology):
        self._topo = topo
        self._rows: Dict[int, List[float]] = {}

    @property
    def topology(self) -> Topology:
        return self._topo

    def row(self, u: int) -> List[float]:
        """Distance row from ``u`` to every node in the topology."""
        if u not in self._rows:
            self._rows[u] = dijkstra(self._topo, u)
        return self._rows[u]

    def __call__(self, u: int, v: int) -> float:
        if u == v:
            return 0.0
        if u in self._rows:
            return self._rows[u][v]
        if v in self._rows:
            return self._rows[v][u]
        return self.row(u)[v]

    def prefetch(self, nodes: Iterable[int]) -> None:
        for u in nodes:
            self.row(u)

    def median(self, members: Sequence[int]) -> int:
        """The member with minimum total latency to all other members.

        This is the paper's cluster-parent selection rule (Section 3.3).
        Ties break toward the smaller node id for determinism.
        """
        if not members:
            raise ValueError("median of an empty member set")
        best = None
        best_total = float("inf")
        for u in members:
            total = 0.0
            row = self.row(u)
            for v in members:
                total += row[v]
            if total < best_total or (total == best_total and (best is None or u < best)):
                best_total = total
                best = u
        assert best is not None
        return best


def select_roles(
    topo: Topology,
    num_sources: int,
    num_processors: int,
    seed: int = 0,
    rng=None,
):
    """Pick source and processor nodes from the stub nodes of a topology.

    Mirrors the paper's setup: "Among these nodes, 100 nodes are chosen as
    the data stream sources, and 256 nodes are selected as the stream
    processors, and the remaining nodes act as the routers."  Sources and
    processors are disjoint and drawn from stub (edge) nodes, which is
    where end systems live in a transit-stub network.

    An explicit ``rng`` (``random.Random`` or ``numpy.random.Generator``)
    takes precedence over ``seed``, for end-to-end seeding of simulator
    runs.  Returns ``(sources, processors)`` as sorted lists of node ids.
    """
    from .transit_stub import _as_python_random

    rng = _as_python_random(seed, rng)
    pool = list(topo.stub_nodes) if topo.stub_nodes else list(range(topo.n))
    need = num_sources + num_processors
    if need > len(pool):
        raise ValueError(
            f"need {need} end systems but topology only has {len(pool)} stub nodes"
        )
    chosen = rng.sample(pool, need)
    sources = sorted(chosen[:num_sources])
    processors = sorted(chosen[num_sources:])
    return sources, processors
