"""Network topology substrate: transit-stub generation, latency, overlays."""

from .latency import LatencyOracle, dijkstra, select_roles
from .overlay import OverlayTree, minimum_latency_spanning_tree
from .transit_stub import Topology, TransitStubParams, generate_transit_stub

__all__ = [
    "Topology",
    "TransitStubParams",
    "generate_transit_stub",
    "LatencyOracle",
    "dijkstra",
    "select_roles",
    "OverlayTree",
    "minimum_latency_spanning_tree",
]
