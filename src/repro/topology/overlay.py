"""Overlay construction over a physical topology.

The pub/sub broker network in COSMOS is an application-level overlay: a
subset of nodes (the processors plus the sources) connected by logical
links whose cost is the underlying shortest-path latency.  Brokers form an
acyclic overlay (a tree), which is the standard Siena deployment and what
makes reverse-path subscription forwarding well defined.

:func:`minimum_latency_spanning_tree` builds a Prim MST over the latency
metric closure of the selected nodes, which is a good approximation of the
latency-efficient overlays real systems build.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from .latency import LatencyOracle

__all__ = ["OverlayTree", "minimum_latency_spanning_tree"]


@dataclass
class OverlayTree:
    """An undirected tree over a set of overlay nodes.

    ``links[u]`` maps neighbour -> latency.  The tree is the unit the
    pub/sub layer routes on; :meth:`path` and :meth:`path_latency` answer
    routing questions, and :meth:`multicast_edges` returns the edge set a
    multicast from ``source`` to ``sinks`` uses (each edge at most once --
    the property that makes pub/sub beat naive unicast).
    """

    nodes: List[int]
    links: Dict[int, Dict[int, float]] = field(default_factory=dict)

    def add_link(self, u: int, v: int, latency: float) -> None:
        self.links.setdefault(u, {})[v] = latency
        self.links.setdefault(v, {})[u] = latency

    def neighbors(self, u: int) -> Dict[int, float]:
        return self.links.get(u, {})

    def degree(self, u: int) -> int:
        return len(self.links.get(u, {}))

    def edges(self) -> List[Tuple[int, int, float]]:
        out = []
        for u, nbrs in self.links.items():
            for v, lat in nbrs.items():
                if u < v:
                    out.append((u, v, lat))
        return out

    def path(self, src: int, dst: int) -> List[int]:
        """The unique tree path from ``src`` to ``dst`` (inclusive)."""
        if src == dst:
            return [src]
        parent: Dict[int, int] = {src: src}
        stack = [src]
        while stack:
            u = stack.pop()
            if u == dst:
                break
            for v in self.links.get(u, {}):
                if v not in parent:
                    parent[v] = u
                    stack.append(v)
        if dst not in parent:
            raise ValueError(f"{dst} not reachable from {src} in overlay tree")
        path = [dst]
        while path[-1] != src:
            path.append(parent[path[-1]])
        path.reverse()
        return path

    def path_latency(self, src: int, dst: int) -> float:
        path = self.path(src, dst)
        return sum(self.links[a][b] for a, b in zip(path, path[1:]))

    def multicast_edges(self, source: int, sinks: Sequence[int]) -> Set[Tuple[int, int]]:
        """Union of tree-path edges from ``source`` to each sink.

        Edges are normalised as ``(min, max)`` pairs; the result size is the
        number of links a single multicast message crosses.
        """
        used: Set[Tuple[int, int]] = set()
        for sink in sinks:
            if sink == source:
                continue
            path = self.path(source, sink)
            for a, b in zip(path, path[1:]):
                used.add((min(a, b), max(a, b)))
        return used

    def is_tree(self) -> bool:
        """Check acyclicity + connectivity over ``nodes``."""
        if not self.nodes:
            return True
        edge_count = len(self.edges())
        if edge_count != len(self.nodes) - 1:
            return False
        seen = {self.nodes[0]}
        stack = [self.nodes[0]]
        while stack:
            u = stack.pop()
            for v in self.links.get(u, {}):
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        return len(seen) == len(self.nodes)


def minimum_latency_spanning_tree(
    members: Sequence[int], oracle: LatencyOracle
) -> OverlayTree:
    """Prim's MST over the latency metric closure of ``members``.

    Runs in O(m^2) time with a heap over the m selected members, which is
    fine for the few hundred overlay nodes the experiments use.
    """
    members = list(dict.fromkeys(members))  # dedupe, keep order
    if not members:
        return OverlayTree(nodes=[])
    tree = OverlayTree(nodes=list(members))
    if len(members) == 1:
        return tree

    in_tree = {members[0]}
    # (latency, u_in_tree, v_out)
    heap: List[Tuple[float, int, int]] = []
    for v in members[1:]:
        heapq.heappush(heap, (oracle(members[0], v), members[0], v))
    while len(in_tree) < len(members):
        lat, u, v = heapq.heappop(heap)
        if v in in_tree:
            continue
        tree.add_link(u, v, lat)
        in_tree.add(v)
        for w in members:
            if w not in in_tree:
                heapq.heappush(heap, (oracle(v, w), v, w))
    return tree
