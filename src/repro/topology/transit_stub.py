"""Transit-stub random topology generation.

The paper generates its simulation network with the Transit-Stub model of
the GT-ITM topology generator (4096 nodes).  GT-ITM itself is a C tool that
is not available here, so this module implements the same structural model:

* a small number of *transit domains* (backbone ASes) whose routers are
  densely connected with high-latency long-haul links;
* each transit router attaches several *stub domains* (edge networks) whose
  routers are connected with low-latency links;
* extra random intra-domain edges control redundancy.

Latencies are drawn per link class (intra-stub, stub-transit,
intra-transit, transit-transit), which gives the hierarchical latency
structure the paper's evaluation relies on: nodes inside one stub are close,
nodes in different transit domains are far.

The output is a plain :class:`Topology` value object: adjacency lists with
symmetric edge latencies.  All randomness flows through a caller-provided
seed so experiments are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

__all__ = [
    "TransitStubParams",
    "Topology",
    "generate_transit_stub",
]


@dataclass(frozen=True)
class TransitStubParams:
    """Parameters of the transit-stub model.

    Total node count is roughly
    ``transit_domains * transit_nodes * (1 + stubs_per_transit_node *
    stub_nodes)``.  The defaults give a small topology suitable for unit
    tests; :func:`paper_scale` returns the 4096-node configuration used in
    the paper's simulation study.
    """

    transit_domains: int = 2
    transit_nodes: int = 4
    stubs_per_transit_node: int = 3
    stub_nodes: int = 4
    #: probability of an extra random edge inside a stub domain
    stub_extra_edge_prob: float = 0.2
    #: probability of an edge between two routers of the same transit domain
    transit_edge_prob: float = 0.6
    #: latency ranges (milliseconds) per link class
    intra_stub_latency: Tuple[float, float] = (1.0, 5.0)
    stub_transit_latency: Tuple[float, float] = (5.0, 20.0)
    intra_transit_latency: Tuple[float, float] = (20.0, 60.0)
    transit_transit_latency: Tuple[float, float] = (60.0, 150.0)

    def node_count(self) -> int:
        """Number of nodes the generator will produce for these params."""
        transit = self.transit_domains * self.transit_nodes
        stubs = transit * self.stubs_per_transit_node * self.stub_nodes
        return transit + stubs

    @staticmethod
    def paper_scale() -> "TransitStubParams":
        """The 4096-node configuration matching the paper's simulation.

        4 transit domains x 4 transit routers x 16 stubs x 16 stub routers
        = 16 transit + 4080 stub ~= 4096 nodes.
        """
        return TransitStubParams(
            transit_domains=4,
            transit_nodes=4,
            stubs_per_transit_node=16,
            stub_nodes=16,
        )


@dataclass
class Topology:
    """An undirected weighted network topology.

    Attributes
    ----------
    n:
        Number of nodes, identified by the integers ``0..n-1``.
    adjacency:
        ``adjacency[u]`` is a list of ``(v, latency_ms)`` pairs.  Symmetric.
    transit_nodes / stub_nodes:
        Node-id partitions by role.
    stub_of:
        For stub nodes, the id of the stub domain they belong to (useful for
        locality-aware processor selection).
    """

    n: int
    adjacency: List[List[Tuple[int, float]]]
    transit_nodes: List[int] = field(default_factory=list)
    stub_nodes: List[int] = field(default_factory=list)
    stub_of: Dict[int, int] = field(default_factory=dict)

    def add_edge(self, u: int, v: int, latency: float) -> None:
        """Insert a symmetric edge; duplicate edges keep the smaller latency."""
        if u == v:
            raise ValueError("self loops are not allowed")
        for i, (w, lat) in enumerate(self.adjacency[u]):
            if w == v:
                if latency < lat:
                    self.adjacency[u][i] = (v, latency)
                    for j, (x, _) in enumerate(self.adjacency[v]):
                        if x == u:
                            self.adjacency[v][j] = (u, latency)
                            break
                return
        self.adjacency[u].append((v, latency))
        self.adjacency[v].append((u, latency))

    def has_edge(self, u: int, v: int) -> bool:
        return any(w == v for w, _ in self.adjacency[u])

    def edge_count(self) -> int:
        return sum(len(nbrs) for nbrs in self.adjacency) // 2

    def degree(self, u: int) -> int:
        return len(self.adjacency[u])

    def neighbors(self, u: int) -> Sequence[Tuple[int, float]]:
        return self.adjacency[u]

    def is_connected(self) -> bool:
        """BFS connectivity check over the whole topology."""
        if self.n == 0:
            return True
        seen = [False] * self.n
        stack = [0]
        seen[0] = True
        count = 1
        while stack:
            u = stack.pop()
            for v, _ in self.adjacency[u]:
                if not seen[v]:
                    seen[v] = True
                    count += 1
                    stack.append(v)
        return count == self.n


def _uniform(rng: random.Random, bounds: Tuple[float, float]) -> float:
    lo, hi = bounds
    return rng.uniform(lo, hi)


def _as_python_random(seed: int, rng) -> random.Random:
    """Normalise ``(seed, rng)`` to one :class:`random.Random`.

    ``rng`` may be a :class:`random.Random` (used directly) or a
    :class:`numpy.random.Generator` (a stream is derived from one draw),
    so a single seeded generator can reproducibly drive topology,
    workload and tuple arrivals end to end.  ``None`` keeps the legacy
    ``seed`` behaviour bit-for-bit.
    """
    if rng is None:
        return random.Random(seed)
    if isinstance(rng, random.Random):
        return rng
    return random.Random(int(rng.integers(0, 2 ** 63)))


def generate_transit_stub(
    params: TransitStubParams = TransitStubParams(), seed: int = 0, rng=None
) -> Topology:
    """Generate a connected transit-stub topology.

    The construction guarantees connectivity:

    * transit routers of one domain are chained in a ring plus random
      chords (``transit_edge_prob``);
    * transit domains are connected pairwise (one inter-domain link per
      domain pair);
    * each stub domain is a chain plus random chords, and its first router
      links to its parent transit router.

    An explicit ``rng`` (``random.Random`` or ``numpy.random.Generator``)
    takes precedence over ``seed``; see :func:`_as_python_random`.
    """
    rng = _as_python_random(seed, rng)
    n = params.node_count()
    topo = Topology(n=n, adjacency=[[] for _ in range(n)])

    next_id = 0
    domains: List[List[int]] = []
    for _ in range(params.transit_domains):
        domain = list(range(next_id, next_id + params.transit_nodes))
        next_id += params.transit_nodes
        domains.append(domain)
        topo.transit_nodes.extend(domain)
        # ring for connectivity
        for i, u in enumerate(domain):
            v = domain[(i + 1) % len(domain)]
            if u != v and not topo.has_edge(u, v):
                topo.add_edge(u, v, _uniform(rng, params.intra_transit_latency))
        # random chords
        for i in range(len(domain)):
            for j in range(i + 2, len(domain)):
                if rng.random() < params.transit_edge_prob:
                    topo.add_edge(
                        domain[i], domain[j],
                        _uniform(rng, params.intra_transit_latency),
                    )

    # inter-domain links: connect every pair of transit domains once
    for i in range(len(domains)):
        for j in range(i + 1, len(domains)):
            u = rng.choice(domains[i])
            v = rng.choice(domains[j])
            topo.add_edge(u, v, _uniform(rng, params.transit_transit_latency))

    # stub domains
    stub_id = 0
    for domain in domains:
        for transit_router in domain:
            for _ in range(params.stubs_per_transit_node):
                stub = list(range(next_id, next_id + params.stub_nodes))
                next_id += params.stub_nodes
                topo.stub_nodes.extend(stub)
                for u in stub:
                    topo.stub_of[u] = stub_id
                # chain for connectivity
                for a, b in zip(stub, stub[1:]):
                    topo.add_edge(a, b, _uniform(rng, params.intra_stub_latency))
                # random chords
                for i in range(len(stub)):
                    for j in range(i + 2, len(stub)):
                        if rng.random() < params.stub_extra_edge_prob:
                            topo.add_edge(
                                stub[i], stub[j],
                                _uniform(rng, params.intra_stub_latency),
                            )
                # uplink to the transit router
                topo.add_edge(
                    stub[0], transit_router,
                    _uniform(rng, params.stub_transit_latency),
                )
                stub_id += 1

    return topo
