"""A per-processor continuous-query engine (the GSN substitute).

An :class:`Engine` hosts compiled query plans, routes incoming stream
tuples to the plans that read them, collects result tuples per result
stream, and accounts CPU cost so the optimizer's per-query load estimates
(Section 3.8) can be refreshed from real measurements.

Tuples enter on one of two data planes: the scalar path (:meth:`push`,
:meth:`push_query`, one ``dict`` tuple at a time) or the columnar batch
path (:meth:`push_batch`, :meth:`push_query_batch`, a
:class:`~repro.engine.tuples.TupleBatch` at a time).  The batch path is
bit-identical to pushing the batch's rows through the scalar path one by
one -- same results in the same per-query order, same CPU counters --
and ``use_batches=False`` degrades it to exactly that scalar loop, which
is the reference the parity tests compare against.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..query.ast import Query
from .plans import QueryPlan, compile_query
from .tuples import StreamTuple, TupleBatch

__all__ = ["Engine"]


class Engine:
    """One stream-processing engine instance.

    ``retain_results`` bounds the per-query :attr:`results` buffers kept
    by :meth:`push`: ``None`` retains everything (the historical
    behaviour), ``0`` disables buffering entirely, and a positive ``n``
    keeps only the newest ``n`` result tuples per query -- long
    simulation runs use this so an engine cannot leak memory while
    sinks/return values still observe every result.

    ``use_batches=False`` makes the batch entry points process rows
    through the scalar operators instead of the vectorised kernels (the
    bit-identical reference path).
    """

    def __init__(
        self,
        node: Optional[int] = None,
        retain_results: Optional[int] = None,
        use_batches: bool = True,
    ):
        if retain_results is not None and retain_results < 0:
            raise ValueError("retain_results must be None or >= 0")
        self.node = node
        self.retain_results = retain_results
        self.use_batches = use_batches
        self.plans: Dict[str, QueryPlan] = {}
        #: stream name -> [(query name, alias)] subscriptions
        self._readers: Dict[str, List[Tuple[str, str]]] = defaultdict(list)
        #: result sink callbacks per query name
        self._sinks: Dict[str, List[Callable[[StreamTuple], None]]] = defaultdict(list)
        self.results: Dict[str, List[StreamTuple]] = defaultdict(list)

    # ------------------------------------------------------------------
    def add_query(self, query: Query, result_stream: Optional[str] = None) -> QueryPlan:
        """Compile and register a query; returns its plan."""
        name = query.name or f"q{len(self.plans)}"
        if name in self.plans:
            raise ValueError(f"duplicate query name {name!r}")
        plan = compile_query(query, result_stream=result_stream)
        self.plans[name] = plan
        for b in query.bindings:
            self._readers[b.stream].append((name, b.alias))
        return plan

    def remove_query(self, name: str) -> QueryPlan:
        """Unregister a query plan; returns it with operator state intact.

        Every trace of the query is dropped -- stream subscriptions, result
        sinks *and* the ``results`` buffer -- so churned queries do not leak
        memory across a long-running simulation.  The returned plan still
        holds its window state, which is what a migration hands to the
        destination engine (see :meth:`adopt_plan`).
        """
        plan = self.plans.pop(name, None)
        if plan is None:
            raise KeyError(name)
        for stream, readers in list(self._readers.items()):
            readers[:] = [(n, a) for n, a in readers if n != name]
            if not readers:
                del self._readers[stream]
        self._sinks.pop(name, None)
        self.results.pop(name, None)
        return plan

    def adopt_plan(self, plan: QueryPlan) -> QueryPlan:
        """Register an already-compiled plan, operator state included.

        The receiving side of a query migration: the source engine detaches
        the plan with :meth:`remove_query` and the destination adopts it, so
        join windows survive the move (the state whose transfer cost the
        optimizer charges migrations for).
        """
        name = plan.query.name
        if not name:
            raise ValueError("adopted plans need a named query")
        if name in self.plans:
            raise ValueError(f"duplicate query name {name!r}")
        self.plans[name] = plan
        for b in plan.query.bindings:
            self._readers[b.stream].append((name, b.alias))
        return plan

    def on_result(self, name: str, sink: Callable[[StreamTuple], None]) -> None:
        """Register a callback for a query's result tuples."""
        if name not in self.plans:
            raise KeyError(name)
        self._sinks[name].append(sink)

    # ------------------------------------------------------------------
    def _buffer_result(self, name: str, result: StreamTuple) -> None:
        """Append to the per-query results buffer, honouring the cap."""
        cap = self.retain_results
        if cap == 0:
            return
        bucket = self.results[name]
        bucket.append(result)
        if cap is not None and len(bucket) > cap:
            del bucket[: len(bucket) - cap]

    def push(self, t: StreamTuple) -> List[StreamTuple]:
        """Route one source tuple to all plans reading its stream."""
        out: List[StreamTuple] = []
        for name, alias in self._readers.get(t.stream, []):
            plan = self.plans[name]
            for result in plan.push(alias, t):
                self._buffer_result(name, result)
                out.append(result)
                for sink in self._sinks.get(name, []):
                    sink(result)
        return out

    def push_batch(self, batch: TupleBatch) -> List[StreamTuple]:
        """Route a batch of source tuples to all plans reading its stream.

        Per-query results, sinks, buffers and counters are bit-identical
        to pushing the rows through :meth:`push` one at a time; the
        returned list is grouped by plan (reader registration order)
        rather than interleaved per tuple.
        """
        out: List[StreamTuple] = []
        readers = self._readers.get(batch.stream, [])
        by_plan: Dict[str, List[str]] = {}
        for name, alias in readers:
            by_plan.setdefault(name, []).append(alias)
        rows: Optional[List[StreamTuple]] = None  # lazy, shared by fallbacks
        for name, aliases in by_plan.items():
            plan = self.plans[name]
            if self.use_batches and len(aliases) == 1:
                results, _ = plan.push_batch(aliases[0], batch)
                for result in results.to_tuples():
                    self._buffer_result(name, result)
                    out.append(result)
                    for sink in self._sinks.get(name, []):
                        sink(result)
            else:
                # scalar fallback: a plan reading one stream through two
                # aliases (self-join) must see rows interleaved per tuple
                # to keep window state evolution identical
                if rows is None:
                    rows = batch.to_tuples()
                for t in rows:
                    for alias in aliases:
                        for result in plan.push(alias, t):
                            self._buffer_result(name, result)
                            out.append(result)
                            for sink in self._sinks.get(name, []):
                                sink(result)
        return out

    def push_query(self, name: str, t: StreamTuple) -> List[StreamTuple]:
        """Route one tuple to a single named plan (simulator delivery path).

        The pub/sub layer delivers each substream tuple once per subscribed
        query, so the simulator addresses plans individually instead of
        fanning out by stream name.  Results are returned and sent to the
        query's sinks but *not* buffered in :attr:`results` -- in a
        long-running simulation the caller owns result retention.  Unknown
        names are a no-op (the query may have just churned away).
        """
        plan = self.plans.get(name)
        if plan is None:
            return []
        out: List[StreamTuple] = []
        # the plan's own bindings (at most 2) say which aliases read this
        # stream -- no need to scan the engine-wide reader lists
        for b in plan.query.bindings:
            if b.stream != t.stream:
                continue
            for result in plan.push(b.alias, t):
                out.append(result)
                for sink in self._sinks.get(name, ()):
                    sink(result)
        return out

    def push_query_batch(
        self, name: str, batch: TupleBatch
    ) -> List[List[StreamTuple]]:
        """Route a batch to a single named plan; results grouped per row.

        The batch counterpart of :meth:`push_query`: returns one result
        list per input row (so the simulator can account latency and
        proxy traffic per source tuple), calls the query's sinks in the
        same order as row-at-a-time delivery, and does not buffer in
        :attr:`results`.  Unknown names are a no-op.  Plans reading the
        batch's stream through two aliases (self-joins) and engines with
        ``use_batches=False`` fall back to the scalar path row by row --
        output and counters are identical either way.
        """
        plan = self.plans.get(name)
        if plan is None:
            return [[] for _ in range(batch.n)]
        aliases = [
            b.alias for b in plan.query.bindings if b.stream == batch.stream
        ]
        if not aliases:
            return [[] for _ in range(batch.n)]
        sinks = self._sinks.get(name, ())
        per_row: List[List[StreamTuple]]
        if self.use_batches and len(aliases) == 1:
            results, row_index = plan.push_batch(aliases[0], batch)
            tuples = results.to_tuples()
            per_row = [[] for _ in range(batch.n)]
            for result, row in zip(tuples, row_index.tolist()):
                per_row[row].append(result)
        else:
            per_row = []
            for t in batch.to_tuples():
                row_out: List[StreamTuple] = []
                for alias in aliases:
                    row_out.extend(plan.push(alias, t))
                per_row.append(row_out)
        for row_out in per_row:
            for result in row_out:
                for sink in sinks:
                    sink(result)
        return per_row

    def run(self, tuples: Sequence[StreamTuple]) -> Dict[str, List[StreamTuple]]:
        """Push a whole trace (must be timestamp-ordered per stream)."""
        for t in tuples:
            self.push(t)
        return dict(self.results)

    # ------------------------------------------------------------------
    def cpu_costs(self) -> Dict[str, int]:
        """Per-query tuples-inspected counters (load statistics)."""
        return {name: plan.cpu_cost() for name, plan in self.plans.items()}

    def operator_metrics(self) -> Dict[str, Dict[str, int]]:
        """Per-plan operator counters (observability snapshot)."""
        return {
            name: plan.operator_counters()
            for name, plan in self.plans.items()
        }

    def state_sizes(self) -> Dict[str, int]:
        """Per-query operator state (window extents), for migration cost."""
        return {name: plan.state_size() for name, plan in self.plans.items()}
