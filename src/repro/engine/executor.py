"""A per-processor continuous-query engine (the GSN substitute).

An :class:`Engine` hosts compiled query plans, routes incoming stream
tuples to the plans that read them, collects result tuples per result
stream, and accounts CPU cost so the optimizer's per-query load estimates
(Section 3.8) can be refreshed from real measurements.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..query.ast import Query
from .plans import QueryPlan, compile_query
from .tuples import StreamTuple

__all__ = ["Engine"]


class Engine:
    """One stream-processing engine instance."""

    def __init__(self, node: Optional[int] = None):
        self.node = node
        self.plans: Dict[str, QueryPlan] = {}
        #: stream name -> [(query name, alias)] subscriptions
        self._readers: Dict[str, List[Tuple[str, str]]] = defaultdict(list)
        #: result sink callbacks per query name
        self._sinks: Dict[str, List[Callable[[StreamTuple], None]]] = defaultdict(list)
        self.results: Dict[str, List[StreamTuple]] = defaultdict(list)

    # ------------------------------------------------------------------
    def add_query(self, query: Query, result_stream: Optional[str] = None) -> QueryPlan:
        """Compile and register a query; returns its plan."""
        name = query.name or f"q{len(self.plans)}"
        if name in self.plans:
            raise ValueError(f"duplicate query name {name!r}")
        plan = compile_query(query, result_stream=result_stream)
        self.plans[name] = plan
        for b in query.bindings:
            self._readers[b.stream].append((name, b.alias))
        return plan

    def remove_query(self, name: str) -> QueryPlan:
        """Unregister a query plan; returns it with operator state intact.

        Every trace of the query is dropped -- stream subscriptions, result
        sinks *and* the ``results`` buffer -- so churned queries do not leak
        memory across a long-running simulation.  The returned plan still
        holds its window state, which is what a migration hands to the
        destination engine (see :meth:`adopt_plan`).
        """
        plan = self.plans.pop(name, None)
        if plan is None:
            raise KeyError(name)
        for stream, readers in list(self._readers.items()):
            readers[:] = [(n, a) for n, a in readers if n != name]
            if not readers:
                del self._readers[stream]
        self._sinks.pop(name, None)
        self.results.pop(name, None)
        return plan

    def adopt_plan(self, plan: QueryPlan) -> QueryPlan:
        """Register an already-compiled plan, operator state included.

        The receiving side of a query migration: the source engine detaches
        the plan with :meth:`remove_query` and the destination adopts it, so
        join windows survive the move (the state whose transfer cost the
        optimizer charges migrations for).
        """
        name = plan.query.name
        if not name:
            raise ValueError("adopted plans need a named query")
        if name in self.plans:
            raise ValueError(f"duplicate query name {name!r}")
        self.plans[name] = plan
        for b in plan.query.bindings:
            self._readers[b.stream].append((name, b.alias))
        return plan

    def on_result(self, name: str, sink: Callable[[StreamTuple], None]) -> None:
        """Register a callback for a query's result tuples."""
        if name not in self.plans:
            raise KeyError(name)
        self._sinks[name].append(sink)

    # ------------------------------------------------------------------
    def push(self, t: StreamTuple) -> List[StreamTuple]:
        """Route one source tuple to all plans reading its stream."""
        out: List[StreamTuple] = []
        for name, alias in self._readers.get(t.stream, []):
            plan = self.plans[name]
            for result in plan.push(alias, t):
                self.results[name].append(result)
                out.append(result)
                for sink in self._sinks.get(name, []):
                    sink(result)
        return out

    def push_query(self, name: str, t: StreamTuple) -> List[StreamTuple]:
        """Route one tuple to a single named plan (simulator delivery path).

        The pub/sub layer delivers each substream tuple once per subscribed
        query, so the simulator addresses plans individually instead of
        fanning out by stream name.  Results are returned and sent to the
        query's sinks but *not* buffered in :attr:`results` -- in a
        long-running simulation the caller owns result retention.  Unknown
        names are a no-op (the query may have just churned away).
        """
        plan = self.plans.get(name)
        if plan is None:
            return []
        out: List[StreamTuple] = []
        # the plan's own bindings (at most 2) say which aliases read this
        # stream -- no need to scan the engine-wide reader lists
        for b in plan.query.bindings:
            if b.stream != t.stream:
                continue
            for result in plan.push(b.alias, t):
                out.append(result)
                for sink in self._sinks.get(name, ()):
                    sink(result)
        return out

    def run(self, tuples: Sequence[StreamTuple]) -> Dict[str, List[StreamTuple]]:
        """Push a whole trace (must be timestamp-ordered per stream)."""
        for t in tuples:
            self.push(t)
        return dict(self.results)

    # ------------------------------------------------------------------
    def cpu_costs(self) -> Dict[str, int]:
        """Per-query tuples-inspected counters (load statistics)."""
        return {name: plan.cpu_cost() for name, plan in self.plans.items()}

    def state_sizes(self) -> Dict[str, int]:
        """Per-query operator state (window extents), for migration cost."""
        return {name: plan.state_size() for name, plan in self.plans.items()}
