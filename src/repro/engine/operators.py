"""Continuous operators: selection, projection, window band-join.

The engine is push-based and runs on one of two data planes:

* the scalar reference path -- every operator exposes
  ``process(tuple) -> list of output tuples``;
* the columnar batch path -- ``process_batch(TupleBatch)`` evaluates
  predicates as boolean masks over column arrays, projects by column
  selection, and joins against a :class:`~repro.engine.windows.ColumnWindow`
  with candidate index arrays instead of per-partner dict merges.

The two paths are bit-identical: same output tuples in the same order,
same ``inspected`` counters (CPU accounting).  A single operator instance
must stay on one path for its lifetime (window state is not shared
between the deque and columnar representations); :class:`WindowJoin`
raises on mixing.

Join outputs use qualified attribute names (``Alias.attr``), matching how
the paper's merged queries and split subscriptions address result-stream
attributes.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..query.ast import AttrRef, Comparison, Literal, Window
from .tuples import StreamTuple, TupleBatch
from .windows import ColumnWindow, SlidingWindow

__all__ = [
    "Operator",
    "Select",
    "Project",
    "WindowJoin",
    "evaluate_comparison",
    "evaluate_predicates_batch",
]


def _operand_value(operand, values: Mapping[str, Any]):
    if isinstance(operand, Literal):
        return operand.value
    return values.get(str(operand))


def evaluate_comparison(c: Comparison, values: Mapping[str, Any]) -> bool:
    """Evaluate a predicate over qualified values; missing attrs fail."""
    left = _operand_value(c.left, values)
    right = _operand_value(c.right, values)
    if left is None or right is None:
        return False
    if c.op == "==":
        return left == right
    if c.op == "!=":
        return left != right
    if c.op == "<":
        return left < right
    if c.op == "<=":
        return left <= right
    if c.op == ">":
        return left > right
    if c.op == ">=":
        return left >= right
    raise AssertionError(c.op)


_NUMPY_OPS = {
    "==": np.equal,
    "!=": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}


def _comparison_mask(
    c: Comparison,
    columns: Mapping[str, np.ndarray],
    present: Mapping[str, np.ndarray],
    n: int,
) -> np.ndarray:
    """Boolean mask of rows satisfying one predicate (missing -> False)."""
    operands = []
    valid: Optional[np.ndarray] = None
    vectorised = True
    for operand in (c.left, c.right):
        if isinstance(operand, Literal):
            value = operand.value
            if value is None:
                return np.zeros(n, dtype=bool)
            operands.append(value)
            continue
        col = columns.get(str(operand))
        if col is None:
            return np.zeros(n, dtype=bool)
        mask = present.get(str(operand))
        if mask is not None:
            valid = mask if valid is None else (valid & mask)
        if col.dtype == object:
            vectorised = False
        operands.append(col)
    left, right = operands
    if vectorised:
        try:
            out = _NUMPY_OPS[c.op](left, right)
        except TypeError:
            vectorised = False
        else:
            if not isinstance(out, np.ndarray):  # incomparable dtypes
                out = np.full(n, bool(out))
            out = out.astype(bool, copy=False)
    if not vectorised:
        # object columns (or incomparable types): scalar semantics per row
        lv = left.tolist() if isinstance(left, np.ndarray) else [left] * n
        rv = right.tolist() if isinstance(right, np.ndarray) else [right] * n
        out = np.fromiter(
            (_compare_scalar(c.op, a, b) for a, b in zip(lv, rv)),
            dtype=bool,
            count=n,
        )
    if valid is not None:
        out &= valid
    return out


def _compare_scalar(op: str, left: Any, right: Any) -> bool:
    if left is None or right is None:
        return False
    if op == "==":
        return bool(left == right)
    if op == "!=":
        return bool(left != right)
    if op == "<":
        return bool(left < right)
    if op == "<=":
        return bool(left <= right)
    if op == ">":
        return bool(left > right)
    return bool(left >= right)


def evaluate_predicates_batch(
    predicates: Sequence[Comparison],
    columns: Mapping[str, np.ndarray],
    n: int,
    present: Optional[Mapping[str, np.ndarray]] = None,
) -> np.ndarray:
    """Rows (as a boolean mask) passing the conjunction of ``predicates``.

    Bit-identical to evaluating :func:`evaluate_comparison` per row:
    missing attributes and ``None`` values fail, comparisons follow
    Python semantics (object columns fall back to per-row evaluation).
    """
    mask = np.ones(n, dtype=bool)
    for c in predicates:
        if not mask.any():
            break
        mask &= _comparison_mask(c, columns, present or {}, n)
    return mask


class Operator:
    """Base class; subclasses implement :meth:`process` (and, for batch
    execution, :meth:`process_batch`)."""

    def process(self, t: StreamTuple) -> List[StreamTuple]:
        """Consume one tuple; return zero or more output tuples."""
        raise NotImplementedError

    def process_batch(self, batch: TupleBatch) -> Tuple[TupleBatch, np.ndarray]:
        """Consume a batch; returns (output batch, input-row index).

        The index array maps each output row back to the input row that
        produced it (non-decreasing), so callers can group results per
        source tuple exactly as the scalar path does.
        """
        raise NotImplementedError

    #: number of tuples this operator inspected (CPU accounting)
    inspected: int = 0


class Select(Operator):
    """Filter by a conjunction of predicates over qualified names."""

    def __init__(self, predicates: Sequence[Comparison], out_stream: str = ""):
        self.predicates = list(predicates)
        self.out_stream = out_stream
        self.inspected = 0

    def clone(self) -> "Select":
        """An independent copy (counters included), for checkpoints.

        ``type(self)`` keeps subclass behaviour: the alias-qualifying
        selects built by ``repro.engine.plans`` clone through here too.
        """
        out = type(self)(list(self.predicates), self.out_stream)
        out.inspected = self.inspected
        return out

    def process(self, t: StreamTuple) -> List[StreamTuple]:
        """Pass ``t`` through iff every predicate holds."""
        self.inspected += 1
        # evaluate against the tuple's own mapping -- no per-tuple copy
        if all(evaluate_comparison(p, t.values) for p in self.predicates):
            out = t if not self.out_stream else StreamTuple(self.out_stream, t.values)
            return [out]
        return []

    def process_batch(self, batch: TupleBatch) -> Tuple[TupleBatch, np.ndarray]:
        """Mask-filter the batch; counters match the scalar path."""
        self.inspected += batch.n
        if not self.predicates:
            kept = batch
            rows = np.arange(batch.n)
        else:
            mask = evaluate_predicates_batch(
                self.predicates, batch.columns, batch.n, batch.present
            )
            kept = batch.filter(mask)
            rows = np.flatnonzero(mask)
        if self.out_stream:
            kept = kept.with_stream(self.out_stream)
        return kept, rows


class Project(Operator):
    """Keep only the given qualified attributes (always keeps timestamps)."""

    def __init__(self, attributes: Optional[Sequence[str]], out_stream: str = ""):
        self.attributes = None if attributes is None else set(attributes)
        self.out_stream = out_stream
        self.inspected = 0

    def clone(self) -> "Project":
        """An independent copy (counters included), for checkpoints."""
        attrs = None if self.attributes is None else sorted(self.attributes)
        out = Project(attrs, self.out_stream)
        out.inspected = self.inspected
        return out

    def _keeps(self, attr: str) -> bool:
        return (
            attr in self.attributes
            or attr.endswith("timestamp")
            or attr.endswith("timestamp_lag")
        )

    def process(self, t: StreamTuple) -> List[StreamTuple]:
        """Project ``t`` onto the selected attributes (keeps timestamps)."""
        self.inspected += 1
        if self.attributes is None:
            values = dict(t.values)
        else:
            values = {k: v for k, v in t.values.items() if self._keeps(k)}
        stream = self.out_stream or t.stream
        return [StreamTuple(stream, values)]

    def process_batch(self, batch: TupleBatch) -> Tuple[TupleBatch, np.ndarray]:
        """Column selection; rows map 1:1 to the input."""
        self.inspected += batch.n
        out = batch if self.attributes is None else batch.select_columns(self._keeps)
        if self.out_stream:
            out = out.with_stream(self.out_stream)
        return out, np.arange(batch.n)


class WindowJoin(Operator):
    """Two-way sliding-window join (the paper's only join shape).

    Each input tuple joins against the *other* side's current window
    extent; matched pairs are emitted with qualified attribute names plus
    a top-level ``timestamp`` (the newer of the two).  Predicates may
    reference ``left_alias.attr`` and ``right_alias.attr``.
    """

    def __init__(
        self,
        left_alias: str,
        left_window: Window,
        right_alias: str,
        right_window: Window,
        predicates: Sequence[Comparison],
        out_stream: str,
    ):
        self.left_alias = left_alias
        self.right_alias = right_alias
        self.left_window = SlidingWindow(left_window)
        self.right_window = SlidingWindow(right_window)
        #: columnar window state, created lazily on first batch push; a
        #: join instance runs scalar OR batch for its whole life
        self.left_cols: Optional[ColumnWindow] = None
        self.right_cols: Optional[ColumnWindow] = None
        self.predicates = list(predicates)
        self.out_stream = out_stream
        self.inspected = 0

    def clone(self) -> "WindowJoin":
        """An independent copy of the join, window state included.

        Both the scalar deque windows and the lazily created columnar
        windows are duplicated, so the clone can keep executing on
        whichever data plane the original was on.
        """
        out = WindowJoin(
            self.left_alias,
            self.left_window.spec,
            self.right_alias,
            self.right_window.spec,
            list(self.predicates),
            self.out_stream,
        )
        out.left_window = self.left_window.clone()
        out.right_window = self.right_window.clone()
        if self.left_cols is not None:
            out.left_cols = self.left_cols.clone()
        if self.right_cols is not None:
            out.right_cols = self.right_cols.clone()
        out.inspected = self.inspected
        return out

    def state_size(self) -> int:
        """Tuples currently buffered across both join windows."""
        total = len(self.left_window) + len(self.right_window)
        if self.left_cols is not None:
            total += len(self.left_cols)
        if self.right_cols is not None:
            total += len(self.right_cols)
        return total

    def evicted(self) -> int:
        """Total tuples evicted from both windows (monotone counter)."""
        total = self.left_window.evicted + self.right_window.evicted
        if self.left_cols is not None:
            total += self.left_cols.evicted
        if self.right_cols is not None:
            total += self.right_cols.evicted
        return total

    def _sides(self, alias: str):
        if alias == self.left_alias:
            return "left", self.left_alias, self.right_alias
        if alias == self.right_alias:
            return "right", self.right_alias, self.left_alias
        raise KeyError(f"unknown join input {alias!r}")

    def process_side(self, alias: str, t: StreamTuple) -> List[StreamTuple]:
        """Insert ``t`` on its side and join it against the other window."""
        side, own_alias, other_alias = self._sides(alias)
        if self.left_cols is not None or self.right_cols is not None:
            raise TypeError(
                "WindowJoin holds columnar state; scalar and batch pushes "
                "cannot be mixed on one plan"
            )
        own, other = (
            (self.left_window, self.right_window)
            if side == "left"
            else (self.right_window, self.left_window)
        )
        own.insert(t)
        out: List[StreamTuple] = []
        # evict once, then walk the deque directly -- no per-probe copy
        other.evict(t.timestamp)
        for partner in other:
            self.inspected += 1
            values = t.qualify(own_alias)
            values.update(partner.qualify(other_alias))
            values["timestamp"] = t.timestamp
            # per-alias lag relative to the result timestamp: lets split
            # subscriptions re-apply a *smaller* window downstream
            values[f"{own_alias}.timestamp_lag"] = 0.0
            values[f"{other_alias}.timestamp_lag"] = t.timestamp - partner.timestamp
            if all(evaluate_comparison(p, values) for p in self.predicates):
                out.append(StreamTuple(self.out_stream, values))
        return out

    def process_batch_side(
        self, alias: str, batch: TupleBatch
    ) -> Tuple[TupleBatch, np.ndarray]:
        """Batch insert + probe; bit-identical to per-tuple process_side.

        Returns the joined (predicate-filtered) output batch plus the
        input-row index of each output row.  Candidate pairs are built
        from one ``searchsorted`` over the partner window's timestamps
        per batch (row windows probe the full extent, exactly like the
        scalar path), and ``inspected`` counts every candidate pair, so
        CPU accounting matches the scalar counters.
        """
        side, own_alias, other_alias = self._sides(alias)
        if len(self.left_window) or len(self.right_window):
            raise TypeError(
                "WindowJoin holds scalar state; scalar and batch pushes "
                "cannot be mixed on one plan"
            )
        if self.left_cols is None:
            self.left_cols = ColumnWindow(self.left_window.spec)
            self.right_cols = ColumnWindow(self.right_window.spec)
        own, other = (
            (self.left_cols, self.right_cols)
            if side == "left"
            else (self.right_cols, self.left_cols)
        )
        n = batch.n
        if n == 0:
            return TupleBatch.empty(self.out_stream), np.arange(0)
        ts = batch.timestamps
        own.append_batch(batch)

        other_ts = other.timestamps
        m = len(other_ts)
        if other.spec.rows is not None:
            starts = np.zeros(n, dtype=np.int64)
        else:
            starts = np.searchsorted(
                other_ts, ts - other.spec.seconds, side="left"
            )
        counts = m - starts
        total = int(counts.sum())
        self.inspected += total
        if other.spec.rows is None:
            other_final_ts = float(ts[-1])
        if total == 0:
            if other.spec.rows is None:
                other.evict(other_final_ts)
            return TupleBatch.empty(self.out_stream), np.arange(0)

        row_idx = np.repeat(np.arange(n), counts)
        offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
        partner_idx = (
            np.arange(total) - offsets[row_idx] + starts[row_idx]
        )

        cols: Dict[str, np.ndarray] = {}
        present: Dict[str, np.ndarray] = {}
        for k, col in batch.columns.items():
            cols[f"{own_alias}.{k}"] = col[row_idx]
            mask = batch.present.get(k)
            if mask is not None:
                present[f"{own_alias}.{k}"] = mask[row_idx]
        for k in other.attributes():
            cols[f"{other_alias}.{k}"] = other.column(k)[partner_idx]
            mask = other.presence(k)
            if mask is not None:
                present[f"{other_alias}.{k}"] = mask[partner_idx]
        pair_ts = ts[row_idx]
        cols["timestamp"] = pair_ts
        cols[f"{own_alias}.timestamp_lag"] = np.zeros(total, dtype=np.float64)
        cols[f"{other_alias}.timestamp_lag"] = pair_ts - other_ts[partner_idx]

        keep = evaluate_predicates_batch(
            self.predicates, cols, total, present
        )
        out = TupleBatch(self.out_stream, cols, total, present or None).filter(
            keep
        )
        if other.spec.rows is None:
            other.evict(other_final_ts)
        return out, row_idx[keep]

    def process(self, t: StreamTuple) -> List[StreamTuple]:
        """Unsupported: a join needs to know which side ``t`` arrives on."""
        raise TypeError("WindowJoin requires process_side(alias, tuple)")

    def process_batch(self, batch: TupleBatch) -> Tuple[TupleBatch, np.ndarray]:
        """Unsupported: a join needs to know which side a batch arrives on."""
        raise TypeError("WindowJoin requires process_batch_side(alias, batch)")
