"""Continuous operators: selection, projection, window band-join.

The engine is push-based: every operator exposes ``process(tuple) ->
list of output tuples``.  Join outputs use qualified attribute names
(``Alias.attr``), matching how the paper's merged queries and split
subscriptions address result-stream attributes.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

from ..query.ast import AttrRef, Comparison, Literal, Window
from .tuples import StreamTuple
from .windows import SlidingWindow

__all__ = ["Operator", "Select", "Project", "WindowJoin", "evaluate_comparison"]


def _operand_value(operand, values: Dict[str, Any]):
    if isinstance(operand, Literal):
        return operand.value
    return values.get(str(operand))


def evaluate_comparison(c: Comparison, values: Dict[str, Any]) -> bool:
    """Evaluate a predicate over qualified values; missing attrs fail."""
    left = _operand_value(c.left, values)
    right = _operand_value(c.right, values)
    if left is None or right is None:
        return False
    if c.op == "==":
        return left == right
    if c.op == "!=":
        return left != right
    if c.op == "<":
        return left < right
    if c.op == "<=":
        return left <= right
    if c.op == ">":
        return left > right
    if c.op == ">=":
        return left >= right
    raise AssertionError(c.op)


class Operator:
    """Base class; subclasses implement :meth:`process`."""

    def process(self, t: StreamTuple) -> List[StreamTuple]:
        """Consume one tuple; return zero or more output tuples."""
        raise NotImplementedError

    #: number of tuples this operator inspected (CPU accounting)
    inspected: int = 0


class Select(Operator):
    """Filter by a conjunction of predicates over qualified names."""

    def __init__(self, predicates: Sequence[Comparison], out_stream: str = ""):
        self.predicates = list(predicates)
        self.out_stream = out_stream
        self.inspected = 0

    def process(self, t: StreamTuple) -> List[StreamTuple]:
        """Pass ``t`` through iff every predicate holds."""
        self.inspected += 1
        values = dict(t.values)
        if all(evaluate_comparison(p, values) for p in self.predicates):
            out = t if not self.out_stream else StreamTuple(self.out_stream, t.values)
            return [out]
        return []


class Project(Operator):
    """Keep only the given qualified attributes (always keeps timestamps)."""

    def __init__(self, attributes: Optional[Sequence[str]], out_stream: str = ""):
        self.attributes = None if attributes is None else set(attributes)
        self.out_stream = out_stream
        self.inspected = 0

    def process(self, t: StreamTuple) -> List[StreamTuple]:
        """Project ``t`` onto the selected attributes (keeps timestamps)."""
        self.inspected += 1
        if self.attributes is None:
            values = dict(t.values)
        else:
            values = {
                k: v
                for k, v in t.values.items()
                if k in self.attributes
                or k.endswith("timestamp")
                or k.endswith("timestamp_lag")
            }
        stream = self.out_stream or t.stream
        return [StreamTuple(stream, values)]


class WindowJoin(Operator):
    """Two-way sliding-window join (the paper's only join shape).

    Each input tuple joins against the *other* side's current window
    extent; matched pairs are emitted with qualified attribute names plus
    a top-level ``timestamp`` (the newer of the two).  Predicates may
    reference ``left_alias.attr`` and ``right_alias.attr``.
    """

    def __init__(
        self,
        left_alias: str,
        left_window: Window,
        right_alias: str,
        right_window: Window,
        predicates: Sequence[Comparison],
        out_stream: str,
    ):
        self.left_alias = left_alias
        self.right_alias = right_alias
        self.left_window = SlidingWindow(left_window)
        self.right_window = SlidingWindow(right_window)
        self.predicates = list(predicates)
        self.out_stream = out_stream
        self.inspected = 0

    def state_size(self) -> int:
        """Tuples currently buffered across both join windows."""
        return len(self.left_window) + len(self.right_window)

    def process_side(self, alias: str, t: StreamTuple) -> List[StreamTuple]:
        """Insert ``t`` on its side and join it against the other window."""
        if alias == self.left_alias:
            own, other = self.left_window, self.right_window
            own_alias, other_alias = self.left_alias, self.right_alias
        elif alias == self.right_alias:
            own, other = self.right_window, self.left_window
            own_alias, other_alias = self.right_alias, self.left_alias
        else:
            raise KeyError(f"unknown join input {alias!r}")
        own.insert(t)
        out: List[StreamTuple] = []
        for partner in other.contents(now=t.timestamp):
            self.inspected += 1
            values = t.qualify(own_alias)
            values.update(partner.qualify(other_alias))
            values["timestamp"] = t.timestamp
            # per-alias lag relative to the result timestamp: lets split
            # subscriptions re-apply a *smaller* window downstream
            values[f"{own_alias}.timestamp_lag"] = 0.0
            values[f"{other_alias}.timestamp_lag"] = t.timestamp - partner.timestamp
            if all(evaluate_comparison(p, values) for p in self.predicates):
                out.append(StreamTuple(self.out_stream, values))
        return out

    def process(self, t: StreamTuple) -> List[StreamTuple]:
        """Unsupported: a join needs to know which side ``t`` arrives on."""
        raise TypeError("WindowJoin requires process_side(alias, tuple)")
