"""Continuous-query engine (GSN substitute) and synthetic sensor data."""

from .executor import Engine
from .operators import (
    Project,
    Select,
    WindowJoin,
    evaluate_comparison,
    evaluate_predicates_batch,
)
from .plans import QueryPlan, compile_query
from .sensors import SensorFleet, SensorStation
from .tuples import Schema, StreamTuple, TupleBatch
from .windows import ColumnWindow, SlidingWindow

__all__ = [
    "Engine",
    "QueryPlan",
    "compile_query",
    "Select",
    "Project",
    "WindowJoin",
    "evaluate_comparison",
    "evaluate_predicates_batch",
    "Schema",
    "StreamTuple",
    "TupleBatch",
    "SlidingWindow",
    "ColumnWindow",
    "SensorFleet",
    "SensorStation",
]
