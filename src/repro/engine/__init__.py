"""Continuous-query engine (GSN substitute) and synthetic sensor data."""

from .executor import Engine
from .operators import Project, Select, WindowJoin, evaluate_comparison
from .plans import QueryPlan, compile_query
from .sensors import SensorFleet, SensorStation
from .tuples import Schema, StreamTuple
from .windows import SlidingWindow

__all__ = [
    "Engine",
    "QueryPlan",
    "compile_query",
    "Select",
    "Project",
    "WindowJoin",
    "evaluate_comparison",
    "Schema",
    "StreamTuple",
    "SlidingWindow",
    "SensorFleet",
    "SensorStation",
]
