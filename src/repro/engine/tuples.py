"""Stream tuples and schemas for the continuous-query engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

__all__ = ["Schema", "StreamTuple"]


@dataclass(frozen=True)
class Schema:
    """Attribute names of a stream; every tuple carries a ``timestamp``."""

    stream: str
    attributes: Tuple[str, ...]

    def __post_init__(self):
        if "timestamp" not in self.attributes:
            object.__setattr__(
                self, "attributes", self.attributes + ("timestamp",)
            )

    def validate(self, values: Mapping[str, Any]) -> None:
        """Raise ``ValueError`` if ``values`` has non-schema attributes."""
        unknown = set(values) - set(self.attributes)
        if unknown:
            raise ValueError(
                f"attributes {sorted(unknown)} not in schema of {self.stream}"
            )


@dataclass(frozen=True)
class StreamTuple:
    """One element of a stream.

    ``values`` always contains ``timestamp`` (seconds).  Joined tuples use
    qualified names (``Alias.attr``) produced by :func:`qualify`.
    """

    stream: str
    values: Mapping[str, Any]

    @property
    def timestamp(self) -> float:
        """The tuple's timestamp in seconds."""
        return float(self.values["timestamp"])

    def get(self, attr: str, default: Any = None) -> Any:
        """Attribute lookup with a default, like ``dict.get``."""
        return self.values.get(attr, default)

    def qualify(self, alias: str) -> Dict[str, Any]:
        """Values keyed as ``alias.attr`` (for join outputs)."""
        return {f"{alias}.{k}": v for k, v in self.values.items()}
