"""Stream tuples, schemas, and columnar tuple batches.

Two representations of stream data coexist:

* :class:`StreamTuple` -- one row as a ``dict`` (the scalar reference
  path, unchanged semantics since the seed);
* :class:`TupleBatch` -- many rows of one stream as numpy column arrays
  (the batch fast path).  Converters are bit-faithful: a column whose
  values are all Python ``int``/``float``/``bool`` round-trips through
  the matching numpy dtype, anything else (strings, mixed types) through
  an ``object`` array holding the original objects.  Rows missing an
  attribute are tracked in per-column presence masks so
  :meth:`TupleBatch.to_tuples` reproduces the exact per-row mappings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Schema", "StreamTuple", "TupleBatch"]


@dataclass(frozen=True)
class Schema:
    """Attribute names of a stream; every tuple carries a ``timestamp``."""

    stream: str
    attributes: Tuple[str, ...]

    def __post_init__(self):
        if "timestamp" not in self.attributes:
            object.__setattr__(
                self, "attributes", self.attributes + ("timestamp",)
            )

    def validate(self, values: Mapping[str, Any]) -> None:
        """Raise ``ValueError`` if ``values`` has non-schema attributes."""
        unknown = set(values) - set(self.attributes)
        if unknown:
            raise ValueError(
                f"attributes {sorted(unknown)} not in schema of {self.stream}"
            )


@dataclass(frozen=True)
class StreamTuple:
    """One element of a stream.

    ``values`` always contains ``timestamp`` (seconds).  Joined tuples use
    qualified names (``Alias.attr``) produced by :func:`qualify`.
    """

    stream: str
    values: Mapping[str, Any]

    @property
    def timestamp(self) -> float:
        """The tuple's timestamp in seconds."""
        return float(self.values["timestamp"])

    def get(self, attr: str, default: Any = None) -> Any:
        """Attribute lookup with a default, like ``dict.get``."""
        return self.values.get(attr, default)

    def qualify(self, alias: str) -> Dict[str, Any]:
        """Values keyed as ``alias.attr`` (for join outputs)."""
        return {f"{alias}.{k}": v for k, v in self.values.items()}


#: placeholder distinguishing "attribute absent" from a stored ``None``
_MISSING = object()


def _column_array(values: List[Any]) -> np.ndarray:
    """A numpy column that round-trips the given Python values exactly.

    Homogeneous ``int``/``float``/``bool`` columns use the native dtype
    (``tolist`` restores the original Python scalars bit for bit);
    everything else falls back to an object array holding the values
    themselves.  ``bool`` is checked by exact type: it subclasses ``int``
    and must not be coerced into an int column.
    """
    kinds = {type(v) for v in values}
    try:
        if kinds == {int}:
            return np.array(values, dtype=np.int64)
        if kinds == {float}:
            return np.array(values, dtype=np.float64)
        if kinds == {bool}:
            return np.array(values, dtype=np.bool_)
    except OverflowError:
        pass  # e.g. ints beyond int64: keep the objects
    col = np.empty(len(values), dtype=object)
    col[:] = values
    return col


class TupleBatch:
    """``n`` rows of one stream, stored as per-attribute column arrays.

    ``columns`` maps attribute name to an array of length ``n``;
    ``present`` optionally maps a column name to a boolean mask marking
    rows that actually carry the attribute (columns absent from
    ``present`` are fully populated -- the fast path).  Batches are
    treated as immutable: operators build new batches sharing column
    arrays where possible (projection is column selection, filtering is
    one fancy-index per column).
    """

    __slots__ = ("stream", "columns", "present", "n")

    def __init__(
        self,
        stream: str,
        columns: Dict[str, np.ndarray],
        n: int,
        present: Optional[Dict[str, np.ndarray]] = None,
    ):
        self.stream = stream
        self.columns = columns
        self.present = present or {}
        self.n = n

    # ------------------------------------------------------------------
    # converters
    # ------------------------------------------------------------------
    @classmethod
    def from_tuples(
        cls, stream: str, tuples: Sequence[StreamTuple]
    ) -> "TupleBatch":
        """Columnarise tuples (all of ``stream``); order is preserved."""
        n = len(tuples)
        cols: Dict[str, List[Any]] = {}
        ragged = set()  # columns some row does not carry
        for i, t in enumerate(tuples):
            if t.stream != stream:
                raise ValueError(
                    f"tuple of stream {t.stream!r} in a {stream!r} batch"
                )
            for k, v in t.values.items():
                col = cols.get(k)
                if col is None:
                    cols[k] = col = [_MISSING] * i
                    if i:
                        ragged.add(k)
                elif len(col) < i:
                    col.extend([_MISSING] * (i - len(col)))
                    ragged.add(k)
                col.append(v)
        masks: Dict[str, np.ndarray] = {}
        arrays: Dict[str, np.ndarray] = {}
        for k, col in cols.items():
            if len(col) < n:
                col.extend([_MISSING] * (n - len(col)))
                ragged.add(k)
            if k in ragged:
                masks[k] = np.array(
                    [v is not _MISSING for v in col], dtype=bool
                )
                arr = np.empty(n, dtype=object)
                arr[:] = [None if v is _MISSING else v for v in col]
                arrays[k] = arr
            else:
                arrays[k] = _column_array(col)
        return cls(stream, arrays, n, present=masks or None)

    def to_tuples(self) -> List[StreamTuple]:
        """The rows as :class:`StreamTuple`\\ s with original value types."""
        names = list(self.columns)
        if not names:
            return [StreamTuple(self.stream, {}) for _ in range(self.n)]
        cols = [self.columns[k].tolist() for k in names]
        stream = self.stream
        if not self.present:
            return [
                StreamTuple(stream, dict(zip(names, row)))
                for row in zip(*cols)
            ]
        masks = [
            None if (m := self.present.get(k)) is None else m.tolist()
            for k in names
        ]
        out: List[StreamTuple] = []
        for i in range(self.n):
            values = {}
            for k, col, mask in zip(names, cols, masks):
                if mask is None or mask[i]:
                    values[k] = col[i]
            out.append(StreamTuple(stream, values))
        return out

    # ------------------------------------------------------------------
    # cheap structural ops
    # ------------------------------------------------------------------
    def column(self, name: str) -> Optional[np.ndarray]:
        return self.columns.get(name)

    @property
    def timestamps(self) -> np.ndarray:
        """The ``timestamp`` column as float64 (every stream carries it)."""
        return np.asarray(self.columns["timestamp"], dtype=np.float64)

    def with_stream(self, stream: str) -> "TupleBatch":
        """Same rows under another stream name (no copying)."""
        if stream == self.stream:
            return self
        return TupleBatch(stream, self.columns, self.n, self.present or None)

    def take(self, idx: np.ndarray) -> "TupleBatch":
        """Rows at ``idx`` (an integer index array), in that order."""
        cols = {k: col[idx] for k, col in self.columns.items()}
        present = {k: m[idx] for k, m in self.present.items()}
        return TupleBatch(self.stream, cols, int(len(idx)), present or None)

    def filter(self, mask: np.ndarray) -> "TupleBatch":
        """Rows where the boolean ``mask`` holds, preserving order."""
        if mask.all():
            return self
        cols = {k: col[mask] for k, col in self.columns.items()}
        present = {k: m[mask] for k, m in self.present.items()}
        return TupleBatch(
            self.stream, cols, int(np.count_nonzero(mask)), present or None
        )

    def select_columns(self, keep) -> "TupleBatch":
        """Batch with only the columns accepted by predicate ``keep``."""
        cols = {k: c for k, c in self.columns.items() if keep(k)}
        present = {k: m for k, m in self.present.items() if k in cols}
        return TupleBatch(self.stream, cols, self.n, present or None)

    @classmethod
    def empty(cls, stream: str) -> "TupleBatch":
        return cls(stream, {}, 0)

    @classmethod
    def concat(cls, stream: str, batches: Iterable["TupleBatch"]) -> "TupleBatch":
        """Concatenate batches row-wise (attribute union, presence kept).

        Batches sharing one column layout (same attributes and dtypes, no
        presence masks) concatenate array-wise; mismatched layouts fall
        back to the tuple round trip, which handles attribute unions and
        dtype promotion by construction.
        """
        batches = [b for b in batches if b.n]
        if not batches:
            return cls.empty(stream)
        if len(batches) == 1:
            return batches[0].with_stream(stream)
        first = batches[0]
        aligned = not first.present and all(
            not b.present
            and list(b.columns) == list(first.columns)
            and all(
                b.columns[k].dtype == first.columns[k].dtype
                for k in first.columns
            )
            for b in batches[1:]
        )
        if aligned:
            cols = {
                k: np.concatenate([b.columns[k] for b in batches])
                for k in first.columns
            }
            return cls(stream, cols, sum(b.n for b in batches))
        return cls.from_tuples(
            stream,
            [t for b in batches for t in b.with_stream(stream).to_tuples()],
        )

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TupleBatch({self.stream!r}, n={self.n}, "
            f"columns={sorted(self.columns)})"
        )
