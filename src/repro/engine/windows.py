"""Sliding windows over streams.

Time windows keep tuples with ``timestamp >= now - seconds`` (``[Now]`` is
``seconds = 0``: only tuples with the current timestamp).  Row windows
keep the last ``rows`` tuples.  Eviction is incremental: windows are
deques with monotone timestamps.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, List, Optional

from ..query.ast import Window
from .tuples import StreamTuple

__all__ = ["SlidingWindow"]


class SlidingWindow:
    """The materialised extent of one window over one stream."""

    def __init__(self, spec: Window):
        self.spec = spec
        self._buf: Deque[StreamTuple] = deque()
        self._last_ts: Optional[float] = None

    def insert(self, t: StreamTuple) -> None:
        """Append a tuple (timestamps must be non-decreasing)."""
        if self._last_ts is not None and t.timestamp < self._last_ts:
            raise ValueError(
                f"out-of-order tuple: {t.timestamp} after {self._last_ts}"
            )
        self._last_ts = t.timestamp
        self._buf.append(t)
        if self.spec.rows is not None:
            while len(self._buf) > self.spec.rows:
                self._buf.popleft()
        else:
            self.evict(t.timestamp)

    def evict(self, now: float) -> None:
        """Drop tuples that left a time window as of ``now``."""
        if self.spec.rows is not None:
            return
        horizon = now - self.spec.seconds
        while self._buf and self._buf[0].timestamp < horizon:
            self._buf.popleft()

    def contents(self, now: Optional[float] = None) -> List[StreamTuple]:
        """Current window extent (evicting up to ``now`` first)."""
        if now is not None:
            self.evict(now)
        return list(self._buf)

    def __len__(self) -> int:
        return len(self._buf)
