"""Sliding windows over streams.

Time windows keep tuples with ``timestamp >= now - seconds`` (``[Now]`` is
``seconds = 0``: only tuples with the current timestamp).  Row windows
keep the last ``rows`` tuples.  Eviction is incremental: windows are
deques with monotone timestamps.

Two implementations share those semantics:

* :class:`SlidingWindow` -- a deque of :class:`StreamTuple`\\ s, the
  scalar reference path;
* :class:`ColumnWindow` -- the same extent as numpy column arrays with a
  start offset (vectorised time/row eviction, amortised append), backing
  the batch join path.  Its state after inserting a batch is element-wise
  identical to a :class:`SlidingWindow` fed the same rows one at a time.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, Iterator, List, Optional

import numpy as np

from ..query.ast import Window
from .tuples import StreamTuple, TupleBatch

__all__ = ["SlidingWindow", "ColumnWindow"]


class SlidingWindow:
    """The materialised extent of one window over one stream."""

    def __init__(self, spec: Window):
        self.spec = spec
        self._buf: Deque[StreamTuple] = deque()
        self._last_ts: Optional[float] = None
        #: total tuples dropped from this extent (row cap or horizon)
        self.evicted: int = 0

    def clone(self) -> "SlidingWindow":
        """An independent copy of the extent (tuples are shared, the
        deque is not), for checkpoint snapshots."""
        out = SlidingWindow(self.spec)
        out._buf = deque(self._buf)
        out._last_ts = self._last_ts
        out.evicted = self.evicted
        return out

    def insert(self, t: StreamTuple) -> None:
        """Append a tuple (timestamps must be non-decreasing)."""
        if self._last_ts is not None and t.timestamp < self._last_ts:
            raise ValueError(
                f"out-of-order tuple: {t.timestamp} after {self._last_ts}"
            )
        self._last_ts = t.timestamp
        self._buf.append(t)
        if self.spec.rows is not None:
            while len(self._buf) > self.spec.rows:
                self._buf.popleft()
                self.evicted += 1
        else:
            self.evict(t.timestamp)

    def evict(self, now: float) -> None:
        """Drop tuples that left a time window as of ``now``."""
        if self.spec.rows is not None:
            return
        horizon = now - self.spec.seconds
        while self._buf and self._buf[0].timestamp < horizon:
            self._buf.popleft()
            self.evicted += 1

    def contents(self, now: Optional[float] = None) -> List[StreamTuple]:
        """Current window extent (evicting up to ``now`` first)."""
        if now is not None:
            self.evict(now)
        return list(self._buf)

    def __iter__(self) -> Iterator[StreamTuple]:
        """Iterate the extent oldest-first without copying the deque.

        Callers must not insert/evict mid-iteration; the join probe loop
        (one :meth:`evict`, then a read-only walk) satisfies that.
        """
        return iter(self._buf)

    def __len__(self) -> int:
        return len(self._buf)


class ColumnWindow:
    """A sliding-window extent stored as columns (the batch join state).

    Rows live in numpy arrays of capacity >= the live extent; ``_start``
    and ``_end`` delimit the live region, so eviction is a pointer bump
    and appending amortises to O(1) per row via capacity doubling.
    Columns follow the union of attributes seen so far; rows missing an
    attribute are tracked in per-column presence masks (object columns),
    mirroring :class:`~repro.engine.tuples.TupleBatch`.
    """

    def __init__(self, spec: Window):
        self.spec = spec
        self._cols: Dict[str, np.ndarray] = {}
        self._present: Dict[str, np.ndarray] = {}
        self._ts = np.empty(0, dtype=np.float64)
        self._start = 0
        self._end = 0
        self._last_ts: Optional[float] = None
        #: total rows dropped from this extent (row cap or horizon)
        self.evicted: int = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._end - self._start

    @property
    def timestamps(self) -> np.ndarray:
        """Timestamps of the live extent, oldest first (a view)."""
        return self._ts[self._start:self._end]

    def column(self, name: str) -> Optional[np.ndarray]:
        """Live extent of one column (a view), or None if never seen."""
        col = self._cols.get(name)
        return None if col is None else col[self._start:self._end]

    def presence(self, name: str) -> Optional[np.ndarray]:
        """Live presence mask of a ragged column (None = fully present)."""
        mask = self._present.get(name)
        return None if mask is None else mask[self._start:self._end]

    def attributes(self) -> List[str]:
        return list(self._cols)

    def clone(self) -> "ColumnWindow":
        """An independent copy of the columnar state, capacity included,
        so the clone's future growth/eviction behaviour is identical."""
        out = ColumnWindow(self.spec)
        out._cols = {k: c.copy() for k, c in self._cols.items()}
        out._present = {k: m.copy() for k, m in self._present.items()}
        out._ts = self._ts.copy()
        out._start = self._start
        out._end = self._end
        out._last_ts = self._last_ts
        out.evicted = self.evicted
        return out

    # ------------------------------------------------------------------
    def _grow(self, extra: int) -> None:
        """Compact the dead prefix / grow so ``extra`` rows fit at the tail."""
        if self._end + extra <= len(self._ts):
            return
        live = self._end - self._start
        new_cap = max(16, 2 * (live + extra))
        sl = slice(self._start, self._end)

        def moved(arr: np.ndarray) -> np.ndarray:
            out = np.empty(new_cap, dtype=arr.dtype)
            out[:live] = arr[sl]
            return out

        self._ts = moved(self._ts)
        self._cols = {k: moved(c) for k, c in self._cols.items()}
        self._present = {k: moved(m) for k, m in self._present.items()}
        self._start, self._end = 0, live

    def _as_object(self, name: str) -> None:
        """Demote a typed column to object dtype (attribute went ragged)."""
        col = self._cols[name]
        out = np.empty(len(col), dtype=object)
        out[self._start:self._end] = col[self._start:self._end].tolist()
        self._cols[name] = out

    def append_batch(self, batch: TupleBatch) -> None:
        """Insert ``batch``'s rows (non-decreasing timestamps), evicting.

        Mirrors ``SlidingWindow.insert`` row by row: row windows trim to
        the last ``rows`` entries, time windows evict up to the batch's
        final timestamp.
        """
        n = batch.n
        if n == 0:
            return
        ts = batch.timestamps
        if n > 1 and bool(np.any(np.diff(ts) < 0)):
            bad = int(np.argmax(np.diff(ts) < 0))
            raise ValueError(
                f"out-of-order tuple: {ts[bad + 1]} after {ts[bad]}"
            )
        if self._last_ts is not None and ts[0] < self._last_ts:
            raise ValueError(
                f"out-of-order tuple: {ts[0]} after {self._last_ts}"
            )
        self._last_ts = float(ts[-1])
        self._grow(n)
        live = self._end - self._start
        sl = slice(self._end, self._end + n)
        self._ts[sl] = ts
        for k, incoming in batch.columns.items():
            col = self._cols.get(k)
            if col is None:
                if live:
                    # new attribute: back-fill absent for the existing rows
                    col = np.empty(len(self._ts), dtype=object)
                    col[self._start:self._end] = None
                    self._present[k] = np.zeros(len(self._ts), dtype=bool)
                else:
                    col = np.empty(len(self._ts), dtype=incoming.dtype)
                self._cols[k] = col
            elif col.dtype != incoming.dtype and col.dtype != object:
                self._as_object(k)
                col = self._cols[k]
            if col.dtype == object and incoming.dtype != object:
                col[sl] = incoming.tolist()
            else:
                col[sl] = incoming
            in_mask = batch.present.get(k)
            mask = self._present.get(k)
            if mask is None and in_mask is not None:
                self._present[k] = mask = np.ones(len(self._ts), dtype=bool)
            if mask is not None:
                mask[sl] = True if in_mask is None else in_mask
        for k in self._cols:
            if k not in batch.columns:
                # attribute absent from the whole batch
                if self._cols[k].dtype != object:
                    self._as_object(k)
                mask = self._present.get(k)
                if mask is None:
                    self._present[k] = mask = np.ones(
                        len(self._ts), dtype=bool
                    )
                self._cols[k][sl] = None
                mask[sl] = False
        self._end += n
        if self.spec.rows is not None:
            excess = (self._end - self._start) - self.spec.rows
            if excess > 0:
                self._start += excess
                self.evicted += excess
        else:
            self.evict(float(ts[-1]))

    def evict(self, now: float) -> None:
        """Drop rows that left a time window as of ``now``."""
        if self.spec.rows is not None:
            return
        horizon = now - self.spec.seconds
        dropped = int(
            np.searchsorted(
                self._ts[self._start:self._end], horizon, side="left"
            )
        )
        self._start += dropped
        self.evicted += dropped

    def to_tuples(self, stream: str) -> List[StreamTuple]:
        """The live extent as scalar tuples (state handoff, debugging)."""
        cols = {
            k: self._cols[k][self._start:self._end] for k in self._cols
        }
        present = {
            k: m[self._start:self._end] for k, m in self._present.items()
        }
        return TupleBatch(
            stream, cols, self._end - self._start, present or None
        ).to_tuples()
