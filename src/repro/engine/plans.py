"""Compile a parsed :class:`~repro.query.ast.Query` into an operator plan.

Plan shape (the paper's query class): per-input selection pushed down,
then a window join for two-input queries, then projection.  Single-input
queries skip the join.  The plan exposes ``push(alias, tuple)`` and
returns result tuples named after the query's result stream.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..query.ast import AttrRef, Query
from .operators import Project, Select, WindowJoin
from .tuples import StreamTuple, TupleBatch

__all__ = ["QueryPlan", "compile_query"]


class QueryPlan:
    """An executable plan for one continuous query."""

    def __init__(
        self,
        query: Query,
        selects: Dict[str, Select],
        join: Optional[WindowJoin],
        project: Project,
        result_stream: str,
    ):
        self.query = query
        self.selects = selects
        self.join = join
        self.project = project
        self.result_stream = result_stream
        self.results_emitted = 0

    def aliases(self) -> List[str]:
        """Input aliases the plan accepts in :meth:`push`."""
        return self.query.aliases()

    def push(self, alias: str, t: StreamTuple) -> List[StreamTuple]:
        """Feed one input tuple; returns result tuples (possibly empty)."""
        if alias not in self.selects:
            raise KeyError(f"query {self.query.name!r} has no input {alias!r}")
        survivors = self.selects[alias].process(t)
        out: List[StreamTuple] = []
        for s in survivors:
            if self.join is not None:
                for joined in self.join.process_side(alias, s):
                    out.extend(self.project.process(joined))
            else:
                qualified = StreamTuple(
                    self.result_stream,
                    {**s.qualify(alias), "timestamp": s.timestamp},
                )
                out.extend(self.project.process(qualified))
        self.results_emitted += len(out)
        return out

    def push_batch(
        self, alias: str, batch: TupleBatch
    ) -> Tuple[TupleBatch, np.ndarray]:
        """Feed a batch of input tuples on ``alias``; columnar fast path.

        Returns the result batch plus an index array mapping each result
        row to the input row that produced it (non-decreasing).  Output
        rows, their order, and every operator's ``inspected`` counter are
        bit-identical to pushing the rows one at a time through
        :meth:`push`.
        """
        if alias not in self.selects:
            raise KeyError(f"query {self.query.name!r} has no input {alias!r}")
        survivors, rows = self.selects[alias].process_batch(batch)
        if self.join is not None:
            joined, joined_rows = self.join.process_batch_side(alias, survivors)
            out, _ = self.project.process_batch(joined)
            row_index = rows[joined_rows]
        else:
            qualified_cols = {
                f"{alias}.{k}": col for k, col in survivors.columns.items()
            }
            qualified_present = {
                f"{alias}.{k}": m for k, m in survivors.present.items()
            }
            qualified_cols["timestamp"] = survivors.timestamps if survivors.n else \
                np.empty(0, dtype=np.float64)
            qualified = TupleBatch(
                self.result_stream,
                qualified_cols,
                survivors.n,
                qualified_present or None,
            )
            out, _ = self.project.process_batch(qualified)
            row_index = rows
        self.results_emitted += out.n
        return out, row_index

    def checkpoint(self) -> "QueryPlan":
        """A deep, adoptable snapshot of this plan and its window state.

        The snapshot shares nothing mutable with the running plan --
        window extents (deque and columnar), predicate lists, and
        ``inspected``/``results_emitted`` counters are all duplicated --
        so it can be shipped to a recovery host and handed straight to
        ``Engine.adopt_plan`` while the original keeps executing.  The
        AST ``query`` is immutable and stays shared.
        """
        selects = {alias: s.clone() for alias, s in self.selects.items()}
        join = None if self.join is None else self.join.clone()
        out = QueryPlan(
            self.query, selects, join, self.project.clone(), self.result_stream
        )
        out.results_emitted = self.results_emitted
        return out

    def widen_to(self, query: Query) -> None:
        """Widen this plan *in place* to a superset ``query``.

        The shared execution plane grows a group's merged query when a
        member joins; recompiling would discard the join-window state the
        existing members still need, so instead the operators are widened
        where they stand:

        * per-alias :class:`~repro.engine.operators.Select` predicates are
          replaced by the superset query's (weaker) conjunction;
        * join window specs grow (evictions simply stop earlier from the
          next probe on -- rows already evicted under the narrower window
          predate the joining member and are never needed by it);
        * the projection becomes the union of the two select lists.

        Only widening is legal: ``query`` must contain the current plan
        query, keep its name (the engine registry key) and keep the same
        bindings/join shape.
        """
        from ..query.containment import contains

        if query.name != self.query.name:
            raise ValueError("widen_to must preserve the plan's query name")
        if not contains(query, self.query):
            raise ValueError("widen_to requires a superset query")
        for b in query.bindings:
            preds = [
                c for c in query.selections()
                if isinstance(c.left, AttrRef) and c.left.stream == b.alias
            ]
            self.selects[b.alias].predicates = preds
        if self.join is not None:
            # look bindings up by alias -- a superset query built by
            # merging may list them in the other order
            for alias, win, cols in (
                (self.join.left_alias, self.join.left_window, self.join.left_cols),
                (self.join.right_alias, self.join.right_window, self.join.right_cols),
            ):
                binding = query.binding(alias)
                win.spec = binding.window
                if cols is not None:
                    cols.spec = binding.window
        if self.project.attributes is not None:
            attrs: Optional[List[str]] = []
            for b in query.bindings:
                selected = query.projected_attrs(b.alias)
                if selected is None:
                    attrs = None
                    break
                attrs.extend(f"{b.alias}.{a}" for a in selected)
            if attrs is None:
                self.project.attributes = None
            else:
                self.project.attributes |= set(attrs)
        self.query = query

    def cpu_cost(self) -> int:
        """Tuples inspected across all operators (load estimation input)."""
        total = sum(s.inspected for s in self.selects.values())
        if self.join is not None:
            total += self.join.inspected
        total += self.project.inspected
        return total

    def operator_counters(self) -> Dict[str, int]:
        """Per-operator monotone counters, for the observability layer.

        Counters only (never gauges), so deltas between two snapshots of
        a running plan are non-negative — the span recorder diffs them
        to attribute operator work to a tracked tuple's delivery.
        """
        out: Dict[str, int] = {}
        for alias in sorted(self.selects):
            out[f"select.{alias}.inspected"] = self.selects[alias].inspected
        if self.join is not None:
            out["join.inspected"] = self.join.inspected
            out["join.evicted"] = self.join.evicted()
        out["project.inspected"] = self.project.inspected
        out["results_emitted"] = self.results_emitted
        return out

    def state_size(self) -> int:
        """Tuples held in operator state (join windows); 0 without a join."""
        return self.join.state_size() if self.join is not None else 0


def compile_query(query: Query, result_stream: Optional[str] = None) -> QueryPlan:
    """Build the operator plan for ``query``."""
    if not 1 <= len(query.bindings) <= 2:
        raise ValueError("engine supports 1- and 2-way queries")
    result_stream = result_stream or (query.name or "result")

    selects: Dict[str, Select] = {}
    for b in query.bindings:
        preds = [
            c for c in query.selections()
            if isinstance(c.left, AttrRef) and c.left.stream == b.alias
        ]
        selects[b.alias] = _bare_select(preds, b.alias)

    join = None
    if len(query.bindings) == 2:
        left, right = query.bindings
        join = WindowJoin(
            left_alias=left.alias,
            left_window=left.window,
            right_alias=right.alias,
            right_window=right.window,
            predicates=list(query.joins()),
            out_stream=result_stream,
        )

    # projection over qualified names
    attrs: Optional[List[str]] = []
    for b in query.bindings:
        selected = query.projected_attrs(b.alias)
        if selected is None:
            attrs = None
            break
        attrs.extend(f"{b.alias}.{a}" for a in selected)
    project = Project(attrs, out_stream=result_stream)
    return QueryPlan(query, selects, join, project, result_stream)


def _bare_select(predicates, alias: str) -> Select:
    """A Select evaluating ``Alias.attr OP const`` on unqualified tuples."""
    from .operators import evaluate_comparison, evaluate_predicates_batch

    class _AliasedSelect(Select):
        def process(self, t: StreamTuple):
            self.inspected += 1
            if not self.predicates:
                return [t]
            values = {f"{alias}.{k}": v for k, v in t.values.items()}
            if all(evaluate_comparison(p, values) for p in self.predicates):
                return [t]
            return []

        def process_batch(self, batch: TupleBatch):
            self.inspected += batch.n
            if not self.predicates:
                return batch, np.arange(batch.n)
            cols = {f"{alias}.{k}": c for k, c in batch.columns.items()}
            present = {f"{alias}.{k}": m for k, m in batch.present.items()}
            mask = evaluate_predicates_batch(
                self.predicates, cols, batch.n, present
            )
            return batch.filter(mask), np.flatnonzero(mask)

    return _AliasedSelect(predicates)
