"""Synthetic SensorScope-like sensor readings.

The paper's prototype study replays real readings from 100 SensorScope
sensors (snow-height / weather stations at EPFL).  Those traces are not
redistributable, so this module generates statistically similar synthetic
readings: per-station baselines, smooth diurnal variation, random-walk
drift and occasional spikes -- enough structure that selections
(``snowHeight >= 10``) and band joins on timestamps behave like they do on
the real data.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from .tuples import Schema, StreamTuple

__all__ = ["SensorStation", "SensorFleet"]

SENSOR_ATTRIBUTES = (
    "stationId",
    "snowHeight",
    "temperature",
    "windSpeed",
    "timestamp",
)


@dataclass
class SensorStation:
    """One synthetic station emitting periodic readings."""

    station_id: int
    stream: str
    period: float = 60.0
    snow_base: float = 20.0
    temp_base: float = -2.0
    wind_base: float = 3.0
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False)
    _snow_drift: float = field(default=0.0, init=False, repr=False)

    def __post_init__(self):
        self._rng = random.Random(self.seed ^ (self.station_id * 2654435761))

    @property
    def schema(self) -> Schema:
        """The station's stream schema (standard sensor attributes)."""
        return Schema(stream=self.stream, attributes=SENSOR_ATTRIBUTES)

    def reading(self, timestamp: float) -> StreamTuple:
        """One reading at ``timestamp`` (seconds since epoch)."""
        day_phase = 2.0 * math.pi * (timestamp % 86400.0) / 86400.0
        self._snow_drift += self._rng.gauss(0.0, 0.05)
        snow = max(
            0.0,
            self.snow_base
            + 3.0 * math.sin(day_phase)
            + self._snow_drift
            + self._rng.gauss(0.0, 0.3),
        )
        temp = self.temp_base + 5.0 * math.sin(day_phase - math.pi / 2) + self._rng.gauss(0.0, 0.5)
        wind = max(0.0, self.wind_base + self._rng.gauss(0.0, 1.0))
        if self._rng.random() < 0.01:  # occasional gust/dump spike
            snow += self._rng.uniform(5.0, 15.0)
            wind += self._rng.uniform(5.0, 10.0)
        return StreamTuple(
            self.stream,
            {
                "stationId": self.station_id,
                "snowHeight": round(snow, 2),
                "temperature": round(temp, 2),
                "windSpeed": round(wind, 2),
                "timestamp": timestamp,
            },
        )

    def trace(self, start: float, count: int) -> List[StreamTuple]:
        """``count`` consecutive readings starting at ``start``."""
        return [self.reading(start + i * self.period) for i in range(count)]


@dataclass
class SensorFleet:
    """A set of stations; generates interleaved timestamp-ordered traces."""

    stations: List[SensorStation]

    @classmethod
    def build(
        cls,
        count: int,
        stream_prefix: str = "Station",
        period: float = 60.0,
        seed: int = 0,
    ) -> "SensorFleet":
        """``count`` stations with randomised per-station baselines."""
        rng = random.Random(seed)
        stations = [
            SensorStation(
                station_id=i,
                stream=f"{stream_prefix}{i + 1}",
                period=period,
                snow_base=rng.uniform(5.0, 50.0),
                temp_base=rng.uniform(-10.0, 5.0),
                wind_base=rng.uniform(0.5, 8.0),
                seed=seed,
            )
            for i in range(count)
        ]
        return cls(stations=stations)

    def streams(self) -> List[str]:
        """Stream names of all stations, in station order."""
        return [s.stream for s in self.stations]

    def trace(self, start: float, steps: int) -> List[StreamTuple]:
        """``steps`` rounds of readings from every station, time-ordered."""
        out: List[StreamTuple] = []
        for i in range(steps):
            ts = start + i * self.stations[0].period
            for station in self.stations:
                out.append(station.reading(ts))
        return out
