"""Two-phase operator-placement baseline and the prototype-study workload."""

from .operator_graph import (
    OperatorGraph,
    OpVertex,
    PrototypeQuery,
    build_operator_graph,
)
from .placement import PlacementResult, place_operators, placement_cost
from .prototype import (
    PrototypeWorkload,
    cosmos_cost,
    generate_prototype_workload,
)

__all__ = [
    "OpVertex",
    "OperatorGraph",
    "PrototypeQuery",
    "build_operator_graph",
    "PlacementResult",
    "place_operators",
    "placement_cost",
    "PrototypeWorkload",
    "generate_prototype_workload",
    "cosmos_cost",
]
