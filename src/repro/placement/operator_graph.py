"""Global shared operator graph (the two-phase baseline, phase 1).

The operator-placement comparator of Section 4.2 first collects *all*
queries at a central site and builds one global operator graph with
NiagaraCQ-style sharing ([12]): identical selections over the same stream
are evaluated once, and each query's join consumes the shared filtered
streams.  Vertices carry output-rate estimates so phase 2 (network-aware
placement, [3]) can weigh edges by rate.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "OpVertex",
    "OperatorGraph",
    "PrototypeQuery",
    "build_operator_graph",
]

_op_ids = itertools.count()


@dataclass
class PrototypeQuery:
    """A prototype-study query (Section 4.2's random query generator).

    ``inputs`` are stream names; ``selections`` are hashable predicate
    descriptors (stream, attr, op, value); joins are on timestamps.
    """

    query_id: int
    proxy: int
    inputs: Tuple[str, ...]
    selections: Tuple[Tuple[str, str, str, float], ...]
    #: per-input rate (bytes/s)
    input_rates: Dict[str, float]
    #: estimated selectivity of each selection predicate
    selectivities: Dict[Tuple[str, str, str, float], float]
    #: estimated join output rate (bytes/s)
    output_rate: float = 1.0


@dataclass
class OpVertex:
    """One operator in the global graph."""

    op_id: int
    kind: str  # "source" | "select" | "join" | "sink"
    #: stream or predicate descriptor for display/grouping
    label: str
    #: fixed topology node for sources and sinks, else None
    pinned: Optional[int] = None
    #: output rate estimate (bytes/s)
    out_rate: float = 0.0
    #: queries this operator serves (sharing!)
    queries: List[int] = field(default_factory=list)


class OperatorGraph:
    """Directed operator graph with rate-weighted edges."""

    def __init__(self):
        self.vertices: Dict[int, OpVertex] = {}
        #: (producer, consumer) -> rate
        self.edges: Dict[Tuple[int, int], float] = {}

    def add_vertex(self, v: OpVertex) -> int:
        self.vertices[v.op_id] = v
        return v.op_id

    def add_edge(self, producer: int, consumer: int, rate: float) -> None:
        key = (producer, consumer)
        self.edges[key] = max(self.edges.get(key, 0.0), rate)

    def neighbors(self, op_id: int) -> List[Tuple[int, float]]:
        out = []
        for (a, b), rate in self.edges.items():
            if a == op_id:
                out.append((b, rate))
            elif b == op_id:
                out.append((a, rate))
        return out

    def movable(self) -> List[int]:
        return [i for i, v in self.vertices.items() if v.pinned is None]

    def operator_count(self) -> int:
        return len(self.vertices)

    def shared_selection_count(self) -> int:
        return sum(
            1
            for v in self.vertices.values()
            if v.kind == "select" and len(v.queries) > 1
        )


def _covers(outer: Tuple[str, str, str, float], inner: Tuple[str, str, str, float]) -> bool:
    """Predicate containment: every tuple passing ``inner`` passes ``outer``.

    Both predicates are on the same (stream, attr).  ``a > 5`` is covered
    by ``a > 3``; ``a < 5`` by ``a < 8``; mixed directions never cover.
    """
    _, _, op_o, val_o = outer
    _, _, op_i, val_i = inner
    if op_o in (">", ">=") and op_i in (">", ">="):
        if val_o < val_i:
            return True
        return val_o == val_i and (op_o == op_i or op_i == ">")
    if op_o in ("<", "<=") and op_i in ("<", "<="):
        if val_o > val_i:
            return True
        return val_o == val_i and (op_o == op_i or op_i == "<")
    return False


def build_operator_graph(
    queries: Sequence[PrototypeQuery],
    stream_sources: Dict[str, int],
    stream_rates: Dict[str, float],
) -> OperatorGraph:
    """Phase 1: the shared global operator graph (NiagaraCQ-style, [12]).

    * one source vertex per referenced stream (pinned to its source node);
    * one *shared* selection vertex per distinct (stream, predicate);
      queries with no selection on an input consume the source directly;
    * a new selection is stacked under the *tightest existing covering*
      selection on the same (stream, attribute), so covered predicates
      read the already-filtered stream instead of the raw source.  The
      covering search scans the existing selections -- the O(n^2) global
      graph generation the paper's Section 1.1 calls out as unscalable;
    * one join vertex per multi-input query (joins are query-private: the
      random join predicates rarely coincide, as in the paper's workload);
    * one sink vertex per query (pinned to the proxy).
    """
    g = OperatorGraph()
    source_vertex: Dict[str, int] = {}
    select_vertex: Dict[Tuple, int] = {}
    #: (stream, attr) -> list of predicate keys (for the covering scan)
    by_stream_attr: Dict[Tuple[str, str], List[Tuple]] = {}

    def source_for(stream: str) -> int:
        if stream not in source_vertex:
            vid = g.add_vertex(
                OpVertex(
                    op_id=next(_op_ids),
                    kind="source",
                    label=stream,
                    pinned=stream_sources[stream],
                    out_rate=stream_rates.get(stream, 1.0),
                )
            )
            source_vertex[stream] = vid
        return source_vertex[stream]

    for q in queries:
        upstream: Dict[str, Tuple[int, float]] = {}
        for stream in q.inputs:
            src = source_for(stream)
            rate = stream_rates.get(stream, 1.0)
            sels = [s for s in q.selections if s[0] == stream]
            if not sels:
                upstream[stream] = (src, rate)
                continue
            prev, prev_rate = src, rate
            for sel in sels:
                key = sel
                if key not in select_vertex:
                    # covering scan over all existing predicates on the
                    # same (stream, attribute): consume from the tightest
                    # covering selection instead of `prev` when that
                    # yields a lower input rate
                    feed, feed_rate = prev, prev_rate
                    for other in by_stream_attr.get((sel[0], sel[1]), []):
                        if _covers(other, sel):
                            other_rate = g.vertices[select_vertex[other]].out_rate
                            if other_rate < feed_rate:
                                feed = select_vertex[other]
                                feed_rate = other_rate
                    out_rate = min(
                        feed_rate, rate * q.selectivities.get(sel, 0.5)
                    )
                    vid = g.add_vertex(
                        OpVertex(
                            op_id=next(_op_ids),
                            kind="select",
                            label=f"sigma[{sel[1]}{sel[2]}{sel[3]}]@{stream}",
                            out_rate=out_rate,
                        )
                    )
                    select_vertex[key] = vid
                    by_stream_attr.setdefault((sel[0], sel[1]), []).append(key)
                    g.add_edge(feed, vid, feed_rate)
                vid = select_vertex[key]
                g.vertices[vid].queries.append(q.query_id)
                prev_rate = g.vertices[vid].out_rate
                prev = vid
            upstream[stream] = (prev, prev_rate)

        sink = g.add_vertex(
            OpVertex(
                op_id=next(_op_ids),
                kind="sink",
                label=f"user:{q.query_id}",
                pinned=q.proxy,
                queries=[q.query_id],
            )
        )
        if len(q.inputs) >= 2:
            join = g.add_vertex(
                OpVertex(
                    op_id=next(_op_ids),
                    kind="join",
                    label=f"join:{q.query_id}",
                    out_rate=q.output_rate,
                    queries=[q.query_id],
                )
            )
            for stream, (up, rate) in upstream.items():
                g.add_edge(up, join, rate)
            g.add_edge(join, sink, q.output_rate)
        else:
            (up, rate) = next(iter(upstream.values()))
            g.add_edge(up, sink, rate)
    return g
