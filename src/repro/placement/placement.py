"""Network-aware operator placement (the two-phase baseline, phase 2).

An iterative greedy relaxation in the spirit of Ahmad & Cetintemel ([3]):
sources and sinks are pinned; every other operator repeatedly moves to
the candidate node minimising the rate-weighted latency to its graph
neighbours, sweeping until a fixed point (or a sweep cap).  No load
balancing -- exactly the property the paper calls out when comparing
against COSMOS in Figure 11.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..obs.timing import Stopwatch
from ..topology.latency import LatencyOracle
from .operator_graph import OperatorGraph

__all__ = ["PlacementResult", "place_operators", "placement_cost"]


@dataclass
class PlacementResult:
    """Outcome of the placement phase."""

    #: op_id -> topology node
    assignment: Dict[int, int]
    cost: float
    sweeps: int
    elapsed: float


def placement_cost(
    graph: OperatorGraph,
    assignment: Dict[int, int],
    oracle: LatencyOracle,
) -> float:
    """Rate x latency over all operator-graph edges."""
    total = 0.0
    for (a, b), rate in graph.edges.items():
        total += rate * oracle(assignment[a], assignment[b])
    return total


def place_operators(
    graph: OperatorGraph,
    candidate_nodes: Sequence[int],
    oracle: LatencyOracle,
    max_sweeps: int = 10,
    seed: int = 0,
) -> PlacementResult:
    """Greedy iterative placement of the movable operators."""
    watch = Stopwatch()
    rng = random.Random(seed)
    candidates = list(candidate_nodes)

    assignment: Dict[int, int] = {}
    for op_id, v in graph.vertices.items():
        if v.pinned is not None:
            assignment[op_id] = v.pinned

    # adjacency once (graph.neighbors scans all edges -- too slow per op)
    adjacency: Dict[int, List] = {op: [] for op in graph.vertices}
    for (a, b), rate in graph.edges.items():
        adjacency[a].append((b, rate))
        adjacency[b].append((a, rate))

    movable = graph.movable()
    # initial: each movable op at the candidate closest to its heaviest
    # placed neighbour (sources are placed, so selections start near them)
    for op_id in movable:
        anchored = [
            (rate, assignment[nbr])
            for nbr, rate in adjacency[op_id]
            if nbr in assignment
        ]
        if anchored:
            _, anchor = max(anchored, key=lambda t: t[0])
            assignment[op_id] = min(candidates, key=lambda c: oracle(anchor, c))
        else:
            assignment[op_id] = rng.choice(candidates)

    sweeps = 0
    for sweep in range(max_sweeps):
        sweeps = sweep + 1
        moved = False
        order = list(movable)
        rng.shuffle(order)
        for op_id in order:
            best_node = assignment[op_id]
            best_cost = _local_cost(op_id, best_node, adjacency, assignment, oracle)
            for node in candidates:
                if node == assignment[op_id]:
                    continue
                c = _local_cost(op_id, node, adjacency, assignment, oracle)
                if c < best_cost - 1e-12:
                    best_cost = c
                    best_node = node
            if best_node != assignment[op_id]:
                assignment[op_id] = best_node
                moved = True
        if not moved:
            break

    cost = placement_cost(graph, assignment, oracle)
    return PlacementResult(
        assignment=assignment,
        cost=cost,
        sweeps=sweeps,
        elapsed=watch.elapsed(),
    )


def _local_cost(op_id, node, adjacency, assignment, oracle) -> float:
    total = 0.0
    for nbr, rate in adjacency[op_id]:
        pos = assignment.get(nbr)
        if pos is not None:
            total += rate * oracle(node, pos)
    return total
