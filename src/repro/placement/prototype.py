"""The prototype-study workload (Section 4.2).

Mirrors the PlanetLab experiment: 30 overlay nodes from different
countries/continents, 5 of them data sources with 100 sensors total, and
250-4000 random queries, each with one to three random selection
predicates on sensor readings/types and a timestamp band join, attached
to a random proxy node.

One generator yields both views of the same workload:

* :class:`~repro.placement.operator_graph.PrototypeQuery` objects for the
  two-phase operator-placement baseline, and
* :class:`~repro.query.workload.QuerySpec` objects (sensor = substream)
  plus a :class:`~repro.query.interest.SubstreamSpace` for COSMOS.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..query.interest import SubstreamSpace, mask_of
from ..query.workload import QuerySpec
from ..topology.latency import LatencyOracle
from .operator_graph import PrototypeQuery

__all__ = ["PrototypeWorkload", "generate_prototype_workload", "cosmos_cost"]

_ATTRS = ("snowHeight", "temperature", "windSpeed")
_OPS = (">", ">=", "<", "<=")


@dataclass
class PrototypeWorkload:
    """Both views of one random prototype workload."""

    sensors: List[str]
    sensor_source: Dict[str, int]
    sensor_rate: Dict[str, float]
    proto_queries: List[PrototypeQuery]
    cosmos_queries: List[QuerySpec]
    space: SubstreamSpace


def _selectivity(op: str, value: float, lo: float, hi: float) -> float:
    frac = (value - lo) / (hi - lo)
    frac = min(max(frac, 0.0), 1.0)
    return max(0.05, 1.0 - frac if op in (">", ">=") else frac)


def generate_prototype_workload(
    num_queries: int,
    sources: Sequence[int],
    nodes: Sequence[int],
    num_sensors: int = 100,
    seed: int = 0,
) -> PrototypeWorkload:
    """Random queries over ``num_sensors`` sensors split across sources."""
    rng = random.Random(seed)
    sensors = [f"Sensor{i + 1}" for i in range(num_sensors)]
    sensor_source = {
        s: sources[i * len(sources) // num_sensors]
        for i, s in enumerate(sensors)
    }
    sensor_rate = {s: rng.uniform(5.0, 20.0) for s in sensors}
    sensor_index = {s: i for i, s in enumerate(sensors)}

    space = SubstreamSpace(
        rates=np.asarray([sensor_rate[s] for s in sensors]),
        source_of=np.asarray([sensor_source[s] for s in sensors]),
    )

    proto: List[PrototypeQuery] = []
    cosmos: List[QuerySpec] = []
    for qid in range(num_queries):
        n_inputs = rng.randint(1, 2) if rng.random() < 0.3 else 2
        inputs = tuple(rng.sample(sensors, n_inputs))
        selections: List[Tuple[str, str, str, float]] = []
        selectivities: Dict[Tuple[str, str, str, float], float] = {}
        for _ in range(rng.randint(1, 3)):
            stream = rng.choice(inputs)
            attr = rng.choice(_ATTRS)
            op = rng.choice(_OPS)
            lo, hi = (0.0, 50.0) if attr != "temperature" else (-15.0, 10.0)
            # coarse value grid so that predicates repeat across queries
            # (that repetition is what NiagaraCQ-style sharing exploits)
            value = round(rng.uniform(lo, hi) / 5.0) * 5.0
            sel = (stream, attr, op, value)
            selections.append(sel)
            selectivities[sel] = _selectivity(op, value, lo, hi)
        proxy = rng.choice(list(nodes))
        input_rates = {s: sensor_rate[s] for s in inputs}
        combined_sel = 1.0
        for sel in selections:
            combined_sel *= selectivities[sel]
        output_rate = max(0.5, combined_sel * sum(input_rates.values()) * 0.2)

        proto.append(
            PrototypeQuery(
                query_id=qid,
                proxy=proxy,
                inputs=inputs,
                selections=tuple(selections),
                input_rates=input_rates,
                selectivities=selectivities,
                output_rate=output_rate,
            )
        )
        mask = mask_of(sensor_index[s] for s in inputs)
        in_rate = sum(input_rates.values())
        cosmos.append(
            QuerySpec(
                query_id=qid,
                proxy=proxy,
                mask=mask,
                group=0,
                load=0.01 * in_rate,
                result_rate=output_rate,
                state_size=rng.uniform(1.0, 50.0),
            )
        )
    return PrototypeWorkload(
        sensors=sensors,
        sensor_source=sensor_source,
        sensor_rate=sensor_rate,
        proto_queries=proto,
        cosmos_queries=cosmos,
        space=space,
    )


def cosmos_cost(
    workload: PrototypeWorkload,
    placement: Dict[int, int],
    oracle: LatencyOracle,
) -> float:
    """Communication cost of a COSMOS placement in operator-graph units.

    Per (sensor, hosting node) pair the sensor stream is delivered once,
    at the *least filtered* rate any co-located query needs (the pub/sub
    merges subscriptions conservatively); result streams flow from host to
    proxy at the query's output rate.
    """
    sensor_index = {s: i for i, s in enumerate(workload.sensors)}
    delivered: Dict[Tuple[str, int], float] = {}
    total = 0.0
    for q in workload.proto_queries:
        host = placement[q.query_id]
        for stream in q.inputs:
            sels = [s for s in q.selections if s[0] == stream]
            rate = workload.sensor_rate[stream]
            for sel in sels:
                rate *= q.selectivities[sel]
            key = (stream, host)
            delivered[key] = max(delivered.get(key, 0.0), rate)
        if host != q.proxy:
            total += q.output_rate * oracle(host, q.proxy)
    for (stream, host), rate in delivered.items():
        total += rate * oracle(workload.sensor_source[stream], host)
    return total
