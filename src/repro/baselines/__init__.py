"""Comparison baselines: naive/random/greedy/centralized distribution."""

from .simple import (
    centralized_placement,
    global_network_graph,
    global_query_graph,
    greedy_placement,
    naive_placement,
    random_placement,
)

__all__ = [
    "naive_placement",
    "random_placement",
    "greedy_placement",
    "centralized_placement",
    "global_network_graph",
    "global_query_graph",
]
