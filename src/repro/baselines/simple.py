"""Query-distribution baselines from the simulation study (Section 4.1).

* **Naive** -- every query runs at its own proxy (no optimization).
* **Random** -- every query runs at a uniformly random processor (the
  Figure 8 "Random" arrival policy).
* **Greedy** -- only the greedy initial mapping of Algorithm 2 on the
  *global* graphs.
* **Centralized** -- the full Algorithm 2 (greedy + refinement) on the
  global graphs: the paper's optimality benchmark, limited in scalability
  but a bound on what the hierarchical scheme can achieve.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from ..core.graphs import (
    DEFAULT_ALPHA,
    NetVertex,
    NetworkGraph,
    QueryGraph,
    build_query_graph,
    qvertex_from_query,
)
from ..core.mapping import greedy_mapping, map_graph
from ..query.interest import SubstreamSpace
from ..query.workload import QuerySpec
from ..topology.latency import LatencyOracle

__all__ = [
    "naive_placement",
    "random_placement",
    "global_network_graph",
    "global_query_graph",
    "greedy_placement",
    "centralized_placement",
]


def naive_placement(queries: Sequence[QuerySpec]) -> Dict[int, int]:
    """Allocate every query to its local (proxy) processor."""
    return {q.query_id: q.proxy for q in queries}


def random_placement(
    queries: Sequence[QuerySpec],
    processors: Sequence[int],
    seed: int = 0,
) -> Dict[int, int]:
    """Allocate queries to uniformly random processors."""
    rng = random.Random(seed)
    processors = list(processors)
    return {q.query_id: rng.choice(processors) for q in queries}


def global_network_graph(
    processors: Sequence[int],
    oracle: LatencyOracle,
    capabilities: Optional[Dict[int, float]] = None,
) -> NetworkGraph:
    """One network vertex per processor (the centralized view)."""
    capabilities = capabilities or {}
    return NetworkGraph(
        [
            NetVertex(
                vid=("p", p),
                site=p,
                capability=capabilities.get(p, 1.0),
                covers=frozenset([p]),
            )
            for p in processors
        ],
        oracle.__call__,
        oracle=oracle,
    )


def global_query_graph(
    queries: Sequence[QuerySpec],
    space: SubstreamSpace,
    ng: NetworkGraph,
    max_overlap_neighbors: int = 20,
) -> QueryGraph:
    """The global query graph over all atomic queries."""
    return build_query_graph(
        [qvertex_from_query(q, space) for q in queries],
        space,
        ng,
        max_overlap_neighbors,
    )


def _to_placement(qg: QueryGraph, ng: NetworkGraph, mapping) -> Dict[int, int]:
    out: Dict[int, int] = {}
    for vid, qv in qg.qverts.items():
        processor = ng.site(mapping[vid])
        for query_id in qv.members:
            out[query_id] = processor
    return out


def greedy_placement(
    queries: Sequence[QuerySpec],
    processors: Sequence[int],
    space: SubstreamSpace,
    oracle: LatencyOracle,
    alpha: float = DEFAULT_ALPHA,
    capabilities: Optional[Dict[int, float]] = None,
) -> Dict[int, int]:
    """Greedy-only global mapping (the "Greedy" curve of Figure 6)."""
    ng = global_network_graph(processors, oracle, capabilities)
    qg = global_query_graph(queries, space, ng)
    mapping = greedy_mapping(qg, ng, alpha)
    return _to_placement(qg, ng, mapping)


def centralized_placement(
    queries: Sequence[QuerySpec],
    processors: Sequence[int],
    space: SubstreamSpace,
    oracle: LatencyOracle,
    alpha: float = DEFAULT_ALPHA,
    capabilities: Optional[Dict[int, float]] = None,
    max_outer: int = 4,
) -> Dict[int, int]:
    """Full centralized Algorithm 2 (the "Centralized" benchmark)."""
    ng = global_network_graph(processors, oracle, capabilities)
    qg = global_query_graph(queries, space, ng)
    result = map_graph(qg, ng, alpha, max_outer=max_outer)
    return _to_placement(qg, ng, result.mapping)
