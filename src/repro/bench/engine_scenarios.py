"""Engine data-plane scenarios: columnar batches vs scalar tuples.

Two scenarios land in ``BENCH_core.json``:

* ``engine_batch`` -- the continuous-query engine in isolation: a sweep
  of (tuples x window seconds x selectivity) points pushing a join-heavy
  workload through ``Engine.push`` (the scalar reference) and
  ``Engine.push_batch`` (the columnar path), asserting bit-identical
  results and CPU counters and recording wall-clock seconds per tuple on
  both.  The largest (join-heavy) point carries the acceptance gate: the
  batch plane must be at least ``engine_min_speedup`` x faster per tuple.
* ``sim_batch``   -- the batched ``sim_scale`` variant: one full
  discrete-event scenario (churn + hot spot + adaptation) run on the
  scalar and batch data planes, asserting bit-identical traces,
  delivery results, link traffic and CPU counters, and recording the
  end-to-end wall-clock on each plane.  A third, profiled run must
  attribute at least ``obs_min_attribution`` of its wall clock to named
  subsystems (the observability acceptance gate).
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

import numpy as np

from ..engine import Engine, StreamTuple, TupleBatch
from ..obs import Observer
from ..query.parser import parse_query
from ..sim import ChurnParams, HotSpotShift, ScenarioParams, run_scenario
from .scenarios import scenario
from .sim_scenarios import _topology, _workload, sim_settings
from .timers import Stopwatch, measure

__all__ = ["engine_settings"]

#: integer value domain of the generated readings
_DOMAIN = 1000


def engine_settings(scale: Dict) -> Dict:
    """The ``engine`` sub-dict of a bench scale, with defaults applied."""
    cfg = dict(scale["engine"])
    cfg.setdefault("seed", 0)
    cfg.setdefault("dt", 0.05)
    cfg.setdefault("batch", 256)
    cfg.setdefault("repeat", 2)
    return cfg


def _queries(window_s: int, selectivity: float) -> List[Tuple[str, str]]:
    """A join-heavy query mix: one equality band join + one selection."""
    thr = int((1.0 - selectivity) * _DOMAIN)
    return [
        (
            f"SELECT * FROM R [Range {window_s} Seconds] A,"
            f" S [Range {window_s} Seconds] B"
            f" WHERE A.value = B.value AND A.value > {thr}",
            "join",
        ),
        (f"SELECT A.value FROM R [Range {window_s} Seconds] A"
         f" WHERE A.value > {thr}", "sel"),
    ]


def _tuple_runs(
    tuples: int, batch: int, dt: float, seed: int
) -> List[List[StreamTuple]]:
    """Alternating same-stream runs of ``batch`` tuples each.

    The flattened run sequence is the scalar input order, so pushing run
    batches and pushing tuples one by one traverse identical streams.
    """
    rng = np.random.default_rng(seed)
    runs: List[List[StreamTuple]] = []
    t = 0.0
    for r in range(max(1, tuples // batch)):
        stream = "R" if r % 2 == 0 else "S"
        values = rng.integers(0, _DOMAIN, size=batch)
        run = []
        for v in values:
            t += dt
            run.append(
                StreamTuple(stream, {"value": int(v), "timestamp": t})
            )
        runs.append(run)
    return runs


def _run_point(
    tuples: int, window_s: int, selectivity: float, cfg: Dict
) -> Dict:
    """Measure one sweep point on both data planes; assert parity."""
    runs = _tuple_runs(tuples, cfg["batch"], cfg["dt"], cfg["seed"])
    flat = [t for run in runs for t in run]
    queries = _queries(window_s, selectivity)
    n = len(flat)

    def scalar() -> Engine:
        engine = Engine(use_batches=False, retain_results=None)
        for text, name in queries:
            engine.add_query(parse_query(text, name=name))
        for t in flat:
            engine.push(t)
        return engine

    def batched() -> Engine:
        engine = Engine(retain_results=None)
        for text, name in queries:
            engine.add_query(parse_query(text, name=name))
        for run in runs:
            engine.push_batch(TupleBatch.from_tuples(run[0].stream, run))
        return engine

    ref_engine, ref_t = measure(scalar, repeat=cfg["repeat"], warmup=0)
    fast_engine, fast_t = measure(batched, repeat=cfg["repeat"], warmup=0)
    results_equal = all(
        [dict(t.values) for t in ref_engine.results[name]]
        == [dict(t.values) for t in fast_engine.results[name]]
        for _, name in queries
    )
    cpu_equal = ref_engine.cpu_costs() == fast_engine.cpu_costs()
    assert results_equal, (
        f"batch/scalar results diverge at {tuples}x{window_s}x{selectivity}"
    )
    assert cpu_equal, (
        f"batch/scalar CPU counters diverge at {tuples}x{window_s}x{selectivity}"
    )
    return {
        "tuples": n,
        "window_s": window_s,
        "selectivity": selectivity,
        "inspected": ref_engine.cpu_costs()["join"],
        "results": len(ref_engine.results["join"]),
        "reference_s_per_tuple": ref_t.best / n,
        "fast_s_per_tuple": fast_t.best / n,
        "reference_s": ref_t.best,
        "fast_s": fast_t.best,
        "speedup": ref_t.best / fast_t.best,
    }


@scenario("engine_batch")
def bench_engine_batch(scale: Dict) -> Dict:
    """Engine sweep: columnar batches vs per-tuple pushes."""
    cfg = engine_settings(scale)
    sweep = [
        _run_point(tuples, window_s, selectivity, cfg)
        for tuples, window_s, selectivity in cfg["sweep"]
    ]
    heavy = max(sweep, key=lambda p: p["inspected"])
    min_speedup = cfg.get("min_speedup")
    if min_speedup is not None:
        assert heavy["speedup"] >= min_speedup, (
            f"engine batch speedup {heavy['speedup']:.1f}x below the "
            f"{min_speedup:g}x acceptance gate at "
            f"{heavy['tuples']}x{heavy['window_s']}s"
        )
    return {
        "params": {
            "sweep": [
                f"{p['tuples']}x{p['window_s']}s@{p['selectivity']:g}"
                for p in sweep
            ],
            "batch_rows": cfg["batch"],
        },
        "reference_s": heavy["reference_s"],
        "fast_s": heavy["fast_s"],
        "speedup": heavy["speedup"],
        "parity": {"identical_results": True, "identical_cpu": True},
        "sweep": sweep,
    }


@scenario("sim_batch")
def bench_sim_batch(scale: Dict) -> Dict:
    """Batched sim variant: full cluster runs on both data planes.

    Runs at ``batch_rate_range`` source rates -- the heavy-traffic regime
    source coalescing exists for (at trickle rates every batch degenerates
    to one row and the planes merely tie).  Churn + hot spot stay on, so
    the parity assertions cover the full control plane.
    """
    sim = sim_settings(scale)
    sim["rate_range"] = sim.get("batch_rate_range", (4.0, 10.0))

    def params(use_batches: bool) -> ScenarioParams:
        return ScenarioParams(
            duration=sim["duration"],
            sample_interval=sim["sample_interval"],
            adapt_interval=sim["adapt_interval"],
            initial_placement="skewed",
            churn=ChurnParams(
                arrival_rate=sim["churn_arrival"],
                mean_lifetime=sim["churn_lifetime"],
            ),
            hotspot=HotSpotShift(
                at=sim["duration"] / 2.0,
                substreams=max(4, sim["substreams"] // 8),
                factor=3.0,
            ),
            use_batches=use_batches,
        )

    def run(use_batches: bool, observer=None):
        watch = Stopwatch()
        report = run_scenario(
            seed=sim["seed"],
            topology=_topology(sim),
            num_sources=sim["sources"],
            num_processors=sim["processors"],
            workload=_workload(sim),
            scenario=params(use_batches),
            record=True,
            observer=observer,
        )
        return report, watch.elapsed()

    scalar, ref_s = run(False)
    batched, fast_s = run(True)
    trace_equal = json.dumps(
        scalar.trace.to_dict(), sort_keys=True
    ) == json.dumps(batched.trace.to_dict(), sort_keys=True)
    assert trace_equal, "sim_batch: trace time series diverged"
    assert scalar.results == batched.results, "sim_batch: results diverged"
    assert scalar.link_bytes == batched.link_bytes, (
        "sim_batch: link traffic diverged"
    )
    assert scalar.cpu_costs == batched.cpu_costs, (
        "sim_batch: CPU counters diverged"
    )

    # the same batched run once more under the subsystem profiler: the
    # observed trace must still match, and the profiler must attribute
    # at least ``obs_min_attribution`` of the run's wall clock to named
    # subsystems (event loop, dissemination, operators, coordinator, ...)
    obs = Observer(span_sample_every=0)
    profiled, _ = run(True, observer=obs)
    assert profiled.results == batched.results, (
        "sim_batch: profiled run diverged from the unobserved one"
    )
    profile = obs.export()["profile"]
    coverage = profile["coverage"]
    min_attribution = sim.get("obs_min_attribution")
    if min_attribution is not None:
        assert coverage >= min_attribution, (
            f"profiler attributed only {coverage:.1%} of sim_batch wall "
            f"time, below the {min_attribution:.0%} acceptance gate"
        )
    return {
        "params": {
            "processors": sim["processors"],
            "substreams": sim["substreams"],
            "initial_queries": sim["queries"],
            "duration_s": sim["duration"],
            "tuples": batched.tuples_emitted,
            "events_scalar": scalar.events_processed,
            "events_batch": batched.events_processed,
        },
        "reference_s": ref_s,
        "fast_s": fast_s,
        "speedup": ref_s / fast_s,
        "parity": {
            "identical_trace": True,
            "identical_results": True,
            "identical_link_bytes": True,
            "identical_cpu": True,
        },
        "profile": {
            "coverage": coverage,
            "wall_s": profile["wall_s"],
            "totals_s": profile["totals_s"],
        },
    }
