"""Benchmark report assembly, JSON emission and validation."""

from __future__ import annotations

import json
import platform
import time
from typing import Dict, List, Sequence

__all__ = ["emit_block", "format_table", "validate_report", "write_report"]

#: report format identifier; bump on breaking layout changes
SCHEMA = "cosmos-bench/1"

#: keys every scenario result must carry
REQUIRED_KEYS = ("name", "params")


def build_report(results: Sequence[Dict], scale: str) -> Dict:
    """Wrap scenario results with run metadata into one report dict."""
    import numpy

    return {
        "schema": SCHEMA,
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "scale": scale,
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "scenarios": list(results),
    }


def write_report(results: Sequence[Dict], path: str, scale: str) -> Dict:
    """Write the JSON report to ``path``; returns the report dict."""
    report = build_report(results, scale)
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return report


def validate_report(path: str) -> Dict:
    """Load ``path`` and check it is a well-formed bench report.

    Raises ``ValueError`` on any malformation; returns the parsed report
    otherwise.  Used by the CI smoke job after the quick bench run.
    """
    with open(path) as fh:
        report = json.load(fh)
    if not isinstance(report, dict):
        raise ValueError("report root must be an object")
    if report.get("schema") != SCHEMA:
        raise ValueError(f"unexpected schema {report.get('schema')!r}")
    scenarios = report.get("scenarios")
    if not isinstance(scenarios, list) or not scenarios:
        raise ValueError("report has no scenarios")
    for s in scenarios:
        for key in REQUIRED_KEYS:
            if key not in s:
                raise ValueError(f"scenario missing {key!r}: {s}")
        speedup = s.get("speedup")
        if speedup is not None and speedup <= 0:
            raise ValueError(f"non-positive speedup in {s['name']}")
    return report


def format_table(results: Sequence[Dict]) -> str:
    """Human-readable table of scenario results (for terminals/CI logs)."""
    rows: List[str] = []
    header = (
        f"{'scenario':<22} {'reference':>12} {'fast':>12} "
        f"{'speedup':>9}  params"
    )
    rows.append(header)
    rows.append("-" * len(header))
    for s in results:
        ref = s.get("reference_s")
        fast = s.get("fast_s")
        speed = s.get("speedup")
        params = " ".join(f"{k}={v}" for k, v in s.get("params", {}).items())
        rows.append(
            f"{s['name']:<22} "
            f"{(f'{ref * 1e3:.2f}ms' if ref is not None else '-'):>12} "
            f"{(f'{fast * 1e3:.2f}ms' if fast is not None else '-'):>12} "
            f"{(f'{speed:.1f}x' if speed is not None else '-'):>9}  "
            f"{params}"
        )
    return "\n".join(rows)


def emit_block(text: str) -> None:
    """Print a delimited results block (shared with ``benchmarks/``)."""
    print()
    print("=" * 72)
    print(text)
    print("=" * 72)
