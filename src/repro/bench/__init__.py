"""Benchmark subsystem: scenario registry, timers and JSON reports.

Every optimizer-kernel fast path in :mod:`repro.core` keeps its pure-
Python reference implementation; this package times both sides on
synthetic workloads at controlled scales and emits a machine-readable
``BENCH_core.json`` so each PR has a performance trajectory to beat.

Entry points:

* ``python -m repro.bench`` (or the ``cosmos-bench`` console script) --
  run the registered scenarios at a named scale and write the report;
* :func:`repro.bench.scenarios.run_scenarios` -- the same, as a library
  call (used by ``benchmarks/bench_core.py`` and the CI smoke job);
* :func:`repro.bench.report.validate_report` -- schema check for CI.
"""

from .report import emit_block, format_table, validate_report, write_report
from .scenarios import SCALES, SCENARIOS, run_scenarios, scenario
from .timers import Timing, measure

__all__ = [
    "SCALES",
    "SCENARIOS",
    "Timing",
    "emit_block",
    "format_table",
    "measure",
    "run_scenarios",
    "scenario",
    "validate_report",
    "write_report",
]
