"""Discrete-event simulator scenarios for the bench registry.

Four simulator series land in ``BENCH_core.json`` next to the kernel
benchmarks:

* ``sim_steady``  -- fixed population, COSMOS initial distribution,
  periodic adaptation; the baseline latency/throughput numbers.
* ``sim_churn``   -- skewed start + query arrival/departure churn; runs
  the same seed **twice** and asserts the traces are bit-identical, that
  load stddev drops across an adaptation round, and that end-to-end
  latencies are nonzero (they derive from topology transit delays).
* ``sim_hotspot`` -- mid-run rate shift on a batch of substreams, with
  adaptation reacting to the *measured* load change.
* ``sim_scale``   -- the dissemination hot path in isolation: a sweep of
  (processors x subscriptions) points publishing one event batch through
  the counting forwarding index and through the reference scan path,
  asserting bit-identical delivery and recording wall-clock seconds per
  simulated tuple on both (the reference/fast discipline of the kernel
  scenarios, applied to the pub/sub layer).
* ``sim_sharing`` -- shared multi-query execution (Section 2) over a
  workload-overlap sweep: each point runs the same scenario unshared
  (the reference) and with ``use_sharing=True``, asserts the shared run
  delivers exactly the per-user-query results of the unshared one, and
  records the executed-vs-user query ratio plus the end-to-end speedup.
  At full scale the highest-overlap point gates both.
* ``sim_faults``  -- fault injection under churn: a processor crash with
  checkpoint recovery, run on every (batch/scalar x shared/unshared)
  plane combination.  Each combo is gated on the recovery invariants
  (zero loss for queries the crash never touched, bounded loss plus
  post-recovery oracle parity for the hosted ones), the first combo is
  run twice and must be bit-identical, and a no-recovery baseline must
  lose strictly more results than the checkpoint policy.
* ``sim_obs``     -- the observability layer's two contracts: a churn
  scenario recorded with the observer off, on at full span sampling and
  on at the configured sampling rate must be bit-identical in traces,
  per-query results, link bytes and CPU counters (no perturbation), and
  the observed run's best-of-N end-to-end wall clock must stay within
  ``obs_max_overhead`` of the unobserved baseline.

For the first three there is no reference/fast split: the wall time
recorded there is the simulator's own cost trajectory, and the
``trace`` field carries the full time series.
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

import numpy as np

from ..obs import Observer
from ..pubsub import Advertisement, Event, Filter, PubSubNetwork, Subscription
from ..query.interest import SubstreamSpace
from ..sim import (
    ChurnParams,
    HotSpotShift,
    ProcessorCrash,
    ScenarioParams,
    SimWorkloadParams,
    oracle_results,
    recovery_invariants,
    run_scenario,
)
from ..topology.overlay import minimum_latency_spanning_tree
from ..topology.transit_stub import TransitStubParams
from .scenarios import SyntheticOracle, scenario
from .timers import Stopwatch, measure

__all__ = ["sim_settings"]


def sim_settings(scale: Dict) -> Dict:
    """The ``sim`` sub-dict of a bench scale, with defaults applied."""
    sim = dict(scale["sim"])
    sim.setdefault("seed", 0)
    return sim


def _workload(sim: Dict) -> SimWorkloadParams:
    return SimWorkloadParams(
        num_substreams=sim["substreams"],
        num_queries=sim["queries"],
        rate_range=tuple(sim.get("rate_range", (0.2, 1.0))),
    )


def _topology(sim: Dict) -> TransitStubParams:
    td, tn, spt, sn = sim["topology"]
    return TransitStubParams(
        transit_domains=td,
        transit_nodes=tn,
        stubs_per_transit_node=spt,
        stub_nodes=sn,
    )


def _run(sim: Dict, params: ScenarioParams):
    watch = Stopwatch()
    report = run_scenario(
        seed=sim["seed"],
        topology=_topology(sim),
        num_sources=sim["sources"],
        num_processors=sim["processors"],
        workload=_workload(sim),
        scenario=params,
    )
    return report, watch.elapsed()


def _base_result(sim: Dict, report, wall: float) -> Dict:
    return {
        "params": {
            "processors": sim["processors"],
            "substreams": sim["substreams"],
            "initial_queries": sim["queries"],
            "duration_s": sim["duration"],
            "tuples": report.tuples_emitted,
            "events": report.events_processed,
        },
        "fast_s": wall,
        "summary": report.trace.summary(),
        "trace": report.trace.to_dict(),
    }


@scenario("sim_steady")
def bench_sim_steady(scale: Dict) -> Dict:
    """Steady state: fixed queries, COSMOS placement, periodic adaptation."""
    sim = sim_settings(scale)
    params = ScenarioParams(
        duration=sim["duration"],
        sample_interval=sim["sample_interval"],
        adapt_interval=sim["adapt_interval"],
        initial_placement="cosmos",
    )
    report, wall = _run(sim, params)
    result = _base_result(sim, report, wall)
    assert report.trace.total_results() > 0, "steady scenario produced no results"
    return result


@scenario("sim_churn")
def bench_sim_churn(scale: Dict) -> Dict:
    """Churn: arrivals/departures over a skewed start; doubled for determinism."""
    sim = sim_settings(scale)
    params = ScenarioParams(
        duration=sim["duration"],
        sample_interval=sim["sample_interval"],
        adapt_interval=sim["adapt_interval"],
        initial_placement="skewed",
        churn=ChurnParams(
            arrival_rate=sim["churn_arrival"],
            mean_lifetime=sim["churn_lifetime"],
        ),
    )
    report, wall = _run(sim, params)
    rerun, wall2 = _run(sim, params)
    first = json.dumps(report.trace.to_dict(), sort_keys=True)
    second = json.dumps(rerun.trace.to_dict(), sort_keys=True)

    summary = report.trace.summary()
    # the ISSUE 2 acceptance gates, checked on every bench run
    assert first == second, "seeded churn simulation is not deterministic"
    assert report.trace.stddev_improved(), (
        "no adaptation round reduced the measured load stddev"
    )
    assert summary["mean_latency_s"] > 0.0, "expected nonzero transit latencies"

    result = _base_result(sim, report, wall)
    result["rerun_s"] = wall2
    result["parity"] = {
        "deterministic": first == second,
        "stddev_improved": report.trace.stddev_improved(),
    }
    return result


def _scale_testbed(
    processors: int, subscriptions: int, events: int, seed: int
) -> Tuple[List[PubSubNetwork], List[Tuple[int, Event]]]:
    """Two identically subscribed networks (indexed, reference) + events.

    Built from one seeded :class:`SubstreamSpace.random` and one rng, the
    same :class:`Subscription` objects installed in both networks, so
    delivery traces are directly comparable sub_id for sub_id.  The
    subscription mix exercises every index stage: pure stream
    subscriptions, interval and membership filters on ``value``, and
    projections; roughly one in eight subscribers churns (unsubscribe +
    covering repair via ``force=True``), so the swept tables include
    re-propagated and pruned state, not just pristine adds.
    """
    rng = np.random.default_rng(seed)
    n_sources = max(4, processors // 8)
    sources = list(range(n_sources))
    procs = list(range(n_sources, n_sources + processors))
    oracle = SyntheticOracle(n_sources + processors, seed=seed)
    substreams = max(64, subscriptions // 32)
    space = SubstreamSpace.random(substreams, sources, rng=rng)
    tree = minimum_latency_spanning_tree(sources + procs, oracle)
    nets = [
        PubSubNetwork(tree, record_deliveries=False, use_index=use_index)
        for use_index in (True, False)
    ]
    for sid in range(len(space)):
        adv = Advertisement(stream=f"S{sid}")
        for net in nets:
            net.advertise(int(space.source_of[sid]), adv)

    churned: List[Tuple[int, Subscription]] = []
    for i in range(subscriptions):
        node = procs[int(rng.integers(len(procs)))]
        k = 1 + int(rng.integers(2))
        sids = rng.choice(substreams, size=k, replace=False)
        streams = [f"S{int(s)}" for s in sids]
        draw = rng.random()
        if draw < 0.6:
            lo = int(rng.integers(0, 800))
            hi = lo + int(rng.integers(50, 200))
            filt = Filter.of(("value", ">=", lo), ("value", "<", hi))
        elif draw < 0.7:
            filt = Filter.of(
                ("value", "in",
                 frozenset(int(v) for v in rng.integers(0, 1000, size=5))),
            )
        else:
            filt = Filter()
        projection = frozenset({"value"}) if rng.random() < 0.3 else None
        sub = Subscription.to_streams(streams, projection=projection, filter=filt)
        for net in nets:
            net.subscribe(node, sub)
        if i % 8 == 0:
            churned.append((node, sub))
    # covering-repair churn: tear down and force-re-propagate survivors
    for node, sub in churned:
        for net in nets:
            net.unsubscribe(sub.sub_id)
    for node, sub in churned[::2]:
        for net in nets:
            net.subscribe(node, sub, force=True)

    batch: List[Tuple[int, Event]] = []
    for _ in range(events):
        sid = int(rng.integers(substreams))
        event = Event(
            stream=f"S{sid}",
            attributes={
                "value": int(rng.integers(0, 1000)),
                "timestamp": float(len(batch)),
            },
            size=1.0,
        )
        batch.append((int(space.source_of[sid]), event))
    return nets, batch


def _publish_batch(net: PubSubNetwork, batch) -> List[Tuple]:
    """Deliveries of a whole event batch, in a comparable normal form."""
    out: List[Tuple] = []
    for source, event in batch:
        for node, ev, sub in net.publish(source, event):
            out.append(
                (node, sub.sub_id, tuple(sorted(ev.attributes.items())), ev.size)
            )
    return out


@scenario("sim_scale")
def bench_sim_scale(scale: Dict) -> Dict:
    """Dissemination sweep: counting index vs reference scans per tuple."""
    sim = sim_settings(scale)
    sweep = []
    for processors, subscriptions in sim["scale_sweep"]:
        events = sim["scale_events"]
        nets, batch = _scale_testbed(
            processors, subscriptions, events, seed=sim["seed"]
        )
        indexed_net, reference_net = nets
        # publishing mutates only traffic accounting, so repeated batches
        # are identical; best-of-3 after a warmup keeps the CI speedup
        # gates off single-sample noise (a GC pause in one ~5 ms batch)
        fast_out, fast_t = measure(lambda: _publish_batch(indexed_net, batch),
                                   repeat=3, warmup=1)
        ref_out, ref_t = measure(lambda: _publish_batch(reference_net, batch),
                                 repeat=3, warmup=1)
        assert fast_out == ref_out, (
            f"indexed/reference delivery traces diverge at "
            f"{processors}x{subscriptions}"
        )
        sweep.append({
            "processors": processors,
            "subscriptions": subscriptions,
            "events": events,
            "deliveries": len(fast_out),
            "reference_s_per_tuple": ref_t.best / events,
            "fast_s_per_tuple": fast_t.best / events,
            "speedup": ref_t.best / fast_t.best,
        })
    largest = sweep[-1]
    min_speedup = sim.get("scale_min_speedup")
    if min_speedup is not None:
        assert largest["speedup"] >= min_speedup, (
            f"forwarding index speedup {largest['speedup']:.1f}x below the "
            f"{min_speedup:g}x acceptance gate at "
            f"{largest['processors']}x{largest['subscriptions']}"
        )
    return {
        "params": {
            "sweep": [
                f"{p['processors']}x{p['subscriptions']}" for p in sweep
            ],
            "events": sim["scale_events"],
        },
        "reference_s": largest["reference_s_per_tuple"] * largest["events"],
        "fast_s": largest["fast_s_per_tuple"] * largest["events"],
        "speedup": largest["speedup"],
        "parity": {"identical_deliveries": True},
        "sweep": sweep,
    }


@scenario("sim_sharing")
def bench_sim_sharing(scale: Dict) -> Dict:
    """Shared execution sweep: merged plans vs one plan per user query."""
    sim = sim_settings(scale)
    pools = sim["sharing_pools"]  # descending pool size = rising overlap
    queries = sim.get("sharing_queries", sim["queries"])
    duration = sim.get("sharing_duration", sim["duration"])
    # per-query parity is checked on a shorter recorded pair (recording
    # hundreds of thousands of result dicts would distort the timed runs)
    parity_duration = sim.get("sharing_parity_duration", min(duration, 12.0))
    rate_range = tuple(sim.get("sharing_rate_range", sim.get("rate_range", (0.2, 1.0))))

    def params(use_sharing: bool, dur: float) -> ScenarioParams:
        return ScenarioParams(
            duration=dur,
            sample_interval=sim["sample_interval"],
            adapt_interval=sim["adapt_interval"],
            initial_placement="cosmos",
            use_sharing=use_sharing,
        )

    sweep = []
    for pool in pools:
        workload = SimWorkloadParams(
            num_substreams=sim["substreams"],
            num_queries=queries,
            rate_range=rate_range,
            pool_substreams=pool,
        )

        def run(use_sharing: bool, dur: float, record: bool):
            watch = Stopwatch()
            report = run_scenario(
                seed=sim["seed"],
                topology=_topology(sim),
                num_sources=sim["sources"],
                num_processors=sim["processors"],
                workload=workload,
                scenario=params(use_sharing, dur),
                record=record,
            )
            return report, watch.elapsed()

        unshared, ref_s = run(False, duration, False)
        shared, fast_s = run(True, duration, False)
        assert shared.trace.total_results() == unshared.trace.total_results(), (
            f"shared run result count diverged at pool={pool}"
        )
        assert shared.trace.total_results() > 0, "sweep point emitted no results"
        par_unshared, _ = run(False, parity_duration, True)
        par_shared, _ = run(True, parity_duration, True)
        assert par_shared.results == par_unshared.results, (
            f"shared run diverged from the unshared reference at pool={pool}"
        )
        ratio = shared.executed_queries / max(1, shared.user_queries)
        sweep.append({
            "pool_substreams": pool,
            "user_queries": shared.user_queries,
            "executed_queries": shared.executed_queries,
            "executed_ratio": ratio,
            "results": shared.trace.total_results(),
            "reference_s": ref_s,
            "fast_s": fast_s,
            "speedup": ref_s / fast_s,
        })

    densest = sweep[-1]
    max_ratio = sim.get("sharing_max_ratio")
    if max_ratio is not None:
        assert densest["executed_ratio"] < max_ratio, (
            f"executed/user ratio {densest['executed_ratio']:.2f} above the "
            f"{max_ratio:g} acceptance gate at pool={densest['pool_substreams']}"
        )
    min_speedup = sim.get("sharing_min_speedup")
    if min_speedup is not None:
        assert densest["speedup"] >= min_speedup, (
            f"shared execution speedup {densest['speedup']:.2f}x below the "
            f"{min_speedup:g}x acceptance gate at pool={densest['pool_substreams']}"
        )
    return {
        "params": {
            "processors": sim["processors"],
            "substreams": sim["substreams"],
            "queries": queries,
            "duration_s": duration,
            "rate_range": list(rate_range),
            "pools": pools,
        },
        "reference_s": densest["reference_s"],
        "fast_s": densest["fast_s"],
        "speedup": densest["speedup"],
        "parity": {
            "identical_results": True,
            "executed_ratio": densest["executed_ratio"],
        },
        "sweep": sweep,
    }


@scenario("sim_faults")
def bench_sim_faults(scale: Dict) -> Dict:
    """Crash + checkpoint recovery, gated on the recovery invariants."""
    sim = sim_settings(scale)
    duration = sim.get("fault_duration", sim["duration"])
    crash_at = sim.get("fault_crash_at", round(duration * 0.3, 3))
    window_range = tuple(sim.get("fault_window_range", (2, 4)))
    workload = SimWorkloadParams(
        num_substreams=sim["substreams"],
        num_queries=sim.get("fault_queries", sim["queries"]),
        rate_range=tuple(sim.get("rate_range", (0.2, 1.0))),
        pool_substreams=sim.get("fault_pool"),
        window_range=window_range,
    )

    def params(use_batches: bool, use_sharing: bool, recovery: str) -> ScenarioParams:
        return ScenarioParams(
            duration=duration,
            sample_interval=sim["sample_interval"],
            adapt_interval=sim["adapt_interval"],
            initial_placement="skewed",
            churn=ChurnParams(
                arrival_rate=sim["churn_arrival"],
                mean_lifetime=sim["churn_lifetime"],
            ),
            use_batches=use_batches,
            use_sharing=use_sharing,
            faults=(ProcessorCrash(at=crash_at),),
            recovery=recovery,
            checkpoint_interval=sim.get("fault_checkpoint_interval", 3.0),
        )

    def run(p: ScenarioParams):
        watch = Stopwatch()
        report = run_scenario(
            seed=sim["seed"],
            topology=_topology(sim),
            num_sources=sim["sources"],
            num_processors=sim["processors"],
            workload=workload,
            scenario=p,
            record=True,
        )
        return report, watch.elapsed()

    def crashed(report) -> set:
        hit: set = set()
        for e in report.fault_log:
            if e["kind"] == "crash":
                hit.update(e["queries"])
        return hit

    def loss(report, oracle, affected) -> int:
        return sum(
            len(oracle[q]) - len(report.results.get(q, []))
            for q in affected
            if q in oracle
        )

    sweep = []
    first_report = None
    combos = [(True, False), (False, False), (True, True), (False, True)]
    for use_batches, use_sharing in combos:
        report, wall = run(params(use_batches, use_sharing, "checkpoint"))
        if first_report is None:
            first_report = report
        oracle = oracle_results(report.actions)
        affected = crashed(report)
        assert affected, "fault injection crashed a node hosting no queries"
        resumed = max(
            e["resumed_at"]
            for e in report.fault_log
            if e["kind"] == "recover"
        )
        violations = recovery_invariants(
            report.results,
            oracle,
            affected=affected,
            resumed_at=resumed,
            window_s=float(window_range[1]),
        )
        assert violations == [], (
            f"recovery invariants violated (batches={use_batches}, "
            f"sharing={use_sharing}): {violations}"
        )
        sweep.append({
            "use_batches": use_batches,
            "use_sharing": use_sharing,
            "affected_queries": len(affected),
            "results_lost": loss(report, oracle, affected),
            "resumed_at_s": resumed,
            "results_total": report.trace.total_results(),
            "wall_s": wall,
        })

    # determinism: the first combo, run again, is bit-identical
    rerun, rerun_s = run(params(*combos[0], "checkpoint"))
    first = json.dumps(first_report.trace.to_dict(), sort_keys=True)
    second = json.dumps(rerun.trace.to_dict(), sort_keys=True)
    assert first == second, "fault-injected trace is not deterministic"
    assert first_report.fault_log == rerun.fault_log
    assert first_report.results == rerun.results

    # the no-recovery baseline must be demonstrably worse
    bare, _ = run(params(*combos[0], "none"))
    affected = crashed(first_report)
    assert crashed(bare) == affected, "baseline crashed a different set"
    oracle = oracle_results(first_report.actions)
    loss_rec = loss(first_report, oracle, affected)
    loss_none = loss(bare, oracle, affected)
    assert loss_rec < loss_none, (
        f"checkpoint recovery ({loss_rec} results lost) not better than "
        f"no recovery ({loss_none} lost)"
    )

    return {
        "params": {
            "processors": sim["processors"],
            "substreams": sim["substreams"],
            "initial_queries": workload.num_queries,
            "duration_s": duration,
            "crash_at_s": crash_at,
            "checkpoint_interval_s": sim.get("fault_checkpoint_interval", 3.0),
            "window_range_s": list(window_range),
        },
        "fast_s": sweep[0]["wall_s"],
        "rerun_s": rerun_s,
        "parity": {
            "deterministic": True,
            "invariant_violations": 0,
            "loss_with_recovery": loss_rec,
            "loss_without_recovery": loss_none,
        },
        "sweep": sweep,
    }


@scenario("sim_obs")
def bench_sim_obs(scale: Dict) -> Dict:
    """Observability: no-perturbation parity plus the overhead gate."""
    sim = sim_settings(scale)
    sample_every = sim.get("obs_sample_every", 16)
    repeat = sim.get("obs_repeat", 3)
    params = ScenarioParams(
        duration=sim.get("obs_duration", sim["duration"]),
        sample_interval=sim["sample_interval"],
        adapt_interval=sim["adapt_interval"],
        initial_placement="skewed",
        churn=ChurnParams(
            arrival_rate=sim["churn_arrival"],
            mean_lifetime=sim["churn_lifetime"],
        ),
    )

    def run(record: bool, observer=None):
        return run_scenario(
            seed=sim["seed"],
            topology=_topology(sim),
            num_sources=sim["sources"],
            num_processors=sim["processors"],
            workload=_workload(sim),
            scenario=params,
            record=record,
            observer=observer,
        )

    def digest(report) -> str:
        return json.dumps(
            {
                "trace": report.trace.to_dict(),
                "results": {str(k): v for k, v in report.results.items()},
                "link_bytes": sorted(
                    (list(k), v) for k, v in report.link_bytes.items()
                ),
                "cpu_costs": {str(k): v for k, v in report.cpu_costs.items()},
            },
            sort_keys=True,
        )

    # no-perturbation: off vs full sampling vs the configured rate
    base = digest(run(True))
    full_obs = Observer(span_sample_every=1)
    assert digest(run(True, full_obs)) == base, (
        "observer at full span sampling perturbed the simulation"
    )
    sampled_obs = Observer(span_sample_every=sample_every)
    assert digest(run(True, sampled_obs)) == base, (
        f"observer at 1/{sample_every} span sampling perturbed the simulation"
    )
    export = sampled_obs.export()

    # overhead: unrecorded timed runs, best-of-N on both sides
    _, base_t = measure(lambda: run(False), repeat=repeat)
    _, obs_t = measure(
        lambda: run(False, Observer(span_sample_every=sample_every)),
        repeat=repeat,
    )
    overhead = obs_t.best / base_t.best
    max_overhead = sim.get("obs_max_overhead")
    if max_overhead is not None:
        assert overhead <= max_overhead, (
            f"observed run {overhead:.3f}x the unobserved baseline, above "
            f"the {max_overhead:g}x acceptance gate"
        )
    profile = export.get("profile") or {}
    return {
        "params": {
            "processors": sim["processors"],
            "substreams": sim["substreams"],
            "initial_queries": sim["queries"],
            "duration_s": params.duration,
            "span_sample_every": sample_every,
        },
        "reference_s": base_t.best,
        "fast_s": obs_t.best,
        "overhead": overhead,
        "parity": {
            "identical_off_on_sampled": True,
            "spans": len(export.get("spans") or []),
            "counters": len((export.get("metrics") or {}).get("counters", {})),
            "profile_coverage": profile.get("coverage"),
        },
    }


@scenario("sim_hotspot")
def bench_sim_hotspot(scale: Dict) -> Dict:
    """Hot spot: a mid-run rate surge shifts measured loads; COSMOS adapts."""
    sim = sim_settings(scale)
    params = ScenarioParams(
        duration=sim["duration"],
        sample_interval=sim["sample_interval"],
        adapt_interval=sim["adapt_interval"],
        initial_placement="cosmos",
        hotspot=HotSpotShift(
            at=sim["duration"] / 2.0,
            substreams=max(4, sim["substreams"] // 8),
            factor=3.0,
        ),
    )
    report, wall = _run(sim, params)
    result = _base_result(sim, report, wall)
    shift_at = sim["duration"] / 2.0
    post = [a for a in report.trace.adaptations if a.t > shift_at]
    result["params"]["hotspot_at_s"] = shift_at
    result["params"]["post_shift_adaptations"] = len(post)
    return result
