"""Discrete-event simulator scenarios for the bench registry.

Three end-to-end trajectories land in ``BENCH_core.json`` next to the
kernel benchmarks:

* ``sim_steady``  -- fixed population, COSMOS initial distribution,
  periodic adaptation; the baseline latency/throughput numbers.
* ``sim_churn``   -- skewed start + query arrival/departure churn; runs
  the same seed **twice** and asserts the traces are bit-identical, that
  load stddev drops across an adaptation round, and that end-to-end
  latencies are nonzero (they derive from topology transit delays).
* ``sim_hotspot`` -- mid-run rate shift on a batch of substreams, with
  adaptation reacting to the *measured* load change.

Unlike the kernel scenarios there is no reference/fast split: the wall
time recorded here is the simulator's own cost trajectory, and the
``trace`` field carries the full time series.
"""

from __future__ import annotations

import json
import time
from typing import Dict

from ..sim import (
    ChurnParams,
    HotSpotShift,
    ScenarioParams,
    SimWorkloadParams,
    run_scenario,
)
from ..topology.transit_stub import TransitStubParams
from .scenarios import scenario

__all__ = ["sim_settings"]


def sim_settings(scale: Dict) -> Dict:
    """The ``sim`` sub-dict of a bench scale, with defaults applied."""
    sim = dict(scale["sim"])
    sim.setdefault("seed", 0)
    return sim


def _workload(sim: Dict) -> SimWorkloadParams:
    return SimWorkloadParams(
        num_substreams=sim["substreams"],
        num_queries=sim["queries"],
        rate_range=tuple(sim.get("rate_range", (0.2, 1.0))),
    )


def _topology(sim: Dict) -> TransitStubParams:
    td, tn, spt, sn = sim["topology"]
    return TransitStubParams(
        transit_domains=td,
        transit_nodes=tn,
        stubs_per_transit_node=spt,
        stub_nodes=sn,
    )


def _run(sim: Dict, params: ScenarioParams):
    t0 = time.perf_counter()
    report = run_scenario(
        seed=sim["seed"],
        topology=_topology(sim),
        num_sources=sim["sources"],
        num_processors=sim["processors"],
        workload=_workload(sim),
        scenario=params,
    )
    return report, time.perf_counter() - t0


def _base_result(sim: Dict, report, wall: float) -> Dict:
    return {
        "params": {
            "processors": sim["processors"],
            "substreams": sim["substreams"],
            "initial_queries": sim["queries"],
            "duration_s": sim["duration"],
            "tuples": report.tuples_emitted,
            "events": report.events_processed,
        },
        "fast_s": wall,
        "summary": report.trace.summary(),
        "trace": report.trace.to_dict(),
    }


@scenario("sim_steady")
def bench_sim_steady(scale: Dict) -> Dict:
    """Steady state: fixed queries, COSMOS placement, periodic adaptation."""
    sim = sim_settings(scale)
    params = ScenarioParams(
        duration=sim["duration"],
        sample_interval=sim["sample_interval"],
        adapt_interval=sim["adapt_interval"],
        initial_placement="cosmos",
    )
    report, wall = _run(sim, params)
    result = _base_result(sim, report, wall)
    assert report.trace.total_results() > 0, "steady scenario produced no results"
    return result


@scenario("sim_churn")
def bench_sim_churn(scale: Dict) -> Dict:
    """Churn: arrivals/departures over a skewed start; doubled for determinism."""
    sim = sim_settings(scale)
    params = ScenarioParams(
        duration=sim["duration"],
        sample_interval=sim["sample_interval"],
        adapt_interval=sim["adapt_interval"],
        initial_placement="skewed",
        churn=ChurnParams(
            arrival_rate=sim["churn_arrival"],
            mean_lifetime=sim["churn_lifetime"],
        ),
    )
    report, wall = _run(sim, params)
    rerun, wall2 = _run(sim, params)
    first = json.dumps(report.trace.to_dict(), sort_keys=True)
    second = json.dumps(rerun.trace.to_dict(), sort_keys=True)

    summary = report.trace.summary()
    # the ISSUE 2 acceptance gates, checked on every bench run
    assert first == second, "seeded churn simulation is not deterministic"
    assert report.trace.stddev_improved(), (
        "no adaptation round reduced the measured load stddev"
    )
    assert summary["mean_latency_s"] > 0.0, "expected nonzero transit latencies"

    result = _base_result(sim, report, wall)
    result["rerun_s"] = wall2
    result["parity"] = {
        "deterministic": first == second,
        "stddev_improved": report.trace.stddev_improved(),
    }
    return result


@scenario("sim_hotspot")
def bench_sim_hotspot(scale: Dict) -> Dict:
    """Hot spot: a mid-run rate surge shifts measured loads; COSMOS adapts."""
    sim = sim_settings(scale)
    params = ScenarioParams(
        duration=sim["duration"],
        sample_interval=sim["sample_interval"],
        adapt_interval=sim["adapt_interval"],
        initial_placement="cosmos",
        hotspot=HotSpotShift(
            at=sim["duration"] / 2.0,
            substreams=max(4, sim["substreams"] // 8),
            factor=3.0,
        ),
    )
    report, wall = _run(sim, params)
    result = _base_result(sim, report, wall)
    shift_at = sim["duration"] / 2.0
    post = [a for a in report.trace.adaptations if a.t > shift_at]
    result["params"]["hotspot_at_s"] = shift_at
    result["params"]["post_shift_adaptations"] = len(post)
    return result
