"""Command-line benchmark runner (``python -m repro.bench``).

Runs the registered scenarios at a named scale, prints the comparison
table and writes the JSON report (default ``BENCH_core.json``).
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from .report import emit_block, format_table, write_report
from .scenarios import SCALES, SCENARIOS, run_scenarios

__all__ = ["main"]


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``cosmos-bench`` console script."""
    parser = argparse.ArgumentParser(
        prog="cosmos-bench",
        description="COSMOS optimizer kernel benchmarks",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="full",
        help="scenario sizes (full = the 10k-query acceptance scale)",
    )
    parser.add_argument(
        "--scenario",
        action="append",
        choices=sorted(SCENARIOS),
        help="run only the given scenario (repeatable)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_core.json",
        help="path of the JSON report (default: %(default)s)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list scenarios and exit"
    )
    args = parser.parse_args(argv)

    if args.list:
        for name, fn in SCENARIOS.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{name:<18} {doc}")
        return 0

    # fail on an unwritable output path *before* spending minutes benching
    try:
        with open(args.out, "a"):
            pass
    except OSError as exc:
        parser.error(f"cannot write {args.out}: {exc}")

    results = run_scenarios(args.scale, only=args.scenario)
    emit_block(format_table(results))
    write_report(results, args.out, args.scale)
    print(f"wrote {args.out} ({len(results)} scenarios, scale={args.scale})")
    return 0
