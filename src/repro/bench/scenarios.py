"""Benchmark scenarios: reference vs fast optimizer kernels.

Each scenario builds a synthetic workload at a size taken from a named
*scale* (``smoke`` < ``quick`` < ``full``), times the pure-Python
reference kernel against the vectorised fast path, checks parity between
the two, and returns one JSON-ready result dict.  ``full`` reproduces the
acceptance scale of the optimizer benchmarks: 10k queries over 1k
processors for WEC evaluation and a 1k-node diffusion system.

Scenarios register themselves in :data:`SCENARIOS` via the
:func:`scenario` decorator; :func:`run_scenarios` executes them in
registration order.
"""

from __future__ import annotations

import gc
import random
from types import SimpleNamespace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.coarsening import coarsen
from ..core.diffusion import diffusion_solution, diffusion_solution_reference
from ..core.fastcost import CostWorkspace
from ..core.graphs import (
    NetVertex,
    NetworkGraph,
    QueryGraph,
    build_query_graph,
    qvertex_from_query,
)
from ..core.mapping import _attach_cost, _positions
from ..core.rebalance import rebalance, refine_distribution
from ..query.interest import SubstreamSpace, mask_of
from ..query.workload import QuerySpec
from .timers import measure

__all__ = ["SCALES", "SCENARIOS", "run_scenarios", "scenario", "SyntheticOracle"]

#: scenario sizes; "full" is the acceptance scale of ISSUE 1.  The ``sim``
#: sub-dict sizes the discrete-event simulator scenarios (ISSUE 2):
#: ``topology`` is (transit_domains, transit_nodes, stubs_per_transit,
#: stub_nodes) and rates are tuples/s per substream.  ``scale_sweep``
#: lists the (processors, subscriptions) points of the ``sim_scale``
#: dissemination sweep (ISSUE 3: indexed vs reference forwarding).  The
#: ``engine`` sub-dict sizes the ``engine_batch`` data-plane sweep
#: (ISSUE 4): ``sweep`` lists (tuples, window seconds, selectivity)
#: points and ``batch`` is the rows-per-batch of the columnar path.
SCALES: Dict[str, Dict] = {
    "smoke": dict(
        wec_queries=200, processors=8, substreams=500, sources=10,
        diffusion_nodes=16, coarsen_queries=80, coarsen_vmax=20,
        attach_sample=50, rebalance_queries=150, rebalance_processors=8,
        e2e_queries=100, repeat=2,
        sim=dict(
            topology=(2, 3, 2, 4), sources=4, processors=8,
            substreams=40, queries=24, duration=20.0,
            sample_interval=4.0, adapt_interval=8.0,
            churn_arrival=0.4, churn_lifetime=12.0,
            scale_sweep=[(8, 200), (16, 500)],
            scale_events=60,
            batch_rate_range=(2.0, 5.0),
            sharing_pools=[40, 4],
            sharing_rate_range=(1.0, 3.0),
            sharing_duration=10.0,
            fault_pool=6,
            fault_window_range=(2, 4),
            fault_checkpoint_interval=3.0,
            obs_duration=10.0,
            obs_sample_every=16,
            obs_min_attribution=0.9,
        ),
        engine=dict(
            sweep=[(4096, 5, 0.5), (4096, 10, 0.3)],
            batch=128, repeat=2,
        ),
        opt=dict(
            queries=1500, processors=32, substreams=400, sources=10,
            vmax=60, churn_events=30, perturb_frac=0.01,
            steady_rounds=2, churn_rounds=2, parity_queries=400,
        ),
    ),
    "quick": dict(
        wec_queries=1000, processors=64, substreams=2000, sources=20,
        diffusion_nodes=128, coarsen_queries=400, coarsen_vmax=80,
        attach_sample=100, rebalance_queries=500, rebalance_processors=32,
        e2e_queries=300, repeat=3,
        sim=dict(
            topology=(2, 3, 2, 4), sources=6, processors=16,
            substreams=80, queries=60, duration=40.0,
            sample_interval=5.0, adapt_interval=10.0,
            churn_arrival=0.6, churn_lifetime=20.0,
            scale_sweep=[(16, 500), (32, 1000), (64, 2500)],
            scale_events=80,
            batch_rate_range=(2.0, 6.0),
            sharing_pools=[80, 16, 4],
            sharing_queries=120,
            sharing_rate_range=(2.0, 4.0),
            sharing_duration=20.0,
            fault_pool=12,
            fault_queries=48,
            fault_duration=24.0,
            fault_window_range=(2, 4),
            fault_checkpoint_interval=4.0,
            obs_duration=16.0,
            obs_sample_every=16,
            obs_min_attribution=0.9,
        ),
        engine=dict(
            sweep=[(10240, 5, 0.5), (10240, 15, 0.3), (20480, 20, 0.3)],
            batch=256, repeat=2,
        ),
        opt=dict(
            queries=10000, processors=128, substreams=1000, sources=50,
            vmax=100, churn_events=80, perturb_frac=0.01,
            steady_rounds=2, churn_rounds=3, parity_queries=800,
        ),
    ),
    "full": dict(
        wec_queries=10000, processors=1000, substreams=20000, sources=100,
        diffusion_nodes=1000, coarsen_queries=2000, coarsen_vmax=150,
        attach_sample=100, rebalance_queries=2000, rebalance_processors=64,
        e2e_queries=1500, repeat=3,
        sim=dict(
            topology=(3, 3, 2, 5), sources=10, processors=32,
            substreams=160, queries=120, duration=60.0,
            sample_interval=6.0, adapt_interval=12.0,
            churn_arrival=1.0, churn_lifetime=30.0,
            scale_sweep=[(64, 2500), (128, 5000), (256, 10000)],
            scale_events=100,
            # ISSUE 3 acceptance gate, checked at the largest swept size
            scale_min_speedup=5.0,
            batch_rate_range=(3.0, 8.0),
            # ISSUE 5: workload-overlap sweep (pool of substreams queries
            # draw from; smaller pool = more overlap), gated at the
            # highest-overlap point
            sharing_pools=[160, 32, 8, 2],
            sharing_queries=800,
            sharing_rate_range=(2.0, 5.0),
            sharing_duration=30.0,
            sharing_max_ratio=0.5,
            sharing_min_speedup=2.0,
            # ISSUE 6: crash + checkpoint-recovery gate, run on every
            # (batch/scalar x shared/unshared) plane combination; the
            # recorded runs are kept short so result logs stay bounded
            fault_pool=24,
            fault_queries=80,
            fault_duration=30.0,
            fault_window_range=(2, 4),
            fault_checkpoint_interval=5.0,
            # ISSUE 7 acceptance gates: the observed run stays within 10%
            # of the unobserved wall clock, and the profiler attributes
            # >= 90% of the sim_batch run to named subsystems
            obs_duration=20.0,
            obs_sample_every=16,
            obs_max_overhead=1.10,
            obs_min_attribution=0.9,
        ),
        engine=dict(
            sweep=[
                (20480, 5, 0.5),
                (20480, 15, 0.3),
                (40960, 25, 0.2),
            ],
            batch=256, repeat=3,
            # ISSUE 4 acceptance gate, checked at the join-heaviest point
            min_speedup=5.0,
        ),
        # ISSUE 10 acceptance scale: 100k queries over 1k processors with
        # localized churn, gated on sub-second adaptation rounds
        opt=dict(
            queries=100_000, processors=1000, substreams=2000, sources=100,
            vmax=150, churn_events=200, perturb_frac=0.01,
            steady_rounds=3, churn_rounds=3, parity_queries=2000,
            max_round_s=1.0,
        ),
    ),
}

SCENARIOS: Dict[str, Callable[[Dict], Optional[Dict]]] = {}


def scenario(name: str) -> Callable:
    """Decorator registering a scenario function under ``name``."""

    def register(fn: Callable[[Dict], Optional[Dict]]) -> Callable:
        SCENARIOS[name] = fn
        return fn

    return register


class SyntheticOracle:
    """Latency oracle over random 2-D coordinates (benchmarks only).

    Mimics :class:`~repro.topology.latency.LatencyOracle`'s interface
    (``row``, ``__call__``, ``topology.n``) without a graph: latency is
    the Euclidean distance between node coordinates, so rows are one
    vectorised norm instead of a Dijkstra run.
    """

    def __init__(self, n: int, seed: int = 0):
        rng = np.random.default_rng(seed)
        self.coords = rng.uniform(0.0, 100.0, size=(n, 2))
        self.topology = SimpleNamespace(n=n)
        self._rows: Dict[int, np.ndarray] = {}

    def row(self, u: int) -> np.ndarray:
        """Distances from ``u`` to every node (cached)."""
        if u not in self._rows:
            self._rows[u] = np.linalg.norm(
                self.coords - self.coords[u], axis=1
            )
        return self._rows[u]

    def __call__(self, u: int, v: int) -> float:
        if u == v:
            return 0.0
        return float(self.row(u)[v])

    def median(self, members: Sequence[int]) -> int:
        """Member minimising total distance to the others (Section 3.3).

        Same contract (and tie-break) as
        :meth:`~repro.topology.latency.LatencyOracle.median`, so the
        coordinator-tree builder accepts a synthetic oracle too.
        """
        if not members:
            raise ValueError("median of an empty member set")
        best = None
        best_total = float("inf")
        for u in members:
            row = self.row(u)
            total = float(sum(row[v] for v in members))
            if total < best_total or (
                total == best_total and (best is None or u < best)
            ):
                best_total = total
                best = u
        assert best is not None
        return best


def synthetic_testbed(
    num_queries: int,
    num_processors: int,
    num_substreams: int,
    num_sources: int,
    seed: int = 0,
    substreams_per_query: Tuple[int, int] = (10, 30),
) -> Tuple[QueryGraph, NetworkGraph, SubstreamSpace, Dict]:
    """Query graph + network graph + random mapping at a given scale.

    Node ids: sources occupy ``[0, num_sources)``, processors
    ``[num_sources, num_sources + num_processors)``.  Returns
    ``(qg, ng, space, mapping)`` with ``mapping`` assigning every
    q-vertex a uniformly random processor.
    """
    rng = random.Random(seed)
    sources = list(range(num_sources))
    processors = list(range(num_sources, num_sources + num_processors))
    oracle = SyntheticOracle(num_sources + num_processors, seed=seed)
    space = SubstreamSpace.random(num_substreams, sources=sources, seed=seed)
    ng = NetworkGraph(
        [
            NetVertex(
                vid=("p", p), site=p, capability=1.0, covers=frozenset([p])
            )
            for p in processors
        ],
        oracle,
        oracle=oracle,
    )
    lo, hi = substreams_per_query
    queries = []
    for i in range(num_queries):
        mask = mask_of(rng.sample(range(num_substreams), rng.randint(lo, hi)))
        queries.append(
            QuerySpec(
                query_id=i,
                proxy=rng.choice(processors),
                mask=mask,
                group=0,
                load=1.0,
                result_rate=1.0,
                state_size=1.0,
            )
        )
    qg = build_query_graph(
        [qvertex_from_query(q, space) for q in queries], space, ng
    )
    targets = ng.ids()
    mapping = {vid: rng.choice(targets) for vid in qg.qverts}
    return qg, ng, space, mapping


@scenario("wec_eval")
def bench_wec(scale: Dict) -> Dict:
    """WEC evaluation: per-edge Python loop vs one gather + dot product."""
    qg, ng, _space, mapping = synthetic_testbed(
        scale["wec_queries"], scale["processors"],
        scale["substreams"], scale["sources"],
    )
    repeat = scale["repeat"]
    ref_val, ref_t = measure(
        lambda: qg.wec_reference(mapping, ng), repeat=repeat
    )
    # snapshot construction is timed separately: the hot path (refinement,
    # adaptation) evaluates many mappings against one snapshot
    arrays, setup_t = measure(lambda: qg.arrays_for(ng), repeat=1)
    fast_val, fast_t = measure(lambda: arrays.wec(mapping), repeat=repeat)
    return {
        "params": {
            "queries": scale["wec_queries"],
            "processors": scale["processors"],
            "edges": int(arrays.edge_w.size),
        },
        "reference_s": ref_t.best,
        "fast_s": fast_t.best,
        "fast_setup_s": setup_t.best,
        "speedup": ref_t.best / fast_t.best,
        "parity": {
            "reference": ref_val,
            "fast": fast_val,
            "rel_err": abs(ref_val - fast_val) / max(1e-12, abs(ref_val)),
        },
    }


@scenario("diffusion")
def bench_diffusion(scale: Dict) -> Dict:
    """Diffusion solve: lstsq + n^2 Python loop vs closed form + nonzero.

    Loads mirror what Algorithm 3 actually hands the solver: most nodes
    near their fair share with a small fraction of hot spots, and the
    rebalancer's noise floor (0.1% of the average target) applied to both
    paths.
    """
    n = scale["diffusion_nodes"]
    rng = np.random.default_rng(1)
    load_vec = rng.uniform(45.0, 55.0, size=n)
    hot = rng.choice(n, size=max(1, n // 20), replace=False)
    load_vec[hot] *= 10.0
    loads = {f"n{i}": float(load_vec[i]) for i in range(n)}
    targets = {k: 1.0 for k in loads}
    floor = 1e-3 * (load_vec.sum() / n)
    repeat = scale["repeat"]
    ref_flows, ref_t = measure(
        lambda: diffusion_solution_reference(loads, targets, floor=floor),
        repeat=repeat,
    )
    fast_flows, fast_t = measure(
        lambda: diffusion_solution(loads, targets, floor=floor),
        repeat=repeat,
    )
    keys = set(ref_flows) | set(fast_flows)
    max_err = max(
        (abs(ref_flows.get(k, 0.0) - fast_flows.get(k, 0.0)) for k in keys),
        default=0.0,
    )
    return {
        "params": {
            "nodes": n,
            "hot_nodes": int(hot.size),
            "flows": len(fast_flows),
        },
        "reference_s": ref_t.best,
        "fast_s": fast_t.best,
        "speedup": ref_t.best / fast_t.best,
        "parity": {"max_flow_err": max_err},
    }


@scenario("coarsening")
def bench_coarsening(scale: Dict) -> Dict:
    """Heavy-edge matching: dict candidate scan vs CSR argmax kernel."""
    qg, ng, space, _mapping = synthetic_testbed(
        scale["coarsen_queries"], scale["rebalance_processors"],
        scale["substreams"], scale["sources"], seed=2,
    )
    vmax = scale["coarsen_vmax"]
    ref_g, ref_t = measure(
        lambda: coarsen(qg, vmax, space, rng=random.Random(0), fast=False),
        repeat=1,
    )
    fast_g, fast_t = measure(
        lambda: coarsen(qg, vmax, space, rng=random.Random(0), fast=True),
        repeat=1,
    )
    ref_parts = sorted(tuple(sorted(v.members)) for v in ref_g.qverts.values())
    fast_parts = sorted(
        tuple(sorted(v.members)) for v in fast_g.qverts.values()
    )
    return {
        "params": {"queries": scale["coarsen_queries"], "vmax": vmax},
        "reference_s": ref_t.best,
        "fast_s": fast_t.best,
        "speedup": ref_t.best / fast_t.best,
        "parity": {"identical_partition": ref_parts == fast_parts},
    }


@scenario("attach_costs")
def bench_attach_costs(scale: Dict) -> Dict:
    """Attach-cost rows: per-target neighbour loops vs one matvec."""
    qg, ng, _space, mapping = synthetic_testbed(
        scale["wec_queries"], scale["processors"],
        scale["substreams"], scale["sources"], seed=3,
    )
    sample = list(qg.qverts)[: scale["attach_sample"]]
    pos = _positions(qg, mapping, ng)
    ws = CostWorkspace(qg, ng)
    ws.init_positions(mapping)
    targets = ng.ids()
    repeat = scale["repeat"]

    def reference() -> List[List[float]]:
        return [
            [_attach_cost(qg, vid, t, pos, ng) for t in targets]
            for vid in sample
        ]

    def fast() -> List[np.ndarray]:
        return [ws.attach_costs(vid) for vid in sample]

    ref_rows, ref_t = measure(reference, repeat=repeat)
    fast_rows, fast_t = measure(fast, repeat=repeat)
    max_err = max(
        float(np.max(np.abs(np.asarray(r) - f)))
        for r, f in zip(ref_rows, fast_rows)
    )
    return {
        "params": {
            "queries": scale["wec_queries"],
            "targets": len(targets),
            "sample": len(sample),
        },
        "reference_s": ref_t.best,
        "fast_s": fast_t.best,
        "speedup": ref_t.best / fast_t.best,
        "parity": {"max_abs_err": max_err},
    }


@scenario("rebalance")
def bench_rebalance(scale: Dict) -> Dict:
    """Trajectory: one Algorithm 3 round + refinement, skewed start.

    No reference side -- the rebalancer itself is the fast path now; the
    wall time recorded here is the number future PRs try to beat.
    """
    qg, ng, _space, _mapping = synthetic_testbed(
        scale["rebalance_queries"], scale["rebalance_processors"],
        scale["substreams"], scale["sources"], seed=4,
    )
    targets = ng.ids()
    skew = targets[: max(1, len(targets) // 8)]
    rng = random.Random(4)
    assignment = {vid: rng.choice(skew) for vid in qg.qverts}

    def round_() -> int:
        work = dict(assignment)
        stats = rebalance(qg, ng, work, rng=random.Random(0))
        moves = refine_distribution(
            qg, ng, work, dict(assignment), rng=random.Random(0)
        )
        return stats.moved_vertices + moves

    moves, t = measure(round_, repeat=scale["repeat"])
    return {
        "params": {
            "queries": scale["rebalance_queries"],
            "processors": scale["rebalance_processors"],
            "moves": moves,
        },
        "fast_s": t.best,
    }


@scenario("distribute_e2e")
def bench_distribute(scale: Dict) -> Dict:
    """Trajectory: Cosmos end-to-end initial distribution + one adapt.

    Uses the experiments testbed (real transit-stub topology) rather than
    the synthetic kernels, so the number tracks what the figure
    benchmarks actually exercise.
    """
    from ..experiments.config import bench_scale, build_testbed

    config = bench_scale(scale["e2e_queries"])
    testbed = build_testbed(config)
    cosmos = testbed.new_cosmos()
    _placement, dist_t = measure(
        lambda: cosmos.distribute(testbed.workload.queries), repeat=1
    )
    _report, adapt_t = measure(lambda: cosmos.adapt(), repeat=1)
    return {
        "params": {
            "queries": scale["e2e_queries"],
            "processors": config.num_processors,
            "cost": testbed.cost(cosmos.placement),
        },
        "fast_s": dist_t.best,
        "adapt_s": adapt_t.best,
    }


def _opt_scale_query(
    qid: int,
    proxy_pool: Sequence[int],
    num_substreams: int,
    space: SubstreamSpace,
    rng: random.Random,
) -> QuerySpec:
    mask = mask_of(rng.sample(range(num_substreams), rng.randint(10, 30)))
    return QuerySpec(
        query_id=qid,
        proxy=rng.choice(proxy_pool),
        mask=mask,
        group=0,
        load=0.01 * space.rate(mask),
        result_rate=1.0,
        state_size=1.0,
    )


@scenario("opt_scale")
def bench_opt_scale(scale: Dict) -> Optional[Dict]:
    """Incremental optimizer trajectory: steady + localized-churn rounds.

    Builds a full Cosmos tree at the ``opt`` scale, then times adaptation
    rounds in two regimes: *steady* (nothing changed -- converged levels
    skip their phases) and *churn* (a burst of localized insert/remove
    events plus a small load perturbation).  At the acceptance scale
    (100k queries / 1k processors) every round is gated below
    ``max_round_s``.  Incremental-maintenance counters (deltas applied,
    plan reuse, snapshot patches, skips) are collected via a scoped
    metrics registry, and a small two-mode run spot-checks that the
    incremental and full-rebuild modes still produce identical
    placements.
    """
    from ..core import Cosmos, CosmosConfig
    from ..obs import registry as _obs
    from ..obs.registry import MetricsRegistry

    p = scale["opt"]
    rng = random.Random(11)
    sources = list(range(p["sources"]))
    processors = list(range(p["sources"], p["sources"] + p["processors"]))
    oracle = SyntheticOracle(p["sources"] + p["processors"], seed=11)
    space = SubstreamSpace.random(
        p["substreams"], sources=sources, seed=11
    )
    queries = [
        _opt_scale_query(i, processors, p["substreams"], space, rng)
        for i in range(p["queries"])
    ]

    reg = MetricsRegistry()
    prev_reg = _obs.ACTIVE
    _obs.set_active(reg)
    try:
        cosmos = Cosmos(
            oracle, processors, space,
            CosmosConfig(k=4, vmax=p["vmax"], incremental=True),
        )
        _placement, dist_t = measure(
            lambda: cosmos.distribute(queries), repeat=1
        )

        # the first adapts after a cold distribute are a one-time global
        # convergence phase (the tree re-balances the initial mapping
        # into the adaptation equilibrium, then refinement's strict
        # descent runs its tail down); reported but not gated -- the
        # gate measures the converged regime and its response to churn
        warmup: List[Dict] = []
        for i in range(p.get("warmup_rounds_max", 12)):
            rep, wt = measure(cosmos.adapt, repeat=1)
            moves = rep.coordinator_moves + rep.refinement_moves
            warmup.append(
                {"round": i, "wall_s": wt.best, "moves": moves}
            )
            if moves == 0:
                break

        rounds: List[Dict] = []
        for i in range(p["steady_rounds"]):
            _report, t = measure(cosmos.adapt, repeat=1)
            rounds.append({"kind": "steady", "round": i, "wall_s": t.best})

        leaves = [
            c for c in cosmos.root.all_coordinators() if c.is_leaf
        ]
        specs = {q.query_id: q for q in queries}
        next_id = p["queries"]
        half = p["churn_events"] // 2
        for i in range(p["churn_rounds"]):
            # localized churn: one leaf cluster's region sheds and gains
            # queries while the rest of the tree stays untouched
            region = sorted(leaves[i % len(leaves)].cluster.members)
            region_q = sorted(
                qid for qid, host in cosmos.placement.items()
                if host in region
            )
            removed = rng.sample(region_q, min(half, len(region_q)))
            for qid in removed:
                cosmos.remove(qid)
                specs.pop(qid, None)
            for _ in range(p["churn_events"] - len(removed)):
                q = _opt_scale_query(
                    next_id, region, p["substreams"], space, rng
                )
                next_id += 1
                specs[q.query_id] = q
                cosmos.insert(q)
            # perturb ~perturb_frac of the live queries' measured loads,
            # drawn from the churn region so the dirtiness (and hence the
            # round's work) stays localized like the insert/remove burst
            region_live = sorted(
                qid for qid, host in cosmos.placement.items()
                if host in region
            )
            n_perturb = max(1, int(p["perturb_frac"] * len(specs)))
            pool = rng.sample(
                region_live, min(n_perturb, len(region_live))
            )
            loads = {
                qid: specs[qid].load * rng.uniform(0.5, 2.0) for qid in pool
            }
            cosmos.refresh_measured_loads(loads)
            _report, t = measure(cosmos.adapt, repeat=1)
            rounds.append({
                "kind": "churn", "round": i, "wall_s": t.best,
                "events": p["churn_events"], "perturbed": len(pool),
            })
    finally:
        _obs.set_active(prev_reg)

    worst = max(r["wall_s"] for r in rounds)
    gate = p.get("max_round_s")
    if gate is not None:
        # the ISSUE 10 acceptance gate: every adaptation round (steady
        # and churn alike) stays below the budget at the 100k/1k scale
        assert worst < gate, (
            f"adaptation round took {worst:.3f}s (budget {gate}s)"
        )

    # two-mode spot check at a reduced size: incremental and full-rebuild
    # placements must be identical after distribute + churn + adapt
    spot_n = p["parity_queries"]
    spot_rng = random.Random(23)
    spot_queries = [
        _opt_scale_query(i, processors, p["substreams"], space, spot_rng)
        for i in range(spot_n)
    ]
    pair = []
    for incremental in (True, False):
        c = Cosmos(
            oracle, processors, space,
            CosmosConfig(k=4, vmax=p["vmax"], incremental=incremental),
        )
        c.distribute(spot_queries)
        for qid in range(0, spot_n, 7):
            c.remove(qid)
        for i in range(40):
            c.insert(_opt_scale_query(
                spot_n + i, processors, p["substreams"], space,
                random.Random(31 + i),
            ))
        c.adapt()
        c.adapt()
        pair.append(dict(c.placement))
    identical = pair[0] == pair[1]
    assert identical, "incremental and reference placements diverged"

    counters = {
        k: v for k, v in sorted(reg.counters.items())
        if k.startswith("opt.")
    }
    return {
        "params": {
            "queries": p["queries"],
            "processors": p["processors"],
            "substreams": p["substreams"],
            "coordinators": len(cosmos.root.all_coordinators()),
            "churn_events": p["churn_events"],
        },
        "fast_s": worst,
        "distribute_s": dist_t.best,
        "warmup_round_s": warmup[0]["wall_s"],
        "warmup": warmup,
        "rounds": rounds,
        "counters": counters,
        "parity": {"identical_placements": identical},
    }


def run_scenarios(
    scale_name: str = "full",
    only: Optional[Sequence[str]] = None,
) -> List[Dict]:
    """Run registered scenarios at a named scale; returns result dicts.

    ``only`` restricts the run to the given scenario names (unknown names
    raise ``KeyError`` so typos fail loudly).
    """
    scale = SCALES[scale_name]
    if only:
        unknown = set(only) - set(SCENARIOS)
        if unknown:
            raise KeyError(f"unknown scenarios: {sorted(unknown)}")
    results: List[Dict] = []
    for name, fn in SCENARIOS.items():
        if only and name not in only:
            continue
        # garbage from a previous scenario must not distort this one's
        # single-sample wall clocks (the speedup gates run on them)
        gc.collect()
        result = fn(dict(scale))
        if result is None:
            continue
        result["name"] = name
        results.append(result)
    return results


# registering the discrete-event simulator scenarios (sim_steady,
# sim_churn, sim_hotspot) and the engine data-plane scenarios
# (engine_batch, sim_batch) imports this module back for the decorator,
# so the imports must come after SCENARIOS/scenario are defined
from . import sim_scenarios  # noqa: E402,F401  (registration side effect)
from . import engine_scenarios  # noqa: E402,F401  (registration side effect)
