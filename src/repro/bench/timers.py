"""Wall-clock timing helpers for the benchmark scenarios.

The implementations live in :mod:`repro.obs.timing` — the shared
timing code path for bench harnesses, one-shot stopwatches and the
subsystem profiler.  This module re-exports them so existing
``repro.bench.timers`` imports keep working.
"""

from __future__ import annotations

from ..obs.timing import Stopwatch, Timing, measure

__all__ = ["Timing", "measure", "Stopwatch"]
