"""Wall-clock timing helpers for the benchmark scenarios."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Tuple

__all__ = ["Timing", "measure"]


@dataclass(frozen=True)
class Timing:
    """Aggregate of repeated timed runs of one callable.

    ``best`` is the headline number (least noise on a shared machine);
    ``mean`` and ``repeat`` qualify it.
    """

    best: float
    mean: float
    repeat: int

    def as_dict(self) -> dict:
        """JSON-ready representation (seconds, floats)."""
        return {"best_s": self.best, "mean_s": self.mean, "repeat": self.repeat}


def measure(
    fn: Callable[[], Any], repeat: int = 3, warmup: int = 0
) -> Tuple[Any, Timing]:
    """Time ``fn()`` ``repeat`` times; returns (last result, timing).

    ``warmup`` extra untimed calls run first (JIT-less Python still
    benefits: imports, caches and allocator warm-up).
    """
    if repeat < 1:
        raise ValueError("repeat must be >= 1")
    for _ in range(warmup):
        fn()
    result = None
    samples = []
    for _ in range(repeat):
        t0 = time.perf_counter()
        result = fn()
        samples.append(time.perf_counter() - t0)
    return result, Timing(
        best=min(samples), mean=sum(samples) / len(samples), repeat=repeat
    )
