"""The paper's simulation workload generator (Section 4.1).

Setup reproduced:

* 20,000 substreams randomly distributed to 100 sources, rates U(1, 10)
  bytes/s;
* ``g = 20`` groups of user queries, each group with its own data hot
  spots: group ``j`` has a private random permutation of the substreams and
  queries of that group pick substreams with zipfian probability
  (theta = 0.8) over the permuted ranks;
* each query requests uniformly 100-200 substreams;
* a query's CPU load is proportional to its input stream rate;
* each query's proxy is a random processor.

All sizes are parameters so the scaled-down bench presets and the paper-
scale preset share one code path.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from .interest import SubstreamSpace, mask_of

__all__ = ["QuerySpec", "WorkloadParams", "Workload", "generate_workload"]


@dataclass
class QuerySpec:
    """One continuous query as the optimizer sees it."""

    query_id: int
    proxy: int
    mask: int
    group: int
    #: CPU time consumed per unit time on a capability-1 processor
    load: float
    #: rate (bytes/s) of the query's result stream
    result_rate: float
    #: size of the query's operator state (for migration cost accounting)
    state_size: float

    def input_rate(self, space: SubstreamSpace) -> float:
        return space.rate(self.mask)


@dataclass(frozen=True)
class WorkloadParams:
    """Knobs of the workload generator; defaults are bench-scale."""

    num_substreams: int = 2000
    num_queries: int = 1000
    groups: int = 20
    zipf_theta: float = 0.8
    substreams_per_query: tuple = (100, 200)
    rate_range: tuple = (1.0, 10.0)
    #: load = load_factor * input_rate
    load_factor: float = 0.01
    #: result rate = selectivity * input rate, selectivity uniform in range
    selectivity_range: tuple = (0.05, 0.3)
    state_size_range: tuple = (1.0, 100.0)

    @staticmethod
    def paper_scale(num_queries: int = 30000) -> "WorkloadParams":
        return WorkloadParams(num_substreams=20000, num_queries=num_queries)


@dataclass
class Workload:
    """A generated query population over a substream space."""

    space: SubstreamSpace
    queries: List[QuerySpec]
    params: WorkloadParams
    #: per-group zipf probability vectors (over permuted substream ids)
    group_perms: List[np.ndarray] = field(default_factory=list, repr=False)
    _rng: random.Random = field(default_factory=random.Random, repr=False)
    _np_rng: Optional[np.random.Generator] = field(default=None, repr=False)
    _zipf_weights: Optional[np.ndarray] = field(default=None, repr=False)
    _next_id: int = 0

    def by_id(self, query_id: int) -> QuerySpec:
        for q in self.queries:
            if q.query_id == query_id:
                return q
        raise KeyError(query_id)

    def total_load(self) -> float:
        return sum(q.load for q in self.queries)

    def new_queries(self, count: int, processors: Sequence[int]) -> List[QuerySpec]:
        """Generate ``count`` additional queries from the same hot spots.

        Used by the Figure 8 experiment (1,500 new queries per interval).
        The new queries are appended to :attr:`queries`.
        """
        fresh = [
            _make_query(
                self._alloc_id(), self.space, self.params, self.group_perms,
                self._zipf_weights, processors, self._rng, self._np_rng,
            )
            for _ in range(count)
        ]
        self.queries.extend(fresh)
        return fresh

    def refresh_loads(self, rates=None) -> None:
        """Recompute query loads after substream rates changed.

        The paper sets query workload proportional to input stream rate, so
        a rate perturbation (Figure 10) shifts processor loads; this method
        models the statistics-collection layer noticing that.  When
        ``rates`` is given (a per-substream rate vector, e.g. measured by
        :func:`repro.sim.workload.measure_rates`), loads derive from those
        measurements instead of the nominal expected rates.
        """
        for q in self.queries:
            q.load = self.params.load_factor * self.space.rate(q.mask, rates)

    def _alloc_id(self) -> int:
        self._next_id += 1
        return self._next_id - 1


def _zipf_probabilities(n: int, theta: float) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks ** (-theta)
    return weights / weights.sum()


def _make_query(
    query_id: int,
    space: SubstreamSpace,
    params: WorkloadParams,
    group_perms: List[np.ndarray],
    zipf_weights: Optional[np.ndarray],
    processors: Sequence[int],
    rng: random.Random,
    np_rng: np.random.Generator,
) -> QuerySpec:
    group = rng.randrange(len(group_perms))
    lo, hi = params.substreams_per_query
    k = rng.randint(lo, min(hi, len(space)))
    # Gumbel top-k trick == weighted sampling without replacement: the k
    # permuted ranks with the largest (log p + Gumbel noise) keys.
    noise = np_rng.gumbel(size=len(space))
    keys = np.log(zipf_weights) + noise
    ranks = np.argpartition(-keys, k - 1)[:k]
    substreams = group_perms[group][ranks]
    mask = mask_of(int(s) for s in substreams)
    input_rate = space.rate(mask)
    selectivity = rng.uniform(*params.selectivity_range)
    return QuerySpec(
        query_id=query_id,
        proxy=rng.choice(list(processors)),
        mask=mask,
        group=group,
        load=params.load_factor * input_rate,
        result_rate=selectivity * input_rate,
        state_size=rng.uniform(*params.state_size_range),
    )


def generate_workload(
    params: WorkloadParams,
    sources: Sequence[int],
    processors: Sequence[int],
    seed: int = 0,
    rng: Optional[np.random.Generator] = None,
) -> Workload:
    """Generate a full workload (substream space + query population).

    An explicit ``rng`` (:class:`numpy.random.Generator`) takes precedence
    over ``seed`` and drives *all* randomness -- the substream space, the
    group permutations and the per-query draws -- so one generator seeds a
    whole simulation end to end.
    """
    if rng is None:
        py_rng = random.Random(seed)
        np_rng = np.random.default_rng(seed)
        space = SubstreamSpace.random(
            params.num_substreams, sources, rate_range=params.rate_range,
            seed=seed,
        )
    else:
        np_rng = rng
        py_rng = random.Random(int(np_rng.integers(0, 2 ** 63)))
        space = SubstreamSpace.random(
            params.num_substreams, sources, rate_range=params.rate_range,
            rng=np_rng,
        )
    rng = py_rng
    group_perms = [
        np_rng.permutation(params.num_substreams) for _ in range(params.groups)
    ]
    zipf_weights = _zipf_probabilities(params.num_substreams, params.zipf_theta)
    workload = Workload(
        space=space,
        queries=[],
        params=params,
        group_perms=group_perms,
    )
    workload._rng = rng
    workload._np_rng = np_rng
    workload._zipf_weights = zipf_weights
    workload._next_id = 0
    for _ in range(params.num_queries):
        workload.queries.append(
            _make_query(
                workload._alloc_id(), space, params, group_perms, zipf_weights,
                processors, rng, np_rng,
            )
        )
    return workload
