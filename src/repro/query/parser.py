"""Recursive-descent parser for the paper's CQL subset.

Grammar (case-insensitive keywords)::

    query      := SELECT select_list FROM binding_list [WHERE predicates]
    select_list:= select_item ("," select_item)*
    select_item:= "*" | alias "." "*" | alias "." attr
    binding    := stream window [alias]
    window     := "[" "Now" "]"
                | "[" "Range" number unit "]"
                | "[" "Rows" integer "]"
    unit       := Second(s) | Minute(s) | Hour(s) | Day(s)
    predicates := comparison (AND comparison)*
    comparison := operand op operand
    op         := "=" | "==" | "!=" | "<>" | "<" | "<=" | ">" | ">="
    operand    := alias "." attr | number | quoted string

This covers Q1-Q5 of the paper verbatim (modulo whitespace).
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple, Union

from .ast import (
    AttrRef,
    Comparison,
    Literal,
    NOW,
    Query,
    SelectItem,
    StreamBinding,
    Window,
)

__all__ = ["parse_query", "ParseError"]


class ParseError(ValueError):
    """Raised on malformed query text."""


_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<number>-?\d+(?:\.\d+)?)
      | (?P<string>'[^']*'|"[^"]*")
      | (?P<op><=|>=|==|!=|<>|<|>|=)
      | (?P<punct>[\[\],.()*])
      | (?P<word>[A-Za-z_][A-Za-z_0-9]*)
    )
    """,
    re.VERBOSE,
)

_UNIT_SECONDS = {
    "second": 1.0,
    "seconds": 1.0,
    "minute": 60.0,
    "minutes": 60.0,
    "hour": 3600.0,
    "hours": 3600.0,
    "day": 86400.0,
    "days": 86400.0,
}


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            if text[pos:].strip() == "":
                break
            raise ParseError(f"unexpected character at {text[pos:pos + 10]!r}")
        pos = m.end()
        for kind in ("number", "string", "op", "punct", "word"):
            value = m.group(kind)
            if value is not None:
                tokens.append((kind, value))
                break
    return tokens


class _Parser:
    def __init__(self, tokens: List[Tuple[str, str]]):
        self.tokens = tokens
        self.i = 0

    # -- token helpers -------------------------------------------------
    def peek(self) -> Optional[Tuple[str, str]]:
        return self.tokens[self.i] if self.i < len(self.tokens) else None

    def next(self) -> Tuple[str, str]:
        tok = self.peek()
        if tok is None:
            raise ParseError("unexpected end of query")
        self.i += 1
        return tok

    def expect_word(self, word: str) -> None:
        kind, value = self.next()
        if kind != "word" or value.lower() != word.lower():
            raise ParseError(f"expected {word!r}, got {value!r}")

    def expect_punct(self, punct: str) -> None:
        kind, value = self.next()
        if kind != "punct" or value != punct:
            raise ParseError(f"expected {punct!r}, got {value!r}")

    def at_word(self, word: str) -> bool:
        tok = self.peek()
        return tok is not None and tok[0] == "word" and tok[1].lower() == word.lower()

    def at_punct(self, punct: str) -> bool:
        tok = self.peek()
        return tok is not None and tok[0] == "punct" and tok[1] == punct

    # -- grammar -------------------------------------------------------
    def query(self, name: str) -> Query:
        self.expect_word("select")
        select = self.select_list()
        self.expect_word("from")
        bindings = self.binding_list()
        where: Tuple[Comparison, ...] = ()
        if self.at_word("where"):
            self.next()
            where = tuple(self.predicates())
        if self.peek() is not None:
            raise ParseError(f"trailing tokens at {self.peek()!r}")
        aliases = [b.alias for b in bindings]
        if len(set(aliases)) != len(aliases):
            raise ParseError("duplicate aliases in FROM clause")
        # expand bare '*' into one item per alias
        expanded: List[SelectItem] = []
        for item in select:
            if item.stream == "*":
                expanded.extend(SelectItem(a, None) for a in aliases)
            else:
                expanded.append(item)
        for item in expanded:
            if item.stream not in aliases:
                raise ParseError(f"SELECT references unknown alias {item.stream!r}")
        return Query(
            select=tuple(expanded), bindings=tuple(bindings), where=where, name=name
        )

    def select_list(self) -> List[SelectItem]:
        items = [self.select_item()]
        while self.at_punct(","):
            self.next()
            items.append(self.select_item())
        return items

    def select_item(self) -> SelectItem:
        if self.at_punct("*"):
            self.next()
            return SelectItem("*", None)
        kind, alias = self.next()
        if kind != "word":
            raise ParseError(f"expected alias in SELECT, got {alias!r}")
        self.expect_punct(".")
        if self.at_punct("*"):
            self.next()
            return SelectItem(alias, None)
        kind, attr = self.next()
        if kind != "word":
            raise ParseError(f"expected attribute after {alias}., got {attr!r}")
        return SelectItem(alias, attr)

    def binding_list(self) -> List[StreamBinding]:
        out = [self.binding()]
        while self.at_punct(","):
            self.next()
            out.append(self.binding())
        return out

    def binding(self) -> StreamBinding:
        kind, stream = self.next()
        if kind != "word":
            raise ParseError(f"expected stream name, got {stream!r}")
        window = self.window()
        alias = stream
        tok = self.peek()
        if tok is not None and tok[0] == "word" and tok[1].lower() not in (
            "where", "and",
        ):
            alias = self.next()[1]
        return StreamBinding(stream=stream, window=window, alias=alias)

    def window(self) -> Window:
        self.expect_punct("[")
        kind, word = self.next()
        if kind != "word":
            raise ParseError(f"expected window spec, got {word!r}")
        word_l = word.lower()
        if word_l == "now":
            self.expect_punct("]")
            return NOW
        if word_l == "range":
            kind, num = self.next()
            if kind != "number":
                raise ParseError(f"expected number in Range window, got {num!r}")
            kind, unit = self.next()
            if kind != "word" or unit.lower() not in _UNIT_SECONDS:
                raise ParseError(f"unknown time unit {unit!r}")
            self.expect_punct("]")
            return Window(seconds=float(num) * _UNIT_SECONDS[unit.lower()])
        if word_l == "rows":
            kind, num = self.next()
            if kind != "number" or "." in num:
                raise ParseError(f"expected integer in Rows window, got {num!r}")
            self.expect_punct("]")
            return Window(rows=int(num))
        raise ParseError(f"unknown window type {word!r}")

    def predicates(self) -> List[Comparison]:
        out = [self.comparison()]
        while self.at_word("and"):
            self.next()
            out.append(self.comparison())
        return out

    def comparison(self) -> Comparison:
        left = self.operand()
        kind, op = self.next()
        if kind != "op":
            raise ParseError(f"expected comparison operator, got {op!r}")
        if op == "=":
            op = "=="
        elif op == "<>":
            op = "!="
        right = self.operand()
        return Comparison(left, op, right)

    def operand(self):
        kind, value = self.next()
        if kind == "number":
            return Literal(float(value) if "." in value else int(value))
        if kind == "string":
            return Literal(value[1:-1])
        if kind == "word":
            self.expect_punct(".")
            kind2, attr = self.next()
            if kind2 != "word":
                raise ParseError(f"expected attribute after {value}., got {attr!r}")
            return AttrRef(value, attr)
        raise ParseError(f"unexpected operand {value!r}")


def parse_query(text: str, name: str = "") -> Query:
    """Parse one CQL query; raises :class:`ParseError` on bad input."""
    return _Parser(_tokenize(text)).query(name)
