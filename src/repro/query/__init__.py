"""Query layer: interest vectors, workloads, CQL subset, containment."""

from .interest import SubstreamSpace, bits_of, iter_bits, mask_of
from .workload import QuerySpec, Workload, WorkloadParams, generate_workload

__all__ = [
    "SubstreamSpace",
    "mask_of",
    "bits_of",
    "iter_bits",
    "QuerySpec",
    "Workload",
    "WorkloadParams",
    "generate_workload",
]

from .ast import AttrRef, Comparison, Literal, NOW, Query, SelectItem, StreamBinding, Window
from .containment import contains, equivalent, selection_filter, selections_imply
from .merging import (
    SharedGroup,
    SharedGroupEntry,
    merge_all,
    merge_queries,
    mergeable,
    split_subscription,
)
from .parser import ParseError, parse_query

__all__ += [
    "Window", "NOW", "AttrRef", "Literal", "Comparison", "StreamBinding",
    "SelectItem", "Query", "parse_query", "ParseError",
    "contains", "equivalent", "selection_filter", "selections_imply",
    "merge_queries", "merge_all", "mergeable", "split_subscription",
    "SharedGroup", "SharedGroupEntry",
]
