"""Substream partitioning and data-interest bit vectors.

Section 3.2 of the paper: estimating the overlap between two queries by
semantic reasoning is too expensive to do at the optimizer's frequency, so
each stream is partitioned into *substreams* and every query's data
interest becomes a bit vector over substreams.  Overlap estimation is then
a bitwise AND plus a rate lookup.

Bit vectors are plain Python ints (arbitrary precision), which makes AND /
OR / popcount fast and allocation-free for the 20,000-substream paper
configuration.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Sequence

import numpy as np

__all__ = ["SubstreamSpace", "bits_of", "mask_of", "iter_bits"]


def mask_of(substream_ids: Iterable[int]) -> int:
    """Bit vector with the given substream ids set."""
    mask = 0
    for sid in substream_ids:
        mask |= 1 << sid
    return mask


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the indices of the set bits of ``mask`` in increasing order."""
    while mask:
        lsb = mask & -mask
        yield lsb.bit_length() - 1
        mask ^= lsb


def bits_of(mask: int) -> List[int]:
    return list(iter_bits(mask))


@dataclass
class SubstreamSpace:
    """The universe of substreams: rates and source placement.

    Attributes
    ----------
    rates:
        ``rates[i]`` is the data rate (bytes/s) of substream ``i``.
    source_of:
        ``source_of[i]`` is the topology node id of the source that
        publishes substream ``i``.
    """

    rates: np.ndarray
    source_of: np.ndarray
    _source_masks: Dict[int, int] = field(default_factory=dict, repr=False)
    #: bumped on every in-place rate mutation; consumers that cache
    #: rate-derived aggregates compare generations instead of rescanning
    rates_generation: int = field(default=0, repr=False)

    def __post_init__(self):
        self.rates = np.asarray(self.rates, dtype=float)
        self.source_of = np.asarray(self.source_of, dtype=np.int64)
        if len(self.rates) != len(self.source_of):
            raise ValueError("rates and source_of must have the same length")
        self._rebuild_source_masks()

    def _rebuild_source_masks(self) -> None:
        self._source_masks.clear()
        for sid, src in enumerate(self.source_of):
            src = int(src)
            self._source_masks[src] = self._source_masks.get(src, 0) | (1 << sid)

    @classmethod
    def random(
        cls,
        num_substreams: int,
        sources: Sequence[int],
        rate_range=(1.0, 10.0),
        seed: int = 0,
        rng: "np.random.Generator" = None,
    ) -> "SubstreamSpace":
        """Random space matching the paper's simulation setup.

        Substreams are distributed to sources uniformly at random and each
        substream's rate is uniform in ``rate_range`` (the paper uses 1-10
        bytes/s over 100 sources and 20,000 substreams).  An explicit
        ``rng`` takes precedence over ``seed``, letting callers thread one
        :class:`numpy.random.Generator` through a whole simulation run.
        """
        if rng is None:
            rng = np.random.default_rng(seed)
        rates = rng.uniform(rate_range[0], rate_range[1], size=num_substreams)
        source_of = rng.choice(np.asarray(sources, dtype=np.int64), size=num_substreams)
        return cls(rates=rates, source_of=source_of)

    def __len__(self) -> int:
        return len(self.rates)

    @property
    def sources(self) -> List[int]:
        return sorted(self._source_masks)

    def source_mask(self, source: int) -> int:
        """Bit vector of all substreams hosted at ``source``."""
        return self._source_masks.get(source, 0)

    def _indices(self, mask: int) -> np.ndarray:
        """Set-bit indices of ``mask`` as a numpy array (C-speed unpack)."""
        if mask == 0:
            return np.empty(0, dtype=np.int64)
        nbytes = (len(self) + 7) // 8
        raw = np.frombuffer(
            mask.to_bytes(nbytes, "little"), dtype=np.uint8
        )
        bits = np.unpackbits(raw, bitorder="little")[: len(self)]
        return np.nonzero(bits)[0]

    def rate(self, mask: int, rates=None) -> float:
        """Total rate of the substreams selected by ``mask``.

        ``rates`` optionally substitutes a measured per-substream rate
        vector (same length as the space) for the nominal one -- how the
        simulator's sampled arrival counts feed load estimation.
        """
        idx = self._indices(mask)
        if idx.size == 0:
            return 0.0
        vec = self.rates if rates is None else np.asarray(rates, dtype=float)
        return float(vec[idx].sum())

    def overlap_rate(self, mask_a: int, mask_b: int) -> float:
        """Rate of the data of interest to *both* masks (q-q edge weight)."""
        return self.rate(mask_a & mask_b)

    def rates_by_source(self, mask: int) -> Dict[int, float]:
        """Per-source requested rate for a query interest mask.

        These are the q-vertex -> source n-vertex edge weights of the query
        graph.
        """
        idx = self._indices(mask)
        if idx.size == 0:
            return {}
        srcs = self.source_of[idx]
        weights = self.rates[idx]
        totals = np.zeros(int(srcs.max()) + 1)
        np.add.at(totals, srcs, weights)
        nz = np.nonzero(totals)[0]
        return {int(s): float(totals[s]) for s in nz}

    def perturb_rates(
        self, substream_ids: Sequence[int], factor: float
    ) -> None:
        """Multiply the rates of the given substreams by ``factor``.

        Used by the Figure 10 experiment, which increases ("I") or
        decreases ("D") the rates of 800 random streams at runtime.
        """
        for sid in substream_ids:
            self.rates[sid] *= factor
        self.rates_generation += 1

    def random_substreams(self, count: int, rng: random.Random) -> List[int]:
        return rng.sample(range(len(self)), count)
