"""Window-based query containment and equivalence (Section 2.1).

The paper extends classic conjunctive-query containment to continuous
window queries so that a processor can run one merged superset query and
let users carve their results out of its result stream.  Query ``Q`` is
contained in ``Q'`` (every result tuple of Q is derivable from Q' results)
when, after aligning the two queries' stream bindings:

1. **windows dominate** -- each window of Q' contains the corresponding
   window of Q (a ``[Range 1 Hour]`` window sees every pairing a
   ``[Range 30 Minutes]`` window sees);
2. **predicates imply** -- Q's selection predicates imply Q's share of
   Q's own filter, i.e. every selection of Q' is implied by Q's
   selections, and the join predicates of the two queries are identical
   (we do not attempt join-predicate weakening);
3. **projections cover** -- Q' outputs every attribute Q outputs (plus
   whatever Q's split subscription needs to re-apply Q's residual
   filters and window constraint).

These are sufficient (not complete) conditions -- the standard practical
trade-off.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..pubsub.predicates import AttributeRange, Constraint, Filter
from .ast import AttrRef, Comparison, Literal, Query, SelectItem, StreamBinding

__all__ = [
    "selection_filter",
    "selections_imply",
    "contains",
    "equivalent",
    "align_bindings",
]


def selection_filter(query: Query, alias: Optional[str] = None) -> Filter:
    """The conjunction of a query's selection predicates as a pub/sub
    :class:`~repro.pubsub.predicates.Filter` over ``Alias.attr`` names."""
    constraints = []
    for c in query.selections():
        if alias is not None and isinstance(c.left, AttrRef) and c.left.stream != alias:
            continue
        attr = str(c.left)
        if not isinstance(c.right, Literal):
            continue
        constraints.append(Constraint(attr, c.op, c.right.value))
    return Filter(constraints)


def selections_imply(stronger: Query, weaker: Query) -> bool:
    """Whether ``stronger``'s selections imply ``weaker``'s.

    Implication over conjunctions of attribute/constant comparisons is
    exactly filter covering with the roles swapped: the *weaker* filter
    must cover the *stronger* one.
    """
    return selection_filter(weaker).covers(selection_filter(stronger))


def align_bindings(a: Query, b: Query) -> Optional[List[Tuple[StreamBinding, StreamBinding]]]:
    """Match the two queries' FROM clauses stream-by-stream.

    Returns aligned ``(a_binding, b_binding)`` pairs, or None when the
    queries read different stream sets (in which case neither contains
    the other).  Alignment requires equal aliases to keep predicate
    comparison sound (the paper's examples share aliases S1/S2).
    """
    if len(a.bindings) != len(b.bindings):
        return None
    pairs: List[Tuple[StreamBinding, StreamBinding]] = []
    used = set()
    for ba in a.bindings:
        match = None
        for bb in b.bindings:
            if bb.alias in used:
                continue
            if bb.stream == ba.stream and bb.alias == ba.alias:
                match = bb
                break
        if match is None:
            return None
        used.add(match.alias)
        pairs.append((ba, match))
    return pairs


def _join_set(q: Query) -> set:
    """Canonicalised join predicates (orientation-insensitive)."""
    out = set()
    for c in q.joins():
        canon = min(
            (str(c.left), c.op, str(c.right)),
            (str(c.flipped().left), c.flipped().op, str(c.flipped().right)),
        )
        out.add(canon)
    return out


def contains(superset: Query, subset: Query) -> bool:
    """``subset``'s results are derivable from ``superset``'s result stream.

    Sufficient conditions: aligned bindings with dominating windows,
    identical join predicates, implied selections, covering projections.
    """
    pairs = align_bindings(superset, subset)
    if pairs is None:
        return False
    for sup_binding, sub_binding in pairs:
        if not sup_binding.window.contains(sub_binding.window):
            return False
    if _join_set(superset) != _join_set(subset):
        return False
    if not selections_imply(subset, superset):
        return False
    # projection covering: superset must output everything subset outputs,
    # plus the attributes subset's *residual* filters need -- i.e. the
    # selection predicates the superset does not already enforce.  Window
    # re-checks ride on the per-alias ``timestamp_lag`` attributes, which
    # the engine always carries through projections.
    sup_filter = selection_filter(superset)
    for alias in (b.alias for b in subset.bindings):
        needed = subset.projected_attrs(alias)
        provided = superset.projected_attrs(alias)
        if provided is None:
            continue
        if needed is None:
            return False  # subset wants Alias.*, superset projects a subset
        if not set(needed) <= set(provided):
            return False
        residual = set()
        for c in subset.selections():
            if not isinstance(c.left, AttrRef) or c.left.stream != alias:
                continue
            if not isinstance(c.right, Literal):
                continue
            single = Filter([Constraint(str(c.left), c.op, c.right.value)])
            if not single.covers(sup_filter):
                residual.add(c.left.attr)
        if not residual <= set(provided):
            return False
    return True


def equivalent(a: Query, b: Query) -> bool:
    """Mutual containment."""
    return contains(a, b) and contains(b, a)
