"""Result-stream sharing: merged superset queries and split subscriptions.

Section 2.1 of the paper: when several queries with overlapping results
run at one processor, COSMOS composes a single query ``Q`` whose result is
a superset of all of them, runs only ``Q``, and gives every user a
pub/sub subscription that carves its own result out of ``Q``'s result
stream -- re-applying the residual selection predicates, the window
constraint (as a timestamp band) and the projection.

``merge_queries(Q3, Q4)`` reproduces the paper's ``Q5``;
``split_subscription(Q5, Q3, s5)`` reproduces ``p^3_2``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..pubsub.predicates import Constraint, Filter
from ..pubsub.subscriptions import Subscription
from .ast import (
    AttrRef,
    Comparison,
    Literal,
    Query,
    SelectItem,
    StreamBinding,
    Window,
)
from .containment import align_bindings, contains, selection_filter

__all__ = ["merge_queries", "split_subscription", "mergeable", "SharedGroup"]


def mergeable(a: Query, b: Query) -> bool:
    """Whether a useful superset query exists for ``a`` and ``b``.

    Requires aligned bindings (same streams and aliases, any windows) and
    identical join predicates -- the same preconditions containment uses,
    minus the window/selection/projection dominance (the merger weakens
    those).
    """
    if align_bindings(a, b) is None:
        return False
    from .containment import _join_set

    return _join_set(a) == _join_set(b)


def _window_hull(a: Window, b: Window) -> Window:
    if a.is_time and b.is_time:
        return a if a.seconds >= b.seconds else b
    if not a.is_time and not b.is_time:
        return a if a.rows >= b.rows else b
    # mixed windows: fall back to the time window (row windows cannot be
    # reconstructed from a time superset in general, so callers should
    # check `mergeable` + containment before trusting mixed merges)
    return a if a.is_time else b


def _selection_hull(a: Query, b: Query, alias: str) -> List[Comparison]:
    """Per-alias predicate hull: keep only constraints implied by BOTH."""
    fa = selection_filter(a, alias)
    fb = selection_filter(b, alias)
    hull = fa.hull(fb)
    out: List[Comparison] = []
    for attr, rng in hull.ranges().items():
        _, attrname = attr.split(".", 1)
        if rng.membership is not None:
            for v in sorted(rng.membership, key=str):
                out.append(Comparison(AttrRef(alias, attrname), "==", Literal(v)))
            continue
        if rng.low != float("-inf"):
            op = ">=" if rng.low_inclusive else ">"
            out.append(Comparison(AttrRef(alias, attrname), op, Literal(rng.low)))
        if rng.high != float("inf"):
            op = "<=" if rng.high_inclusive else "<"
            out.append(Comparison(AttrRef(alias, attrname), op, Literal(rng.high)))
    return out


def merge_queries(a: Query, b: Query, name: str = "") -> Query:
    """The superset query covering ``a`` and ``b`` (the paper's Q5).

    * windows: per-binding hull (the larger window);
    * selections: per-attribute hull (constraints both queries imply);
    * join predicates: shared (identical by precondition);
    * projection: union of the two queries' select lists, widened to
      ``Alias.*`` when either side asks for it, and always including
      timestamps (needed by the split subscriptions).
    """
    if not mergeable(a, b):
        raise ValueError("queries are not mergeable (streams/joins differ)")
    pairs = align_bindings(a, b)
    assert pairs is not None
    bindings = tuple(
        StreamBinding(
            stream=ba.stream,
            window=_window_hull(ba.window, bb.window),
            alias=ba.alias,
        )
        for ba, bb in pairs
    )

    select: List[SelectItem] = []
    for ba, _ in pairs:
        alias = ba.alias
        pa = a.projected_attrs(alias)
        pb = b.projected_attrs(alias)
        if pa is None or pb is None:
            select.append(SelectItem(alias, None))
            continue
        merged_attrs = sorted(set(pa) | set(pb) | {"timestamp"})
        select.extend(SelectItem(alias, attr) for attr in merged_attrs)

    where: List[Comparison] = []
    for ba, _ in pairs:
        where.extend(_selection_hull(a, b, ba.alias))
    where.extend(a.joins())
    return Query(
        select=tuple(select), bindings=bindings, where=tuple(where), name=name
    )


def split_subscription(
    merged: Query, original: Query, result_stream: str
) -> Subscription:
    """The subscription a user inserts to get ``original``'s results out of
    ``merged``'s result stream (the paper's p^3_2 / p^4_2).

    Contains:

    * S  -- the merged result stream name;
    * P  -- the original query's projected (qualified) attributes;
    * F  -- the original residual selections plus, per non-``[Now]``
      binding, the window constraint as a timestamp band
      ``-W <= Alias.timestamp - Anchor.timestamp <= 0`` encoded against
      the merged stream's top-level timestamp.
    """
    if not contains(merged, original):
        raise ValueError("merged query does not contain the original")

    projection: Optional[List[str]] = []
    for b in original.bindings:
        attrs = original.projected_attrs(b.alias)
        if attrs is None:
            merged_attrs = merged.projected_attrs(b.alias)
            if merged_attrs is None:
                projection = None
                break
            attrs = merged_attrs
        projection.extend(f"{b.alias}.{attr}" for attr in attrs)

    constraints: List[Constraint] = []
    for c in original.selections():
        assert isinstance(c.left, AttrRef)
        if isinstance(c.right, Literal):
            constraints.append(Constraint(str(c.left), c.op, c.right.value))
    # window bands: tuples in the merged result carry per-alias timestamps;
    # the newest side anchors at the result timestamp, so the partner's
    # timestamp must lie within the original (smaller) window.
    for b in original.bindings:
        mb = merged.binding(b.alias)
        if b.window.is_time and mb.window.is_time:
            if mb.window.seconds > b.window.seconds:
                constraints.append(
                    Constraint(
                        f"{b.alias}.timestamp_lag", "<=", float(b.window.seconds)
                    )
                )
    return Subscription.to_streams(
        [result_stream],
        projection=projection,
        filter=Filter(constraints),
    )


class SharedGroup:
    """Bookkeeping for result sharing at one processor.

    Greedy pairwise merging: queries are added one by one; each new query
    merges into the first group it is mergeable with, and the group's
    superset query is recomputed.
    """

    def __init__(self, processor: int):
        self.processor = processor
        #: list of (merged query, member originals)
        self.groups: List[Tuple[Query, List[Query]]] = []

    def add(self, query: Query) -> Query:
        """Add a query; returns the (possibly merged) query to execute."""
        for i, (merged, members) in enumerate(self.groups):
            if mergeable(merged, query):
                new_merged = merge_queries(
                    merged, query, name=f"shared_{self.processor}_{i}"
                )
                members.append(query)
                self.groups[i] = (new_merged, members)
                return new_merged
        self.groups.append((query, [query]))
        return query

    def executed_queries(self) -> List[Query]:
        return [merged for merged, _ in self.groups]

    def subscriptions(self, stream_namer) -> List[Tuple[Query, Subscription]]:
        """Per original query: its split subscription.

        ``stream_namer(group_index)`` names each merged result stream.
        """
        out: List[Tuple[Query, Subscription]] = []
        for i, (merged, members) in enumerate(self.groups):
            stream = stream_namer(i)
            for original in members:
                out.append(
                    (original, split_subscription(merged, original, stream))
                )
        return out
