"""Result-stream sharing: merged superset queries and split subscriptions.

Section 2.1 of the paper: when several queries with overlapping results
run at one processor, COSMOS composes a single query ``Q`` whose result is
a superset of all of them, runs only ``Q``, and gives every user a
pub/sub subscription that carves its own result out of ``Q``'s result
stream -- re-applying the residual selection predicates, the window
constraint (as a timestamp band) and the projection.

``merge_queries(Q3, Q4)`` reproduces the paper's ``Q5``;
``split_subscription(Q5, Q3, s5)`` reproduces ``p^3_2``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..pubsub.predicates import Constraint, Filter
from ..pubsub.subscriptions import Subscription
from .ast import (
    AttrRef,
    Comparison,
    Literal,
    Query,
    SelectItem,
    StreamBinding,
    Window,
)
from .containment import align_bindings, contains, selection_filter

__all__ = [
    "merge_queries",
    "merge_all",
    "split_subscription",
    "source_subscriptions",
    "mergeable",
    "SharedGroup",
    "SharedGroupEntry",
]


def mergeable(a: Query, b: Query) -> bool:
    """Whether a useful superset query exists for ``a`` and ``b``.

    Requires aligned bindings (same streams and aliases, any windows) and
    identical join predicates -- the same preconditions containment uses,
    minus the window/selection/projection dominance (the merger weakens
    those).
    """
    if align_bindings(a, b) is None:
        return False
    from .containment import _join_set

    return _join_set(a) == _join_set(b)


def _window_hull(a: Window, b: Window) -> Window:
    if a.is_time and b.is_time:
        return a if a.seconds >= b.seconds else b
    if not a.is_time and not b.is_time:
        return a if a.rows >= b.rows else b
    # mixed windows: fall back to the time window (row windows cannot be
    # reconstructed from a time superset in general, so callers should
    # check `mergeable` + containment before trusting mixed merges)
    return a if a.is_time else b


def _selection_hull(a: Query, b: Query, alias: str) -> List[Comparison]:
    """Per-alias predicate hull: keep only constraints implied by BOTH."""
    fa = selection_filter(a, alias)
    fb = selection_filter(b, alias)
    hull = fa.hull(fb)
    out: List[Comparison] = []
    for attr, rng in hull.ranges().items():
        _, attrname = attr.split(".", 1)
        if rng.membership is not None:
            for v in sorted(rng.membership, key=str):
                out.append(Comparison(AttrRef(alias, attrname), "==", Literal(v)))
            continue
        if rng.low != float("-inf"):
            op = ">=" if rng.low_inclusive else ">"
            out.append(Comparison(AttrRef(alias, attrname), op, Literal(rng.low)))
        if rng.high != float("inf"):
            op = "<=" if rng.high_inclusive else "<"
            out.append(Comparison(AttrRef(alias, attrname), op, Literal(rng.high)))
    return out


def merge_queries(a: Query, b: Query, name: str = "") -> Query:
    """The superset query covering ``a`` and ``b`` (the paper's Q5).

    * windows: per-binding hull (the larger window);
    * selections: per-attribute hull (constraints both queries imply);
    * join predicates: shared (identical by precondition);
    * projection: union of the two queries' select lists, widened to
      ``Alias.*`` when either side asks for it, and always including
      timestamps (needed by the split subscriptions).
    """
    if not mergeable(a, b):
        raise ValueError("queries are not mergeable (streams/joins differ)")
    pairs = align_bindings(a, b)
    assert pairs is not None
    bindings = tuple(
        StreamBinding(
            stream=ba.stream,
            window=_window_hull(ba.window, bb.window),
            alias=ba.alias,
        )
        for ba, bb in pairs
    )

    select: List[SelectItem] = []
    for ba, _ in pairs:
        alias = ba.alias
        pa = a.projected_attrs(alias)
        pb = b.projected_attrs(alias)
        if pa is None or pb is None:
            select.append(SelectItem(alias, None))
            continue
        merged_attrs = sorted(set(pa) | set(pb) | {"timestamp"})
        select.extend(SelectItem(alias, attr) for attr in merged_attrs)

    where: List[Comparison] = []
    for ba, _ in pairs:
        where.extend(_selection_hull(a, b, ba.alias))
    where.extend(a.joins())
    return Query(
        select=tuple(select), bindings=bindings, where=tuple(where), name=name
    )


def merge_all(queries: Sequence[Query], name: str = "") -> Query:
    """Fold a non-empty sequence of pairwise-mergeable queries into the
    *tight* superset query (left fold of :func:`merge_queries`).

    Re-merging a group from its current members goes through here: unlike
    hulling against a previous merged query, the fold forgets departed
    members, so filters/windows can narrow back down.
    """
    if not queries:
        raise ValueError("cannot merge an empty query set")
    merged = queries[0]
    for q in queries[1:]:
        merged = merge_queries(merged, q, name=name)
    if merged.name != name:
        merged = Query(
            select=merged.select,
            bindings=merged.bindings,
            where=merged.where,
            name=name,
        )
    return merged


def split_subscription(
    merged: Query,
    original: Query,
    result_stream: str,
    emitted_after: Optional[float] = None,
    emitted_before: Optional[float] = None,
) -> Subscription:
    """The subscription a user inserts to get ``original``'s results out of
    ``merged``'s result stream (the paper's p^3_2 / p^4_2).

    Contains:

    * S  -- the merged result stream name;
    * P  -- the original query's projected (qualified) attributes;
    * F  -- the original residual selections plus, per non-``[Now]``
      binding of a *join* query, the window constraint as a timestamp band
      ``-W <= Alias.timestamp - Anchor.timestamp <= 0`` encoded against
      the merged stream's top-level timestamp.  Single-binding queries get
      no band: their results carry no ``timestamp_lag`` attribute and the
      window has no effect on selection-only semantics, so a band would
      (wrongly) drop every result.

    ``emitted_after`` / ``emitted_before`` bound the *lifetime span* of
    the carve: per binding, only result tuples all of whose constituent
    input tuples were emitted inside ``[emitted_after, emitted_before]``
    match.  A shared execution plane uses this under churn -- a member
    that joins a long-running merged query must not receive results
    derived from inputs that predate it (its own plan would have started
    with empty windows), and a departing member must stop at exactly the
    inputs a freshly-removed plan would have seen.
    """
    if not contains(merged, original):
        raise ValueError("merged query does not contain the original")

    projection: Optional[List[str]] = []
    for b in original.bindings:
        attrs = original.projected_attrs(b.alias)
        if attrs is None:
            merged_attrs = merged.projected_attrs(b.alias)
            if merged_attrs is None:
                projection = None
                break
            attrs = merged_attrs
        projection.extend(f"{b.alias}.{attr}" for attr in attrs)

    constraints: List[Constraint] = []
    for c in original.selections():
        assert isinstance(c.left, AttrRef)
        if isinstance(c.right, Literal):
            constraints.append(Constraint(str(c.left), c.op, c.right.value))
    # window bands: tuples in the merged result carry per-alias timestamps;
    # the newest side anchors at the result timestamp, so the partner's
    # timestamp must lie within the original (smaller) window.  Only join
    # results carry the per-alias ``timestamp_lag`` attributes the band
    # rides on; for single-binding queries the window is semantically
    # inert (no join state), so no band is needed or emitted.
    if len(original.bindings) > 1:
        for b in original.bindings:
            mb = merged.binding(b.alias)
            if b.window.is_time and mb.window.is_time:
                if mb.window.seconds > b.window.seconds:
                    constraints.append(
                        Constraint(
                            f"{b.alias}.timestamp_lag", "<=", float(b.window.seconds)
                        )
                    )
    if emitted_after is not None or emitted_before is not None:
        for b in original.bindings:
            if emitted_after is not None:
                constraints.append(
                    Constraint(f"{b.alias}.timestamp", ">=", float(emitted_after))
                )
            if emitted_before is not None:
                constraints.append(
                    Constraint(f"{b.alias}.timestamp", "<=", float(emitted_before))
                )
    if projection is not None:
        # the filter is evaluated at every overlay hop, and in-network
        # projection forwards only the union of requested attributes --
        # a subscription must request what its own filter reads, or the
        # carve silently drops everything one hop past the first
        needed = {c.attr for c in constraints}
        projection.extend(sorted(needed - set(projection)))
    return Subscription.to_streams(
        [result_stream],
        projection=projection,
        filter=Filter(constraints),
    )


def source_subscriptions(query: Query) -> List[Subscription]:
    """The ``p^1`` source subscriptions of a (merged) query.

    One subscription per distinct input stream, carrying the query's
    per-alias selection constraints with the alias prefix stripped
    (source events are unqualified) -- the paper's early data filtering.
    A stream read through several aliases (self-join) gets the
    per-alias hull, so every tuple any alias could use is delivered.
    """
    from .ast import AttrRef, Literal

    by_stream = {}
    for binding in query.bindings:
        constraints = [
            Constraint(c.left.attr, c.op, c.right.value)
            for c in query.selections()
            if isinstance(c.left, AttrRef)
            and c.left.stream == binding.alias
            and isinstance(c.right, Literal)
        ]
        filt = Filter(constraints)
        prev = by_stream.get(binding.stream)
        by_stream[binding.stream] = filt if prev is None else prev.hull(filt)
    return [
        Subscription.to_streams([stream], filter=filt)
        for stream, filt in by_stream.items()
    ]


@dataclass
class SharedGroupEntry:
    """One shared group: a merged superset query plus its members.

    ``gid`` is stable for the entry's whole lifetime -- result streams,
    engine plans and advertisements key off it, never off a list index
    (indices shift when groups collapse or retire, leaving orphan state
    behind).
    """

    gid: int
    merged: Query
    members: List[Query] = field(default_factory=list)

    def member_names(self) -> List[str]:
        return [m.name for m in self.members]


class SharedGroup:
    """Bookkeeping for result sharing at one processor.

    Greedy pairwise merging: queries are added one by one; each new query
    merges into the first group it is mergeable with, and the group's
    superset query is recomputed.  Groups carry stable ids
    (:class:`SharedGroupEntry`); mutations report every entry they
    retired so the deployment layer can tear down the retired groups'
    plans, advertisements and subscriptions.
    """

    def __init__(self, processor: int):
        self.processor = processor
        self.entries: List[SharedGroupEntry] = []
        self._next_gid = 0

    # -- compatibility view used by older callers/tests ----------------
    @property
    def groups(self) -> List[Tuple[Query, List[Query]]]:
        """``[(merged query, member originals)]`` in entry order."""
        return [(e.merged, e.members) for e in self.entries]

    def _name(self, gid: int) -> str:
        return f"shared_{self.processor}_{gid}"

    def _fold(self, entry: SharedGroupEntry) -> None:
        entry.merged = merge_all(entry.members, name=self._name(entry.gid))

    def add(self, query: Query) -> Tuple[SharedGroupEntry, List[SharedGroupEntry]]:
        """Add (or re-declare) a query.

        Returns ``(entry, retired)``: the entry now executing the query,
        plus every entry this add retired -- the previous home of a
        re-declared query that emptied, and any group the widened merged
        query absorbed.  Re-declaring a name replaces the old member, so
        the fold can *narrow* filters/windows the stale version forced.
        Note: if a re-declared query lands in a *different* group, the
        old group survives re-folded but is not reported -- a deployment
        layer that installs merged plans should withdraw the old
        declaration first (``SharingDeployment.deploy`` does) so the
        narrowed survivor is reinstalled.
        """
        retired: List[SharedGroupEntry] = []
        if query.name:
            retired.extend(self.remove(query.name)[1])
        home: Optional[SharedGroupEntry] = None
        for entry in self.entries:
            if mergeable(entry.merged, query):
                entry.members.append(query)
                self._fold(entry)
                home = entry
                break
        if home is None:
            home = SharedGroupEntry(gid=self._next_gid, merged=query, members=[query])
            self._next_gid += 1
            self._fold(home)
            self.entries.append(home)
        # collapse: a widened merged query can become mergeable with other
        # groups; absorb them so each query class runs exactly once
        absorbed = True
        while absorbed:
            absorbed = False
            for other in self.entries:
                if other is home:
                    continue
                if mergeable(home.merged, other.merged):
                    home.members.extend(other.members)
                    self._fold(home)
                    self.entries.remove(other)
                    retired.append(other)
                    absorbed = True
                    break
        return home, retired

    def remove(
        self, name: str
    ) -> Tuple[Optional[SharedGroupEntry], List[SharedGroupEntry]]:
        """Remove the member called ``name`` and re-fold its group.

        Returns ``(entry, retired)``: the member's (re-merged) group, or
        ``None`` with the emptied group in ``retired``.  Unknown names
        are a no-op.
        """
        for entry in self.entries:
            kept = [m for m in entry.members if m.name != name]
            if len(kept) == len(entry.members):
                continue
            if not kept:
                self.entries.remove(entry)
                return None, [entry]
            entry.members = kept
            self._fold(entry)
            return entry, []
        return None, []

    def entry_of(self, name: str) -> Optional[SharedGroupEntry]:
        for entry in self.entries:
            if any(m.name == name for m in entry.members):
                return entry
        return None

    def executed_queries(self) -> List[Query]:
        return [e.merged for e in self.entries]

    def subscriptions(self, stream_namer) -> List[Tuple[Query, Subscription]]:
        """Per original query: its split subscription.

        ``stream_namer(gid)`` names each merged result stream.
        """
        out: List[Tuple[Query, Subscription]] = []
        for entry in self.entries:
            stream = stream_namer(entry.gid)
            for original in entry.members:
                out.append(
                    (original, split_subscription(entry.merged, original, stream))
                )
        return out
