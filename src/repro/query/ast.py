"""AST for the CQL subset used throughout the paper's examples.

The paper writes queries in "an SQL-like language similar to CQL":

    SELECT <projection list>
    FROM Stream1 [window] Alias1, Stream2 [window] Alias2
    WHERE <conjunction of predicates>

Windows are ``[Now]``, ``[Range N <unit>]`` or ``[Rows N]``.  Predicates
are comparisons between attribute references and constants (selections)
or between two attribute references (join predicates, e.g.
``S1.snowHeight > S2.snowHeight`` or the timestamp band joins).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

__all__ = [
    "Window",
    "NOW",
    "AttrRef",
    "Literal",
    "Comparison",
    "StreamBinding",
    "SelectItem",
    "Query",
]


@dataclass(frozen=True)
class Window:
    """A sliding window: time-based (seconds) or row-based.

    ``Window(seconds=0)`` is CQL's ``[Now]``; ``Window(rows=n)`` keeps the
    last n rows.  Exactly one of ``seconds``/``rows`` is set.
    """

    seconds: Optional[float] = None
    rows: Optional[int] = None

    def __post_init__(self):
        if (self.seconds is None) == (self.rows is None):
            raise ValueError("window must be either time-based or row-based")
        if self.seconds is not None and self.seconds < 0:
            raise ValueError("negative time window")
        if self.rows is not None and self.rows <= 0:
            raise ValueError("row window must be positive")

    @property
    def is_time(self) -> bool:
        return self.seconds is not None

    def contains(self, other: "Window") -> bool:
        """Window dominance: every tuple visible in ``other`` is visible
        in ``self`` (needed for query containment)."""
        if self.is_time and other.is_time:
            return self.seconds >= other.seconds
        if not self.is_time and not other.is_time:
            return self.rows >= other.rows
        return False

    def __str__(self) -> str:
        if self.is_time:
            return "[Now]" if self.seconds == 0 else f"[Range {self.seconds} Seconds]"
        return f"[Rows {self.rows}]"


#: CQL's ``[Now]`` window.
NOW = Window(seconds=0)


@dataclass(frozen=True)
class AttrRef:
    """A qualified attribute reference ``Alias.attr``."""

    stream: str  # alias
    attr: str

    def __str__(self) -> str:
        return f"{self.stream}.{self.attr}"


@dataclass(frozen=True)
class Literal:
    value: Union[int, float, str]

    def __str__(self) -> str:
        return repr(self.value)


Operand = Union[AttrRef, Literal]

_NEGATIONS = {"==": "!=", "!=": "==", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}
_FLIPS = {"==": "==", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


@dataclass(frozen=True)
class Comparison:
    """``left OP right`` with OP in == != < <= > >=."""

    left: Operand
    op: str
    right: Operand

    def __post_init__(self):
        if self.op not in _FLIPS:
            raise ValueError(f"unsupported comparison operator {self.op!r}")

    def is_selection(self) -> bool:
        """Attribute vs constant."""
        return isinstance(self.left, AttrRef) != isinstance(self.right, AttrRef)

    def is_join(self) -> bool:
        """Attribute vs attribute over two different aliases."""
        return (
            isinstance(self.left, AttrRef)
            and isinstance(self.right, AttrRef)
            and self.left.stream != self.right.stream
        )

    def normalised(self) -> "Comparison":
        """Selection predicates with the attribute on the left."""
        if isinstance(self.right, AttrRef) and isinstance(self.left, Literal):
            return Comparison(self.right, _FLIPS[self.op], self.left)
        return self

    def flipped(self) -> "Comparison":
        return Comparison(self.right, _FLIPS[self.op], self.left)

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class StreamBinding:
    """One FROM-clause entry: stream name, window, alias."""

    stream: str
    window: Window
    alias: str

    def __str__(self) -> str:
        return f"{self.stream} {self.window} {self.alias}"


@dataclass(frozen=True)
class SelectItem:
    """Either ``Alias.*`` (``attr is None``) or ``Alias.attr``."""

    stream: str
    attr: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.stream}.{self.attr or '*'}"


@dataclass(frozen=True)
class Query:
    """A parsed continuous query."""

    select: Tuple[SelectItem, ...]
    bindings: Tuple[StreamBinding, ...]
    where: Tuple[Comparison, ...] = ()
    name: str = ""

    def binding(self, alias: str) -> StreamBinding:
        for b in self.bindings:
            if b.alias == alias:
                return b
        raise KeyError(f"unknown alias {alias!r}")

    def aliases(self) -> List[str]:
        return [b.alias for b in self.bindings]

    def streams(self) -> List[str]:
        return [b.stream for b in self.bindings]

    def selections(self) -> List[Comparison]:
        return [c.normalised() for c in self.where if c.is_selection()]

    def joins(self) -> List[Comparison]:
        return [c for c in self.where if c.is_join()]

    def selects_all(self, alias: str) -> bool:
        return any(s.stream == alias and s.attr is None for s in self.select)

    def projected_attrs(self, alias: str) -> Optional[List[str]]:
        """Attributes of ``alias`` in the SELECT list; None means all."""
        if self.selects_all(alias):
            return None
        return [s.attr for s in self.select if s.stream == alias and s.attr]

    def __str__(self) -> str:
        sel = ", ".join(str(s) for s in self.select)
        frm = ", ".join(str(b) for b in self.bindings)
        out = f"SELECT {sel} FROM {frm}"
        if self.where:
            out += " WHERE " + " AND ".join(str(c) for c in self.where)
        return out
