"""Vectorised attach-cost computation for the mapping algorithms.

The inner loop of Algorithm 2 (and of online insertion and Algorithm 3)
evaluates, for a q-vertex ``v`` and every candidate target ``t``,

    cost(v, t) = sum over neighbours u of  w(v,u) * d(site(t), pos(u)).

:class:`CostWorkspace` assigns every vertex an integer index, keeps all
positions in one numpy array, precomputes one latency row per target site
and per-vertex neighbour index/weight arrays -- so the evaluation is one
fancy-indexing gather plus a matrix-vector product over all targets at
once, with no per-neighbour Python iteration.

A workspace can outlive graph mutations: it remembers a journal cursor of
its :class:`~repro.core.graphs.QueryGraph` and :meth:`sync` replays the
delta — invalidating the neighbour caches of touched vertices, appending
slots for new vertices, tombstoning removed ones — instead of being
reconstructed.  Because attach costs gather through the *live* adjacency
dicts, a synced workspace returns bit-identical cost vectors to a freshly
built one.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from .graphs import Mapping, NetworkGraph, QueryGraph, VertexId

__all__ = ["CostWorkspace"]


class CostWorkspace:
    """Fast attach-cost evaluation for one (query graph, network graph).

    Positions are tracked in :attr:`pos` (topology node id per vertex
    index, ``-1`` = unplaced); call :meth:`set_position` whenever a vertex
    moves so neighbour gathers stay correct.
    """

    def __init__(self, qg: QueryGraph, ng: NetworkGraph):
        self.qg = qg
        self.ng = ng
        self.targets: List[VertexId] = list(ng.ids())
        self.target_index: Dict[VertexId, int] = {
            t: i for i, t in enumerate(self.targets)
        }
        self.target_sites = np.asarray(
            [ng.site(t) for t in self.targets], dtype=np.int64
        )

        # integer indexing over all vertices (q first, then n)
        self.vids: List[VertexId] = list(qg.qverts) + list(qg.nverts)
        self.vindex: Dict[VertexId, int] = {v: i for i, v in enumerate(self.vids)}
        self.nq = len(qg.qverts)

        oracle = getattr(ng, "oracle", None)
        if oracle is not None:
            n = oracle.topology.n
            self.rows = np.empty((len(self.targets), n))
            for i, t in enumerate(self.targets):
                self.rows[i, :] = oracle.row(ng.site(t))
        else:
            # fallback: dense rows over the node universe actually used
            nodes = set()
            for nv in qg.nverts.values():
                nodes.add(nv.node)
            for t in self.targets:
                nodes.add(ng.site(t))
            self._node_list = sorted(nodes)
            self._node_pos = {node: i for i, node in enumerate(self._node_list)}
            self.rows = np.empty((len(self.targets), len(self._node_list)))
            for i, t in enumerate(self.targets):
                site = ng.site(t)
                for j, node in enumerate(self._node_list):
                    self.rows[i, j] = ng.site_distance(site, node)
        self._remap = oracle is None

        # static neighbour structure
        self._nbr_idx: List[Optional[np.ndarray]] = [None] * len(self.vids)
        self._nbr_w: List[Optional[np.ndarray]] = [None] * len(self.vids)

        #: current position (topology node id or -1) per vertex index
        self.pos = np.full(len(self.vids), -1, dtype=np.int64)

        #: journal cursor of the last sync; vertices tombstoned since build
        self._cursor = qg.journal_cursor()
        self._dead: Set[VertexId] = set()

    # ------------------------------------------------------------------
    def _node_id(self, node: int) -> int:
        """Column index of a topology node in :attr:`rows`."""
        if self._remap:
            if node not in self._node_pos:
                # extend the distance table for a previously unseen node
                self._node_pos[node] = len(self._node_list)
                self._node_list.append(node)
                col = np.asarray(
                    [
                        self.ng.site_distance(self.ng.site(t), node)
                        for t in self.targets
                    ]
                )[:, None]
                self.rows = np.concatenate([self.rows, col], axis=1)
            return self._node_pos[node]
        return node

    def init_positions(self, mapping: Mapping) -> None:
        """Seed positions from a (possibly partial) mapping."""
        self.pos.fill(-1)
        qverts = self.qg.qverts
        nverts = self.qg.nverts
        for vid, i in self.vindex.items():
            if vid in qverts:
                target = mapping.get(vid)
                if target is not None:
                    self.pos[i] = self._node_id(self.ng.site(target))
            else:
                nv = nverts.get(vid)
                if nv is not None:
                    node = self.ng.site(nv.clu) if nv.clu is not None else nv.node
                    self.pos[i] = self._node_id(node)
                # tombstoned vertices stay unplaced (contribute nothing)

    def set_position(self, vid: VertexId, target: VertexId) -> None:
        """Record that ``vid`` now occupies ``target``'s site."""
        self.pos[self.vindex[vid]] = self._node_id(self.ng.site(target))

    def clear_position(self, vid: VertexId) -> None:
        """Mark ``vid`` unplaced; it then contributes no cost."""
        self.pos[self.vindex[vid]] = -1

    def add_vertex(self, vid: VertexId) -> None:
        """Register a vertex added to the graph after construction.

        A vertex re-added after removal revives its tombstoned slot.
        """
        i = self.vindex.get(vid)
        if i is None:
            i = len(self.vids)
            self.vindex[vid] = i
            self.vids.append(vid)
            self._nbr_idx.append(None)
            self._nbr_w.append(None)
            self.pos = np.append(self.pos, -1)
        elif vid in self._dead:
            self._dead.discard(vid)
            self._nbr_idx[i] = None
            self._nbr_w[i] = None
            self.pos[i] = -1
        else:
            return
        if vid in self.qg.nverts:
            nv = self.qg.nverts[vid]
            node = self.ng.site(nv.clu) if nv.clu is not None else nv.node
            self.pos[i] = self._node_id(node)

    def invalidate_vertex(self, vid: VertexId) -> None:
        """Drop cached neighbour arrays (call after edges change)."""
        i = self.vindex.get(vid)
        if i is not None:
            self._nbr_idx[i] = None
            self._nbr_w[i] = None

    # ------------------------------------------------------------------
    # incremental maintenance
    # ------------------------------------------------------------------
    def ensure_synced(self) -> None:
        """Bring the workspace up to date with its graph (no-op if so)."""
        if self._cursor != self.qg.journal_cursor():
            self.sync()

    def sync(self) -> None:
        """Replay the graph's journal since the last sync.

        Edge ops invalidate both endpoints' neighbour caches; vertex adds
        allocate (or revive) slots; removals tombstone.  Falls back to a
        full :meth:`_rebuild` when the journal was trimmed, the graph was
        cleared wholesale, or tombstones outnumber live slots.
        """
        ops = self.qg.journal_since(self._cursor)
        if ops is None or any(op[0] == "clear" for op in ops):
            self._rebuild()
            return
        for op in ops:
            tag = op[0]
            if tag == "e":
                self.invalidate_vertex(op[1])
                self.invalidate_vertex(op[2])
            elif tag == "+q" or tag == "+n":
                self.add_vertex(op[1])
            elif tag == "-v":
                vid = op[1]
                i = self.vindex.get(vid)
                if i is not None and vid not in self._dead:
                    self._dead.add(vid)
                    self.pos[i] = -1
                    self._nbr_idx[i] = None
                    self._nbr_w[i] = None
        self._cursor = self.qg.journal_cursor()
        dead = len(self._dead)
        if dead > 64 and dead > len(self.vids) - dead:
            self._rebuild()

    def _rebuild(self) -> None:
        """Re-index every vertex from scratch (distance rows are kept)."""
        qg = self.qg
        self.vids = list(qg.qverts) + list(qg.nverts)
        self.vindex = {v: i for i, v in enumerate(self.vids)}
        self.nq = len(qg.qverts)
        self._nbr_idx = [None] * len(self.vids)
        self._nbr_w = [None] * len(self.vids)
        self.pos = np.full(len(self.vids), -1, dtype=np.int64)
        self._dead = set()
        self._cursor = qg.journal_cursor()

    def _neighbour_arrays(self, i: int):
        if self._nbr_idx[i] is None:
            nbrs = self.qg.neighbors(self.vids[i])
            self._nbr_idx[i] = np.asarray(
                [self.vindex[n] for n in nbrs], dtype=np.int64
            )
            self._nbr_w[i] = np.asarray(list(nbrs.values()), dtype=float)
        return self._nbr_idx[i], self._nbr_w[i]

    # ------------------------------------------------------------------
    def attach_costs(self, vid: VertexId) -> np.ndarray:
        """Vector of attach costs of ``vid`` for every target.

        Neighbours without a position (not yet placed) contribute zero.
        """
        return self.attach_costs_idx(self.vindex[vid])

    def attach_costs_idx(self, i: int) -> np.ndarray:
        """Like :meth:`attach_costs` but addressed by vertex index."""
        idx, w = self._neighbour_arrays(i)
        if idx.size == 0:
            return np.zeros(len(self.targets))
        p = self.pos[idx]
        mask = p >= 0
        if not mask.any():
            return np.zeros(len(self.targets))
        return self.rows[:, p[mask]] @ w[mask]

    def attach_costs_batch(self, vids: Sequence[VertexId]) -> np.ndarray:
        """Attach-cost rows for many vertices in one vectorised pass.

        Row ``k`` equals :meth:`attach_costs` of ``vids[k]`` up to float
        summation order (one segmented sum over the concatenated
        neighbour arrays instead of a dot product per vertex).  The scan
        phases of re-balancing and refinement evaluate every vertex once
        against every target; batching turns those from thousands of
        small gather+matvec calls into a single gather and one
        ``reduceat``.
        """
        out = np.zeros((len(vids), len(self.targets)))
        if not vids:
            return out
        nbrs = [self._neighbour_arrays(self.vindex[v]) for v in vids]
        counts = np.asarray([a[0].size for a in nbrs], dtype=np.int64)
        if not counts.any():
            return out
        idx_cat = np.concatenate([a[0] for a in nbrs if a[0].size])
        w_cat = np.concatenate([a[1] for a in nbrs if a[1].size])
        p = self.pos[idx_cat]
        valid = p >= 0
        w_eff = np.where(valid, w_cat, 0.0)
        contrib = self.rows[:, np.where(valid, p, 0)] * w_eff
        starts = np.zeros(len(vids), dtype=np.int64)
        np.cumsum(counts[:-1], out=starts[1:])
        nz = np.flatnonzero(counts)
        out[nz] = np.add.reduceat(contrib, starts[nz], axis=1).T
        return out

    def attach_cost(self, vid: VertexId, target: VertexId) -> float:
        """Scalar attach cost of placing ``vid`` on one ``target``."""
        return float(self.attach_costs(vid)[self.target_index[target]])

    def neighbour_indices(self, vid: VertexId) -> np.ndarray:
        """Vertex indices of ``vid``'s neighbours (cached array)."""
        idx, _ = self._neighbour_arrays(self.vindex[vid])
        return idx
