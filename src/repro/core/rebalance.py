"""Adaptive query redistribution (Section 3.7, Algorithm 3).

Two phases per coordinator per adaptation round:

1. **Load re-balancing** -- a Hu & Blake diffusion solution prescribes how
   much load to shift between each pair of children; Algorithm 3 realises
   the flows by moving concrete q-vertices, preferring (a) vertices whose
   move *benefit* (WEC reduction) is within ``x%`` of the best, (b) among
   those, *dirty* vertices (already picked this round -- moving them again
   costs no extra migration since physical migration happens only after
   all decisions), and (c) among those, the highest *load density*
   (weight / state size), which moves the most load per byte of operator
   state.
2. **Distribution refinement** -- revisit q-vertices in random order and
   (1) move a vertex back to its original location when that keeps load
   balance and does not hurt the WEC, or (2) move it anywhere that lowers
   the WEC without breaking balance.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Set, Tuple

from .diffusion import diffusion_solution
from .graphs import DEFAULT_ALPHA, Mapping, NetworkGraph, QueryGraph, VertexId
from .mapping import _attach_cost, _positions

__all__ = ["RebalanceStats", "rebalance", "refine_distribution"]

#: Algorithm 3's benefit window (the paper sets x = 10).
DEFAULT_BENEFIT_WINDOW = 0.10


@dataclass
class RebalanceStats:
    """Observability for one coordinator-level rebalance."""

    moved_vertices: int = 0
    moved_weight: float = 0.0
    moved_state: float = 0.0
    refinement_moves: int = 0
    flows_requested: int = 0
    flows_satisfied: int = 0
    dirty: Set[VertexId] = field(default_factory=set)


def _benefit(
    qg: QueryGraph,
    vid: VertexId,
    source: VertexId,
    dest: VertexId,
    pos: Dict[VertexId, int],
    ng: NetworkGraph,
) -> float:
    """WEC reduction of remapping ``vid`` from ``source`` to ``dest``."""
    return _attach_cost(qg, vid, source, pos, ng) - _attach_cost(
        qg, vid, dest, pos, ng
    )


def rebalance(
    qg: QueryGraph,
    ng: NetworkGraph,
    assignment: Mapping,
    alpha: float = DEFAULT_ALPHA,
    benefit_window: float = DEFAULT_BENEFIT_WINDOW,
    rng: Optional[random.Random] = None,
    stats: Optional[RebalanceStats] = None,
) -> RebalanceStats:
    """Algorithm 3: realise the diffusion flows with vertex moves.

    ``assignment`` is modified in place.  Returns move statistics.
    """
    rng = rng or random.Random(0)
    stats = stats or RebalanceStats()

    loads = qg.loads(assignment, ng)
    total_c = ng.total_capability()
    total_q = qg.total_qweight()
    if total_q <= 0:
        return stats
    targets = {
        vid: ng.capability(vid) * total_q / total_c for vid in ng.ids()
    }
    flows = diffusion_solution(loads, targets)
    # ignore noise-level flows (< 0.1% of the average target load)
    floor = 1e-3 * (total_q / max(1, len(ng)))
    flows = {k: v for k, v in flows.items() if v > floor}
    stats.flows_requested = len(flows)

    pos = _positions(qg, assignment, ng)
    by_source: Dict[VertexId, List[VertexId]] = {}
    for vid in qg.qverts:
        by_source.setdefault(assignment[vid], []).append(vid)

    pairs = list(flows)
    rng.shuffle(pairs)
    remaining = dict(flows)
    while pairs:
        i, j = pairs[rng.randrange(len(pairs))]
        m_ij = remaining[(i, j)]
        candidates = [v for v in by_source.get(i, []) if assignment[v] == i]
        # a vertex is movable for this flow if the flow can absorb ~all of
        # its weight (the paper: m_ij larger than 90% of its weight)
        movable = [
            v for v in candidates if m_ij > 0.9 * qg.qverts[v].weight
            and qg.qverts[v].weight > 0
        ]
        if not movable:
            remaining[(i, j)] = 0.0
            pairs.remove((i, j))
            continue
        benefits = {
            v: _benefit(qg, v, i, j, pos, ng) for v in movable
        }
        best_benefit = max(benefits.values())
        span = abs(best_benefit) if best_benefit != 0 else 1.0
        window = [
            v for v, b in benefits.items()
            if b >= best_benefit - benefit_window * span
        ]
        dirty_window = [v for v in window if v in stats.dirty]
        pool = dirty_window or window
        chosen = max(pool, key=lambda v: (qg.qverts[v].load_density(), str(v)))

        qv = qg.qverts[chosen]
        assignment[chosen] = j
        pos[chosen] = ng.site(j)
        by_source[i].remove(chosen)
        by_source.setdefault(j, []).append(chosen)
        if chosen not in stats.dirty:
            stats.moved_state += qv.state_size
        stats.dirty.add(chosen)
        stats.moved_vertices += 1
        stats.moved_weight += qv.weight
        remaining[(i, j)] = m_ij - qv.weight
        if remaining[(i, j)] <= floor:
            stats.flows_satisfied += 1
            pairs.remove((i, j))
    return stats


def refine_distribution(
    qg: QueryGraph,
    ng: NetworkGraph,
    assignment: Mapping,
    original: Mapping,
    alpha: float = DEFAULT_ALPHA,
    rng: Optional[random.Random] = None,
) -> int:
    """The distribution-refinement phase; returns the number of moves.

    ``original`` is the assignment at the start of the adaptation round
    (used for the "map back to its original location" rule, which undoes
    migrations that turned out unnecessary).
    """
    rng = rng or random.Random(0)
    limits = qg.capacity_limits(ng, alpha)
    loads = qg.loads(assignment, ng)
    pos = _positions(qg, assignment, ng)
    moves = 0
    # equal-share targets: refinement must not undo the re-balancing phase,
    # so a move may neither push the destination above its ceiling nor
    # hollow the source below its fair share by more than alpha
    total_q = qg.total_qweight()
    total_c = ng.total_capability()
    share = {
        vid: ng.capability(vid) * total_q / total_c for vid in ng.ids()
    }

    order = list(qg.qverts)
    rng.shuffle(order)
    for vid in order:
        qv = qg.qverts[vid]
        here = assignment[vid]

        def fits(target: VertexId) -> bool:
            if loads[target] + qv.weight > limits[target] + 1e-9:
                return False
            floor = (1.0 - alpha) * share[here]
            return loads[here] - qv.weight >= floor - 1e-9

        def apply(target: VertexId) -> None:
            nonlocal moves
            loads[assignment[vid]] -= qv.weight
            assignment[vid] = target
            loads[target] += qv.weight
            pos[vid] = ng.site(target)
            moves += 1

        # rule 1: go home if free
        home = original.get(vid)
        if home is not None and home != here and fits(home):
            if _benefit(qg, vid, here, home, pos, ng) >= -1e-9:
                apply(home)
                continue
        # rule 2: strict WEC improvement anywhere legal
        best_target = None
        best_gain = 1e-9
        for target in ng.ids():
            if target == here or not fits(target):
                continue
            gain = _benefit(qg, vid, here, target, pos, ng)
            if gain > best_gain:
                best_gain = gain
                best_target = target
        if best_target is not None:
            apply(best_target)
    return moves
