"""Adaptive query redistribution (Section 3.7, Algorithm 3).

Two phases per coordinator per adaptation round:

1. **Load re-balancing** -- a Hu & Blake diffusion solution prescribes how
   much load to shift between each pair of children; Algorithm 3 realises
   the flows by moving concrete q-vertices, preferring (a) vertices whose
   move *benefit* (WEC reduction) is within ``x%`` of the best, (b) among
   those, *dirty* vertices (already picked this round -- moving them again
   costs no extra migration since physical migration happens only after
   all decisions), and (c) among those, the highest *load density*
   (weight / state size), which moves the most load per byte of operator
   state.
2. **Distribution refinement** -- revisit q-vertices in random order and
   (1) move a vertex back to its original location when that keeps load
   balance and does not hurt the WEC, or (2) move it anywhere that lowers
   the WEC without breaking balance.

Both phases evaluate move benefits through a
:class:`~repro.core.fastcost.CostWorkspace`, so the cost of a vertex
against *every* candidate target is one vectorised gather + matvec
instead of a per-neighbour Python loop per target.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import numpy as np

from .diffusion import diffusion_solution
from .fastcost import CostWorkspace
from .graphs import (
    DEFAULT_ALPHA,
    Mapping,
    NetworkGraph,
    QueryGraph,
    VertexId,
    stable_vertex_key,
)

__all__ = ["RebalanceStats", "rebalance", "refine_distribution"]

#: Algorithm 3's benefit window (the paper sets x = 10).
DEFAULT_BENEFIT_WINDOW = 0.10


@dataclass
class RebalanceStats:
    """Observability for one coordinator-level rebalance.

    ``dirty`` collects the vertices moved at least once this round; a
    dirty vertex can be moved again for free because physical migration
    happens only after all decisions are made.
    """

    moved_vertices: int = 0
    moved_weight: float = 0.0
    moved_state: float = 0.0
    refinement_moves: int = 0
    flows_requested: int = 0
    flows_satisfied: int = 0
    dirty: Set[VertexId] = field(default_factory=set)


def rebalance(
    qg: QueryGraph,
    ng: NetworkGraph,
    assignment: Mapping,
    alpha: float = DEFAULT_ALPHA,
    benefit_window: float = DEFAULT_BENEFIT_WINDOW,
    rng: Optional[random.Random] = None,
    stats: Optional[RebalanceStats] = None,
    workspace: Optional[CostWorkspace] = None,
) -> RebalanceStats:
    """Algorithm 3: realise the diffusion flows with vertex moves.

    Parameters
    ----------
    qg, ng:
        The coordinator's query and network graphs.
    assignment:
        Current q-vertex -> child mapping; **modified in place**.
    alpha:
        Load-imbalance tolerance of Eqn 3.1.
    benefit_window:
        Fraction ``x`` of the best benefit within which a candidate is
        still considered "among the best" (tie pool for the dirty /
        load-density preferences).
    rng:
        Source of randomness for flow visiting order.
    stats:
        Optional pre-existing stats object to accumulate into.
    workspace:
        Optional pre-built cost workspace over ``(qg, ng)`` to reuse
        (positions are re-seeded from ``assignment``).

    Returns
    -------
    RebalanceStats
        Move statistics for the round (also reflected in ``assignment``).
    """
    rng = rng or random.Random(0)
    stats = stats or RebalanceStats()

    loads = qg.loads(assignment, ng)
    total_c = ng.total_capability()
    total_q = qg.total_qweight()
    if total_q <= 0:
        return stats
    targets = {
        vid: ng.capability(vid) * total_q / total_c for vid in ng.ids()
    }
    # ignore noise-level flows (< 0.1% of the average target load); the
    # floor is applied inside the solver so they are never materialised
    floor = 1e-3 * (total_q / max(1, len(ng)))
    # Section 3.7 trigger: re-balancing runs only while some child
    # violates the load constraint (Eqn 3.1).  A feasible assignment
    # always has residual sub-alpha imbalance (loads are discrete), and
    # chasing it moves vertices back and forth forever -- the constraint
    # is the paper's own stopping criterion, and quiescing here is what
    # lets converged coordinators skip whole adaptation rounds.
    if all(
        loads[t] <= (1.0 + alpha) * targets[t] + floor for t in targets
    ):
        return stats
    flows = diffusion_solution(loads, targets, floor=floor)
    stats.flows_requested = len(flows)

    ws = workspace or CostWorkspace(qg, ng)
    ws.ensure_synced()
    ws.init_positions(assignment)
    tindex = ws.target_index
    by_source: Dict[VertexId, List[VertexId]] = {}
    for vid in qg.qverts:
        by_source.setdefault(assignment[vid], []).append(vid)

    # a vertex's attach-cost row depends only on its neighbours'
    # positions, so a move invalidates O(degree) rows, not all of them;
    # caching the rest is what keeps the flow-realisation loop from
    # re-evaluating every candidate after every single move.  Rows for
    # every vertex on the source side of a flow are primed in one
    # vectorised batch.
    prime = list(dict.fromkeys(
        v for i, _ in flows for v in by_source.get(i, ())
    ))
    rows = ws.attach_costs_batch(prime)
    row_cache: Dict[VertexId, np.ndarray] = {
        v: rows[k] for k, v in enumerate(prime)
    }

    def cost_row(v: VertexId) -> np.ndarray:
        row = row_cache.get(v)
        if row is None:
            row = row_cache[v] = ws.attach_costs(v)
        return row

    pairs = list(flows)
    rng.shuffle(pairs)
    remaining = dict(flows)
    while pairs:
        i, j = pairs[rng.randrange(len(pairs))]
        m_ij = remaining[(i, j)]
        candidates = [v for v in by_source.get(i, []) if assignment[v] == i]
        # a vertex is movable for this flow if the flow can absorb ~all of
        # its weight (the paper: m_ij larger than 90% of its weight)
        movable = [
            v for v in candidates if m_ij > 0.9 * qg.qverts[v].weight
            and qg.qverts[v].weight > 0
        ]
        if not movable:
            remaining[(i, j)] = 0.0
            pairs.remove((i, j))
            continue
        ti_i, ti_j = tindex[i], tindex[j]
        benefits = {}
        for v in movable:
            costs = cost_row(v)
            benefits[v] = float(costs[ti_i] - costs[ti_j])
        best_benefit = max(benefits.values())
        span = abs(best_benefit) if best_benefit != 0 else 1.0
        window = [
            v for v, b in benefits.items()
            if b >= best_benefit - benefit_window * span
        ]
        dirty_window = [v for v in window if v in stats.dirty]
        pool = dirty_window or window
        chosen = max(
            pool,
            key=lambda v: (
                qg.qverts[v].load_density(),
                stable_vertex_key(qg.qverts[v]),
            ),
        )

        qv = qg.qverts[chosen]
        assignment[chosen] = j
        ws.set_position(chosen, j)
        row_cache.pop(chosen, None)
        for nb in qg.adj.get(chosen, ()):
            row_cache.pop(nb, None)
        by_source[i].remove(chosen)
        by_source.setdefault(j, []).append(chosen)
        if chosen not in stats.dirty:
            stats.moved_state += qv.state_size
        stats.dirty.add(chosen)
        stats.moved_vertices += 1
        stats.moved_weight += qv.weight
        remaining[(i, j)] = m_ij - qv.weight
        if remaining[(i, j)] <= floor:
            stats.flows_satisfied += 1
            pairs.remove((i, j))
    return stats


def refine_distribution(
    qg: QueryGraph,
    ng: NetworkGraph,
    assignment: Mapping,
    original: Mapping,
    alpha: float = DEFAULT_ALPHA,
    rng: Optional[random.Random] = None,
    workspace: Optional[CostWorkspace] = None,
) -> int:
    """The distribution-refinement phase; returns the number of moves.

    ``original`` is the assignment at the start of the adaptation round
    (used for the "map back to its original location" rule, which undoes
    migrations that turned out unnecessary).  ``assignment`` is modified
    in place.  Candidate targets for every vertex are scored in one
    vectorised cost evaluation rather than a per-target neighbour loop;
    pass ``workspace`` to reuse a cost workspace built for the same
    ``(qg, ng)`` pair (positions are re-seeded from ``assignment``).
    """
    rng = rng or random.Random(0)
    ws = workspace or CostWorkspace(qg, ng)
    ws.ensure_synced()
    ws.init_positions(assignment)
    tindex = ws.target_index
    n_targets = len(ws.targets)

    limits_map = qg.capacity_limits(ng, alpha)
    limits = np.asarray([limits_map[t] for t in ws.targets])
    loads_map = qg.loads(assignment, ng)
    loads = np.asarray([loads_map[t] for t in ws.targets])
    moves = 0
    # equal-share targets: refinement must not undo the re-balancing phase,
    # so a move may neither push the destination above its ceiling nor
    # hollow the source below its fair share by more than alpha
    total_q = qg.total_qweight()
    total_c = ng.total_capability()
    share = np.asarray(
        [ng.capability(t) * total_q / total_c for t in ws.targets]
    )

    order = list(qg.qverts)
    rng.shuffle(order)
    # one vectorised pass computes every vertex's cost row up front; a
    # move only changes the rows of the moved vertex's neighbours, so
    # those few are marked stale and re-evaluated individually
    batch = ws.attach_costs_batch(order)
    stale: Set[VertexId] = set()
    # exact pre-filter: a vertex whose best target (load feasibility
    # aside) beats its current position by nothing cannot move under
    # rule 2, and with no distinct "home" rule 1 cannot fire either --
    # near equilibrium that is almost every vertex, and skipping them
    # here avoids per-vertex numpy work entirely
    hi_all = np.asarray([tindex[assignment[v]] for v in order], dtype=np.int64)
    immobile = (
        batch[np.arange(len(order)), hi_all] - batch.min(axis=1) <= 1e-9
    )
    for k, vid in enumerate(order):
        here = assignment[vid]
        if (
            vid not in stale
            and immobile[k]
            and original.get(vid, here) == here
        ):
            continue
        qv = qg.qverts[vid]
        hi = tindex[here]
        w = qv.weight

        # the source side of the feasibility test is target-independent
        source_ok = loads[hi] - w >= (1.0 - alpha) * share[hi] - 1e-9
        if not source_ok:
            continue
        fits = loads + w <= limits + 1e-9

        costs = ws.attach_costs(vid) if vid in stale else batch[k]

        def apply(ti: int, target: VertexId) -> None:
            nonlocal moves, hi
            loads[hi] -= w
            assignment[vid] = target
            loads[ti] += w
            ws.set_position(vid, target)
            stale.update(qg.adj.get(vid, ()))
            moves += 1

        # rule 1: go home if free
        home = original.get(vid)
        if home is not None and home != here:
            home_i = tindex.get(home)
            if home_i is not None and fits[home_i]:
                if costs[hi] - costs[home_i] >= -1e-9:
                    apply(home_i, home)
                    continue
        # rule 2: strict WEC improvement anywhere legal
        gains = costs[hi] - costs
        gains = np.where(fits, gains, -np.inf)
        gains[hi] = -np.inf
        ti = int(np.argmax(gains))
        if gains[ti] > 1e-9:
            apply(ti, ws.targets[ti])
    return moves
