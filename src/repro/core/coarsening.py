"""Query graph coarsening (Algorithm 1).

Repeatedly collapses matched vertex pairs -- preferring the heaviest
incident edge, since heavily-connected vertices are likely to be mapped to
the same network vertex anyway -- until the graph has at most ``vmax``
vertices.  Constraints from the paper:

* an n-vertex may only merge with an n-vertex of the *same* child cluster
  (two n-vertices pinned to different clusters must stay separable);
* an n-vertex with unknown cluster (external node) never merges with
  another n-vertex;
* merging a q-vertex into an n-vertex yields an n-vertex (``is_n(w)``),
  keeping the cluster tag.

The coarse graph's vertices carry enough aggregate state (interest mask,
per-source and per-proxy rate maps, children) that edges can be
re-estimated exactly and the vertex can later be uncoarsened one level.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from ..query.interest import SubstreamSpace
from .graphs import NetworkGraph, NVertex, QueryGraph, QVertex, VertexId

__all__ = ["CoarseVertex", "coarsen", "uncoarsen_vertex", "rebuild_edges"]

_coarse_ids = itertools.count()


@dataclass
class CoarseVertex:
    """Bookkeeping wrapper: a coarse q-vertex plus its pinned n-part.

    When a q-vertex merges with an n-vertex the collapsed vertex must stay
    an n-vertex (it is pinned to the n-vertex's cluster) while still
    carrying query load.  ``pinned_node``/``clu`` record the n-part.
    """

    qvertex: QVertex
    pinned_node: Optional[int] = None
    clu: Optional[VertexId] = None

    @property
    def is_n(self) -> bool:
        return self.pinned_node is not None


def _merge_rate_maps(a: Dict[int, float], b: Dict[int, float]) -> Dict[int, float]:
    out = dict(a)
    for k, v in b.items():
        out[k] = out.get(k, 0.0) + v
    return out


def merge_qvertices(
    u: QVertex, v: QVertex, origin: Optional[Hashable] = None
) -> QVertex:
    """Collapse two q-vertices into a coarse one (lines 8-11)."""
    return QVertex(
        vid=("c", next(_coarse_ids)),
        weight=u.weight + v.weight,
        mask=u.mask | v.mask,
        source_rates=_merge_rate_maps(u.source_rates, v.source_rates),
        proxy_rates=_merge_rate_maps(u.proxy_rates, v.proxy_rates),
        state_size=u.state_size + v.state_size,
        members=u.members + v.members,
        children=(u, v),
        origin=origin,
    )


def rebuild_edges(
    g: QueryGraph, space: SubstreamSpace, max_overlap_neighbors: int = 20
) -> None:
    """Re-estimate all edges of ``g`` from vertex aggregate state.

    q-n edges come from the vertices' rate maps; q-q overlap edges from
    interest-mask AND (the paper's bit-vector estimation).
    """
    for vid in list(g.adj):
        g.adj[vid] = {}
    from .graphs import _add_overlap_edges

    qlist = list(g.qverts.values())
    for qv in qlist:
        for node, rate in qv.source_rates.items():
            nvid = ("n", node)
            if nvid in g.nverts:
                g.add_edge(qv.vid, nvid, rate)
        for node, rate in qv.proxy_rates.items():
            nvid = ("n", node)
            if nvid in g.nverts:
                g.add_edge(qv.vid, nvid, rate)
    _add_overlap_edges(g, qlist, space, max_overlap_neighbors)


def coarsen(
    g: QueryGraph,
    vmax: int,
    space: SubstreamSpace,
    origin: Optional[Hashable] = None,
    rng: Optional[random.Random] = None,
    ng: Optional[NetworkGraph] = None,
) -> QueryGraph:
    """Algorithm 1: coarsen ``g`` until it has at most ``vmax`` vertices.

    ``g`` is not modified; a new graph is returned.  Only q-vertices are
    collapsed with each other in this implementation of the n-vertex rule:
    q/n merges are realised by the mapping layer pinning the n-vertex, so
    collapsing q into n is equivalent to a zero-distance preference, and
    keeping them separate loses no information while keeping the
    uncoarsening bookkeeping simple.  n-vertices therefore never merge
    (the strictest reading of the cluster constraint).
    """
    rng = rng or random.Random(0)

    # working copy
    work = QueryGraph()
    for qv in g.qverts.values():
        work.add_qvertex(qv)
    for nv in g.nverts.values():
        work.add_nvertex(nv)
    for a, b, w in g.edges():
        work.set_edge(a, b, w)

    while work.vertex_count() > vmax:
        merged_any = False
        matched = set()
        qids = list(work.qverts)
        rng.shuffle(qids)
        for vid in qids:
            if work.vertex_count() <= vmax:
                break
            if vid in matched or vid not in work.qverts:
                continue
            # candidate neighbours: unmatched q-vertices
            candidates = [
                (nbr, w)
                for nbr, w in work.neighbors(vid).items()
                if nbr in work.qverts and nbr not in matched and nbr != vid
            ]
            if not candidates:
                continue
            partner, _ = max(candidates, key=lambda kv: (kv[1], str(kv[0])))
            u = work.qverts[vid]
            v = work.qverts[partner]
            w_new = merge_qvertices(u, v, origin=origin)

            # collect union of neighbour edges before removal
            nbr_edges: Dict[VertexId, float] = {}
            for old in (vid, partner):
                for nbr, w in work.neighbors(old).items():
                    if nbr in (vid, partner):
                        continue
                    nbr_edges[nbr] = nbr_edges.get(nbr, 0.0) + w
            work.remove_vertex(vid)
            work.remove_vertex(partner)
            work.add_qvertex(w_new)
            for nbr, w in nbr_edges.items():
                if nbr in work.qverts:
                    # re-estimate overlap exactly from the merged mask
                    w = space.overlap_rate(w_new.mask, work.qverts[nbr].mask)
                work.set_edge(w_new.vid, nbr, w)
            matched.add(w_new.vid)
            merged_any = True
        if not merged_any:
            break  # nothing left to collapse (graph may stay above vmax)
    return work


def uncoarsen_vertex(v: QVertex) -> List[QVertex]:
    """Expand a coarse vertex one level (its direct children).

    Atomic vertices expand to themselves.
    """
    if not v.children:
        return [v]
    return list(v.children)
