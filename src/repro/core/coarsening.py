"""Query graph coarsening (Algorithm 1).

Repeatedly collapses matched vertex pairs -- preferring the heaviest
incident edge, since heavily-connected vertices are likely to be mapped to
the same network vertex anyway -- until the graph has at most ``vmax``
vertices.  Constraints from the paper:

* an n-vertex may only merge with an n-vertex of the *same* child cluster
  (two n-vertices pinned to different clusters must stay separable);
* an n-vertex with unknown cluster (external node) never merges with
  another n-vertex;
* merging a q-vertex into an n-vertex yields an n-vertex (``is_n(w)``),
  keeping the cluster tag.

The coarse graph's vertices carry enough aggregate state (interest mask,
per-source and per-proxy rate maps, children) that edges can be
re-estimated exactly and the vertex can later be uncoarsened one level.
"""

from __future__ import annotations

import hashlib
import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..query.interest import SubstreamSpace
from .graphs import NetworkGraph, NVertex, QueryGraph, QVertex, VertexId

__all__ = [
    "CoarseVertex",
    "CoarsePlan",
    "coarsen",
    "coarsen_cached",
    "content_rng",
    "plan_key",
    "vertex_sig",
    "uncoarsen_vertex",
    "rebuild_edges",
]

_coarse_ids = itertools.count()

PlanKey = Tuple[int, ...]


def plan_key(v: QVertex) -> PlanKey:
    """Content-derived identity of a coarsening input (sorted members)."""
    return tuple(sorted(v.members))


def vertex_sig(v: QVertex) -> Tuple:
    """Content signature of a coarsening input.

    Two vertices with equal signatures produce bit-identical coarsening
    aggregates, so a recorded plan whose input signatures all match can be
    reused wholesale.
    """
    return (
        plan_key(v),
        v.weight,
        v.mask,
        v.state_size,
        tuple(sorted(v.source_rates.items())),
        tuple(sorted(v.proxy_rates.items())),
    )


def content_rng(seed: int, stable_id: int, g: QueryGraph) -> random.Random:
    """An rng derived from ``(seed, coordinator, graph content)``.

    Coarsening consumes randomness (the per-round shuffle); deriving it
    from the input content instead of a shared sequential stream makes
    each invocation a pure function of its inputs — the property that
    lets a cached plan stand in for a fresh run, and that keeps the
    incremental and full-rebuild optimizer modes on identical coarse
    graphs.  Hashing uses blake2b over canonical int tuples, so it is
    independent of ``PYTHONHASHSEED``.
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(str((seed, stable_id)).encode())
    for v in g.qverts.values():
        h.update(str(plan_key(v)).encode())
    return random.Random(int.from_bytes(h.digest(), "big"))


@dataclass
class CoarsePlan:
    """Recorded outcome of one coarsening invocation.

    ``sigs`` fingerprints every input vertex; ``steps`` lists the merge
    operations in execution order as ``(key_a, key_b)`` member-key pairs;
    ``output`` is the resulting coarse vertex list.  A plan whose input
    signatures all match the current inputs can be replayed without
    re-running matching or edge re-estimation; with partial reuse only
    the steps untouched by dirty inputs are replayed and the remainder is
    re-coarsened.
    """

    vmax: int
    sigs: Dict[PlanKey, Tuple]
    steps: List[Tuple[PlanKey, PlanKey]] = field(default_factory=list)
    output: List[QVertex] = field(default_factory=list)


@dataclass
class CoarseVertex:
    """Bookkeeping wrapper: a coarse q-vertex plus its pinned n-part.

    When a q-vertex merges with an n-vertex the collapsed vertex must stay
    an n-vertex (it is pinned to the n-vertex's cluster) while still
    carrying query load.  ``pinned_node``/``clu`` record the n-part.
    """

    qvertex: QVertex
    pinned_node: Optional[int] = None
    clu: Optional[VertexId] = None

    @property
    def is_n(self) -> bool:
        """Whether the collapsed vertex carries a pinned n-part."""
        return self.pinned_node is not None


def _merge_rate_maps(a: Dict[int, float], b: Dict[int, float]) -> Dict[int, float]:
    out = dict(a)
    for k, v in b.items():
        out[k] = out.get(k, 0.0) + v
    return out


def merge_qvertices(
    u: QVertex, v: QVertex, origin: Optional[Hashable] = None
) -> QVertex:
    """Collapse two q-vertices into a coarse one (lines 8-11)."""
    return QVertex(
        vid=("c", next(_coarse_ids)),
        weight=u.weight + v.weight,
        mask=u.mask | v.mask,
        source_rates=_merge_rate_maps(u.source_rates, v.source_rates),
        proxy_rates=_merge_rate_maps(u.proxy_rates, v.proxy_rates),
        state_size=u.state_size + v.state_size,
        members=u.members + v.members,
        children=(u, v),
        origin=origin,
    )


def rebuild_edges(
    g: QueryGraph, space: SubstreamSpace, max_overlap_neighbors: int = 20
) -> None:
    """Re-estimate all edges of ``g`` from vertex aggregate state.

    q-n edges come from the vertices' rate maps; q-q overlap edges from
    interest-mask AND (the paper's bit-vector estimation).
    """
    g.clear_edges()
    from .graphs import _add_overlap_edges

    qlist = list(g.qverts.values())
    for qv in qlist:
        for node, rate in qv.source_rates.items():
            nvid = ("n", node)
            if nvid in g.nverts:
                g.add_edge(qv.vid, nvid, rate)
        for node, rate in qv.proxy_rates.items():
            nvid = ("n", node)
            if nvid in g.nverts:
                g.add_edge(qv.vid, nvid, rate)
    _add_overlap_edges(g, qlist, space, max_overlap_neighbors)


def _match_pass_reference(
    work: QueryGraph, order: List[VertexId]
) -> List[Tuple[VertexId, VertexId]]:
    """One heavy-edge matching pass over ``order`` (dict reference path).

    Visits q-vertices in the given order; each unmatched vertex pairs
    with its heaviest-edged unmatched q-neighbour.  Ties break toward the
    neighbour appearing earliest in ``order``.  Returns disjoint pairs.
    """
    rank = {vid: r for r, vid in enumerate(order)}
    matched = set()
    pairs: List[Tuple[VertexId, VertexId]] = []
    for vid in order:
        if vid in matched:
            continue
        best = None
        best_key = None
        for nbr, w in work.neighbors(vid).items():
            if nbr not in work.qverts or nbr in matched or nbr == vid:
                continue
            key = (w, -rank[nbr])
            if best is None or key > best_key:
                best, best_key = nbr, key
        if best is None:
            continue
        pairs.append((vid, best))
        matched.add(vid)
        matched.add(best)
    return pairs


def _match_pass_arrays(
    work: QueryGraph, order: List[VertexId]
) -> List[Tuple[VertexId, VertexId]]:
    """One heavy-edge matching pass (array fast path).

    Same matching rule as :func:`_match_pass_reference`, but candidate
    filtering and the heaviest-edge argmax run as numpy operations over a
    CSR snapshot of the q-q subgraph instead of per-edge Python tuples.
    """
    rank = {vid: r for r, vid in enumerate(order)}
    nq = len(order)
    # CSR over q-q edges only, vertex index = rank in `order`
    indptr = np.zeros(nq + 1, dtype=np.int64)
    flat_idx: List[int] = []
    flat_w: List[float] = []
    qverts = work.qverts
    for r, vid in enumerate(order):
        count = 0
        for nbr, w in work.neighbors(vid).items():
            if nbr in qverts and nbr != vid:
                flat_idx.append(rank[nbr])
                flat_w.append(w)
                count += 1
        indptr[r + 1] = indptr[r] + count
    if not flat_idx:
        return []
    indices = np.asarray(flat_idx, dtype=np.int64)
    weights = np.asarray(flat_w, dtype=float)

    matched = np.zeros(nq, dtype=bool)
    pairs: List[Tuple[VertexId, VertexId]] = []
    for r in range(nq):
        if matched[r]:
            continue
        lo, hi = indptr[r], indptr[r + 1]
        cand = indices[lo:hi]
        if cand.size == 0:
            continue
        free = ~matched[cand]
        if not free.any():
            continue
        cand = cand[free]
        cw = weights[lo:hi][free]
        # heaviest edge first; ties toward the earliest-ranked neighbour
        best = cand[np.lexsort((cand, -cw))[0]]
        pairs.append((order[r], order[int(best)]))
        matched[r] = True
        matched[best] = True
    return pairs


class _OverlapIndex:
    """Per-vertex sorted substream-index arrays for fast overlap rates.

    ``space.overlap_rate(mask_a, mask_b)`` unpacks two full-width bit
    vectors per call; during collapse that is the dominant cost.  Keeping
    each vertex's interest as a sorted ``int64`` index array instead
    turns the overlap into ``rates[intersect1d(a, b)].sum()`` -- and
    because both formulations sum the *same* rates in the same ascending
    index order, the results are bit-identical to the mask path.
    """

    def __init__(self, space: SubstreamSpace):
        self.space = space
        self._idx: Dict[VertexId, np.ndarray] = {}
        # reusable membership scratch over the substream universe: an
        # O(deg) gather per neighbour instead of a sort per overlap
        self._mark = np.zeros(len(space), dtype=bool)

    def indices(self, v: QVertex) -> np.ndarray:
        """Sorted substream indices of ``v``'s interest mask (cached)."""
        arr = self._idx.get(v.vid)
        if arr is None:
            arr = self.space._indices(v.mask)
            self._idx[v.vid] = arr
        return arr

    def merged(self, merged: QVertex, u: QVertex, v: QVertex) -> None:
        """Record the index array of a freshly merged vertex."""
        self._idx[merged.vid] = np.union1d(self.indices(u), self.indices(v))
        self._idx.pop(u.vid, None)
        self._idx.pop(v.vid, None)

    def overlap_rates(self, v: QVertex, others: List[QVertex]) -> List[float]:
        """Overlap rate of ``v`` against each of ``others`` (batched).

        Each result equals ``space.overlap_rate(v.mask, o.mask)`` exactly:
        the selected indices come out in the same ascending order, so the
        float summation order matches the mask path bit for bit.
        """
        mark = self._mark
        vidx = self.indices(v)
        mark[vidx] = True
        rates = self.space.rates
        out: List[float] = []
        for other in others:
            oidx = self.indices(other)
            sel = oidx[mark[oidx]]
            out.append(float(rates[sel].sum()) if sel.size else 0.0)
        mark[vidx] = False
        return out


def _collapse_pairs(
    work: QueryGraph,
    pairs: List[Tuple[VertexId, VertexId]],
    space: SubstreamSpace,
    origin: Optional[Hashable],
    vmax: int,
    overlap: Optional[_OverlapIndex] = None,
    steps_out: Optional[List[Tuple[PlanKey, PlanKey]]] = None,
) -> bool:
    """Merge matched pairs in order until ``vmax`` is reached (lines 8-11).

    Neighbour edges of a collapsed pair are unioned; q-q edges are then
    re-estimated exactly from the merged interest mask (the paper's
    bit-vector estimation) -- through the index-array cache when
    ``overlap`` is given (fast path), through ``space.overlap_rate``
    otherwise.  Returns whether any merge happened.
    """
    merged_any = False
    for a, b in pairs:
        if work.vertex_count() <= vmax:
            break
        if a not in work.qverts or b not in work.qverts:
            continue
        u, v = work.qverts[a], work.qverts[b]
        if steps_out is not None:
            steps_out.append((plan_key(u), plan_key(v)))
        w_new = merge_qvertices(u, v, origin=origin)
        if overlap is not None:
            overlap.merged(w_new, u, v)

        # collect union of neighbour edges before removal
        nbr_edges: Dict[VertexId, float] = {}
        for old in (a, b):
            for nbr, w in work.neighbors(old).items():
                if nbr in (a, b):
                    continue
                nbr_edges[nbr] = nbr_edges.get(nbr, 0.0) + w
        work.remove_vertex(a)
        work.remove_vertex(b)
        work.add_qvertex(w_new)
        if overlap is not None:
            # re-estimate all q-q overlaps of the merged vertex in one
            # batched membership pass
            qnbrs = [nbr for nbr in nbr_edges if nbr in work.qverts]
            qrates = overlap.overlap_rates(
                w_new, [work.qverts[nbr] for nbr in qnbrs]
            )
            for nbr, w in zip(qnbrs, qrates):
                work.set_edge(w_new.vid, nbr, w)
            for nbr, w in nbr_edges.items():
                if nbr not in work.qverts:
                    work.set_edge(w_new.vid, nbr, w)
        else:
            for nbr, w in nbr_edges.items():
                if nbr in work.qverts:
                    # re-estimate overlap exactly from the merged mask
                    w = space.overlap_rate(w_new.mask, work.qverts[nbr].mask)
                work.set_edge(w_new.vid, nbr, w)
        merged_any = True
    return merged_any


def coarsen(
    g: QueryGraph,
    vmax: int,
    space: SubstreamSpace,
    origin: Optional[Hashable] = None,
    rng: Optional[random.Random] = None,
    ng: Optional[NetworkGraph] = None,
    fast: bool = True,
    steps_out: Optional[List[Tuple[PlanKey, PlanKey]]] = None,
    warm_steps: Optional[Sequence[Tuple[PlanKey, PlanKey]]] = None,
) -> QueryGraph:
    """Algorithm 1: coarsen ``g`` until it has at most ``vmax`` vertices.

    Each round shuffles the q-vertices, computes one heavy-edge matching
    pass over them (heavily-connected vertices are likely to be mapped to
    the same network vertex anyway) and collapses the matched pairs;
    rounds repeat until the graph fits in ``vmax`` or no pair is left.
    ``fast`` selects the numpy matching kernel
    (:func:`_match_pass_arrays`); the dict-based reference
    (:func:`_match_pass_reference`) implements the identical rule and
    produces the identical graph for the same ``rng``.

    ``g`` is not modified; a new graph is returned.  Only q-vertices are
    collapsed with each other in this implementation of the n-vertex rule:
    q/n merges are realised by the mapping layer pinning the n-vertex, so
    collapsing q into n is equivalent to a zero-distance preference, and
    keeping them separate loses no information while keeping the
    uncoarsening bookkeeping simple.  n-vertices therefore never merge
    (the strictest reading of the cluster constraint).
    """
    rng = rng or random.Random(0)
    match_pass = _match_pass_arrays if fast else _match_pass_reference
    overlap = _OverlapIndex(space) if fast else None

    # working copy
    work = QueryGraph()
    for qv in g.qverts.values():
        work.add_qvertex(qv)
    for nv in g.nverts.values():
        work.add_nvertex(nv)
    for a, b, w in g.edges():
        work.set_edge(a, b, w)

    if warm_steps:
        # replay still-valid merge steps from a previous plan before any
        # fresh matching; each step is resolved through a member-key ->
        # vid map that grows as merges produce new vertices
        kv = {plan_key(v): v.vid for v in work.qverts.values()}
        for ka, kb in warm_steps:
            if work.vertex_count() <= vmax:
                break
            va, vb = kv.get(ka), kv.get(kb)
            if (
                va is None or vb is None
                or va not in work.qverts or vb not in work.qverts
            ):
                continue
            if _collapse_pairs(
                work, [(va, vb)], space, origin, vmax, overlap,
                steps_out=steps_out,
            ):
                merged = next(reversed(work.qverts.values()))
                kv[plan_key(merged)] = merged.vid

    while work.vertex_count() > vmax:
        qids = list(work.qverts)
        rng.shuffle(qids)
        pairs = match_pass(work, qids)
        if not pairs:
            break  # nothing left to collapse (graph may stay above vmax)
        if not _collapse_pairs(
            work, pairs, space, origin, vmax, overlap, steps_out=steps_out
        ):
            break
    return work


def _replay_steps(
    inputs: Dict[PlanKey, QVertex],
    steps: Sequence[Tuple[PlanKey, PlanKey]],
    origin: Optional[Hashable],
) -> List[QVertex]:
    """Re-apply recorded merge steps to content-equal fresh inputs.

    Merging is the only part of coarsening whose output feeds downstream
    consumers (``collect``/``adopt`` keep just the vertex list), so a full
    plan hit skips matching and edge re-estimation entirely and re-runs
    the merges in recorded order.  Aggregates are order-dependent float
    sums, so identical inputs merged in the identical order reproduce the
    scratch result bit for bit — with ``children`` pointing at the *live*
    input objects, which is what keeps later statistics refreshes exact.
    """
    cur = dict(inputs)
    for ka, kb in steps:
        u = cur.pop(ka)
        v = cur.pop(kb)
        merged = merge_qvertices(u, v, origin=origin)
        cur[plan_key(merged)] = merged
    return list(cur.values())


def coarsen_cached(
    g: QueryGraph,
    vmax: int,
    space: SubstreamSpace,
    origin: Optional[Hashable] = None,
    rng: Optional[random.Random] = None,
    fast: bool = True,
    plan: Optional[CoarsePlan] = None,
    mode: str = "replay",
) -> Tuple[List[QVertex], CoarsePlan, str]:
    """Coarsen with plan reuse; returns ``(vertices, plan, reused)``.

    ``reused`` is ``"full"`` when every input signature matched and the
    recorded steps were replayed outright, ``"partial"`` when only the
    steps untouched by dirty inputs were warm-started (``mode ==
    "partial"``), ``"none"`` for a scratch run.  ``mode == "off"``
    disables reuse but still records a plan for the next round.
    """
    inputs = {plan_key(v): v for v in g.qverts.values()}
    sigs = {k: vertex_sig(v) for k, v in inputs.items()}
    if (
        plan is not None
        and mode != "off"
        and plan.vmax == vmax
        and plan.sigs == sigs
    ):
        return _replay_steps(inputs, plan.steps, origin), plan, "full"

    warm: Optional[List[Tuple[PlanKey, PlanKey]]] = None
    if plan is not None and mode == "partial" and plan.vmax == vmax:
        # a step is replayable iff both operands derive from inputs whose
        # signatures are unchanged; dirty inputs never enter `avail`, so
        # every step downstream of one is excluded automatically
        avail = {k for k, s in sigs.items() if plan.sigs.get(k) == s}
        warm = []
        for ka, kb in plan.steps:
            if ka in avail and kb in avail:
                warm.append((ka, kb))
                avail.discard(ka)
                avail.discard(kb)
                avail.add(tuple(sorted(ka + kb)))

    steps: List[Tuple[PlanKey, PlanKey]] = []
    coarse = coarsen(
        g, vmax, space, origin=origin, rng=rng, fast=fast,
        steps_out=steps, warm_steps=warm,
    )
    out = list(coarse.qverts.values())
    new_plan = CoarsePlan(vmax=vmax, sigs=sigs, steps=steps, output=list(out))
    return out, new_plan, "partial" if warm else "none"


def uncoarsen_vertex(v: QVertex) -> List[QVertex]:
    """Expand a coarse vertex one level (its direct children).

    Atomic vertices expand to themselves.
    """
    if not v.children:
        return [v]
    return list(v.children)
