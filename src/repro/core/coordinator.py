"""Per-coordinator state and the hierarchical optimization protocol.

Every coordinator owns

* a **network subgraph** over its children (leaf coordinators: the
  processors of their cluster; internal ones: one vertex per child
  cluster, weighted with the cluster's total capability and sited at the
  child coordinator's node);
* a **query subgraph** over the (possibly coarse) q-vertices currently
  assigned to its subtree, plus the n-vertices they reference;
* an **assignment** mapping each q-vertex to one child.

Three protocols run over the tree:

1. *Initial distribution* -- query graphs are coarsened bottom-up
   (Algorithm 1), then mapped top-down (Algorithm 2), uncoarsening one
   level per hop (Section 3.5).
2. *Online insertion* -- new queries route root-to-leaf, each hop picking
   the WEC-minimising feasible child (Section 3.6).
3. *Adaptive redistribution* -- each round, every coordinator re-balances
   its children with diffusion + Algorithm 3 and then refines; decisions
   propagate downward and physical migration happens only at the leaves
   (Section 3.7).

In the paper the coordinators are distributed processes that exchange
(coarsened) graphs; here they are objects in one process, so "retrieving
finer-grained information from the corresponding coordinator" is simply
following the coarse vertex's ``children`` references.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..obs import registry as _obs
from ..query.interest import SubstreamSpace
from ..query.workload import QuerySpec
from ..topology.latency import LatencyOracle
from .coarsening import (
    coarsen_cached,
    content_rng,
    merge_qvertices,
    rebuild_edges,
    uncoarsen_vertex,
)
from .graphs import (
    DEFAULT_ALPHA,
    Mapping,
    NetVertex,
    NetworkGraph,
    NVertex,
    QueryGraph,
    QVertex,
    VertexId,
    attach_overlap_edges,
    build_query_graph,
    qvertex_from_query,
)
from .fastcost import CostWorkspace
from .hierarchy import Cluster
from .insertion import attach_vertex, choose_target
from .mapping import map_graph, refine_mapping
from .rebalance import RebalanceStats, rebalance, refine_distribution

__all__ = ["Coordinator", "AdaptationReport"]


def _flatten(v: QVertex) -> List[QVertex]:
    """Fully expand a coarse vertex to its atomic query vertices."""
    if not v.children:
        return [v]
    out: List[QVertex] = []
    for child in v.children:
        out.extend(_flatten(child))
    return out


class AdaptationReport:
    """Aggregate statistics of one adaptation round."""

    def __init__(self):
        self.migrated_queries: int = 0
        self.migrated_state: float = 0.0
        self.coordinator_moves: int = 0
        self.refinement_moves: int = 0

    def absorb(self, stats: RebalanceStats, refinement: int) -> None:
        """Fold one coordinator's rebalance statistics into the report."""
        self.coordinator_moves += stats.moved_vertices
        self.refinement_moves += refinement


class Coordinator:
    """One node of the coordinator tree (Section 3.3)."""

    def __init__(
        self,
        cluster: Cluster,
        oracle: LatencyOracle,
        space: SubstreamSpace,
        capabilities: Optional[Dict[int, float]] = None,
        vmax: int = 150,
        alpha: float = DEFAULT_ALPHA,
        seed: int = 0,
        placement: Optional[Dict[int, int]] = None,
        max_overlap_neighbors: int = 20,
        incremental: bool = True,
        coarse_reuse: str = "replay",
        plan_store: Optional[Dict] = None,
    ):
        self.cluster = cluster
        self.name: VertexId = ("coord", cluster.cluster_id)
        self.oracle = oracle
        self.space = space
        self.vmax = vmax
        self.alpha = alpha
        self.capabilities = capabilities or {}
        # rng seeded from *tree-local* facts (level, median, first member)
        # rather than the process-global cluster_id counter: two Cosmos
        # instances built in one process must behave identically, which is
        # what makes repeated simulator runs reproduce bit-identical traces
        stable_id = (
            cluster.level * 1_000_003 + cluster.coordinator
        ) * 1_000_003 + min(cluster.members)
        self.rng = random.Random(seed ^ stable_id)
        self._seed = seed
        self._stable_id = stable_id
        self.max_overlap_neighbors = max_overlap_neighbors
        #: delta-maintain snapshots/workspaces across rounds (False = the
        #: full-rebuild reference mode; graph *mutations* are mode-shared)
        self.incremental = incremental
        #: coarse-plan reuse policy: "replay" | "partial" | "off"
        self.coarse_reuse = coarse_reuse
        #: stable_id -> CoarsePlan, shared by the tree (and, via Cosmos,
        #: across hierarchy rebuilds after membership changes)
        self._plan_store: Dict = plan_store if plan_store is not None else {}
        #: query_id -> processor; shared by the whole tree (leaves write it)
        self.placement: Dict[int, int] = placement if placement is not None else {}

        self.children: List[Coordinator] = [
            Coordinator(
                child, oracle, space, capabilities, vmax, alpha, seed,
                self.placement, max_overlap_neighbors,
                incremental, coarse_reuse, self._plan_store,
            )
            for child in cluster.children
        ]
        self.is_leaf = not self.children
        self.ng = self._build_network_graph()

        #: the (possibly coarse) vertices currently at this level
        self.vertices: Dict[VertexId, QVertex] = {}
        self.qg: QueryGraph = QueryGraph(incremental=incremental)
        self.assignment: Mapping = {}
        #: CPU seconds spent in this coordinator's own optimization work
        self.cpu_time: float = 0.0
        # lazy routing state for online insertion (per-child masks/loads)
        self._child_masks = None
        self._loads: Dict[VertexId, float] = {}
        self._total_weight: float = 0.0
        # incremental-adaptation state: a cost workspace that outlives
        # rounds, the previous round's move count (0 + no changes => the
        # round can be skipped), and dirtiness flags set by statistics
        # refresh / query removal / rate perturbation
        self._ws: Optional[CostWorkspace] = None
        self._last_moves: Optional[int] = None
        self._stats_dirty = False
        self._edges_stale = False
        self._graph_mutations = 0
        self._rates_gen = space.rates_generation
        # True when the whole subtree reproduced itself last round (every
        # level skipped) and no mutation has touched it since; adaptation
        # then does not even recurse into it.  Mode-shared state, like
        # the skip rule itself, so both optimizer modes stay in lockstep.
        self._subtree_quiet = False

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def _capability(self, node: int) -> float:
        return self.capabilities.get(node, 1.0)

    def _build_network_graph(self) -> NetworkGraph:
        if self.is_leaf:
            vertices = [
                NetVertex(
                    vid=("p", node),
                    site=node,
                    capability=self._capability(node),
                    covers=frozenset([node]),
                )
                for node in self.cluster.members
            ]
        else:
            vertices = []
            for child in self.children:
                descendants = child.cluster.descendants()
                vertices.append(
                    NetVertex(
                        vid=child.name,
                        site=child.cluster.coordinator,
                        capability=sum(self._capability(p) for p in descendants),
                        covers=frozenset(descendants),
                    )
                )
        return NetworkGraph(vertices, self.oracle.__call__, oracle=self.oracle)

    def _child_by_vid(self, vid: VertexId) -> "Coordinator":
        for child in self.children:
            if child.name == vid:
                return child
        raise KeyError(vid)

    def all_coordinators(self) -> List["Coordinator"]:
        """This coordinator plus every descendant (pre-order)."""
        out = [self]
        for child in self.children:
            out.extend(child.all_coordinators())
        return out

    def response_time(self) -> float:
        """Critical-path optimization time (subtrees run in parallel)."""
        if self.is_leaf:
            return self.cpu_time
        return self.cpu_time + max(c.response_time() for c in self.children)

    def total_time(self) -> float:
        """Total CPU time over all coordinators in the subtree."""
        return self.cpu_time + sum(c.total_time() for c in self.children)

    def reset_timers(self) -> None:
        """Zero CPU-time accounting across the subtree."""
        for c in self.all_coordinators():
            c.cpu_time = 0.0

    # ------------------------------------------------------------------
    # phase 1a: bottom-up query graph hierarchy (Section 3.4)
    # ------------------------------------------------------------------
    def collect(self, queries: Sequence[QuerySpec]) -> List[QVertex]:
        """Build the query-graph hierarchy; returns this subtree's coarse
        vertex set (what would be "submitted to the parent coordinator")."""
        t0 = time.perf_counter()
        if self.is_leaf:
            local = [
                qvertex_from_query(q, self.space)
                for q in queries
                if q.proxy in self.cluster.members
            ]
            incoming = local
        else:
            incoming = []
            for child in self.children:
                incoming.extend(child.collect(queries))
            t0 = time.perf_counter()  # exclude children's time from ours

        if len(incoming) > self.vmax:
            if _obs.ACTIVE is not None:
                _obs.ACTIVE.inc("opt.coarsen_invocations")
                _obs.ACTIVE.inc("opt.coarsen_input_vertices", len(incoming))
            graph = build_query_graph(
                incoming, self.space, self.ng, self.max_overlap_neighbors
            )
            result = self._coarsen_cached(graph)
        else:
            result = list(incoming)
        self.cpu_time += time.perf_counter() - t0
        return result

    def _coarsen_cached(self, graph: QueryGraph) -> List[QVertex]:
        """Coarsen ``graph``, reusing this coordinator's recorded plan.

        The rng is derived from the input content (not the coordinator's
        sequential stream), so a coarsening run is a pure function of its
        inputs: a recorded plan replayed over signature-identical inputs
        is bit-identical to running from scratch, and both optimizer modes
        see the same coarse graphs.
        """
        rng = content_rng(self._seed, self._stable_id, graph)
        mode = self.coarse_reuse if self.incremental else "off"
        plan = self._plan_store.get(self._stable_id)
        result, plan, reused = coarsen_cached(
            graph, self.vmax, self.space, origin=self.name, rng=rng,
            plan=plan, mode=mode,
        )
        self._plan_store[self._stable_id] = plan
        if _obs.ACTIVE is not None:
            if reused == "full":
                _obs.ACTIVE.inc("opt.coarse_plan_hits")
            elif reused == "partial":
                _obs.ACTIVE.inc("opt.coarse_plan_partial")
            else:
                _obs.ACTIVE.inc("opt.coarse_plan_misses")
        return result

    # ------------------------------------------------------------------
    # phase 1b: top-down initial distribution (Section 3.5)
    # ------------------------------------------------------------------
    def distribute(self, vertices: Sequence[QVertex]) -> None:
        """Map ``vertices`` onto this coordinator's children, recurse.

        Vertices are mapped at the granularity received (one-level
        uncoarsened by the parent); all member queries of a vertex land on
        the vertex's target, which is what keeps per-coordinator work
        bounded by ``vmax`` regardless of the total query count.
        """
        t0 = time.perf_counter()
        self.vertices = {v.vid: v for v in vertices}
        self.qg = build_query_graph(
            list(self.vertices.values()), self.space, self.ng,
            self.max_overlap_neighbors,
        )
        self._reset_incremental_state()
        result = map_graph(self.qg, self.ng, alpha=self.alpha)
        self.assignment = result.mapping
        self._invalidate_routing_state()
        self.cpu_time += time.perf_counter() - t0

        if self.is_leaf:
            self._write_placement()
        else:
            for child in self.children:
                assigned = [
                    self.vertices[vid]
                    for vid, target in self.assignment.items()
                    if target == child.name and vid in self.vertices
                ]
                expanded: List[QVertex] = []
                for v in assigned:
                    expanded.extend(uncoarsen_vertex(v))
                child.distribute(expanded)

    def _write_placement(self) -> None:
        for vid, target in self.assignment.items():
            if vid not in self.vertices:
                continue
            processor = self.ng.site(target)
            for query_id in self.vertices[vid].members:
                self.placement[query_id] = processor

    # ------------------------------------------------------------------
    # phase 1c: adopting an externally-given placement
    # ------------------------------------------------------------------
    def adopt(
        self, queries: Sequence[QuerySpec], placement: Dict[int, int]
    ) -> List[QVertex]:
        """Initialise coordinator state from an existing placement.

        Models the Figure 7 scenario: queries were allocated by some other
        (possibly random) policy and the tree must adapt from there.  Each
        leaf takes the queries placed inside its cluster verbatim; coarse
        summaries flow upward exactly as in :meth:`collect`, but the
        assignment reflects the given placement instead of a fresh
        mapping.  Returns this subtree's (possibly coarse) vertex set.
        """
        if self.is_leaf:
            vertices = []
            self.assignment = {}
            for q in queries:
                host = placement.get(q.query_id)
                if host in self.cluster.members:
                    v = qvertex_from_query(q, self.space)
                    vertices.append(v)
                    self.assignment[v.vid] = ("p", host)
                    self.placement[q.query_id] = host
            self.vertices = {v.vid: v for v in vertices}
            self.qg = build_query_graph(
                vertices, self.space, self.ng, self.max_overlap_neighbors
            )
        else:
            vertices = []
            self.assignment = {}
            for child in self.children:
                child_vertices = child.adopt(queries, placement)
                vertices.extend(child_vertices)
                for v in child_vertices:
                    self.assignment[v.vid] = child.name
            self.vertices = {v.vid: v for v in vertices}
            self.qg = build_query_graph(
                vertices, self.space, self.ng, self.max_overlap_neighbors
            )

        self._reset_incremental_state()
        self._invalidate_routing_state()
        if len(vertices) > self.vmax:
            if _obs.ACTIVE is not None:
                _obs.ACTIVE.inc("opt.coarsen_invocations")
                _obs.ACTIVE.inc("opt.coarsen_input_vertices", len(vertices))
            return self._coarsen_cached(self.qg)
        return list(vertices)

    # ------------------------------------------------------------------
    # phase 2: online insertion (Section 3.6)
    # ------------------------------------------------------------------
    def insert(self, v: QVertex) -> int:
        """Route a new query vertex down to a processor; returns it.

        Routing uses only coarse per-child information (each child's
        aggregate interest mask and load), exactly the property that makes
        the scheme fast: scoring a query is O(children + referenced
        sources), independent of how many queries the system holds.  The
        estimated WEC delta of placing the vertex at child ``t`` is

            sum_src rate * d(t, src) + sum_proxy rate * d(t, proxy)
            + sum_{c != t} overlap(v, mask_c) * d(t, c),

        the last term being the sharing penalty for sitting away from the
        children that already host overlapping queries.
        """
        t0 = time.perf_counter()
        if _obs.ACTIVE is not None:
            _obs.ACTIVE.inc("opt.insert_hops")
        self._subtree_quiet = False
        self._ensure_routing_state()
        w = v.weight
        total_q = self._total_weight + w
        total_c = self.ng.total_capability()

        overlaps = {
            c: self.space.overlap_rate(v.mask, mask)
            for c, mask in self._child_masks.items()
        }
        best = None
        best_cost = float("inf")
        fallback = None
        fallback_violation = float("inf")
        for t in self.ng.ids():
            site = self.ng.site(t)
            cost = 0.0
            for node, rate in v.source_rates.items():
                cost += rate * self.oracle(site, node)
            for node, rate in v.proxy_rates.items():
                cost += rate * self.oracle(site, node)
            for c, ov in overlaps.items():
                if c != t and ov > 0:
                    cost += ov * self.oracle(site, self.ng.site(c))
            limit = (1.0 + self.alpha) * self.ng.capability(t) * total_q / total_c
            if self._loads[t] + w <= limit + 1e-9:
                if cost < best_cost:
                    best_cost = cost
                    best = t
            violation = self._loads[t] + w - limit
            if violation < fallback_violation:
                fallback_violation = violation
                fallback = t
        target = best if best is not None else fallback

        self.vertices[v.vid] = v
        self.assignment[v.vid] = target
        self._child_masks[target] |= v.mask
        self._loads[target] += w
        self._total_weight += w
        self.cpu_time += time.perf_counter() - t0

        if self.is_leaf:
            if _obs.ACTIVE is not None:
                _obs.ACTIVE.inc("opt.insertions")
            processor = self.ng.site(target)
            for query_id in v.members:
                self.placement[query_id] = processor
            return processor
        return self._child_by_vid(target).insert(v)

    def remove_query(self, query_id: int) -> bool:
        """Remove one atomic query from this subtree's state (Section 3.6
        in reverse: query departure).

        The query may sit inside a coarse vertex at upper levels; coarse
        vertices are stripped of the departed member in place (weight,
        mask and rate maps re-aggregated from the remaining children) so
        later adaptation rounds and insert routing no longer account for
        it.  Vertex *objects* are shared between adjacent levels (a
        child's vertices are the parent vertices' ``children``), so one
        strip cascades into every level holding the same coarse object;
        the recursion still visits the whole subtree because each level
        must drop vanished vertices from its own dictionaries.  Edge
        weights touching a stripped vertex go stale until the next graph
        rebuild, exactly like after a statistics refresh.  Returns False
        when the query is unknown to this subtree.
        """
        found = self._remove_query_level(query_id)
        if found and _obs.ACTIVE is not None:
            _obs.ACTIVE.inc("opt.removals")
        if found:
            # descendants sharing a stripped coarse object may have had
            # their vertices cleaned without noticing (their own owner
            # search misses), yet their cached per-child masks/loads
            # still count the departed query -- invalidate routing state
            # once over the whole subtree (lazily rebuilt on next insert)
            for coord in self.all_coordinators():
                coord._invalidate_routing_state()
        return found

    def _remove_query_level(self, query_id: int) -> bool:
        t0 = time.perf_counter()
        found = False
        owner_vid = next(
            (vid for vid, v in self.vertices.items() if query_id in v.members),
            None,
        )
        if owner_vid is not None:
            found = True
            v = self.vertices[owner_vid]
            if v.members == (query_id,):
                # the query's last trace at this level: drop the vertex
                # and any n-vertices its departure leaves isolated
                del self.vertices[owner_vid]
                self.assignment.pop(owner_vid, None)
                if owner_vid in self.qg.qverts:
                    nbrs = [
                        n for n in self.qg.neighbors(owner_vid)
                        if n in self.qg.nverts
                    ]
                    self.qg.remove_vertex(owner_vid)
                    for n in nbrs:
                        if not self.qg.neighbors(n):
                            self.qg.remove_vertex(n)
            else:
                _strip_member(v, query_id)
                if owner_vid in self.qg.qverts:
                    self._refresh_stripped_edges(v)
            # the graph changed under last round's converged state --
            # the next adaptation round must not be skipped
            self._stats_dirty = True
            self._subtree_quiet = False
        self.cpu_time += time.perf_counter() - t0
        for child in self.children:
            if child._remove_query_level(query_id):
                found = True
        return found

    def _ensure_routing_state(self) -> None:
        """(Re)build the per-child aggregate masks and loads if stale."""
        if getattr(self, "_child_masks", None) is not None:
            return
        self._child_masks = {t: 0 for t in self.ng.ids()}
        self._loads = {t: 0.0 for t in self.ng.ids()}
        self._total_weight = 0.0
        for vid, v in self.vertices.items():
            target = self.assignment.get(vid)
            if target is None or target not in self.ng.vertices:
                continue
            self._child_masks[target] |= v.mask
            self._loads[target] += v.weight
            self._total_weight += v.weight

    def _invalidate_routing_state(self) -> None:
        self._child_masks = None

    def _reset_incremental_state(self) -> None:
        """Called after a wholesale graph replacement (distribute/adopt)."""
        self.qg.incremental = self.incremental
        self._ws = None
        self._last_moves = None
        self._stats_dirty = False
        self._edges_stale = False
        self._graph_mutations = 0
        self._subtree_quiet = False

    def _workspace(self) -> CostWorkspace:
        """The cost workspace for this round.

        Incremental mode keeps one workspace alive across rounds and
        journal-syncs it; the reference mode builds a fresh one every
        round.  Both return bit-identical attach costs (costs gather
        through the live adjacency dicts), so the modes stay in lockstep.
        """
        if self.incremental:
            if self._ws is None or self._ws.qg is not self.qg:
                self._ws = CostWorkspace(self.qg, self.ng)
                if _obs.ACTIVE is not None:
                    _obs.ACTIVE.inc("opt.workspace_rebuilds")
            else:
                self._ws.ensure_synced()
                if _obs.ACTIVE is not None:
                    _obs.ACTIVE.inc("opt.workspace_syncs")
            return self._ws
        return CostWorkspace(self.qg, self.ng)

    def _sync_graph(self, vertices: List[QVertex]) -> bool:
        """Bring ``self.qg`` in line with this round's vertex set.

        Returns whether anything structural changed.  This is the
        delta-maintenance replacement for the per-round
        ``build_query_graph``: departed vertices are removed (dropping
        n-vertices they leave isolated), newcomers are attached with q-n
        edges from their rate maps plus one batched top-k overlap pass,
        and a periodic full edge re-estimation bounds drift from
        localized attachment.  Both optimizer modes run this identically
        -- the graph *content* is mode-shared; only snapshot/workspace
        caching differs -- which is what makes incremental-vs-reference
        bit-parity provable.
        """
        qg = self.qg
        want = {v.vid: v for v in vertices}
        current = qg.qverts
        if not current and not want:
            self._edges_stale = False
            return False
        added = [v for v in vertices if v.vid not in current]
        removed = [vid for vid in current if vid not in want]
        live = len(want)

        if (
            self._edges_stale
            or not current
            or not want
            or len(added) + len(removed) > live // 2
        ):
            # wholesale replacement (first round after distribute at a
            # leaf flips coarse vertices to atoms; rate perturbation
            # staled every edge; ...): rebuild from scratch
            self.qg = build_query_graph(
                vertices, self.space, self.ng, self.max_overlap_neighbors
            )
            self.qg.incremental = self.incremental
            self._edges_stale = False
            self._graph_mutations = 0
            if _obs.ACTIVE is not None:
                _obs.ACTIVE.inc("opt.graph_rebuilds")
            return True

        changed = False
        for vid in removed:
            nbrs = [n for n in qg.neighbors(vid) if n in qg.nverts]
            qg.remove_vertex(vid)
            for n in nbrs:
                if not qg.neighbors(n):
                    qg.remove_vertex(n)
            changed = True
        # rebind same-vid vertices to this round's objects (content-equal
        # in the protocols that re-create vertex objects)
        for vid, v in want.items():
            cur = current.get(vid)
            if cur is not None and cur is not v:
                current[vid] = v
        if added:
            changed = True
            for v in added:
                qg.add_qvertex(v)
                for node, rate in list(v.source_rates.items()) + list(
                    v.proxy_rates.items()
                ):
                    nvid = ("n", node)
                    if nvid not in qg.nverts:
                        clu = self.ng.covering_vertex(node)
                        qg.add_nvertex(NVertex(vid=nvid, node=node, clu=clu))
                    qg.add_edge(v.vid, nvid, rate)
            qlist = list(qg.qverts.values())
            new_rows = list(range(len(qlist) - len(added), len(qlist)))
            attach_overlap_edges(
                qg, qlist, new_rows, self.space, self.max_overlap_neighbors
            )
        if changed:
            self._graph_mutations += len(added) + len(removed)
            if self._graph_mutations > max(32, live):
                # deterministic compaction: re-estimate every edge from
                # vertex aggregate state (mode-shared, so both optimizer
                # modes compact at the same instant to the same graph)
                rebuild_edges(qg, self.space, self.max_overlap_neighbors)
                self._graph_mutations = 0
                if _obs.ACTIVE is not None:
                    _obs.ACTIVE.inc("opt.edge_compactions")
        return changed

    def _assignment_view(self) -> Mapping:
        """Assignment restricted to vertices still in the graph."""
        return {
            vid: t for vid, t in self.assignment.items() if vid in self.qg.qverts
        }

    def _maybe_compress(self) -> None:
        """Bound graph growth from insertions.

        When the graph exceeds ``3 * vmax`` q-vertices, merge pairs that
        are mapped to the *same* child (so the assignment stays well
        defined) until the size is back under ``2 * vmax``.
        """
        if len(self.qg.qverts) <= 3 * self.vmax:
            return
        by_target: Dict[VertexId, List[VertexId]] = {}
        for vid in self.qg.qverts:
            by_target.setdefault(self.assignment[vid], []).append(vid)
        goal = 2 * self.vmax
        # lumps must stay small enough for the re-balancer to move them:
        # cap merged weight at a fraction of the smallest child's share
        total_q = sum(v.weight for v in self.vertices.values())
        total_c = self.ng.total_capability()
        min_share = min(
            self.ng.capability(t) * total_q / total_c for t in self.ng.ids()
        )
        weight_cap = 0.25 * min_share if min_share > 0 else float("inf")
        for target, vids in by_target.items():
            if len(self.qg.qverts) <= goal:
                break
            vids = [v for v in vids if v in self.qg.qverts]
            # merge in pairwise rounds, smallest weights first: a vertex
            # merged in one round is not merged again until the next, so
            # coarse vertices stay balanced and movable
            while len(vids) >= 2 and len(self.qg.qverts) > goal:
                vids.sort(key=lambda x: self.vertices[x].weight)
                survivors: List[VertexId] = []
                i = 0
                merged_any = False
                while i + 1 < len(vids) and len(self.qg.qverts) > goal:
                    a, b = vids[i], vids[i + 1]
                    if (self.vertices[a].weight + self.vertices[b].weight
                            > weight_cap):
                        survivors.extend(vids[i:])
                        i = len(vids)
                        break
                    merged = merge_qvertices(
                        self.vertices[a], self.vertices[b], origin=self.name
                    )
                    self._replace_pair(a, b, merged, target)
                    survivors.append(merged.vid)
                    merged_any = True
                    i += 2
                survivors.extend(vids[i:])
                if not merged_any:
                    break
                vids = survivors

    def _replace_pair(
        self, a: VertexId, b: VertexId, merged: QVertex, target: VertexId
    ) -> None:
        neighbor_edges: Dict[VertexId, float] = {}
        for old in (a, b):
            for nbr, w in self.qg.neighbors(old).items():
                if nbr in (a, b):
                    continue
                neighbor_edges[nbr] = neighbor_edges.get(nbr, 0.0) + w
        self.qg.remove_vertex(a)
        self.qg.remove_vertex(b)
        del self.vertices[a], self.vertices[b]
        del self.assignment[a], self.assignment[b]
        self.qg.add_qvertex(merged)
        self.vertices[merged.vid] = merged
        self.assignment[merged.vid] = target
        for nbr, w in neighbor_edges.items():
            if nbr in self.qg.qverts:
                w = self.space.overlap_rate(merged.mask, self.qg.qverts[nbr].mask)
            self.qg.set_edge(merged.vid, nbr, w)

    # ------------------------------------------------------------------
    # phase 3: adaptive redistribution (Section 3.7)
    # ------------------------------------------------------------------
    def adapt(self, report: Optional[AdaptationReport] = None) -> AdaptationReport:
        """Run one adaptation round over the whole subtree.

        Call on the root coordinator; migration counts compare the leaf
        placements before and after the round (queries physically move
        only once all decisions are made).
        """
        t_round = time.perf_counter()
        report = report or AdaptationReport()
        before = dict(self.placement)
        self._adapt_level(self.vertices.values(), report)
        for query_id, processor in self.placement.items():
            old = before.get(query_id)
            if old is not None and old != processor:
                report.migrated_queries += 1
        if _obs.ACTIVE is not None:
            _obs.ACTIVE.observe(
                "opt.adapt_round_s", time.perf_counter() - t_round
            )
        return report

    def _adapt_level(
        self, vertices, report: AdaptationReport
    ) -> None:
        t0 = time.perf_counter()
        vertices = list(vertices)
        if self.is_leaf:
            # adaptation at the leaf works on atomic queries: load
            # re-balancing needs fine-grained movable units, and atomic
            # vertex ids are stable across rounds (migration accounting)
            flat: List[QVertex] = []
            for v in vertices:
                flat.extend(_flatten(v))
            vertices = flat
        old_assignment = self._assignment_view()
        changed = self._sync_graph(vertices)
        self.vertices = {v.vid: v for v in vertices}

        # a level whose graph did not change, whose statistics are
        # untouched and whose previous round converged (zero moves) will
        # reproduce last round's assignment exactly -- skip the phases
        # (the subtree below may still be dirty, so always recurse)
        skipped = (
            not changed and not self._stats_dirty and self._last_moves == 0
        )
        if skipped:
            if _obs.ACTIVE is not None:
                _obs.ACTIVE.inc("opt.adapt_skips")
            self.cpu_time += time.perf_counter() - t0
        else:
            # carry over assignments for vertices we already knew;
            # greedily place newcomers
            self.assignment = {}
            pinned = self.qg.pinned_mapping(self.ng)
            self.assignment.update(pinned)
            loads = {vid: 0.0 for vid in self.ng.ids()}
            newcomers: List[QVertex] = []
            for v in vertices:
                old = old_assignment.get(v.vid)
                if old is None and self.is_leaf and v.members:
                    # continuity: an atomic query already running on one
                    # of this leaf's processors stays there unless
                    # rebalanced
                    host = self.placement.get(v.members[0])
                    if host is not None and ("p", host) in self.ng.vertices:
                        old = ("p", host)
                if old is not None and old in self.ng.vertices:
                    self.assignment[v.vid] = old
                    loads[old] += v.weight
                else:
                    newcomers.append(v)
            ws = self._workspace()
            if newcomers:
                limits = self.qg.capacity_limits(self.ng, self.alpha)
                ws.init_positions(self.assignment)
                for v in sorted(newcomers, key=lambda x: -x.weight):
                    target, _ = choose_target(
                        self.qg, self.ng, v, None, loads, limits,
                        workspace=ws,
                    )
                    self.assignment[v.vid] = target
                    loads[target] += v.weight
                    ws.set_position(v.vid, target)

            # phase A: diffusion-guided load re-balancing (Algorithm 3);
            # both phases share one cost workspace
            original = dict(self.assignment)
            stats = rebalance(
                self.qg, self.ng, self.assignment, alpha=self.alpha,
                rng=self.rng, workspace=ws,
            )
            # phase B: distribution refinement
            refinement = refine_distribution(
                self.qg, self.ng, self.assignment, original,
                alpha=self.alpha, rng=self.rng, workspace=ws,
            )
            if _obs.ACTIVE is not None:
                _obs.ACTIVE.inc("opt.adapt_levels")
                _obs.ACTIVE.inc("opt.diffusion_moves", stats.moved_vertices)
                _obs.ACTIVE.inc("opt.refinement_moves", refinement)
            report.absorb(stats, refinement)
            report.migrated_state += stats.moved_state
            self._last_moves = stats.moved_vertices + refinement
            self._stats_dirty = False
            if not self.is_leaf:
                # bound vertex-set growth from online insertions (atomic
                # inserted vertices pile up at every level otherwise)
                self._maybe_compress()
            self._invalidate_routing_state()
            self.cpu_time += time.perf_counter() - t0

        if self.is_leaf:
            if not skipped:
                self._write_placement()
            self._subtree_quiet = skipped
        elif skipped and all(c._subtree_quiet for c in self.children):
            # the whole subtree reproduced itself last round and nothing
            # has touched it since: descending would only re-derive the
            # identical state level by level.  Not recursing is what
            # makes a converged tree's adaptation round O(dirty), not
            # O(total queries).
            self._subtree_quiet = True
        else:
            for child in self.children:
                assigned = [
                    self.vertices[vid]
                    for vid, target in self.assignment.items()
                    if target == child.name and vid in self.vertices
                ]
                expanded: List[QVertex] = []
                for v in assigned:
                    expanded.extend(uncoarsen_vertex(v))
                child._adapt_level(expanded, report)
            self._subtree_quiet = skipped and all(
                c._subtree_quiet for c in self.children
            )

    def _refresh_stripped_edges(self, v: QVertex) -> None:
        """Re-estimate a just-stripped vertex's edges in place.

        Before delta maintenance, edges touching a stripped coarse vertex
        went stale until the next wholesale graph rebuild -- which no
        longer happens every round.  q-n edges are reset to the stripped
        vertex's re-aggregated rate maps (dropping n-vertices that become
        isolated) and q-q overlaps are re-estimated against the current
        neighbours' masks.
        """
        qg = self.qg
        rates: Dict[VertexId, float] = {}
        for node, rate in v.source_rates.items():
            nvid = ("n", node)
            rates[nvid] = rates.get(nvid, 0.0) + rate
        for node, rate in v.proxy_rates.items():
            nvid = ("n", node)
            rates[nvid] = rates.get(nvid, 0.0) + rate
        for nbr in list(qg.neighbors(v.vid)):
            if nbr in qg.nverts:
                new = rates.pop(nbr, 0.0)
                qg.set_edge(v.vid, nbr, new)
                if new == 0.0 and not qg.neighbors(nbr):
                    qg.remove_vertex(nbr)
            else:
                other = qg.qverts.get(nbr)
                if other is not None:
                    qg.set_edge(
                        v.vid, nbr,
                        self.space.overlap_rate(v.mask, other.mask),
                    )
        for nvid, rate in rates.items():
            # rate-map nodes that had no edge yet (only ones whose
            # n-vertex this graph already tracks, as in rebuild_edges)
            if rate > 0 and nvid in qg.nverts:
                qg.add_edge(v.vid, nvid, rate)

    # ------------------------------------------------------------------
    # statistics refresh (Section 3.8)
    # ------------------------------------------------------------------
    def refresh_statistics(self, query_loads: Dict[int, float]) -> None:
        """Propagate fresh per-query loads into every vertex of the tree.

        The cheap common case -- only per-query loads moved -- updates
        atom weights and re-sums exactly the coarse vertices whose
        members changed (weights are read live by the optimizer, so no
        graph mutation is needed).  When the substream space's rates were
        perturbed since the last refresh, per-source rate maps are
        re-derived everywhere and every coordinator's edges are marked
        stale (re-estimated by the next adaptation round's graph sync).
        """
        rates_changed = self.space.rates_generation != self._rates_gen
        if rates_changed:
            memo: Dict[VertexId, None] = {}
            for coord in self.all_coordinators():
                for v in coord.vertices.values():
                    _refresh_vertex(v, query_loads, self.space, memo)
                coord._stats_dirty = True
                coord._edges_stale = True
                coord._subtree_quiet = False
                coord._rates_gen = self.space.rates_generation
            return
        changed_qids = set(query_loads)
        memo2: Dict[int, bool] = {}
        for coord in self.all_coordinators():
            dirty = False
            for v in coord.vertices.values():
                if _refresh_weights(v, changed_qids, query_loads, memo2):
                    dirty = True
            if dirty:
                coord._stats_dirty = True
                coord._subtree_quiet = False


def _strip_member(v: QVertex, query_id: int) -> None:
    """Remove one atomic member from a coarse vertex, in place.

    Recurses into the child holding the member, drops it, and re-aggregates
    weight / mask / rate maps / state from the surviving children (the same
    aggregation :func:`~repro.core.coarsening.merge_qvertices` builds).
    """
    keep: List[QVertex] = []
    for child in v.children:
        if query_id in child.members:
            if child.members == (query_id,):
                continue
            _strip_member(child, query_id)
        keep.append(child)
    v.children = tuple(keep)
    v.members = tuple(m for c in keep for m in c.members)
    v.weight = sum(c.weight for c in keep)
    v.state_size = sum(c.state_size for c in keep)
    mask = 0
    source_rates: Dict[int, float] = {}
    proxy_rates: Dict[int, float] = {}
    for c in keep:
        mask |= c.mask
        for node, rate in c.source_rates.items():
            source_rates[node] = source_rates.get(node, 0.0) + rate
        for node, rate in c.proxy_rates.items():
            proxy_rates[node] = proxy_rates.get(node, 0.0) + rate
    v.mask = mask
    v.source_rates = source_rates
    v.proxy_rates = proxy_rates


def _refresh_weights(
    v: QVertex,
    changed_qids,
    query_loads: Dict[int, float],
    memo: Dict[int, bool],
) -> bool:
    """Weight-only refresh; returns whether ``v``'s weight changed.

    Skips whole subtrees with no refreshed member; coarse weights are
    re-summed only along paths where an atom actually changed.  Memoised
    by object identity because vertex objects are shared across levels.
    """
    r = memo.get(id(v))
    if r is not None:
        return r
    if not v.children:
        ch = False
        if v.members and v.members[0] in changed_qids:
            new = query_loads[v.members[0]]
            if v.weight != new:
                v.weight = new
                ch = True
        memo[id(v)] = ch
        return ch
    if not any(m in changed_qids for m in v.members):
        memo[id(v)] = False
        return False
    ch = False
    for c in v.children:
        if _refresh_weights(c, changed_qids, query_loads, memo):
            ch = True
    if ch:
        v.weight = sum(c.weight for c in v.children)
    memo[id(v)] = ch
    return ch


def _refresh_vertex(
    v: QVertex,
    query_loads: Dict[int, float],
    space: SubstreamSpace,
    memo: Dict[VertexId, None],
) -> None:
    if v.vid in memo:
        return
    memo[v.vid] = None
    if v.children:
        for child in v.children:
            _refresh_vertex(child, query_loads, space, memo)
        v.weight = sum(c.weight for c in v.children)
        v.source_rates = {}
        for c in v.children:
            for node, rate in c.source_rates.items():
                v.source_rates[node] = v.source_rates.get(node, 0.0) + rate
    else:
        if v.members and v.members[0] in query_loads:
            v.weight = query_loads[v.members[0]]
        v.source_rates = space.rates_by_source(v.mask)
