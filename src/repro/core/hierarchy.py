"""The coordinator tree (Section 3.3).

Processors are clustered bottom-up by transfer latency: each level groups
the previous level's coordinators into close-by clusters of size between
``k`` and ``3k - 1`` (the root's cluster may be smaller), and the cluster
*median* -- the member with minimum total latency to the others -- becomes
the parent coordinator.  This mirrors the NICE-style scheme of Banerjee et
al. that the paper adapts.

The tree also supports incremental joins (a new processor attaches to the
closest leaf cluster, splitting it when it exceeds ``3k - 1``), which the
runtime uses when processors arrive.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..topology.latency import LatencyOracle

__all__ = ["Cluster", "CoordinatorTree", "build_coordinator_tree"]

_cluster_ids = itertools.count()


@dataclass
class Cluster:
    """One cluster at one level of the tree."""

    cluster_id: int
    level: int
    #: topology node acting as this cluster's coordinator (the median)
    coordinator: int
    #: member coordinators (topology nodes) of the level below
    members: List[int]
    #: child clusters (empty at level 1, whose members are processors)
    children: List["Cluster"] = field(default_factory=list)

    def descendants(self) -> List[int]:
        """All processors covered by this cluster."""
        if not self.children:
            return list(self.members)
        out: List[int] = []
        for child in self.children:
            out.extend(child.descendants())
        return out

    def size(self) -> int:
        """Number of direct members (not descendants)."""
        return len(self.members)


@dataclass
class CoordinatorTree:
    """The cluster hierarchy of Section 3.3.

    ``root`` is the top cluster; ``k`` the paper's cluster-size parameter
    (leaves hold between ``k`` and ``3k - 1`` processors); ``oracle``
    answers inter-node latencies; ``processors`` lists every member.
    """

    root: Cluster
    k: int
    oracle: LatencyOracle
    processors: List[int]

    def levels(self) -> List[List[Cluster]]:
        """Clusters grouped by level, bottom (level 1) first."""
        by_level: Dict[int, List[Cluster]] = {}
        stack = [self.root]
        while stack:
            c = stack.pop()
            by_level.setdefault(c.level, []).append(c)
            stack.extend(c.children)
        return [by_level[lvl] for lvl in sorted(by_level)]

    def leaf_clusters(self) -> List[Cluster]:
        """All childless clusters (the ones that own processors)."""
        out = []
        stack = [self.root]
        while stack:
            c = stack.pop()
            if not c.children:
                out.append(c)
            else:
                stack.extend(c.children)
        return out

    def height(self) -> int:
        """Number of coordinator levels (root's level; leaves are 1)."""
        return self.root.level

    def cluster_of_processor(self, node: int) -> Cluster:
        """The leaf cluster holding ``node``; raises ``KeyError`` if absent."""
        for leaf in self.leaf_clusters():
            if node in leaf.members:
                return leaf
        raise KeyError(f"processor {node} not in tree")

    def join(self, node: int) -> None:
        """Incrementally add a processor to the closest leaf cluster.

        If the cluster grows beyond ``3k - 1`` it is split in two around
        the two mutually-farthest members; medians are re-elected.
        """
        self.processors.append(node)
        leaves = self.leaf_clusters()
        best = min(leaves, key=lambda c: self.oracle(node, c.coordinator))
        best.members.append(node)
        best.coordinator = self.oracle.median(best.members)
        if best.size() >= 3 * self.k:
            self._split(best)

    def leave(self, node: int) -> None:
        """Remove a processor from the hierarchy (departure or crash).

        The inverse of :meth:`join`: the processor is stripped from its
        leaf cluster and the cluster median re-elected; a leaf emptied by
        the departure is pruned from its parent, and every internal
        cluster's member list (the coordinators of its children) is
        refreshed bottom-up with medians re-elected.  Leaves are allowed
        to shrink below ``k`` -- the paper merges undersized clusters
        lazily, and the runtime's adaptation rounds tolerate small
        clusters, so no eager merge is performed.
        """
        if node not in self.processors:
            raise KeyError(f"processor {node} not in tree")
        if len(self.processors) == 1:
            raise ValueError("cannot remove the last processor")
        self.processors.remove(node)
        leaf = self.cluster_of_processor(node)
        leaf.members.remove(node)
        if leaf.members:
            leaf.coordinator = self.oracle.median(leaf.members)
        else:
            parent = self._parent_of(leaf)
            # leaf cannot be the root here: other processors remain, so
            # they live in sibling leaves under some parent
            parent.children.remove(leaf)
        self._refresh_internal(self.root)
        # a root left with a single child is a pure pass-through level:
        # collapse it so the hierarchy height reflects the real fan-out
        while len(self.root.children) == 1:
            self.root = self.root.children[0]

    def _refresh_internal(self, cluster: Cluster) -> None:
        """Recompute internal member lists/medians after a mutation."""
        for child in cluster.children:
            self._refresh_internal(child)
        if cluster.children:
            cluster.members = [c.coordinator for c in cluster.children]
            cluster.coordinator = self.oracle.median(cluster.members)

    def _split(self, cluster: Cluster) -> None:
        members = cluster.members
        # seeds: the two farthest-apart members
        seed_a, seed_b, far = members[0], members[1], -1.0
        for i in range(len(members)):
            for j in range(i + 1, len(members)):
                d = self.oracle(members[i], members[j])
                if d > far:
                    far = d
                    seed_a, seed_b = members[i], members[j]
        part_a, part_b = [seed_a], [seed_b]
        for m in members:
            if m in (seed_a, seed_b):
                continue
            if self.oracle(m, seed_a) <= self.oracle(m, seed_b):
                part_a.append(m)
            else:
                part_b.append(m)
        # rebalance so both halves have at least k members
        for src, dst in ((part_a, part_b), (part_b, part_a)):
            while len(dst) < self.k and len(src) > self.k:
                moved = min(src, key=lambda m: self.oracle(m, dst[0]))
                src.remove(moved)
                dst.append(moved)
        cluster.members = part_a
        cluster.coordinator = self.oracle.median(part_a)
        sibling = Cluster(
            cluster_id=next(_cluster_ids),
            level=cluster.level,
            coordinator=self.oracle.median(part_b),
            members=part_b,
        )
        parent = self._parent_of(cluster)
        if parent is None:
            # cluster is the root: grow the tree by one level
            new_root = Cluster(
                cluster_id=next(_cluster_ids),
                level=cluster.level + 1,
                coordinator=0,
                members=[],
                children=[cluster, sibling],
            )
            new_root.members = [cluster.coordinator, sibling.coordinator]
            new_root.coordinator = self.oracle.median(new_root.members)
            self.root = new_root
        else:
            parent.children.append(sibling)
            parent.members = [c.coordinator for c in parent.children]
            parent.coordinator = self.oracle.median(parent.members)

    def _parent_of(self, cluster: Cluster) -> Optional[Cluster]:
        stack = [self.root]
        while stack:
            c = stack.pop()
            if cluster in c.children:
                return c
            stack.extend(c.children)
        return None


def _cluster_members(
    members: List[int], k: int, oracle: LatencyOracle
) -> List[List[int]]:
    """Greedy latency-based clustering into groups of size in [k, 3k-1].

    Repeatedly seed a cluster with the unassigned node that is farthest
    from everything already clustered, then pull in its k-1 nearest
    unassigned nodes.  The final remainder (< k nodes) merges into the
    last cluster, which stays below the 3k-1 bound because we stop seeding
    when fewer than 2k nodes remain.
    """
    if len(members) <= 1:
        return [list(members)]
    unassigned = sorted(members)
    clusters: List[List[int]] = []
    while len(unassigned) >= 2 * k:
        seed = unassigned[0]
        rest = sorted(unassigned[1:], key=lambda m: (oracle(seed, m), m))
        group = [seed] + rest[: k - 1]
        for m in group:
            unassigned.remove(m)
        clusters.append(group)
    if unassigned:
        clusters.append(unassigned)
    return clusters


def build_coordinator_tree(
    processors: Sequence[int], oracle: LatencyOracle, k: int = 4
) -> CoordinatorTree:
    """Build the full tree bottom-up from a static processor set."""
    if k < 2:
        raise ValueError("cluster size parameter k must be >= 2")
    processors = list(processors)
    if not processors:
        raise ValueError("cannot build a tree without processors")

    level = 1
    current: List[Cluster] = []
    for group in _cluster_members(list(processors), k, oracle):
        current.append(
            Cluster(
                cluster_id=next(_cluster_ids),
                level=level,
                coordinator=oracle.median(group),
                members=group,
            )
        )

    while len(current) > 1:
        level += 1
        coords = [c.coordinator for c in current]
        groups = _cluster_members(coords, k, oracle)
        nxt: List[Cluster] = []
        for group in groups:
            children = [c for c in current if c.coordinator in group]
            nxt.append(
                Cluster(
                    cluster_id=next(_cluster_ids),
                    level=level,
                    coordinator=oracle.median(group),
                    members=list(group),
                    children=children,
                )
            )
        current = nxt

    root = current[0]
    if root.children == [] and len(processors) > 0 and root.level == 1:
        # single-leaf tree: wrap in a root so the recursion below is uniform
        pass
    return CoordinatorTree(root=root, k=k, oracle=oracle, processors=processors)
