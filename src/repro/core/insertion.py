"""Online new-query insertion (Section 3.6).

A new query is routed from the root down: at every coordinator the new
q-vertex is attached to the coordinator's (coarse) query graph, edge
weights are estimated from interest bit vectors, and the vertex is mapped
to the child that minimises the resulting WEC without breaking the load
constraint.  The root only ever inspects its own ``vmax``-bounded graph,
which is what makes the scheme fast enough for very high query-arrival
rates.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..query.interest import SubstreamSpace
from .graphs import NetworkGraph, NVertex, QueryGraph, QVertex, VertexId
from .mapping import _attach_cost

__all__ = ["attach_vertex", "choose_target"]


def attach_vertex(
    qg: QueryGraph,
    v: QVertex,
    space: SubstreamSpace,
    ng: Optional[NetworkGraph] = None,
    max_overlap_neighbors: int = 20,
) -> None:
    """Add ``v`` to ``qg`` with estimated edges.

    * q-n edges to the sources/proxies in the vertex's rate maps (missing
      n-vertices are created and pinned against ``ng`` when possible);
    * q-q overlap edges against every existing q-vertex, keeping the
      ``max_overlap_neighbors`` heaviest.
    """
    qg.add_qvertex(v)
    for node, rate in list(v.source_rates.items()) + list(v.proxy_rates.items()):
        nvid = ("n", node)
        if nvid not in qg.nverts:
            clu = ng.covering_vertex(node) if ng is not None else None
            qg.add_nvertex(NVertex(vid=nvid, node=node, clu=clu))
        qg.add_edge(v.vid, nvid, rate)

    overlaps = []
    for other_id, other in qg.qverts.items():
        if other_id == v.vid:
            continue
        ov = space.overlap_rate(v.mask, other.mask)
        if ov > 0:
            overlaps.append((ov, other_id))
    overlaps.sort(key=lambda t: -t[0])
    for ov, other_id in overlaps[:max_overlap_neighbors]:
        qg.set_edge(v.vid, other_id, ov)


def choose_target(
    qg: QueryGraph,
    ng: NetworkGraph,
    v: QVertex,
    positions: Dict[VertexId, int],
    loads: Dict[VertexId, float],
    limits: Dict[VertexId, float],
    workspace=None,
) -> Tuple[VertexId, bool]:
    """The WEC-minimising feasible target for a (newly attached) vertex.

    Returns ``(target, feasible)``; when no child can accommodate the
    vertex the least-violating one is returned with ``feasible = False``.
    When a :class:`~repro.core.fastcost.CostWorkspace` is passed the costs
    of all targets come from one vectorised evaluation (``positions`` is
    then ignored; the workspace's position array is authoritative).
    """
    if workspace is not None:
        costs = workspace.attach_costs(v.vid)
        tindex = workspace.target_index

        def cost_of(t: VertexId) -> float:
            return float(costs[tindex[t]])

    else:

        def cost_of(t: VertexId) -> float:
            return _attach_cost(qg, v.vid, t, positions, ng)

    candidates = [
        t for t in ng.ids() if loads[t] + v.weight <= limits[t] + 1e-9
    ]
    if candidates:
        target = min(candidates, key=lambda t: (cost_of(t), str(t)))
        return target, True
    target = min(
        ng.ids(), key=lambda t: (loads[t] + v.weight - limits[t], str(t))
    )
    return target, False
