"""Result-stream sharing deployment (Section 2 end to end).

Given a COSMOS placement (query id -> processor), this module stands up
the *data plane* the paper describes:

* one :class:`~repro.engine.executor.Engine` per processor;
* per processor, overlapping queries are folded into merged superset
  queries (:class:`~repro.query.merging.SharedGroup`) so each group runs
  once;
* a pub/sub network over the processor+source overlay delivers source
  streams to the engines (subscription ``p^1`` per processor) and result
  streams back to the users' proxies (split subscription ``p^2`` per
  query).

This is the integration layer the prototype study exercises; it also
doubles as a reference for how a downstream system would embed COSMOS.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..engine.executor import Engine
from ..engine.tuples import StreamTuple
from ..pubsub.messages import Event, result_stream_name
from ..pubsub.network import PubSubNetwork
from ..pubsub.subscriptions import Advertisement, Subscription
from ..query.ast import Query
from ..query.containment import selection_filter
from ..query.merging import SharedGroup, split_subscription
from ..topology.overlay import OverlayTree

__all__ = ["DeployedQuery", "SharingDeployment"]


@dataclass
class DeployedQuery:
    """Bookkeeping for one user query in a deployment."""

    query: Query
    proxy: int
    processor: int
    #: the merged query actually executing at the processor
    executed_name: str
    #: the user's subscription on the merged result stream
    result_subscription: Subscription
    received: List[Event] = field(default_factory=list)


class SharingDeployment:
    """Engines + pub/sub wired from a placement."""

    def __init__(
        self,
        overlay: OverlayTree,
        stream_sources: Dict[str, int],
    ):
        self.net = PubSubNetwork(overlay)
        self.stream_sources = dict(stream_sources)
        self.engines: Dict[int, Engine] = {}
        self.groups: Dict[int, SharedGroup] = {}
        self.deployed: Dict[str, DeployedQuery] = {}
        self._result_stream_of_group: Dict[Tuple[int, int], str] = {}
        for stream, node in self.stream_sources.items():
            self.net.advertise(node, Advertisement(stream=stream))

    # ------------------------------------------------------------------
    def deploy(self, query: Query, proxy: int, processor: int) -> DeployedQuery:
        """Install ``query`` at ``processor`` with sharing.

        The query is merged into an existing compatible group when
        possible; the group's merged query replaces the previous one in
        the engine, and all member users get fresh split subscriptions.
        """
        if not query.name:
            raise ValueError("queries must be named before deployment")
        engine = self.engines.setdefault(processor, Engine(node=processor))
        group = self.groups.setdefault(processor, SharedGroup(processor))

        merged = group.add(query)
        gi = next(
            i for i, (m, _) in enumerate(group.groups) if m is merged
        )
        stream = self._result_stream_of_group.get((processor, gi))
        if stream is None:
            stream = result_stream_name(processor, f"g{gi}")
            self._result_stream_of_group[(processor, gi)] = stream
            # the processor advertises the new result stream so user
            # subscriptions can route toward it (Section 2.1)
            self.net.advertise(processor, Advertisement(stream=stream))

        # (re)install the merged query in the engine
        old_names = [
            n for n, plan in engine.plans.items()
            if plan.result_stream == stream
        ]
        for n in old_names:
            engine.remove_query(n)
        executed = Query(
            select=merged.select,
            bindings=merged.bindings,
            where=merged.where,
            name=f"{stream}::exec",
        )
        engine.add_query(executed, result_stream=stream)

        # subscription p^1: the processor pulls the source data it needs,
        # carrying the merged query's filters for early data filtering.
        # Source events carry *unqualified* attribute names, so the
        # alias prefix is stripped from the predicates.
        from ..pubsub.predicates import Constraint, Filter
        from ..query.ast import AttrRef, Literal

        for binding in executed.bindings:
            constraints = [
                Constraint(c.left.attr, c.op, c.right.value)
                for c in executed.selections()
                if isinstance(c.left, AttrRef)
                and c.left.stream == binding.alias
                and isinstance(c.right, Literal)
            ]
            self.net.subscribe(
                processor,
                Subscription.to_streams(
                    [binding.stream], filter=Filter(constraints)
                ),
            )

        # subscription p^2 per member: carve results at the proxy
        members = group.groups[gi][1]
        for member in members:
            sub = split_subscription(merged, member, stream)
            dq = self.deployed.get(member.name)
            if dq is None:
                dq = DeployedQuery(
                    query=member,
                    proxy=proxy,
                    processor=processor,
                    executed_name=executed.name,
                    result_subscription=sub,
                )
                self.deployed[member.name] = dq
            else:
                self.net.unsubscribe(dq.result_subscription.sub_id)
                dq.executed_name = executed.name
                dq.result_subscription = sub
            self.net.subscribe(dq.proxy, sub)
        return self.deployed[query.name]

    # ------------------------------------------------------------------
    def publish(self, source_tuple: StreamTuple) -> None:
        """Inject one source tuple: pub/sub delivers it to engines, the
        engines run, and result tuples ride the pub/sub to the proxies."""
        event = Event(
            stream=source_tuple.stream,
            attributes=dict(source_tuple.values),
            size=float(len(source_tuple.values)),
        )
        node = self.stream_sources[source_tuple.stream]
        # several co-located subscriptions may match the same event; the
        # engine must still see it exactly once, with the widest projection
        per_host: Dict[int, Event] = {}
        for host, delivered, _sub in self.net.publish(node, event):
            best = per_host.get(host)
            if best is None or len(delivered.attributes) > len(best.attributes):
                per_host[host] = delivered
        for host, delivered in per_host.items():
            engine = self.engines.get(host)
            if engine is None:
                continue
            results = engine.push(
                StreamTuple(source_tuple.stream, dict(delivered.attributes))
            )
            for r in results:
                result_event = Event(
                    stream=r.stream,
                    attributes=dict(r.values),
                    size=float(len(r.values)),
                )
                for proxy, final, sub in self.net.publish(host, result_event):
                    for dq in self.deployed.values():
                        if dq.result_subscription.sub_id == sub.sub_id:
                            dq.received.append(final)

    def run(self, trace: Sequence[StreamTuple]) -> None:
        """Publish every tuple of a trace through the deployment."""
        for t in trace:
            self.publish(t)

    # ------------------------------------------------------------------
    def executed_query_count(self) -> int:
        """Queries actually running (after sharing)."""
        return sum(len(e.plans) for e in self.engines.values())

    def user_query_count(self) -> int:
        """Queries submitted by users (before sharing)."""
        return len(self.deployed)

    def results_of(self, query_name: str) -> List[Event]:
        """Result events delivered so far to one deployed query."""
        return self.deployed[query_name].received

    def weighted_data_cost(self) -> float:
        """Traffic x latency accumulated on the pub/sub overlay."""
        return self.net.weighted_data_cost()
