"""Result-stream sharing deployment (Section 2 end to end).

Given a COSMOS placement (query id -> processor), this module stands up
the *data plane* the paper describes:

* one :class:`~repro.engine.executor.Engine` per processor;
* per processor, overlapping queries are folded into merged superset
  queries (:class:`~repro.query.merging.SharedGroup`) so each group runs
  once;
* a pub/sub network over the processor+source overlay delivers source
  streams to the engines (subscription ``p^1`` per processor) and result
  streams back to the users' proxies (split subscription ``p^2`` per
  query).

This is the integration layer the prototype study exercises; it also
doubles as a reference for how a downstream system would embed COSMOS.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..engine.executor import Engine
from ..engine.tuples import StreamTuple
from ..pubsub.messages import Event, result_stream_name
from ..pubsub.network import PubSubNetwork
from ..pubsub.subscriptions import Advertisement, Subscription
from ..query.ast import Query
from ..query.merging import (
    SharedGroup,
    SharedGroupEntry,
    source_subscriptions,
    split_subscription,
)
from ..topology.overlay import OverlayTree

__all__ = ["DeployedQuery", "SharingDeployment"]


@dataclass
class DeployedQuery:
    """Bookkeeping for one user query in a deployment."""

    query: Query
    proxy: int
    processor: int
    #: the merged query actually executing at the processor
    executed_name: str
    #: the user's subscription on the merged result stream
    result_subscription: Subscription
    received: List[Event] = field(default_factory=list)


@dataclass
class _GroupRuntime:
    """Per shared-group deployment state, keyed by the group's stable id.

    Streams, advertisements and the installed ``p^1`` subscription set
    all belong to one :class:`~repro.query.merging.SharedGroupEntry` for
    its whole lifetime; keying this off a list index goes stale the
    moment groups collapse or retire.
    """

    stream: str
    adv: Advertisement
    p1_subs: List[Subscription] = field(default_factory=list)


class SharingDeployment:
    """Engines + pub/sub wired from a placement."""

    def __init__(
        self,
        overlay: OverlayTree,
        stream_sources: Dict[str, int],
    ):
        self.net = PubSubNetwork(overlay)
        self.stream_sources = dict(stream_sources)
        self.engines: Dict[int, Engine] = {}
        self.groups: Dict[int, SharedGroup] = {}
        self.deployed: Dict[str, DeployedQuery] = {}
        #: (processor, gid) -> the group's result stream / adv / p^1 set
        self._group_runtime: Dict[Tuple[int, int], _GroupRuntime] = {}
        for stream, node in self.stream_sources.items():
            self.net.advertise(node, Advertisement(stream=stream))

    # ------------------------------------------------------------------
    def deploy(self, query: Query, proxy: int, processor: int) -> DeployedQuery:
        """Install ``query`` at ``processor`` with sharing.

        The query is merged into an existing compatible group when
        possible; the group's merged query replaces the previous one in
        the engine, and all member users get fresh split subscriptions.
        Re-declaring an already-deployed name replaces the old version
        (stale members never linger in a group) and re-homes the user's
        result subscription when ``proxy`` changed.
        """
        if not query.name:
            raise ValueError("queries must be named before deployment")
        if query.name in self.deployed:
            # a re-declaration replaces the previous deployment outright:
            # withdrawing it first re-folds (and, when emptied, retires)
            # its old group wherever it lives -- in particular on a
            # *different* processor, where the new deploy below would
            # otherwise leave a stale phantom member executing forever
            received = self.deployed[query.name].received
            self.undeploy(query.name)
        else:
            received = None
        self.engines.setdefault(processor, Engine(node=processor))
        group = self.groups.setdefault(processor, SharedGroup(processor))

        entry, retired = group.add(query)
        for dead in retired:
            self._retire_group(processor, dead.gid)
        executed = self._install_group(processor, entry)
        stream = self._group_runtime[(processor, entry.gid)].stream

        # subscription p^2 per member: carve results at the proxy
        for member in entry.members:
            sub = split_subscription(entry.merged, member, stream)
            dq = self.deployed.get(member.name)
            if dq is None:
                # the deployed query itself (re-declarations were
                # withdrawn above, so they re-enter here with the new
                # proxy/processor/query version)
                dq = DeployedQuery(
                    query=member,
                    proxy=proxy,
                    processor=processor,
                    executed_name=executed.name,
                    result_subscription=sub,
                )
                self.deployed[member.name] = dq
            else:
                self.net.unsubscribe(dq.result_subscription.sub_id)
                dq.executed_name = executed.name
                dq.result_subscription = sub
            self.net.subscribe(dq.proxy, sub)
        self._repair_result_covering(entry)
        dq = self.deployed[query.name]
        if received is not None:
            dq.received = received  # a re-declaration keeps its history
        return dq

    # ------------------------------------------------------------------
    def undeploy(self, query_name: str) -> None:
        """Withdraw one user query.

        The member's split subscription is torn down, its group re-merges
        from the remaining members (so filters and windows *narrow* back
        to the survivors' hull), and covering holes the teardown opened
        on surviving subscriptions are repaired by ``force=True``
        re-propagation.  An emptied group retires completely: merged
        plan, ``p^1`` subscriptions and result-stream advertisement.
        """
        dq = self.deployed.pop(query_name, None)
        if dq is None:
            raise KeyError(query_name)
        self.net.unsubscribe(dq.result_subscription.sub_id)
        group = self.groups[dq.processor]
        entry, retired = group.remove(query_name)
        for dead in retired:
            self._retire_group(dq.processor, dead.gid)
        if entry is None:
            return
        executed = self._install_group(dq.processor, entry)
        stream = self._group_runtime[(dq.processor, entry.gid)].stream
        for member in entry.members:
            mdq = self.deployed[member.name]
            self.net.unsubscribe(mdq.result_subscription.sub_id)
            mdq.executed_name = executed.name
            mdq.result_subscription = split_subscription(
                entry.merged, member, stream
            )
            self.net.subscribe(mdq.proxy, mdq.result_subscription)
        self._repair_result_covering(entry)

    # ------------------------------------------------------------------
    def _install_group(self, processor: int, entry: SharedGroupEntry) -> Query:
        """(Re)install a group's merged plan and ``p^1`` subscriptions."""
        engine = self.engines[processor]
        rt = self._group_runtime.get((processor, entry.gid))
        if rt is None:
            stream = result_stream_name(processor, f"g{entry.gid}")
            adv = Advertisement(stream=stream)
            # the processor advertises the new result stream so user
            # subscriptions can route toward it (Section 2.1)
            self.net.advertise(processor, adv)
            rt = _GroupRuntime(stream=stream, adv=adv)
            self._group_runtime[(processor, entry.gid)] = rt

        # (re)install the merged query in the engine
        for n in [
            n for n, plan in engine.plans.items()
            if plan.result_stream == rt.stream
        ]:
            engine.remove_query(n)
        executed = Query(
            select=entry.merged.select,
            bindings=entry.merged.bindings,
            where=entry.merged.where,
            name=f"{rt.stream}::exec",
        )
        engine.add_query(executed, result_stream=rt.stream)

        # subscription p^1: the processor pulls the source data it needs,
        # carrying the merged query's filters for early data filtering.
        # The previous set is torn down first -- every re-merge used to
        # leave its stale subscriptions on the processor forever, so
        # tables (and, whenever a re-merge narrows the hull, overlay
        # traffic) grew without bound.
        old = rt.p1_subs
        touched = {s for sub in old for s in sub.streams}
        for sub in old:
            self.net.unsubscribe(sub.sub_id)
        rt.p1_subs = source_subscriptions(executed)
        for sub in rt.p1_subs:
            self.net.subscribe(processor, sub)
            touched |= sub.streams
        self._repair_source_covering(touched)
        return executed

    def _retire_group(self, processor: int, gid: int) -> None:
        """Tear down everything an absorbed/emptied group left behind.

        Without this, a retired group's result stream kept an orphan
        advertisement alive and its orphan plan kept executing (and
        charging CPU) at the engine forever.
        """
        rt = self._group_runtime.pop((processor, gid), None)
        if rt is None:
            return
        engine = self.engines[processor]
        for n in [
            n for n, plan in engine.plans.items()
            if plan.result_stream == rt.stream
        ]:
            engine.remove_query(n)
        touched = {s for sub in rt.p1_subs for s in sub.streams}
        for sub in rt.p1_subs:
            self.net.unsubscribe(sub.sub_id)
        self.net.unadvertise(rt.adv.adv_id)
        self._repair_source_covering(touched)

    def _repair_source_covering(self, streams: set) -> None:
        """Re-propagate every live ``p^1`` subscription touching ``streams``.

        Tearing a subscription down is a tree-wide delete; a survivor it
        had covered is left with a forwarding hole beyond the brokers
        that still hold its entries, and only ``force=True``
        re-propagation fills it (the PR 3 covering-repair discipline).
        """
        if not streams:
            return
        for (proc, _gid), rt in self._group_runtime.items():
            for sub in rt.p1_subs:
                if sub.streams & streams:
                    self.net.subscribe(proc, sub, force=True)

    def _repair_result_covering(self, entry: SharedGroupEntry) -> None:
        """Force re-propagation of every member's ``p^2`` subscription.

        The member loop replaces subscriptions one at a time; an earlier
        replacement may have stopped propagating where a later-removed
        subscription covered it, so one forced pass over the final set
        closes any such hole.
        """
        for member in entry.members:
            dq = self.deployed.get(member.name)
            if dq is not None:
                self.net.subscribe(dq.proxy, dq.result_subscription, force=True)

    # ------------------------------------------------------------------
    def publish(self, source_tuple: StreamTuple) -> None:
        """Inject one source tuple: pub/sub delivers it to engines, the
        engines run, and result tuples ride the pub/sub to the proxies."""
        event = Event(
            stream=source_tuple.stream,
            attributes=dict(source_tuple.values),
            size=float(len(source_tuple.values)),
        )
        node = self.stream_sources[source_tuple.stream]
        # several co-located subscriptions may match the same event; the
        # engine must still see it exactly once, with the widest projection
        per_host: Dict[int, Event] = {}
        for host, delivered, _sub in self.net.publish(node, event):
            best = per_host.get(host)
            if best is None or len(delivered.attributes) > len(best.attributes):
                per_host[host] = delivered
        for host, delivered in per_host.items():
            engine = self.engines.get(host)
            if engine is None:
                continue
            results = engine.push(
                StreamTuple(source_tuple.stream, dict(delivered.attributes))
            )
            for r in results:
                result_event = Event(
                    stream=r.stream,
                    attributes=dict(r.values),
                    size=float(len(r.values)),
                )
                for proxy, final, sub in self.net.publish(host, result_event):
                    for dq in self.deployed.values():
                        if dq.result_subscription.sub_id == sub.sub_id:
                            dq.received.append(final)

    def run(self, trace: Sequence[StreamTuple]) -> None:
        """Publish every tuple of a trace through the deployment."""
        for t in trace:
            self.publish(t)

    # ------------------------------------------------------------------
    def executed_query_count(self) -> int:
        """Queries actually running (after sharing)."""
        return sum(len(e.plans) for e in self.engines.values())

    def user_query_count(self) -> int:
        """Queries submitted by users (before sharing)."""
        return len(self.deployed)

    def results_of(self, query_name: str) -> List[Event]:
        """Result events delivered so far to one deployed query."""
        return self.deployed[query_name].received

    def weighted_data_cost(self) -> float:
        """Traffic x latency accumulated on the pub/sub overlay."""
        return self.net.weighted_data_cost()
