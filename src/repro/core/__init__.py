"""COSMOS core: the graph-mapping query-distribution optimizer."""

from .coarsening import coarsen, merge_qvertices, rebuild_edges, uncoarsen_vertex
from .coordinator import AdaptationReport, Coordinator
from .cosmos import Cosmos, CosmosConfig
from .diffusion import diffusion_solution, diffusion_solution_reference
from .fastcost import CostWorkspace
from .graphs import (
    DEFAULT_ALPHA,
    GraphArrays,
    NetVertex,
    NetworkGraph,
    NVertex,
    QueryGraph,
    QVertex,
    build_query_graph,
    qvertex_from_query,
)
from .hierarchy import Cluster, CoordinatorTree, build_coordinator_tree
from .insertion import attach_vertex, choose_target
from .mapping import MappingResult, greedy_mapping, map_graph, refine_mapping
from .rebalance import RebalanceStats, rebalance, refine_distribution

__all__ = [
    "DEFAULT_ALPHA",
    "CostWorkspace",
    "GraphArrays",
    "NetVertex",
    "NetworkGraph",
    "NVertex",
    "QueryGraph",
    "QVertex",
    "build_query_graph",
    "qvertex_from_query",
    "coarsen",
    "merge_qvertices",
    "rebuild_edges",
    "uncoarsen_vertex",
    "Cluster",
    "CoordinatorTree",
    "build_coordinator_tree",
    "MappingResult",
    "greedy_mapping",
    "map_graph",
    "refine_mapping",
    "attach_vertex",
    "choose_target",
    "diffusion_solution",
    "diffusion_solution_reference",
    "RebalanceStats",
    "rebalance",
    "refine_distribution",
    "Coordinator",
    "AdaptationReport",
    "Cosmos",
    "CosmosConfig",
]
