"""The COSMOS middleware facade.

Ties together the coordinator tree, the query-distribution algorithms and
the substream statistics into the interface the examples and experiments
use:

>>> cosmos = Cosmos(oracle, processors, workload.space, k=4)
>>> cosmos.distribute(workload.queries)      # initial distribution
>>> cosmos.insert(new_query)                 # online insertion
>>> cosmos.adapt()                           # one adaptation round
>>> cosmos.placement                         # query_id -> processor
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..query.interest import SubstreamSpace
from ..query.workload import QuerySpec, Workload
from ..topology.latency import LatencyOracle
from .coordinator import AdaptationReport, Coordinator
from .graphs import DEFAULT_ALPHA, qvertex_from_query
from .hierarchy import CoordinatorTree, build_coordinator_tree

__all__ = ["Cosmos", "CosmosConfig"]


@dataclass(frozen=True)
class CosmosConfig:
    """Tuning knobs of the middleware."""

    #: cluster size parameter of the coordinator tree (Section 3.3)
    k: int = 4
    #: maximum query-graph size per coordinator before coarsening
    vmax: int = 150
    #: load-imbalance tolerance (Eqn 3.1)
    alpha: float = DEFAULT_ALPHA
    #: cap on overlap edges kept per q-vertex
    max_overlap_neighbors: int = 20
    seed: int = 0
    #: delta-maintain graph snapshots, cost workspaces and coarse plans
    #: across rounds (False selects the full-rebuild reference mode;
    #: both modes produce bit-identical placements)
    incremental: bool = True
    #: coarse-plan reuse policy: "replay" (reuse only on a full input
    #: signature match), "partial" (also warm-start from clean merge
    #: steps), or "off"
    coarse_reuse: str = "replay"


class Cosmos:
    """COoperated and Self-tuning Management Of Streaming data."""

    def __init__(
        self,
        oracle: LatencyOracle,
        processors: Sequence[int],
        space: SubstreamSpace,
        config: CosmosConfig = CosmosConfig(),
        capabilities: Optional[Dict[int, float]] = None,
    ):
        self.oracle = oracle
        self.processors = list(processors)
        self.space = space
        self.config = config
        self.capabilities = capabilities or {}
        self.tree: CoordinatorTree = build_coordinator_tree(
            self.processors, oracle, k=config.k
        )
        # coarse plans are keyed by tree-local coordinator ids, so the
        # store survives hierarchy rebuilds after membership changes
        self._plan_store: Dict = {}
        self.root = Coordinator(
            self.tree.root,
            oracle,
            space,
            capabilities=self.capabilities,
            vmax=config.vmax,
            alpha=config.alpha,
            seed=config.seed,
            max_overlap_neighbors=config.max_overlap_neighbors,
            incremental=config.incremental,
            coarse_reuse=config.coarse_reuse,
            plan_store=self._plan_store,
        )
        self._known_queries: Dict[int, QuerySpec] = {}

    # ------------------------------------------------------------------
    @property
    def placement(self) -> Dict[int, int]:
        """Current query_id -> processor assignment."""
        return self.root.placement

    def distribute(self, queries: Sequence[QuerySpec]) -> Dict[int, int]:
        """Initial distribution of a query population (Sections 3.4-3.5)."""
        for q in queries:
            self._known_queries[q.query_id] = q
        coarse = self.root.collect(queries)
        self.root.distribute(coarse)
        return self.placement

    def adopt(self, queries: Sequence[QuerySpec], placement: Dict[int, int]) -> None:
        """Initialise the tree from an externally-chosen placement.

        Used when COSMOS takes over a system whose queries were allocated
        by another policy (or with inaccurate statistics, as in Figure 7):
        subsequent :meth:`adapt` rounds then improve from there.
        """
        for q in queries:
            self._known_queries[q.query_id] = q
        self.root.adopt(queries, placement)

    def insert(self, query: QuerySpec) -> int:
        """Online insertion of one new query (Section 3.6)."""
        self._known_queries[query.query_id] = query
        v = qvertex_from_query(query, self.space)
        return self.root.insert(v)

    def remove(self, query_id: int) -> bool:
        """Remove a departed query from the tree state and the placement.

        The inverse of :meth:`insert`, used by churn scenarios: the
        coordinator hierarchy strips the query from every (possibly
        coarse) vertex holding it so adaptation and insert routing stop
        accounting for it.  Returns False for unknown query ids.
        """
        self._known_queries.pop(query_id, None)
        found = self.root.remove_query(query_id)
        self.root.placement.pop(query_id, None)
        return found

    def adapt(self) -> AdaptationReport:
        """One adaptation round (Section 3.7)."""
        return self.root.adapt()

    # ------------------------------------------------------------------
    # elastic membership
    # ------------------------------------------------------------------
    def _rebuild_root(self) -> None:
        """Rebuild the coordinator hierarchy over the mutated tree.

        The old placement is re-adopted: :meth:`Coordinator.adopt`
        silently drops entries whose host is no longer a cluster member,
        which is exactly what a crash needs -- orphaned queries leave the
        tree state and await re-insertion by the recovery policy.
        Coordinator rngs are seeded from tree-local facts, so a rebuild
        over an identical tree is bit-identical to the original.
        """
        old_placement = dict(self.root.placement)
        self.root = Coordinator(
            self.tree.root,
            self.oracle,
            self.space,
            capabilities=self.capabilities,
            vmax=self.config.vmax,
            alpha=self.config.alpha,
            seed=self.config.seed,
            max_overlap_neighbors=self.config.max_overlap_neighbors,
            incremental=self.config.incremental,
            coarse_reuse=self.config.coarse_reuse,
            plan_store=self._plan_store,
        )
        self.root.adopt(list(self._known_queries.values()), old_placement)

    def add_processor(self, node: int) -> None:
        """A processor joins at runtime (Section 3.3 incremental join).

        The node attaches to the closest leaf cluster (splitting it when
        it overflows) and the coordinator hierarchy is rebuilt over the
        mutated tree with the existing placement re-adopted; subsequent
        :meth:`insert` and :meth:`adapt` calls can then target the new
        member.
        """
        if node in self.processors:
            raise ValueError(f"processor {node} already in tree")
        self.processors.append(node)
        self.tree.join(node)
        self._rebuild_root()

    def remove_processor(self, node: int) -> List[int]:
        """A processor leaves (gracefully or by crash).

        Strips the node from the hierarchy and rebuilds the coordinator
        tree; placement entries pointing at the departed node are dropped
        by the re-adoption.  Returns the orphaned query ids (sorted) --
        the queries that were hosted there and now need re-placement via
        :meth:`insert`, which is the coordinator half of crash recovery.
        """
        if node not in self.processors:
            raise KeyError(f"processor {node} not in tree")
        orphans = sorted(
            q for q, host in self.root.placement.items() if host == node
        )
        self.processors.remove(node)
        self.tree.leave(node)
        self._rebuild_root()
        return orphans

    def refresh_statistics(self, workload: Workload, rates=None) -> None:
        """Statistics collection (Section 3.8): re-estimate query loads and
        per-source rates after stream-rate changes.

        ``rates`` optionally supplies *measured* per-substream rates (e.g.
        sampled from the discrete-event simulator's arrival process) in
        place of the space's nominal expected rates.
        """
        workload.refresh_loads(rates=rates)
        loads = {q.query_id: q.load for q in workload.queries}
        self.root.refresh_statistics(loads)

    def refresh_measured_loads(self, loads: Dict[int, float]) -> None:
        """Push per-query loads *measured* by running engines (Section 3.8)
        into the tree, updating the known query specs alongside the
        (possibly coarse) graph vertices."""
        for query_id, load in loads.items():
            spec = self._known_queries.get(query_id)
            if spec is not None:
                spec.load = load
        self.root.refresh_statistics(loads)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def response_time(self) -> float:
        """Critical-path optimization time (parallel coordinator model)."""
        return self.root.response_time()

    def total_time(self) -> float:
        """Total CPU seconds across every coordinator."""
        return self.root.total_time()

    def reset_timers(self) -> None:
        """Zero all coordinators' CPU-time accounting."""
        self.root.reset_timers()

    def tree_height(self) -> int:
        """Number of coordinator levels in the tree."""
        return self.tree.height()

    def coordinator_count(self) -> int:
        """Total number of coordinators in the tree."""
        return len(self.root.all_coordinators())
