"""Hu & Blake optimal load diffusion.

Given per-node loads and targets, computes the pairwise flow ``m_ij`` that
re-balances the load while minimising the Euclidean norm of the transferred
load -- which is what keeps the number of query migrations small
(Section 3.7).  The classic result: solve ``L x = b`` where ``L`` is the
Laplacian of the diffusion graph and ``b`` the load surplus vector; the
flow on edge ``(i, j)`` is then ``x_i - x_j``.

The coordinator uses the complete graph over its children as the diffusion
graph (any child can hand queries to any other -- they are application-
level peers, not physical neighbours).  For the complete graph ``K_n`` the
Laplacian is ``n I - J`` and the system has a closed-form minimum-norm
solution ``x = b / n`` (``b`` sums to zero, so ``J b = 0``), which
:func:`diffusion_solution` uses together with a vectorised flow
extraction.  :func:`diffusion_solution_reference` keeps the generic
least-squares solve as the parity/benchmark baseline.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

import numpy as np

from ..obs import registry as _obs

__all__ = ["diffusion_solution", "diffusion_solution_reference"]

Flows = Dict[Tuple[Hashable, Hashable], float]


def _surplus(
    loads: Dict[Hashable, float],
    targets: Dict[Hashable, float],
) -> Tuple[List[Hashable], np.ndarray]:
    """Node order and surplus vector ``b`` (shared input validation).

    ``targets`` is rescaled so its total matches the current total load,
    making the system consistent; a non-positive target total raises
    ``ValueError``.
    """
    nodes: List[Hashable] = list(loads)
    load_vec = np.array([loads[u] for u in nodes], dtype=float)
    target_vec = np.array([targets[u] for u in nodes], dtype=float)
    total_t = target_vec.sum()
    if total_t <= 0:
        raise ValueError("targets must have positive total")
    target_vec = target_vec * (load_vec.sum() / total_t)
    return nodes, load_vec - target_vec


def _flows_from_potential(
    nodes: List[Hashable], x: np.ndarray, floor: float
) -> Flows:
    """Positive pairwise flows ``x_i - x_j`` above ``floor``.

    Vectorised: one broadcasted difference matrix and one ``nonzero``
    instead of the n^2 Python double loop.
    """
    diff = x[:, None] - x[None, :]
    ii, jj = np.nonzero(diff > max(floor, 1e-12))
    return {
        (nodes[i], nodes[j]): float(diff[i, j]) for i, j in zip(ii, jj)
    }


def diffusion_solution(
    loads: Dict[Hashable, float],
    targets: Dict[Hashable, float],
    floor: float = 0.0,
) -> Flows:
    """Minimal-norm load flows over the complete graph (fast path).

    Parameters
    ----------
    loads:
        Current load per node.
    targets:
        Desired load per node.  ``sum(targets)`` is rescaled to
        ``sum(loads)`` so the system is consistent.
    floor:
        Drop flows of at most this size.  Callers that discard
        noise-level flows anyway (Algorithm 3 does) pass their threshold
        here so the quadratic flow dictionary never materialises them.

    Returns
    -------
    dict
        ``{(i, j): amount}`` with ``amount > 0`` meaning "move ``amount``
        of load from i to j".  Only positive flows are returned.

    Notes
    -----
    Uses the closed form ``x = b / n``: for ``K_n`` the Laplacian is
    ``n I - J`` and ``b`` sums to zero, so ``(n I - J)(b / n) = b``
    exactly, and ``b / n`` has zero mean, i.e. it *is* the minimum-norm
    solution the generic least-squares path converges to.
    """
    if _obs.ACTIVE is not None:
        _obs.ACTIVE.inc("opt.diffusion_solves")
        _obs.ACTIVE.inc("opt.diffusion_nodes", len(loads))
    n = len(loads)
    if n <= 1:
        return {}
    nodes, b = _surplus(loads, targets)
    return _flows_from_potential(nodes, b / n, floor)


def diffusion_solution_reference(
    loads: Dict[Hashable, float],
    targets: Dict[Hashable, float],
    floor: float = 0.0,
) -> Flows:
    """Generic least-squares diffusion solve (reference path).

    Solves ``L x = b`` with ``L`` the explicit ``K_n`` Laplacian via
    ``lstsq`` (singular with nullspace = constants; ``b`` sums to zero so
    a solution exists and lstsq picks the minimum-norm one), then
    extracts flows with the original Python double loop.  Kept as ground
    truth for the parity tests and as the before-side of the benchmarks.
    """
    n = len(loads)
    if n <= 1:
        return {}
    nodes, b = _surplus(loads, targets)

    laplacian = n * np.eye(n) - np.ones((n, n))
    x, *_ = np.linalg.lstsq(laplacian, b, rcond=None)

    threshold = max(floor, 1e-12)
    flows: Flows = {}
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            f = x[i] - x[j]
            if f > threshold:
                flows[(nodes[i], nodes[j])] = f
    return flows
