"""Hu & Blake optimal load diffusion.

Given per-node loads and targets, computes the pairwise flow ``m_ij`` that
re-balances the load while minimising the Euclidean norm of the transferred
load -- which is what keeps the number of query migrations small
(Section 3.7).  The classic result: solve ``L x = b`` where ``L`` is the
Laplacian of the diffusion graph and ``b`` the load surplus vector; the
flow on edge ``(i, j)`` is then ``x_i - x_j``.

The coordinator uses the complete graph over its children as the diffusion
graph (any child can hand queries to any other -- they are application-
level peers, not physical neighbours).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Tuple

import numpy as np

__all__ = ["diffusion_solution"]


def diffusion_solution(
    loads: Dict[Hashable, float],
    targets: Dict[Hashable, float],
) -> Dict[Tuple[Hashable, Hashable], float]:
    """Minimal-norm load flows over the complete graph.

    Parameters
    ----------
    loads:
        Current load per node.
    targets:
        Desired load per node.  ``sum(targets)`` is rescaled to
        ``sum(loads)`` so the system is consistent.

    Returns
    -------
    dict
        ``{(i, j): amount}`` with ``amount > 0`` meaning "move ``amount``
        of load from i to j".  Only positive flows are returned.
    """
    nodes: List[Hashable] = list(loads)
    n = len(nodes)
    if n <= 1:
        return {}
    load_vec = np.array([loads[u] for u in nodes], dtype=float)
    target_vec = np.array([targets[u] for u in nodes], dtype=float)
    total_t = target_vec.sum()
    if total_t <= 0:
        raise ValueError("targets must have positive total")
    target_vec = target_vec * (load_vec.sum() / total_t)
    b = load_vec - target_vec  # surplus (positive = overloaded)

    # Laplacian of K_n: n*I - J.  Solve L x = b in the least-squares sense
    # (L is singular with nullspace = constants; b sums to 0 so a solution
    # exists and lstsq picks the minimum-norm one).
    laplacian = n * np.eye(n) - np.ones((n, n))
    x, *_ = np.linalg.lstsq(laplacian, b, rcond=None)

    flows: Dict[Tuple[Hashable, Hashable], float] = {}
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            f = x[i] - x[j]
            if f > 1e-12:
                flows[(nodes[i], nodes[j])] = f
    return flows
