"""The graph-mapping model of Section 3.1.

Two graphs:

* :class:`NetworkGraph` -- one vertex per mapping target (a processor, or
  a child coordinator's whole cluster in the hierarchical scheme), weighted
  by computational capability; the "edge weights" are latencies between the
  vertices' representative sites, answered by a distance callable so no
  quadratic structure is materialised.
* :class:`QueryGraph` -- q-vertices (queries, weighted by CPU load) and
  n-vertices (sources and proxies, weight 0).  Edges carry stream rates:
  q-n edges are source-request or result-delivery rates; q-q edges are the
  *overlap* rates that make the pub/sub sharing visible to the optimizer
  (the feature that lets Scheme 3 beat Scheme 2 in Table 2).

A *mapping* assigns every query-graph vertex to a network-graph vertex;
n-vertices are pinned (network constraint).  Quality is the **Weighted
Edge Cut** (Eqn 3.2) subject to the load-balance constraint (Eqn 3.1).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, FrozenSet, Hashable, Iterable, List, Optional, Tuple

import numpy as np
from scipy import sparse

from ..obs import registry as _obs
from ..query.interest import SubstreamSpace, iter_bits
from ..query.workload import QuerySpec

__all__ = [
    "NetVertex",
    "NetworkGraph",
    "QVertex",
    "NVertex",
    "QueryGraph",
    "GraphArrays",
    "Mapping",
    "qvertex_from_query",
    "build_query_graph",
    "DEFAULT_ALPHA",
]

#: The paper's load-imbalance tolerance (Section 3.1.1).
DEFAULT_ALPHA = 0.1

VertexId = Hashable


@dataclass(frozen=True)
class NetVertex:
    """A mapping target: a processor or a child cluster.

    ``site`` is the representative topology node (the processor itself, or
    the cluster's median coordinator) used for distance computations;
    ``covers`` is the set of processor/topology nodes the vertex stands
    for, used to pin n-vertices.
    """

    vid: VertexId
    site: int
    capability: float
    covers: FrozenSet[int]


class NetworkGraph:
    """The set of mapping targets plus a distance metric between sites."""

    def __init__(
        self,
        vertices: Iterable[NetVertex],
        distance: Callable[[int, int], float],
        oracle=None,
    ):
        self.vertices: Dict[VertexId, NetVertex] = {v.vid: v for v in vertices}
        if not self.vertices:
            raise ValueError("network graph needs at least one vertex")
        self._distance = distance
        #: optional LatencyOracle enabling vectorised cost rows
        self.oracle = oracle
        self._covering: Dict[int, VertexId] = {}
        for v in self.vertices.values():
            for node in v.covers:
                self._covering[node] = v.vid

    def site(self, vid: VertexId) -> int:
        """Representative topology node of a vertex."""
        return self.vertices[vid].site

    def capability(self, vid: VertexId) -> float:
        """Computational capability of a vertex (``c_j`` of Eqn 3.1)."""
        return self.vertices[vid].capability

    def total_capability(self) -> float:
        """Sum of all vertex capabilities (``Wn`` of Eqn 3.1)."""
        return sum(v.capability for v in self.vertices.values())

    def covering_vertex(self, node: int) -> Optional[VertexId]:
        """The vertex whose cluster covers topology node ``node``, if any."""
        return self._covering.get(node)

    def distance(self, vid_a: VertexId, vid_b: VertexId) -> float:
        """Latency between two vertices' representative sites."""
        if vid_a == vid_b:
            return 0.0
        return self._distance(self.site(vid_a), self.site(vid_b))

    def site_distance(self, site_a: int, site_b: int) -> float:
        """Latency between two raw topology nodes."""
        if site_a == site_b:
            return 0.0
        return self._distance(site_a, site_b)

    def ids(self) -> List[VertexId]:
        """All vertex ids, in insertion order."""
        return list(self.vertices)

    def __len__(self) -> int:
        return len(self.vertices)


@dataclass
class QVertex:
    """A query vertex: one query, or a coarsened group of queries.

    ``source_rates`` / ``proxy_rates`` aggregate the member queries'
    requested per-source rates and per-proxy result rates; together with
    the interest ``mask`` they are sufficient to rebuild every edge of the
    query graph at any coarsening level.
    """

    vid: VertexId
    weight: float
    mask: int
    source_rates: Dict[int, float]
    proxy_rates: Dict[int, float]
    state_size: float = 1.0
    #: atomic query ids represented by this (possibly coarse) vertex
    members: Tuple[int, ...] = ()
    #: finer-grained vertices this vertex was coarsened from
    children: Tuple["QVertex", ...] = ()
    #: name of the coordinator that created this (coarse) vertex
    origin: Optional[Hashable] = None

    def load_density(self) -> float:
        """Weight per unit of migratable state (Algorithm 3's tie-breaker)."""
        return self.weight / self.state_size if self.state_size > 0 else float("inf")

    def copy(self) -> "QVertex":
        """Shallow copy with private rate maps (safe to mutate)."""
        return replace(
            self,
            source_rates=dict(self.source_rates),
            proxy_rates=dict(self.proxy_rates),
        )


@dataclass(frozen=True)
class NVertex:
    """An n-vertex: a source or proxy pinned to a topology node.

    ``clu`` is the network-graph vertex covering the node, or ``None`` when
    the node lies outside every child cluster of the current coordinator
    (the paper's ``unknown``); such vertices keep their own site as their
    position and are not mapping targets.
    """

    vid: VertexId
    node: int
    clu: Optional[VertexId] = None


Mapping = Dict[VertexId, VertexId]


class QueryGraph:
    """q-vertices + n-vertices + weighted edges (adjacency maps).

    Mutations bump an internal version counter so array snapshots
    (:class:`GraphArrays`) built from the graph can be cached and reused
    while the graph is unchanged.
    """

    def __init__(self):
        self.qverts: Dict[VertexId, QVertex] = {}
        self.nverts: Dict[VertexId, NVertex] = {}
        self.adj: Dict[VertexId, Dict[VertexId, float]] = {}
        #: bumped on every structural mutation; snapshot cache key
        self._version: int = 0
        self._arrays_cache: Dict[int, Tuple[object, int, "GraphArrays"]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_qvertex(self, v: QVertex) -> None:
        """Add a q-vertex; raises ``ValueError`` on a duplicate id."""
        if v.vid in self.qverts or v.vid in self.nverts:
            raise ValueError(f"duplicate vertex id {v.vid!r}")
        self.qverts[v.vid] = v
        self.adj.setdefault(v.vid, {})
        self._version += 1

    def add_nvertex(self, v: NVertex) -> None:
        """Add an n-vertex; raises ``ValueError`` on a duplicate id."""
        if v.vid in self.qverts or v.vid in self.nverts:
            raise ValueError(f"duplicate vertex id {v.vid!r}")
        self.nverts[v.vid] = v
        self.adj.setdefault(v.vid, {})
        self._version += 1

    def add_edge(self, a: VertexId, b: VertexId, weight: float) -> None:
        """Accumulate ``weight`` onto the undirected edge ``(a, b)``.

        Self-edges and non-positive weights are ignored.
        """
        if a == b:
            return
        if weight <= 0:
            return
        self.adj[a][b] = self.adj[a].get(b, 0.0) + weight
        self.adj[b][a] = self.adj[b].get(a, 0.0) + weight
        self._version += 1

    def set_edge(self, a: VertexId, b: VertexId, weight: float) -> None:
        """Set the undirected edge ``(a, b)`` to exactly ``weight``.

        A non-positive weight removes the edge; self-edges are ignored.
        """
        if a == b:
            return
        if weight <= 0:
            self.adj[a].pop(b, None)
            self.adj[b].pop(a, None)
            self._version += 1
            return
        self.adj[a][b] = weight
        self.adj[b][a] = weight
        self._version += 1

    def remove_vertex(self, vid: VertexId) -> None:
        """Remove a vertex and every edge incident to it."""
        for nbr in list(self.adj.get(vid, {})):
            del self.adj[nbr][vid]
        self.adj.pop(vid, None)
        self.qverts.pop(vid, None)
        self.nverts.pop(vid, None)
        self._version += 1

    def clear_edges(self) -> None:
        """Drop every edge, keeping all vertices.

        The tracked way to reset adjacency before a rebuild — mutating
        ``adj`` directly would leave cached :class:`GraphArrays`
        snapshots stale.
        """
        for vid in self.adj:
            self.adj[vid] = {}
        self._version += 1

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def is_q(self, vid: VertexId) -> bool:
        """Whether ``vid`` is a q-vertex of this graph."""
        return vid in self.qverts

    def is_n(self, vid: VertexId) -> bool:
        """Whether ``vid`` is an n-vertex of this graph."""
        return vid in self.nverts

    def vertex_weight(self, vid: VertexId) -> float:
        """Computational weight of a vertex (n-vertices weigh zero)."""
        if vid in self.qverts:
            return self.qverts[vid].weight
        return 0.0

    def total_qweight(self) -> float:
        """Sum of all q-vertex weights (``Wq`` of Eqn 3.1)."""
        return sum(v.weight for v in self.qverts.values())

    def neighbors(self, vid: VertexId) -> Dict[VertexId, float]:
        """Adjacency map ``{neighbour: edge weight}`` of a vertex."""
        return self.adj.get(vid, {})

    def edges(self) -> List[Tuple[VertexId, VertexId, float]]:
        """All undirected edges as ``(a, b, weight)``, each edge once."""
        out = []
        seen = set()
        for a, nbrs in self.adj.items():
            for b, w in nbrs.items():
                key = (a, b) if str(a) <= str(b) else (b, a)
                if key not in seen:
                    seen.add(key)
                    out.append((key[0], key[1], w))
        return out

    def vertex_count(self) -> int:
        """Total number of vertices (q plus n)."""
        return len(self.qverts) + len(self.nverts)

    # ------------------------------------------------------------------
    # mapping quality
    # ------------------------------------------------------------------
    def position(self, vid: VertexId, mapping: Mapping, ng: NetworkGraph) -> int:
        """Topology site a vertex occupies under ``mapping``.

        q-vertices sit at the site of their mapped network vertex; pinned
        n-vertices at the site of their covering cluster; external
        n-vertices at their own node.
        """
        if vid in self.qverts:
            return ng.site(mapping[vid])
        nv = self.nverts[vid]
        if nv.clu is not None:
            return ng.site(nv.clu)
        return nv.node

    def wec(self, mapping: Mapping, ng: NetworkGraph) -> float:
        """Weighted Edge Cut of a mapping (Eqn 3.2, undirected edges once).

        Delegates to the array-backed fast path (:class:`GraphArrays`);
        the snapshot is cached per graph version, so repeated evaluations
        against an unchanged graph cost one vectorised gather each.
        :meth:`wec_reference` keeps the pure-Python definition.
        """
        if _obs.ACTIVE is not None:
            _obs.ACTIVE.inc("opt.wec_evaluations")
        return self.arrays_for(ng).wec(mapping)

    def wec_reference(self, mapping: Mapping, ng: NetworkGraph) -> float:
        """Pure-Python Weighted Edge Cut (the Eqn 3.2 reference path).

        Semantically identical to :meth:`wec`; kept as the ground truth
        for parity tests and as the before-side of the benchmarks.
        """
        total = 0.0
        pos = {
            vid: self.position(vid, mapping, ng)
            for vid in itertools.chain(self.qverts, self.nverts)
        }
        done = set()
        for a, nbrs in self.adj.items():
            for b, w in nbrs.items():
                # use an order-free marker based on the pair itself
                marker = frozenset((a, b))
                if marker in done:
                    continue
                done.add(marker)
                total += w * ng.site_distance(pos[a], pos[b])
        return total

    def arrays_for(self, ng: NetworkGraph) -> "GraphArrays":
        """The cached :class:`GraphArrays` snapshot against ``ng``.

        Rebuilt lazily whenever the graph has mutated since the last call
        (tracked via the internal version counter) or when called with a
        different network graph.
        """
        key = id(ng)
        hit = self._arrays_cache.get(key)
        if hit is not None and hit[0] is ng and hit[1] == self._version:
            return hit[2]
        arrays = GraphArrays(self, ng)
        # keep a strong ref to ng so the id() key cannot be recycled
        self._arrays_cache = {key: (ng, self._version, arrays)}
        return arrays

    def loads(self, mapping: Mapping, ng: NetworkGraph) -> Dict[VertexId, float]:
        """Per-network-vertex query load under a mapping."""
        loads = {vid: 0.0 for vid in ng.ids()}
        for qid, q in self.qverts.items():
            loads[mapping[qid]] += q.weight
        return loads

    def capacity_limits(
        self, ng: NetworkGraph, alpha: float = DEFAULT_ALPHA
    ) -> Dict[VertexId, float]:
        """Eqn 3.1 load ceilings: ``(1 + alpha) * c_j * Wq / Wn``."""
        total_q = self.total_qweight()
        total_c = ng.total_capability()
        return {
            vid: (1.0 + alpha) * ng.capability(vid) * total_q / total_c
            for vid in ng.ids()
        }

    def satisfies_load_constraint(
        self, mapping: Mapping, ng: NetworkGraph, alpha: float = DEFAULT_ALPHA
    ) -> bool:
        """Whether every network vertex is within its Eqn 3.1 ceiling."""
        limits = self.capacity_limits(ng, alpha)
        loads = self.loads(mapping, ng)
        return all(loads[vid] <= limits[vid] + 1e-9 for vid in ng.ids())

    def pinned_mapping(self, ng: NetworkGraph) -> Mapping:
        """The network-constraint part of a mapping (n-vertices only)."""
        out: Mapping = {}
        for vid, nv in self.nverts.items():
            if nv.clu is not None:
                out[vid] = nv.clu
        return out


class GraphArrays:
    """CSR-style array snapshot of one (query graph, network graph) pair.

    The object API of :class:`QueryGraph` is dictionary-based and
    convenient to mutate; the optimizer's hot kernels, however, only ever
    *read* the graph, and at 10k queries the per-edge Python iteration of
    the reference paths dominates running time.  ``GraphArrays`` freezes
    the graph into flat numpy arrays:

    * an integer index over all vertices (q-vertices first, then
      n-vertices), with per-q-vertex weights in :attr:`qweights`;
    * the undirected edge list in COO form (:attr:`edge_u`,
      :attr:`edge_v`, :attr:`edge_w`, each edge once) plus the symmetric
      CSR adjacency (:attr:`indptr`, :attr:`indices`, :attr:`weights`);
    * the *site universe* -- the topology nodes any vertex can occupy
      (target sites plus n-vertex resting nodes) -- with a dense
      inter-site distance matrix :attr:`D` filled from the latency
      oracle's cached rows when available.

    With those in place the Weighted Edge Cut of a mapping is one fancy-
    indexing gather and a dot product (:meth:`wec`), and per-target loads
    are one ``bincount`` (:meth:`loads`).  Snapshots are immutable; the
    owning graph caches one per version via
    :meth:`QueryGraph.arrays_for`.
    """

    def __init__(self, qg: QueryGraph, ng: NetworkGraph):
        self.qg = qg
        self.ng = ng
        self.targets: List[VertexId] = list(ng.ids())
        self.target_index: Dict[VertexId, int] = {
            t: i for i, t in enumerate(self.targets)
        }

        self.qvids: List[VertexId] = list(qg.qverts)
        self.nvids: List[VertexId] = list(qg.nverts)
        self.nq = len(self.qvids)
        self.vindex: Dict[VertexId, int] = {
            v: i for i, v in enumerate(itertools.chain(self.qvids, self.nvids))
        }
        self.qweights = np.asarray(
            [qg.qverts[v].weight for v in self.qvids], dtype=float
        )

        # --- site universe and inter-site distance matrix -------------
        sites: List[int] = []
        site_pos: Dict[int, int] = {}

        def intern(site: int) -> int:
            if site not in site_pos:
                site_pos[site] = len(sites)
                sites.append(site)
            return site_pos[site]

        self.target_site_idx = np.asarray(
            [intern(ng.site(t)) for t in self.targets], dtype=np.int64
        )
        nfixed = []
        for vid in self.nvids:
            nv = qg.nverts[vid]
            node = ng.site(nv.clu) if nv.clu is not None else nv.node
            nfixed.append(intern(node))
        self.nfixed = np.asarray(nfixed, dtype=np.int64)
        self.sites = sites

        # --- edges: COO (each undirected edge once) and symmetric CSR -
        eu: List[int] = []
        ev: List[int] = []
        ew: List[float] = []
        vindex = self.vindex
        for a, nbrs in qg.adj.items():
            ia = vindex[a]
            for b, w in nbrs.items():
                ib = vindex[b]
                if ia < ib:
                    eu.append(ia)
                    ev.append(ib)
                    ew.append(w)
        self.edge_u = np.asarray(eu, dtype=np.int64)
        self.edge_v = np.asarray(ev, dtype=np.int64)
        self.edge_w = np.asarray(ew, dtype=float)

        # --- distance matrix over the site universe -------------------
        # Only rows that can appear as a gather's first index are filled:
        # q-vertices sort before n-vertices, so `edge_u` endpoints sit at
        # target sites except for (rare, caller-constructed) n-n edges,
        # whose resting rows are added explicitly.  Target-site rows are
        # exactly the latency rows the mapping algorithms already fetch,
        # so no extra Dijkstra runs are triggered here.
        row_sites = set(self.target_site_idx.tolist())
        if self.edge_u.size:
            nn = self.edge_u >= self.nq
            if nn.any():
                row_sites.update(self.nfixed[self.edge_u[nn] - self.nq].tolist())
        m = len(sites)
        D = np.zeros((m, m))
        oracle = getattr(ng, "oracle", None)
        if oracle is not None:
            site_arr = np.asarray(sites, dtype=np.int64)
            for i in row_sites:
                D[i, :] = np.asarray(oracle.row(sites[i]))[site_arr]
        else:
            for i in row_sites:
                a = sites[i]
                for j in range(m):
                    if j != i:
                        D[i, j] = ng.site_distance(a, sites[j])
        self.D = D

        nv = len(self.vindex)
        if self.edge_u.size:
            heads = np.concatenate([self.edge_u, self.edge_v])
            tails = np.concatenate([self.edge_v, self.edge_u])
            ws = np.concatenate([self.edge_w, self.edge_w])
            order = np.argsort(heads, kind="stable")
            self.indices = tails[order]
            self.weights = ws[order]
            self.indptr = np.zeros(nv + 1, dtype=np.int64)
            np.cumsum(np.bincount(heads, minlength=nv), out=self.indptr[1:])
        else:
            self.indices = np.empty(0, dtype=np.int64)
            self.weights = np.empty(0, dtype=float)
            self.indptr = np.zeros(nv + 1, dtype=np.int64)

    # ------------------------------------------------------------------
    def neighbor_slice(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """CSR neighbour (indices, weights) arrays of vertex index ``i``."""
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return self.indices[lo:hi], self.weights[lo:hi]

    def positions(self, mapping: Mapping) -> np.ndarray:
        """Site-universe index of every vertex under ``mapping``.

        q-vertices occupy the site of their mapped target; n-vertices sit
        at their precomputed resting node.  Raises ``KeyError`` when a
        q-vertex is missing from the mapping, like the reference path.
        """
        tindex = self.target_index
        qpos = self.target_site_idx[
            np.fromiter(
                (tindex[mapping[v]] for v in self.qvids),
                dtype=np.int64,
                count=self.nq,
            )
        ] if self.nq else np.empty(0, dtype=np.int64)
        return np.concatenate([qpos, self.nfixed])

    def wec(self, mapping: Mapping) -> float:
        """Weighted Edge Cut of ``mapping`` (vectorised Eqn 3.2)."""
        if self.edge_w.size == 0:
            return 0.0
        pos = self.positions(mapping)
        return float(
            self.edge_w @ self.D[pos[self.edge_u], pos[self.edge_v]]
        )

    def loads(self, mapping: Mapping) -> np.ndarray:
        """Per-target q-vertex load under ``mapping`` (target order)."""
        if self.nq == 0:
            return np.zeros(len(self.targets))
        tindex = self.target_index
        ti = np.fromiter(
            (tindex[mapping[v]] for v in self.qvids),
            dtype=np.int64,
            count=self.nq,
        )
        return np.bincount(
            ti, weights=self.qweights, minlength=len(self.targets)
        )


def qvertex_from_query(q: QuerySpec, space: SubstreamSpace) -> QVertex:
    """Atomic q-vertex for one query."""
    return QVertex(
        vid=("q", q.query_id),
        weight=q.load,
        mask=q.mask,
        source_rates=space.rates_by_source(q.mask),
        proxy_rates={q.proxy: q.result_rate},
        state_size=q.state_size,
        members=(q.query_id,),
    )


def build_query_graph(
    qvertices: Iterable[QVertex],
    space: SubstreamSpace,
    ng: Optional[NetworkGraph] = None,
    max_overlap_neighbors: int = 20,
) -> QueryGraph:
    """Assemble a query graph from q-vertices.

    * an n-vertex is created for every source / proxy node referenced by
      any q-vertex; its ``clu`` is resolved against ``ng`` when given;
    * q-n edges get the aggregated request / result rates;
    * q-q overlap edges get ``rate(mask_a AND mask_b)``; to keep the graph
      sparse each q-vertex keeps at most ``max_overlap_neighbors`` heaviest
      overlap edges (candidates found via a substream inverted index, so
      disjoint queries never pay a comparison).
    """
    g = QueryGraph()
    qlist = list(qvertices)
    for qv in qlist:
        g.add_qvertex(qv)

    # n-vertices
    nodes = set()
    for qv in qlist:
        nodes.update(qv.source_rates)
        nodes.update(qv.proxy_rates)
    for node in sorted(nodes):
        clu = ng.covering_vertex(node) if ng is not None else None
        g.add_nvertex(NVertex(vid=("n", node), node=node, clu=clu))

    # q-n edges
    for qv in qlist:
        for node, rate in qv.source_rates.items():
            g.add_edge(qv.vid, ("n", node), rate)
        for node, rate in qv.proxy_rates.items():
            g.add_edge(qv.vid, ("n", node), rate)

    _add_overlap_edges(g, qlist, space, max_overlap_neighbors)
    return g


def _add_overlap_edges(
    g: QueryGraph,
    qlist: List[QVertex],
    space: SubstreamSpace,
    max_neighbors: int,
) -> None:
    """Sparse q-q overlap edges, computed as one sparse matrix product.

    With ``A`` the query x substream incidence matrix, the full pairwise
    overlap-rate matrix is ``A diag(rates) A^T``; each q-vertex then keeps
    its ``max_neighbors`` heaviest overlap edges.
    """
    if len(qlist) < 2:
        return
    rows: List[int] = []
    cols: List[int] = []
    for i, qv in enumerate(qlist):
        for bit in iter_bits(qv.mask):
            rows.append(i)
            cols.append(bit)
    n_sub = len(space)
    incidence = sparse.csr_matrix(
        (np.ones(len(rows)), (rows, cols)), shape=(len(qlist), n_sub)
    )
    weighted = incidence.multiply(space.rates[np.newaxis, :]).tocsr()
    overlap = (weighted @ incidence.T).tocsr()
    overlap.setdiag(0.0)
    overlap.eliminate_zeros()

    for i in range(len(qlist)):
        start, end = overlap.indptr[i], overlap.indptr[i + 1]
        js = overlap.indices[start:end]
        ws = overlap.data[start:end]
        if len(js) > max_neighbors:
            keep = np.argpartition(-ws, max_neighbors - 1)[:max_neighbors]
            js, ws = js[keep], ws[keep]
        a = qlist[i].vid
        for j, w in zip(js, ws):
            b = qlist[int(j)].vid
            if b not in g.adj[a] and w > 0:
                g.set_edge(a, b, float(w))
