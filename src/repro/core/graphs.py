"""The graph-mapping model of Section 3.1.

Two graphs:

* :class:`NetworkGraph` -- one vertex per mapping target (a processor, or
  a child coordinator's whole cluster in the hierarchical scheme), weighted
  by computational capability; the "edge weights" are latencies between the
  vertices' representative sites, answered by a distance callable so no
  quadratic structure is materialised.
* :class:`QueryGraph` -- q-vertices (queries, weighted by CPU load) and
  n-vertices (sources and proxies, weight 0).  Edges carry stream rates:
  q-n edges are source-request or result-delivery rates; q-q edges are the
  *overlap* rates that make the pub/sub sharing visible to the optimizer
  (the feature that lets Scheme 3 beat Scheme 2 in Table 2).

A *mapping* assigns every query-graph vertex to a network-graph vertex;
n-vertices are pinned (network constraint).  Quality is the **Weighted
Edge Cut** (Eqn 3.2) subject to the load-balance constraint (Eqn 3.1).

Incremental maintenance
-----------------------

Mutations are journalled: every structural change appends a compact delta
op, and consumers that cache derived state (the :class:`GraphArrays`
snapshot here, the ``CostWorkspace`` in ``fastcost``) replay the suffix of
the journal since their last sync instead of rebuilding from scratch.
``QueryGraph.incremental`` gates the patching path; with it off the graph
behaves exactly like the historical rebuild-on-mutation implementation,
which is kept as the bit-parity reference (same pattern as
``wec_reference``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np
from scipy import sparse

from ..obs import registry as _obs
from ..query.interest import SubstreamSpace
from ..query.workload import QuerySpec

__all__ = [
    "NetVertex",
    "NetworkGraph",
    "QVertex",
    "NVertex",
    "QueryGraph",
    "GraphArrays",
    "Mapping",
    "qvertex_from_query",
    "build_query_graph",
    "attach_overlap_edges",
    "stable_vertex_key",
    "DEFAULT_ALPHA",
    "JOURNAL_LIMIT",
]

#: The paper's load-imbalance tolerance (Section 3.1.1).
DEFAULT_ALPHA = 0.1

#: Journal entries kept before the oldest half is trimmed; consumers whose
#: cursor falls off the retained suffix rebuild from scratch.
JOURNAL_LIMIT = 65536

VertexId = Hashable


@dataclass(frozen=True)
class NetVertex:
    """A mapping target: a processor or a child cluster.

    ``site`` is the representative topology node (the processor itself, or
    the cluster's median coordinator) used for distance computations;
    ``covers`` is the set of processor/topology nodes the vertex stands
    for, used to pin n-vertices.
    """

    vid: VertexId
    site: int
    capability: float
    covers: FrozenSet[int]


class NetworkGraph:
    """The set of mapping targets plus a distance metric between sites."""

    def __init__(
        self,
        vertices: Iterable[NetVertex],
        distance: Callable[[int, int], float],
        oracle=None,
    ):
        self.vertices: Dict[VertexId, NetVertex] = {v.vid: v for v in vertices}
        if not self.vertices:
            raise ValueError("network graph needs at least one vertex")
        self._distance = distance
        #: optional LatencyOracle enabling vectorised cost rows
        self.oracle = oracle
        self._covering: Dict[int, VertexId] = {}
        for v in self.vertices.values():
            for node in v.covers:
                self._covering[node] = v.vid

    def site(self, vid: VertexId) -> int:
        """Representative topology node of a vertex."""
        return self.vertices[vid].site

    def capability(self, vid: VertexId) -> float:
        """Computational capability of a vertex (``c_j`` of Eqn 3.1)."""
        return self.vertices[vid].capability

    def total_capability(self) -> float:
        """Sum of all vertex capabilities (``Wn`` of Eqn 3.1)."""
        return sum(v.capability for v in self.vertices.values())

    def covering_vertex(self, node: int) -> Optional[VertexId]:
        """The vertex whose cluster covers topology node ``node``, if any."""
        return self._covering.get(node)

    def distance(self, vid_a: VertexId, vid_b: VertexId) -> float:
        """Latency between two vertices' representative sites."""
        if vid_a == vid_b:
            return 0.0
        return self._distance(self.site(vid_a), self.site(vid_b))

    def site_distance(self, site_a: int, site_b: int) -> float:
        """Latency between two raw topology nodes."""
        if site_a == site_b:
            return 0.0
        return self._distance(site_a, site_b)

    def ids(self) -> List[VertexId]:
        """All vertex ids, in insertion order."""
        return list(self.vertices)

    def __len__(self) -> int:
        return len(self.vertices)


@dataclass
class QVertex:
    """A query vertex: one query, or a coarsened group of queries.

    ``source_rates`` / ``proxy_rates`` aggregate the member queries'
    requested per-source rates and per-proxy result rates; together with
    the interest ``mask`` they are sufficient to rebuild every edge of the
    query graph at any coarsening level.
    """

    vid: VertexId
    weight: float
    mask: int
    source_rates: Dict[int, float]
    proxy_rates: Dict[int, float]
    state_size: float = 1.0
    #: atomic query ids represented by this (possibly coarse) vertex
    members: Tuple[int, ...] = ()
    #: finer-grained vertices this vertex was coarsened from
    children: Tuple["QVertex", ...] = ()
    #: name of the coordinator that created this (coarse) vertex
    origin: Optional[Hashable] = None

    def load_density(self) -> float:
        """Weight per unit of migratable state (Algorithm 3's tie-breaker)."""
        return self.weight / self.state_size if self.state_size > 0 else float("inf")

    def copy(self) -> "QVertex":
        """Shallow copy with private rate maps (safe to mutate)."""
        return replace(
            self,
            source_rates=dict(self.source_rates),
            proxy_rates=dict(self.proxy_rates),
        )


def stable_vertex_key(qv: QVertex) -> str:
    """A tie-break key that is stable across optimizer runs.

    Coarse vertex ids embed a process-global counter, so ``str(vid)``
    orderings differ between two otherwise identical optimizer runs (e.g.
    the incremental and the full-rebuild reference).  The member tuple is
    content-derived and survives re-coarsening, so exact-tie decisions
    keyed on it are reproducible.
    """
    if qv.members:
        return str(tuple(sorted(qv.members)))
    return str(qv.vid)


@dataclass(frozen=True)
class NVertex:
    """An n-vertex: a source or proxy pinned to a topology node.

    ``clu`` is the network-graph vertex covering the node, or ``None`` when
    the node lies outside every child cluster of the current coordinator
    (the paper's ``unknown``); such vertices keep their own site as their
    position and are not mapping targets.
    """

    vid: VertexId
    node: int
    clu: Optional[VertexId] = None


Mapping = Dict[VertexId, VertexId]


class QueryGraph:
    """q-vertices + n-vertices + weighted edges (adjacency maps).

    Besides the adjacency maps the graph keeps a *canonical edge store*
    (``_edges``, an insertion-ordered dict keyed by the edge's canonical
    endpoint pair) and a *mutation journal*.  The journal records one
    compact op per structural change:

    ``("+q", vid)``
        a q-vertex was added;
    ``("+n", vid, clu, node)``
        an n-vertex was added (self-contained: the vertex may be removed
        again later in the same journal suffix);
    ``("-v", vid)``
        a vertex was removed (its per-edge removal ops precede it);
    ``("e", a, b, w)``
        edge ``(a, b)`` now has absolute weight ``w`` (``0.0`` = removed);
        the pair is in canonical key direction;
    ``("clear",)``
        all edges dropped — consumers rebuild.

    ``_version == _jbase + len(_journal)`` always holds; a consumer holding
    cursor ``c`` obtained from :meth:`journal_cursor` can later fetch the
    exact delta via :meth:`journal_since`.
    """

    def __init__(self, incremental: bool = True):
        self.qverts: Dict[VertexId, QVertex] = {}
        self.nverts: Dict[VertexId, NVertex] = {}
        self.adj: Dict[VertexId, Dict[VertexId, float]] = {}
        #: canonical edge store; insertion order == GraphArrays slot order
        self._edges: Dict[Tuple[VertexId, VertexId], float] = {}
        #: gates the snapshot-patching path of :meth:`arrays_for`
        self.incremental = incremental
        #: bumped on every structural mutation; snapshot cache key
        self._version: int = 0
        self._jbase: int = 0
        self._journal: List[tuple] = []
        self._arrays_cache: Dict[int, Tuple[object, int, "GraphArrays"]] = {}

    # ------------------------------------------------------------------
    # journal
    # ------------------------------------------------------------------
    def _record(self, op: tuple) -> None:
        self._journal.append(op)
        self._version += 1
        if len(self._journal) > JOURNAL_LIMIT:
            drop = len(self._journal) // 2
            del self._journal[:drop]
            self._jbase += drop

    def journal_cursor(self) -> int:
        """Opaque cursor capturing the graph's current mutation point."""
        return self._version

    def journal_since(self, cursor: int) -> Optional[List[tuple]]:
        """Ops recorded since ``cursor``, or ``None`` if trimmed away."""
        if cursor < self._jbase:
            return None
        return self._journal[cursor - self._jbase:]

    def _ekey(self, a: VertexId, b: VertexId) -> Tuple[VertexId, VertexId]:
        """Canonical key direction for edge ``(a, b)``.

        An existing edge keeps its stored direction; a new mixed q-n edge
        puts the q endpoint first (so distance-matrix rows are only ever
        needed for mapping-target sites and n-n edges).
        """
        if (a, b) in self._edges:
            return (a, b)
        if (b, a) in self._edges:
            return (b, a)
        if a in self.qverts or b not in self.qverts:
            return (a, b)
        return (b, a)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_qvertex(self, v: QVertex) -> None:
        """Add a q-vertex; raises ``ValueError`` on a duplicate id."""
        if v.vid in self.qverts or v.vid in self.nverts:
            raise ValueError(f"duplicate vertex id {v.vid!r}")
        self.qverts[v.vid] = v
        self.adj.setdefault(v.vid, {})
        self._record(("+q", v.vid))

    def add_nvertex(self, v: NVertex) -> None:
        """Add an n-vertex; raises ``ValueError`` on a duplicate id."""
        if v.vid in self.qverts or v.vid in self.nverts:
            raise ValueError(f"duplicate vertex id {v.vid!r}")
        self.nverts[v.vid] = v
        self.adj.setdefault(v.vid, {})
        self._record(("+n", v.vid, v.clu, v.node))

    def add_edge(self, a: VertexId, b: VertexId, weight: float) -> None:
        """Accumulate ``weight`` onto the undirected edge ``(a, b)``.

        Self-edges and non-positive weights are ignored.
        """
        if a == b:
            return
        if weight <= 0:
            return
        key = self._ekey(a, b)
        total = self._edges.get(key, 0.0) + weight
        self._edges[key] = total
        self.adj[a][b] = total
        self.adj[b][a] = total
        self._record(("e", key[0], key[1], total))

    def set_edge(self, a: VertexId, b: VertexId, weight: float) -> None:
        """Set the undirected edge ``(a, b)`` to exactly ``weight``.

        A non-positive weight removes the edge; self-edges, no-op removals
        and value-equal overwrites are ignored (no version bump).
        """
        if a == b:
            return
        key = self._ekey(a, b)
        if weight <= 0:
            if self._edges.pop(key, None) is None:
                return
            del self.adj[a][b]
            del self.adj[b][a]
            self._record(("e", key[0], key[1], 0.0))
            return
        if self._edges.get(key) == weight:
            return
        self._edges[key] = weight
        self.adj[a][b] = weight
        self.adj[b][a] = weight
        self._record(("e", key[0], key[1], weight))

    def remove_vertex(self, vid: VertexId) -> None:
        """Remove a vertex and every edge incident to it."""
        for nbr in list(self.adj.get(vid, {})):
            del self.adj[nbr][vid]
            key = (vid, nbr) if (vid, nbr) in self._edges else (nbr, vid)
            del self._edges[key]
            self._record(("e", key[0], key[1], 0.0))
        self.adj.pop(vid, None)
        self.qverts.pop(vid, None)
        self.nverts.pop(vid, None)
        self._record(("-v", vid))

    def clear_edges(self) -> None:
        """Drop every edge, keeping all vertices.

        The tracked way to reset adjacency before a rebuild — mutating
        ``adj`` directly would leave cached :class:`GraphArrays`
        snapshots stale.
        """
        for vid in self.adj:
            self.adj[vid] = {}
        self._edges.clear()
        self._record(("clear",))

    def prune_isolated_nverts(self) -> int:
        """Drop n-vertices with no incident edge; returns how many."""
        drop = [vid for vid in self.nverts if not self.adj.get(vid)]
        for vid in drop:
            self.remove_vertex(vid)
        return len(drop)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def is_q(self, vid: VertexId) -> bool:
        """Whether ``vid`` is a q-vertex of this graph."""
        return vid in self.qverts

    def is_n(self, vid: VertexId) -> bool:
        """Whether ``vid`` is an n-vertex of this graph."""
        return vid in self.nverts

    def vertex_weight(self, vid: VertexId) -> float:
        """Computational weight of a vertex (n-vertices weigh zero)."""
        if vid in self.qverts:
            return self.qverts[vid].weight
        return 0.0

    def total_qweight(self) -> float:
        """Sum of all q-vertex weights (``Wq`` of Eqn 3.1)."""
        return sum(v.weight for v in self.qverts.values())

    def neighbors(self, vid: VertexId) -> Dict[VertexId, float]:
        """Adjacency map ``{neighbour: edge weight}`` of a vertex."""
        return self.adj.get(vid, {})

    def edges(self) -> List[Tuple[VertexId, VertexId, float]]:
        """All undirected edges as ``(a, b, weight)``, each edge once.

        Canonical store order: edge insertion order, stored direction.
        """
        return [(a, b, w) for (a, b), w in self._edges.items()]

    def vertex_count(self) -> int:
        """Total number of vertices (q plus n)."""
        return len(self.qverts) + len(self.nverts)

    # ------------------------------------------------------------------
    # mapping quality
    # ------------------------------------------------------------------
    def position(self, vid: VertexId, mapping: Mapping, ng: NetworkGraph) -> int:
        """Topology site a vertex occupies under ``mapping``.

        q-vertices sit at the site of their mapped network vertex; pinned
        n-vertices at the site of their covering cluster; external
        n-vertices at their own node.
        """
        if vid in self.qverts:
            return ng.site(mapping[vid])
        nv = self.nverts[vid]
        if nv.clu is not None:
            return ng.site(nv.clu)
        return nv.node

    def wec(self, mapping: Mapping, ng: NetworkGraph) -> float:
        """Weighted Edge Cut of a mapping (Eqn 3.2, undirected edges once).

        Delegates to the array-backed fast path (:class:`GraphArrays`);
        the snapshot is cached per graph version and delta-patched from
        the mutation journal, so repeated evaluations against a lightly
        mutated graph cost one vectorised gather each.
        :meth:`wec_reference` keeps the pure-Python definition.
        """
        if _obs.ACTIVE is not None:
            _obs.ACTIVE.inc("opt.wec_evaluations")
        return self.arrays_for(ng).wec(mapping)

    def wec_reference(self, mapping: Mapping, ng: NetworkGraph) -> float:
        """Pure-Python Weighted Edge Cut (the Eqn 3.2 reference path).

        Semantically identical to :meth:`wec`; kept as the ground truth
        for parity tests and as the before-side of the benchmarks.
        """
        total = 0.0
        pos = {
            vid: self.position(vid, mapping, ng)
            for vid in itertools.chain(self.qverts, self.nverts)
        }
        done = set()
        for a, nbrs in self.adj.items():
            for b, w in nbrs.items():
                # use an order-free marker based on the pair itself
                marker = frozenset((a, b))
                if marker in done:
                    continue
                done.add(marker)
                total += w * ng.site_distance(pos[a], pos[b])
        return total

    def arrays_for(self, ng: NetworkGraph) -> "GraphArrays":
        """The cached :class:`GraphArrays` snapshot against ``ng``.

        On a version mismatch the cached snapshot is *patched in place*
        from the mutation journal when (a) :attr:`incremental` is on,
        (b) the delta is still retained, contains no ``clear``, and is
        small relative to the graph.  Otherwise the snapshot is rebuilt —
        the full-rebuild path doubles as the bit-parity reference.
        """
        key = id(ng)
        hit = self._arrays_cache.get(key)
        if hit is not None and hit[0] is ng:
            if hit[1] == self._version:
                return hit[2]
            if self.incremental:
                ops = self.journal_since(hit[1])
                budget = max(32, (len(self._edges) + self.vertex_count()) // 4)
                if (
                    ops is not None
                    and len(ops) <= budget
                    and all(op[0] != "clear" for op in ops)
                ):
                    arrays = hit[2]
                    arrays.apply_journal(ops)
                    self._arrays_cache = {key: (ng, self._version, arrays)}
                    if _obs.ACTIVE is not None:
                        _obs.ACTIVE.inc("opt.snapshot_patches")
                        _obs.ACTIVE.inc("opt.deltas_applied", len(ops))
                    return arrays
        arrays = GraphArrays(self, ng)
        # keep a strong ref to ng so the id() key cannot be recycled
        self._arrays_cache = {key: (ng, self._version, arrays)}
        if _obs.ACTIVE is not None and hit is not None:
            _obs.ACTIVE.inc("opt.snapshot_rebuilds")
        return arrays

    def loads(self, mapping: Mapping, ng: NetworkGraph) -> Dict[VertexId, float]:
        """Per-network-vertex query load under a mapping."""
        loads = {vid: 0.0 for vid in ng.ids()}
        for qid, q in self.qverts.items():
            loads[mapping[qid]] += q.weight
        return loads

    def capacity_limits(
        self, ng: NetworkGraph, alpha: float = DEFAULT_ALPHA
    ) -> Dict[VertexId, float]:
        """Eqn 3.1 load ceilings: ``(1 + alpha) * c_j * Wq / Wn``."""
        total_q = self.total_qweight()
        total_c = ng.total_capability()
        return {
            vid: (1.0 + alpha) * ng.capability(vid) * total_q / total_c
            for vid in ng.ids()
        }

    def satisfies_load_constraint(
        self, mapping: Mapping, ng: NetworkGraph, alpha: float = DEFAULT_ALPHA
    ) -> bool:
        """Whether every network vertex is within its Eqn 3.1 ceiling."""
        limits = self.capacity_limits(ng, alpha)
        loads = self.loads(mapping, ng)
        return all(loads[vid] <= limits[vid] + 1e-9 for vid in ng.ids())

    def pinned_mapping(self, ng: NetworkGraph) -> Mapping:
        """The network-constraint part of a mapping (n-vertices only)."""
        out: Mapping = {}
        for vid, nv in self.nverts.items():
            if nv.clu is not None:
                out[vid] = nv.clu
        return out


class GraphArrays:
    """Array snapshot of one (query graph, network graph) pair.

    The object API of :class:`QueryGraph` is dictionary-based and
    convenient to mutate; the optimizer's hot kernels, however, only ever
    *read* the graph, and at 10k queries the per-edge Python iteration of
    the reference paths dominates running time.  ``GraphArrays`` keeps the
    graph as flat numpy arrays:

    * per-vertex *slots* (kind flag, pinned-site index for n-vertices);
    * per-edge slots (endpoint slots, weight, alive flag), appended in
      canonical edge-store order and tombstoned on removal so that the
      ascending live-slot order always equals the order a fresh rebuild
      would enumerate — the foundation of the patched-vs-rebuilt
      bit-parity guarantee;
    * a slab-allocated incidence structure (per-vertex edge-slot rows
      with slack, relocated on overflow) powering O(degree) updates;
    * the *site universe* -- the topology nodes any vertex can occupy --
      with a growable dense inter-site distance matrix :attr:`D` filled
      row-lazily from the latency oracle when available.

    Unlike its historical namesake the snapshot is **mutable**:
    :meth:`apply_journal` patches it in place from a
    :class:`QueryGraph` journal suffix, and dead-slot pressure triggers a
    compaction (a full rebuild, which is bit-transparent because live
    order equals canonical order).  :meth:`begin_moves` /
    :meth:`update` maintain a WEC total across single-vertex moves in
    O(degree) instead of O(edges).
    """

    def __init__(self, qg: QueryGraph, ng: NetworkGraph):
        self.qg = qg
        self.ng = ng
        self.targets: List[VertexId] = list(ng.ids())
        self.target_index: Dict[VertexId, int] = {
            t: i for i, t in enumerate(self.targets)
        }
        self._oracle = getattr(ng, "oracle", None)
        self._build()

    # ------------------------------------------------------------------
    # construction / compaction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        qg, ng = self.qg, self.ng
        # --- site universe and distance matrix ------------------------
        self.sites: List[int] = []
        self._site_pos: Dict[int, int] = {}
        cap0 = max(2, len(self.targets) + len(qg.nverts) + 1)
        self._D = np.zeros((cap0, cap0))
        self._row_filled = np.zeros(cap0, dtype=bool)
        self.target_site_idx = np.asarray(
            [self._intern_site(ng.site(t)) for t in self.targets],
            dtype=np.int64,
        )

        # --- vertex slots ---------------------------------------------
        nv = qg.vertex_count()
        vcap = max(8, nv)
        self._vids: List[Optional[VertexId]] = []
        self._vslot: Dict[VertexId, int] = {}
        self._visq = np.zeros(vcap, dtype=bool)
        self._valive = np.zeros(vcap, dtype=bool)
        self._vfixed = np.full(vcap, -1, dtype=np.int64)
        self._inc_start = np.zeros(vcap, dtype=np.int64)
        self._inc_len = np.zeros(vcap, dtype=np.int64)
        self._inc_cap = np.zeros(vcap, dtype=np.int64)
        self._vdead = 0
        for vid in qg.qverts:
            self._new_vslot(vid, True, -1)
        for vid, nvert in qg.nverts.items():
            site = ng.site(nvert.clu) if nvert.clu is not None else nvert.node
            self._new_vslot(vid, False, self._intern_site(site))
        for i in self.target_site_idx.tolist():
            self._ensure_row(i)

        # --- edge slots + incidence slabs -----------------------------
        ne = len(qg._edges)
        ecap = max(16, ne + ne // 4)
        self._eu = np.zeros(ecap, dtype=np.int64)
        self._ev = np.zeros(ecap, dtype=np.int64)
        self._ew = np.zeros(ecap, dtype=float)
        self._ealive = np.zeros(ecap, dtype=bool)
        self._eslot: Dict[Tuple[VertexId, VertexId], int] = {}
        self._ne = 0
        self._edead = 0
        self._live_cache: Optional[np.ndarray] = None
        # size incidence rows to exact degree plus slack
        deg = np.zeros(len(self._vids) + 1, dtype=np.int64)
        for a, b in qg._edges:
            deg[self._vslot[a]] += 1
            deg[self._vslot[b]] += 1
        caps = deg + np.maximum(2, deg >> 2)
        self._inc_pool = np.zeros(int(caps.sum()) + 64, dtype=np.int64)
        tail = 0
        for s in range(len(self._vids)):
            self._inc_start[s] = tail
            self._inc_cap[s] = caps[s]
            self._inc_len[s] = 0
            tail += int(caps[s])
        self._inc_tail = tail
        for (a, b), w in qg._edges.items():
            self._append_edge(a, b, w)
        self._tracked = None

    def _new_vslot(self, vid: VertexId, isq: bool, fixed: int) -> int:
        s = len(self._vids)
        if s == self._visq.size:
            grow = max(16, s)
            self._visq = np.concatenate([self._visq, np.zeros(grow, dtype=bool)])
            self._valive = np.concatenate(
                [self._valive, np.zeros(grow, dtype=bool)]
            )
            self._vfixed = np.concatenate(
                [self._vfixed, np.full(grow, -1, dtype=np.int64)]
            )
            zeros = np.zeros(grow, dtype=np.int64)
            self._inc_start = np.concatenate([self._inc_start, zeros])
            self._inc_len = np.concatenate([self._inc_len, zeros.copy()])
            self._inc_cap = np.concatenate([self._inc_cap, zeros.copy()])
        self._vids.append(vid)
        self._vslot[vid] = s
        self._visq[s] = isq
        self._valive[s] = True
        self._vfixed[s] = fixed
        self._inc_start[s] = 0
        self._inc_len[s] = 0
        self._inc_cap[s] = 0
        return s

    def _intern_site(self, site: int) -> int:
        i = self._site_pos.get(site)
        if i is not None:
            return i
        i = len(self.sites)
        self._site_pos[site] = i
        self.sites.append(site)
        if i >= self._D.shape[0]:
            cap = max(2 * self._D.shape[0], i + 1)
            D = np.zeros((cap, cap))
            D[: self._D.shape[0], : self._D.shape[1]] = self._D
            self._D = D
            filled = np.zeros(cap, dtype=bool)
            filled[: self._row_filled.size] = self._row_filled
            self._row_filled = filled
        # extend the new column for rows already materialised
        for r in np.flatnonzero(self._row_filled[:i]).tolist():
            a = self.sites[r]
            if a != site:
                if self._oracle is not None:
                    self._D[r, i] = float(np.asarray(self._oracle.row(a))[site])
                else:
                    self._D[r, i] = self.ng.site_distance(a, site)
        return i

    def _ensure_row(self, i: int) -> None:
        if self._row_filled[i]:
            return
        m = len(self.sites)
        a = self.sites[i]
        if self._oracle is not None:
            row = np.asarray(self._oracle.row(a))
            self._D[i, :m] = row[np.asarray(self.sites, dtype=np.int64)]
            self._D[i, i] = 0.0
        else:
            for j in range(m):
                if j != i:
                    self._D[i, j] = self.ng.site_distance(a, self.sites[j])
        self._row_filled[i] = True

    def _inc_append(self, vs: int, es: int) -> None:
        length = int(self._inc_len[vs])
        if length == self._inc_cap[vs]:
            newc = max(4, 2 * length)
            if self._inc_tail + newc > self._inc_pool.size:
                grow = max(self._inc_pool.size, self._inc_tail + newc + 64)
                self._inc_pool = np.concatenate(
                    [self._inc_pool, np.zeros(grow, dtype=np.int64)]
                )
            start = int(self._inc_start[vs])
            self._inc_pool[self._inc_tail : self._inc_tail + length] = (
                self._inc_pool[start : start + length]
            )
            self._inc_start[vs] = self._inc_tail
            self._inc_cap[vs] = newc
            self._inc_tail += newc
        self._inc_pool[int(self._inc_start[vs]) + length] = es
        self._inc_len[vs] = length + 1

    def _append_edge(self, a: VertexId, b: VertexId, w: float) -> None:
        sa = self._vslot[a]
        sb = self._vslot[b]
        s = self._ne
        if s == self._eu.size:
            grow = max(16, s)
            self._eu = np.concatenate([self._eu, np.zeros(grow, dtype=np.int64)])
            self._ev = np.concatenate([self._ev, np.zeros(grow, dtype=np.int64)])
            self._ew = np.concatenate([self._ew, np.zeros(grow)])
            self._ealive = np.concatenate(
                [self._ealive, np.zeros(grow, dtype=bool)]
            )
        self._eu[s] = sa
        self._ev[s] = sb
        self._ew[s] = w
        self._ealive[s] = True
        self._eslot[(a, b)] = s
        self._ne += 1
        self._live_cache = None
        self._inc_append(sa, s)
        self._inc_append(sb, s)
        if not self._visq[sa]:
            # n-n edge: the gather reads row D[site(a), :]
            self._ensure_row(int(self._vfixed[sa]))

    # ------------------------------------------------------------------
    # journal patching
    # ------------------------------------------------------------------
    def apply_journal(self, ops: Sequence[tuple]) -> None:
        """Patch the snapshot in place from a journal suffix.

        Live slot order is preserved equal to the canonical edge-store /
        vertex-dict orders, so a patched snapshot is bit-identical to a
        rebuilt one (same gather sequence, same reduction order).
        """
        ng = self.ng
        self._tracked = None
        for op in ops:
            tag = op[0]
            if tag == "e":
                _, a, b, w = op
                s = self._eslot.get((a, b))
                if w <= 0.0:
                    if s is not None:
                        del self._eslot[(a, b)]
                        self._ealive[s] = False
                        self._edead += 1
                        self._live_cache = None
                elif s is not None:
                    self._ew[s] = w
                else:
                    self._append_edge(a, b, w)
            elif tag == "+q":
                self._new_vslot(op[1], True, -1)
            elif tag == "+n":
                _, vid, clu, node = op
                site = ng.site(clu) if clu is not None else node
                self._new_vslot(vid, False, self._intern_site(site))
            elif tag == "-v":
                s = self._vslot.pop(op[1], None)
                if s is not None:
                    self._vids[s] = None
                    self._valive[s] = False
                    self._inc_len[s] = 0
                    self._vdead += 1
            else:  # ("clear",) — arrays_for rebuilds instead, but be safe
                self._build()
                return
        live_e = self._ne - self._edead
        live_v = len(self._vids) - self._vdead
        if (self._edead > 64 and self._edead > live_e) or (
            self._vdead > 64 and self._vdead > live_v
        ):
            self._build()
            if _obs.ACTIVE is not None:
                _obs.ACTIVE.inc("opt.snapshot_compactions")

    # ------------------------------------------------------------------
    # kernels
    # ------------------------------------------------------------------
    def _live_edge_slots(self) -> np.ndarray:
        if self._live_cache is None:
            if self._edead:
                self._live_cache = np.flatnonzero(self._ealive[: self._ne])
            else:
                self._live_cache = np.arange(self._ne, dtype=np.int64)
        return self._live_cache

    @property
    def D(self) -> np.ndarray:
        """Dense inter-site distance matrix over the site universe."""
        m = len(self.sites)
        return self._D[:m, :m]

    @property
    def edge_u(self) -> np.ndarray:
        """Live edge endpoint slots (first endpoint, canonical order)."""
        return self._eu[self._live_edge_slots()]

    @property
    def edge_v(self) -> np.ndarray:
        """Live edge endpoint slots (second endpoint, canonical order)."""
        return self._ev[self._live_edge_slots()]

    @property
    def edge_w(self) -> np.ndarray:
        """Live edge weights, canonical order."""
        return self._ew[self._live_edge_slots()]

    def positions(self, mapping: Mapping) -> np.ndarray:
        """Site-universe index of every vertex *slot* under ``mapping``.

        q-vertices occupy the site of their mapped target; n-vertices sit
        at their pinned node; dead slots are clamped to site 0 (they are
        never gathered through a live edge).  Raises ``KeyError`` when a
        live q-vertex is missing from the mapping, like the reference
        path.
        """
        nslots = len(self._vids)
        pos = self._vfixed[:nslots].copy()
        tindex = self.target_index
        qslots = np.flatnonzero(self._valive[:nslots] & self._visq[:nslots])
        if qslots.size:
            vids = self._vids
            ti = np.fromiter(
                (tindex[mapping[vids[s]]] for s in qslots.tolist()),
                dtype=np.int64,
                count=qslots.size,
            )
            pos[qslots] = self.target_site_idx[ti]
        np.maximum(pos, 0, out=pos)
        return pos

    def wec(self, mapping: Mapping) -> float:
        """Weighted Edge Cut of ``mapping`` (vectorised Eqn 3.2)."""
        live = self._live_edge_slots()
        if live.size == 0:
            return 0.0
        pos = self.positions(mapping)
        contrib = self._ew[live] * self._D[pos[self._eu[live]], pos[self._ev[live]]]
        return float(np.add.reduce(contrib))

    def loads(self, mapping: Mapping) -> np.ndarray:
        """Per-target q-vertex load under ``mapping`` (target order).

        Weights are read live from the owning graph, so in-place weight
        refreshes (Section 3.8) are reflected without a journal op.
        """
        qverts = self.qg.qverts
        nt = len(self.targets)
        if not qverts:
            return np.zeros(nt)
        tindex = self.target_index
        ti = np.fromiter(
            (tindex[mapping[v]] for v in qverts),
            dtype=np.int64,
            count=len(qverts),
        )
        w = np.fromiter(
            (qv.weight for qv in qverts.values()),
            dtype=float,
            count=len(qverts),
        )
        return np.bincount(ti, weights=w, minlength=nt)

    # ------------------------------------------------------------------
    # O(degree) move tracking
    # ------------------------------------------------------------------
    def begin_moves(self, mapping: Mapping) -> float:
        """Start a tracked-WEC session from ``mapping``; returns the WEC.

        Subsequent :meth:`update` calls adjust the cached total in
        O(degree) per move.  The tracked total accumulates float
        adjustments, so it may drift from a fresh :meth:`wec` evaluation
        by ~1e-15 relative error per move; optimizer *decisions* never
        consume it — it exists for cheap monitoring and benchmarks.  Any
        :meth:`apply_journal` or compaction ends the session.
        """
        pos = self.positions(mapping)
        live = self._live_edge_slots()
        contrib = np.zeros(self._ne)
        if live.size:
            contrib[live] = (
                self._ew[live] * self._D[pos[self._eu[live]], pos[self._ev[live]]]
            )
            total = float(np.add.reduce(contrib[live]))
        else:
            total = 0.0
        self._tracked = [pos, contrib, total]
        return total

    def update(self, vid: VertexId, target: VertexId) -> float:
        """Move q-vertex ``vid`` to ``target``; returns the tracked WEC.

        O(degree of ``vid``): only the incident edges' contributions are
        recomputed.  Requires an active :meth:`begin_moves` session.
        """
        if self._tracked is None:
            raise RuntimeError("no tracked-WEC session; call begin_moves first")
        pos, contrib, total = self._tracked
        s = self._vslot[vid]
        pos[s] = self.target_site_idx[self.target_index[target]]
        start = int(self._inc_start[s])
        row = self._inc_pool[start : start + int(self._inc_len[s])]
        row = row[self._ealive[row]]
        if row.size:
            old = float(np.add.reduce(contrib[row]))
            fresh = self._ew[row] * self._D[pos[self._eu[row]], pos[self._ev[row]]]
            contrib[row] = fresh
            total += float(np.add.reduce(fresh)) - old
        self._tracked[2] = total
        return total

    def tracked_wec(self) -> float:
        """Current total of the tracked-WEC session."""
        if self._tracked is None:
            raise RuntimeError("no tracked-WEC session; call begin_moves first")
        return self._tracked[2]


def qvertex_from_query(q: QuerySpec, space: SubstreamSpace) -> QVertex:
    """Atomic q-vertex for one query."""
    return QVertex(
        vid=("q", q.query_id),
        weight=q.load,
        mask=q.mask,
        source_rates=space.rates_by_source(q.mask),
        proxy_rates={q.proxy: q.result_rate},
        state_size=q.state_size,
        members=(q.query_id,),
    )


def build_query_graph(
    qvertices: Iterable[QVertex],
    space: SubstreamSpace,
    ng: Optional[NetworkGraph] = None,
    max_overlap_neighbors: int = 20,
) -> QueryGraph:
    """Assemble a query graph from q-vertices.

    * an n-vertex is created for every source / proxy node referenced by
      any q-vertex; its ``clu`` is resolved against ``ng`` when given;
    * q-n edges get the aggregated request / result rates;
    * q-q overlap edges get ``rate(mask_a AND mask_b)``; to keep the graph
      sparse each q-vertex keeps at most ``max_overlap_neighbors`` heaviest
      overlap edges (candidates found via a substream incidence matrix, so
      disjoint queries never pay a comparison).
    """
    g = QueryGraph()
    qlist = list(qvertices)
    for qv in qlist:
        g.add_qvertex(qv)

    # n-vertices
    nodes = set()
    for qv in qlist:
        nodes.update(qv.source_rates)
        nodes.update(qv.proxy_rates)
    for node in sorted(nodes):
        clu = ng.covering_vertex(node) if ng is not None else None
        g.add_nvertex(NVertex(vid=("n", node), node=node, clu=clu))

    # q-n edges
    for qv in qlist:
        for node, rate in qv.source_rates.items():
            g.add_edge(qv.vid, ("n", node), rate)
        for node, rate in qv.proxy_rates.items():
            g.add_edge(qv.vid, ("n", node), rate)

    _add_overlap_edges(g, qlist, space, max_overlap_neighbors)
    return g


def _incidence_matrix(
    qlist: List[QVertex], space: SubstreamSpace
) -> sparse.csr_matrix:
    """CSR query x substream incidence matrix (rows follow ``qlist``).

    Per-row indices come from ``space._indices`` (ascending), so the
    matrix is canonical without an extra sort.
    """
    indptr = np.zeros(len(qlist) + 1, dtype=np.int64)
    per_row: List[np.ndarray] = []
    for i, qv in enumerate(qlist):
        arr = space._indices(qv.mask)
        per_row.append(arr)
        indptr[i + 1] = indptr[i] + arr.size
    if per_row:
        indices = np.concatenate(per_row).astype(np.int32, copy=False)
    else:
        indices = np.empty(0, dtype=np.int32)
    data = np.ones(indices.size)
    return sparse.csr_matrix(
        (data, indices, indptr), shape=(len(qlist), len(space))
    )


def _attach_topk(
    g: QueryGraph,
    qlist: List[QVertex],
    rows: Sequence[int],
    overlap: sparse.csr_matrix,
    max_neighbors: int,
) -> None:
    """Keep each row's ``max_neighbors`` heaviest overlaps as edges.

    ``overlap`` holds one row per entry of ``rows`` (global q indices into
    ``qlist``).  Rows are canonicalised (sorted indices) first so the
    tie-breaking of the top-k selection is deterministic regardless of how
    the product was computed (full matrix vs row slice).
    """
    overlap.sort_indices()
    for r, i in enumerate(rows):
        start, end = overlap.indptr[r], overlap.indptr[r + 1]
        js = overlap.indices[start:end]
        ws = overlap.data[start:end]
        keep = (js != i) & (ws > 0)
        js, ws = js[keep], ws[keep]
        if js.size > max_neighbors:
            top = np.argpartition(-ws, max_neighbors - 1)[:max_neighbors]
            js, ws = js[top], ws[top]
        a = qlist[i].vid
        adj_a = g.adj[a]
        for j, w in zip(js, ws):
            b = qlist[int(j)].vid
            if b not in adj_a:
                g.set_edge(a, b, float(w))


def _add_overlap_edges(
    g: QueryGraph,
    qlist: List[QVertex],
    space: SubstreamSpace,
    max_neighbors: int,
) -> None:
    """Sparse q-q overlap edges, computed as one sparse matrix product.

    With ``A`` the query x substream incidence matrix, the full pairwise
    overlap-rate matrix is ``A diag(rates) A^T``; each q-vertex then keeps
    its ``max_neighbors`` heaviest overlap edges.
    """
    if len(qlist) < 2:
        return
    incidence = _incidence_matrix(qlist, space)
    weighted = incidence.multiply(space.rates[np.newaxis, :]).tocsr()
    overlap = (weighted @ incidence.T).tocsr()
    _attach_topk(g, qlist, range(len(qlist)), overlap, max_neighbors)


def attach_overlap_edges(
    g: QueryGraph,
    qlist: List[QVertex],
    new_rows: Sequence[int],
    space: SubstreamSpace,
    max_neighbors: int = 20,
) -> None:
    """Attach overlap edges for a *subset* of q-vertices in one product.

    ``new_rows`` are indices into ``qlist`` (which must enumerate every
    q-vertex of ``g``, in graph order).  Each listed row is scored against
    the full query population — one row-sliced sparse product instead of a
    per-pair ``overlap_rate`` loop — and keeps its ``max_neighbors``
    heaviest overlaps, exactly like the batch path does at build time.
    """
    if len(qlist) < 2 or not len(new_rows):
        return
    incidence = _incidence_matrix(qlist, space)
    weighted = incidence.multiply(space.rates[np.newaxis, :]).tocsr()
    sub = (weighted[list(new_rows)] @ incidence.T).tocsr()
    _attach_topk(g, qlist, list(new_rows), sub, max_neighbors)
