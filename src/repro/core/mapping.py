"""Graph mapping (Algorithm 2): greedy initial mapping + gain refinement.

The initial mapping:

(a) pins every covered n-vertex to the child that manages its node;
(b) places q-vertices in descending weight order onto the feasible target
    that minimises the current WEC, falling back to the least-violating
    target when nothing fits (finding a feasible mapping is NP-complete;
    the greedy does not guarantee one).

The refinement is Kernighan-Lin-flavoured: repeatedly move the q-vertex
with the maximum ``gain`` (WEC reduction), allowing negative-gain moves to
climb out of local minima, locking each vertex after it moves once per
pass, and restoring the best mapping seen at the start of every outer
iteration.

Implementation: a full |Vq| x |Vn| attach-cost matrix is maintained
incrementally (a vertex's row only changes when one of its *neighbours*
moves), so each refinement step is one masked argmax over the matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .fastcost import CostWorkspace
from .graphs import (
    DEFAULT_ALPHA,
    Mapping,
    NetworkGraph,
    QueryGraph,
    VertexId,
)

__all__ = ["MappingResult", "greedy_mapping", "refine_mapping", "map_graph"]


@dataclass
class MappingResult:
    """Outcome of a mapping run."""

    mapping: Mapping
    wec: float
    feasible: bool
    #: number of refinement moves applied
    moves: int = 0


def _positions(qg: QueryGraph, mapping: Mapping, ng: NetworkGraph) -> Dict[VertexId, int]:
    """Topology positions of all vertices under a mapping (helper)."""
    return {
        vid: qg.position(vid, mapping, ng)
        for vid in list(qg.qverts) + list(qg.nverts)
    }


def _attach_cost(
    qg: QueryGraph,
    vid: VertexId,
    target: VertexId,
    pos: Dict[VertexId, int],
    ng: NetworkGraph,
) -> float:
    """Scalar attach cost (reference implementation, used by tests)."""
    site = ng.site(target)
    total = 0.0
    for nbr, w in qg.neighbors(vid).items():
        p = pos.get(nbr)
        if p is not None:
            total += w * ng.site_distance(site, p)
    return total


def greedy_mapping(
    qg: QueryGraph, ng: NetworkGraph, alpha: float = DEFAULT_ALPHA,
    workspace: Optional[CostWorkspace] = None,
) -> Mapping:
    """The greedy initial mapping (steps (a) and (b) above)."""
    ws = workspace or CostWorkspace(qg, ng)
    mapping: Mapping = dict(qg.pinned_mapping(ng))
    ws.init_positions(mapping)
    for vid in qg.qverts:
        ws.clear_position(vid)  # unplaced vertices contribute nothing

    limits = qg.capacity_limits(ng, alpha)
    limit_arr = np.asarray([limits[t] for t in ws.targets])
    loads = np.zeros(len(ws.targets))
    weights = {vid: qv.weight for vid, qv in qg.qverts.items()}

    order = sorted(qg.qverts, key=lambda v: -weights[v])
    for vid in order:
        w = weights[vid]
        costs = ws.attach_costs(vid)
        feasible = loads + w <= limit_arr + 1e-9
        if feasible.any():
            masked = np.where(feasible, costs, np.inf)
            ti = int(np.argmin(masked))
        else:
            ti = int(np.argmin(loads + w - limit_arr))
        target = ws.targets[ti]
        mapping[vid] = target
        loads[ti] += w
        ws.set_position(vid, target)
    return mapping


def refine_mapping(
    qg: QueryGraph,
    ng: NetworkGraph,
    mapping: Mapping,
    alpha: float = DEFAULT_ALPHA,
    max_outer: int = 8,
    workspace: Optional[CostWorkspace] = None,
) -> MappingResult:
    """Iterative gain-guided improvement (lines 2-20 of Algorithm 2)."""
    ws = workspace or CostWorkspace(qg, ng)
    mapping = dict(mapping)
    limits = qg.capacity_limits(ng, alpha)
    limit_arr = np.asarray([limits[t] for t in ws.targets])
    n_targets = len(ws.targets)

    qvids = list(qg.qverts)
    nq = len(qvids)
    if nq == 0 or n_targets == 1:
        wec = qg.wec(mapping, ng)
        return MappingResult(
            mapping=mapping, wec=wec,
            feasible=qg.satisfies_load_constraint(mapping, ng, alpha),
        )
    qrow = {vid: r for r, vid in enumerate(qvids)}
    w_arr = np.asarray([qg.qverts[v].weight for v in qvids])
    tindex = ws.target_index

    min_wec = qg.wec(mapping, ng)
    min_mapping = dict(mapping)
    total_moves = 0

    for _ in range(max_outer):
        mapping = dict(min_mapping)
        ws.init_positions(mapping)
        loads_map = qg.loads(mapping, ng)
        loads = np.asarray([loads_map[t] for t in ws.targets])
        current = np.asarray([tindex[mapping[v]] for v in qvids])
        current_wec = min_wec
        improved = False

        # full attach-cost matrix; row r valid until a neighbour of r moves
        cost = np.empty((nq, n_targets))
        for r, vid in enumerate(qvids):
            cost[r] = ws.attach_costs(vid)

        matched = np.zeros(nq, dtype=bool)
        rows_idx = np.arange(nq)
        while not matched.all():
            # legality: fits, or improves the source's violation
            fits = loads[None, :] + w_arr[:, None] <= limit_arr[None, :] + 1e-9
            src_violation = loads[current] - limit_arr[current]
            violated = src_violation > 1e-9
            if violated.any():
                improves = (
                    loads[None, :] + w_arr[:, None] - limit_arr[None, :]
                    < src_violation[:, None] - 1e-9
                )
                legal = fits | (improves & violated[:, None])
            else:
                legal = fits
            legal[rows_idx, current] = False
            legal[matched, :] = False
            if not legal.any():
                break
            gains = cost[rows_idx, current][:, None] - cost
            gains = np.where(legal, gains, -np.inf)
            flat = int(np.argmax(gains))
            r, ti = divmod(flat, n_targets)
            best_gain = gains[r, ti]
            if best_gain == -np.inf:
                break
            vid = qvids[r]
            si = current[r]
            target = ws.targets[ti]
            mapping[vid] = target
            loads[si] -= w_arr[r]
            loads[ti] += w_arr[r]
            current[r] = ti
            ws.set_position(vid, target)
            matched[r] = True
            total_moves += 1
            current_wec -= float(best_gain)
            # refresh the rows of the moved vertex's q-neighbours; `qrow`
            # membership doubles as the q-vertex test (a long-lived
            # workspace no longer keeps q slots contiguous at the front)
            for nb in ws.neighbour_indices(vid):
                rr = qrow.get(ws.vids[nb])
                if rr is not None:
                    cost[rr] = ws.attach_costs_idx(nb)
            if current_wec < min_wec - 1e-9:
                min_wec = current_wec
                min_mapping = dict(mapping)
                improved = True
        if not improved:
            break

    feasible = qg.satisfies_load_constraint(min_mapping, ng, alpha)
    return MappingResult(
        mapping=min_mapping, wec=min_wec, feasible=feasible, moves=total_moves
    )


def map_graph(
    qg: QueryGraph,
    ng: NetworkGraph,
    alpha: float = DEFAULT_ALPHA,
    max_outer: int = 8,
) -> MappingResult:
    """Algorithm 2 end to end: greedy initial mapping then refinement."""
    ws = CostWorkspace(qg, ng)
    initial = greedy_mapping(qg, ng, alpha, workspace=ws)
    return refine_mapping(
        qg, ng, initial, alpha=alpha, max_outer=max_outer, workspace=ws
    )
