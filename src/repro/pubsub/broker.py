"""A single pub/sub broker."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Set, Tuple

from .messages import Event
from .routing import Interface, RoutingTable
from .subscriptions import Subscription

__all__ = ["Broker"]


@dataclass
class Broker:
    """Routing state plus local-delivery bookkeeping for one overlay node."""

    node: int
    table: RoutingTable = None  # type: ignore[assignment]
    #: (event, subscription) pairs delivered to local subscribers
    delivered: List[Tuple[Event, Subscription]] = field(default_factory=list)
    #: keep the ``delivered`` log?  The discrete-event simulator routes
    #: millions of tuples through one network and turns this off.
    record_deliveries: bool = True
    #: forwarded to :class:`RoutingTable` when the table is auto-created
    use_index: bool = True
    #: lifetime count of local deliveries -- always on (a single int
    #: add), unlike the ``delivered`` log; the observability layer reads
    #: it at run end
    delivered_total: int = 0

    def __post_init__(self):
        if self.table is None:
            self.table = RoutingTable(broker=self.node, use_index=self.use_index)

    def deliver_local(self, event: Event) -> List[Tuple[Event, Subscription]]:
        """Deliver ``event`` to every matching local subscription."""
        return self.deliver_matched(
            event, self.table.matching_local_subscriptions(event)
        )

    def deliver_matched(
        self, event: Event, matching: Iterable[Subscription]
    ) -> List[Tuple[Event, Subscription]]:
        """Deliver ``event`` to the given (already matched) subscriptions.

        The network layer matches once per dissemination hop
        (:meth:`RoutingTable.match_event`) and hands the LOCAL matches
        here.  Each local subscriber receives its own projected copy; the
        pairs are recorded for test observability (unless
        ``record_deliveries`` is off) and returned.
        """
        out = []
        for sub in matching:
            projected = sub.deliverable(event)
            if self.record_deliveries:
                self.delivered.append((projected, sub))
            out.append((projected, sub))
        self.delivered_total += len(out)
        return out

    def needed_attributes(self, event: Event, iface: Interface) -> Optional[Set[str]]:
        """Attributes required by matching subscriptions on ``iface``.

        ``None`` means "all attributes" (some matching subscription has no
        projection).  Used for in-network projection before forwarding.
        """
        return self.table.needed_attributes(event, iface)
