"""A single pub/sub broker."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from .messages import Event
from .routing import LOCAL, Interface, RoutingTable
from .subscriptions import Subscription

__all__ = ["Broker"]


@dataclass
class Broker:
    """Routing state plus local-delivery bookkeeping for one overlay node."""

    node: int
    table: RoutingTable = None  # type: ignore[assignment]
    #: (event, subscription) pairs delivered to local subscribers
    delivered: List[Tuple[Event, Subscription]] = field(default_factory=list)
    #: keep the ``delivered`` log?  The discrete-event simulator routes
    #: millions of tuples through one network and turns this off.
    record_deliveries: bool = True

    def __post_init__(self):
        if self.table is None:
            self.table = RoutingTable(broker=self.node)

    def deliver_local(self, event: Event) -> List[Tuple[Event, Subscription]]:
        """Deliver ``event`` to every matching local subscription.

        Each local subscriber receives its own projected copy; the pairs
        are recorded for test observability (unless ``record_deliveries``
        is off) and returned.
        """
        out = []
        for sub in self.table.matching_local_subscriptions(event):
            projected = sub.deliverable(event)
            if self.record_deliveries:
                self.delivered.append((projected, sub))
            out.append((projected, sub))
        return out

    def needed_attributes(self, event: Event, iface: Interface) -> Optional[Set[str]]:
        """Attributes required by matching subscriptions on ``iface``.

        ``None`` means "all attributes" (some matching subscription has no
        projection).  Used for in-network projection before forwarding.
        """
        needed: Set[str] = set()
        for sub in self.table.subscriptions.get(iface, []):
            if not sub.matches(event):
                continue
            if sub.projection is None:
                return None
            needed |= sub.projection
        return needed
