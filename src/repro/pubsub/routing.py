"""Per-broker routing state: advertisement and subscription tables.

Interfaces are either a neighbour broker id (an ``int``) or the marker
:data:`LOCAL` for subscribers attached to this broker.  The tables mirror
Siena's: the advertisement table records, per advertisement, the interface
leading back to the advertiser; the subscription table records, per
interface, which subscriptions were received from it, so that events are
forwarded only toward interested parties.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple, Union

from .messages import Event
from .subscriptions import Advertisement, Subscription

__all__ = ["LOCAL", "Interface", "RoutingTable"]

#: Marker interface for locally attached subscribers.
LOCAL = "local"

Interface = Union[int, str]


@dataclass
class RoutingTable:
    """Routing state of one broker."""

    broker: int
    #: adv_id -> (advertisement, interface toward the advertiser)
    advertisements: Dict[int, Tuple[Advertisement, Interface]] = field(
        default_factory=dict
    )
    #: interface -> subscriptions received from that interface
    subscriptions: Dict[Interface, List[Subscription]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # advertisements
    # ------------------------------------------------------------------
    def add_advertisement(self, adv: Advertisement, via: Interface) -> bool:
        """Record an advertisement; returns False if already known."""
        if adv.adv_id in self.advertisements:
            return False
        self.advertisements[adv.adv_id] = (adv, via)
        return True

    def remove_advertisement(self, adv_id: int) -> None:
        self.advertisements.pop(adv_id, None)

    def advertiser_interfaces(self, sub: Subscription) -> Set[Interface]:
        """Interfaces leading toward sources whose adverts intersect ``sub``."""
        return {
            via
            for adv, via in self.advertisements.values()
            if via != LOCAL and adv.intersects(sub)
        }

    # ------------------------------------------------------------------
    # subscriptions
    # ------------------------------------------------------------------
    def add_subscription(self, sub: Subscription, via: Interface) -> bool:
        """Install ``sub`` for interface ``via``.

        For neighbour interfaces, returns True if the table changed (i.e.
        no existing subscription from the same interface already covers
        the new one); covered older entries from the same interface are
        pruned, keeping tables compact.  LOCAL entries represent distinct
        subscribers and are therefore never covered away -- every local
        subscriber must keep receiving its own deliveries.
        """
        entries = self.subscriptions.setdefault(via, [])
        if via == LOCAL:
            if any(e.sub_id == sub.sub_id for e in entries):
                return False
            entries.append(sub)
            return True
        for existing in entries:
            if existing.covers(sub):
                return False
        entries[:] = [e for e in entries if not sub.covers(e)]
        entries.append(sub)
        return True

    def remove_subscription(self, sub_id: int, via: Optional[Interface] = None) -> None:
        ifaces = [via] if via is not None else list(self.subscriptions)
        for iface in ifaces:
            entries = self.subscriptions.get(iface)
            if entries is None:
                continue
            entries[:] = [e for e in entries if e.sub_id != sub_id]
            if not entries:
                del self.subscriptions[iface]

    def forwarding_interfaces(
        self, event: Event, arrived_via: Optional[Interface] = None
    ) -> Set[Interface]:
        """Interfaces (incl. LOCAL) with at least one subscription matching."""
        out: Set[Interface] = set()
        for iface, entries in self.subscriptions.items():
            if iface == arrived_via:
                continue
            if any(s.matches(event) for s in entries):
                out.add(iface)
        return out

    def matching_local_subscriptions(self, event: Event) -> List[Subscription]:
        return [s for s in self.subscriptions.get(LOCAL, []) if s.matches(event)]

    def covered_upstream(self, sub: Subscription, toward: Interface) -> bool:
        """Whether a subscription already forwarded from any *other*
        interface covers ``sub`` -- in a tree, any subscription recorded at
        this broker from interface ``i`` has been propagated to all other
        neighbours, so a covering entry from a different interface than
        ``toward`` means the upstream broker at ``toward`` already knows a
        covering subscription."""
        for iface, entries in self.subscriptions.items():
            if iface == toward:
                continue
            if any(e.covers(sub) and e.sub_id != sub.sub_id for e in entries):
                return True
        return False

    def size(self) -> int:
        return sum(len(v) for v in self.subscriptions.values())
