"""Per-broker routing state: advertisement and subscription tables.

Interfaces are either a neighbour broker id (an ``int``) or the marker
:data:`LOCAL` for subscribers attached to this broker.  The tables mirror
Siena's: the advertisement table records, per advertisement, the interface
leading back to the advertiser; the subscription table records, per
interface, which subscriptions were received from it, so that events are
forwarded only toward interested parties.

Event matching runs on one of two paths:

* the **indexed** path (default, ``use_index=True``) keeps a
  :class:`~repro.pubsub.index.ForwardingIndex` incrementally consistent
  with the table and answers :meth:`RoutingTable.match_event` with one
  counting probe;
* the **reference** path (``use_index=False``) scans every entry, the
  original semantics the index must reproduce bit-for-bit
  (``tests/test_forwarding_index.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple, Union

from .index import EventMatch, ForwardingIndex
from .messages import Event
from .subscriptions import Advertisement, Subscription

__all__ = ["LOCAL", "Interface", "RoutingTable"]

#: Marker interface for locally attached subscribers.
LOCAL = "local"

Interface = Union[int, str]


@dataclass
class RoutingTable:
    """Routing state of one broker."""

    broker: int
    #: adv_id -> (advertisement, interface toward the advertiser)
    advertisements: Dict[int, Tuple[Advertisement, Interface]] = field(
        default_factory=dict
    )
    #: interface -> subscriptions received from that interface
    subscriptions: Dict[Interface, List[Subscription]] = field(default_factory=dict)
    #: answer event matching from the counting index (False = reference scans)
    use_index: bool = True
    _index: Optional[ForwardingIndex] = field(
        default=None, repr=False, compare=False
    )
    #: stream name -> adv_ids advertising it (propagation never scans the
    #: whole advertisement table; a subscription only intersects
    #: advertisements of streams it requests)
    _adv_streams: Dict[str, Set[int]] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __post_init__(self):
        if self.use_index:
            self._index = ForwardingIndex(LOCAL)
            for iface, entries in self.subscriptions.items():
                for sub in entries:
                    self._index.add(sub, iface)
        for adv_id, (adv, _via) in self.advertisements.items():
            self._adv_streams.setdefault(adv.stream, set()).add(adv_id)

    def clear(self) -> None:
        """Drop every advertisement and subscription (a broker restart).

        Leaves the table exactly as a freshly constructed one: the
        forwarding index is rebuilt empty, so matching and covering
        behave as if the broker had just joined with no state -- the
        broker-loss fault model of the simulator.
        """
        self.advertisements.clear()
        self.subscriptions.clear()
        self._adv_streams.clear()
        if self.use_index:
            self._index = ForwardingIndex(LOCAL)

    # ------------------------------------------------------------------
    # advertisements
    # ------------------------------------------------------------------
    def add_advertisement(self, adv: Advertisement, via: Interface) -> bool:
        """Record an advertisement; returns False if already known."""
        if adv.adv_id in self.advertisements:
            return False
        self.advertisements[adv.adv_id] = (adv, via)
        self._adv_streams.setdefault(adv.stream, set()).add(adv.adv_id)
        return True

    def remove_advertisement(self, adv_id: int) -> None:
        entry = self.advertisements.pop(adv_id, None)
        if entry is None:
            return
        ids = self._adv_streams.get(entry[0].stream)
        if ids is not None:
            ids.discard(adv_id)
            if not ids:
                del self._adv_streams[entry[0].stream]

    def advertiser_interfaces(self, sub: Subscription) -> Set[Interface]:
        """Interfaces leading toward sources whose adverts intersect ``sub``.

        Only advertisements of the subscription's requested streams are
        probed (others cannot intersect) -- same result set as a full
        table scan, without touching every advertisement per hop.
        """
        out: Set[Interface] = set()
        for stream in sub.streams:
            for adv_id in self._adv_streams.get(stream, ()):
                adv, via = self.advertisements[adv_id]
                if via != LOCAL and via not in out and adv.intersects(sub):
                    out.add(via)
        return out

    # ------------------------------------------------------------------
    # subscriptions
    # ------------------------------------------------------------------
    def add_subscription(self, sub: Subscription, via: Interface) -> bool:
        """Install ``sub`` for interface ``via``.

        Returns True if the table changed.  An interface never holds two
        entries with one ``sub_id``: a re-declared subscription (e.g. the
        covering-repair path re-propagating with ``force=True``, or a
        subscriber narrowing its filter) first displaces its stale entry
        -- appending next to it would bloat :meth:`size` and double-count
        deliveries.  On LOCAL the replacement is *in place* (same list
        position, preserving delivery order); on neighbour interfaces the
        stale entry is dropped and the redeclaration then goes through
        the ordinary covering logic -- covering entries from the same
        interface suppress the add and covered older entries are pruned,
        keeping tables compact even across redeclarations.  LOCAL entries
        represent distinct subscribers and are never covered away --
        every local subscriber must keep receiving its own deliveries.
        """
        entries = self.subscriptions.setdefault(via, [])
        changed = False
        for pos, existing in enumerate(entries):
            if existing.sub_id == sub.sub_id:
                if existing is sub or existing == sub:
                    return False
                if via == LOCAL:
                    entries[pos] = sub  # replace, keep delivery position
                    if self._index is not None:
                        self._index.add(sub, via)
                    return True
                del entries[pos]  # stale: drop, then re-apply covering
                if self._index is not None:
                    self._index.remove(sub.sub_id, via)
                changed = True
                break
        if via != LOCAL:
            for existing in entries:
                if existing.covers(sub):
                    return changed
            kept, pruned = [], []
            for e in entries:
                (pruned if sub.covers(e) else kept).append(e)
            if pruned:
                entries[:] = kept
                if self._index is not None:
                    for e in pruned:
                        self._index.remove(e.sub_id, via)
        entries.append(sub)
        if self._index is not None:
            self._index.add(sub, via)
        return True

    def remove_subscription(self, sub_id: int, via: Optional[Interface] = None) -> None:
        """Drop every ``sub_id`` entry (from ``via`` only, if given).

        Safe against concurrent readers: interface keys are collected
        up front and entry lists are updated by slice assignment, so a
        caller mid-iteration (a dissemination hop whose
        :class:`~repro.pubsub.index.EventMatch` was computed eagerly, or
        anything walking :meth:`iter_entries`) never sees the dict mutate
        under it.
        """
        ifaces = [via] if via is not None else list(self.subscriptions)
        for iface in ifaces:
            entries = self.subscriptions.get(iface)
            if entries is None:
                continue
            kept = [e for e in entries if e.sub_id != sub_id]
            if len(kept) == len(entries):
                continue
            entries[:] = kept
            if self._index is not None:
                self._index.remove(sub_id, iface)
            if not entries:
                del self.subscriptions[iface]

    def iter_entries(self) -> List[Tuple[Interface, Subscription]]:
        """Snapshot of every (interface, subscription) entry.

        Taken eagerly so callers may unsubscribe while consuming it.
        """
        return [
            (iface, sub)
            for iface, entries in list(self.subscriptions.items())
            for sub in list(entries)
        ]

    # ------------------------------------------------------------------
    # event matching
    # ------------------------------------------------------------------
    def match_event(
        self, event: Event, arrived_via: Optional[Interface] = None
    ) -> EventMatch:
        """Everything one dissemination hop needs, in one probe.

        The result is computed eagerly (it never aliases live table
        state), so a subscription removed mid-hop cannot invalidate it.
        """
        if self._index is not None:
            return self._index.match(event, arrived_via)
        out = EventMatch()
        for iface, entries in list(self.subscriptions.items()):
            if iface == arrived_via:
                continue
            matching = [s for s in entries if s.matches(event)]
            if not matching:
                continue
            out.interfaces.add(iface)
            if iface == LOCAL:
                out.local = matching
            needed: Optional[Set[str]] = set()
            for sub in matching:
                if sub.projection is None:
                    needed = None
                    break
                needed |= sub.projection
            out.needed[iface] = needed
        return out

    def forwarding_interfaces(
        self, event: Event, arrived_via: Optional[Interface] = None
    ) -> Set[Interface]:
        """Interfaces (incl. LOCAL) with at least one subscription matching."""
        return self.match_event(event, arrived_via).interfaces

    def matching_local_subscriptions(self, event: Event) -> List[Subscription]:
        if self._index is not None:
            return self._index.local_matches(event)
        return [s for s in self.subscriptions.get(LOCAL, []) if s.matches(event)]

    def needed_attributes(
        self, event: Event, iface: Interface
    ) -> Optional[Set[str]]:
        """Attributes required by matching subscriptions on ``iface``.

        ``None`` means "all attributes" (some matching subscription has
        no projection); an empty set means nothing on ``iface`` matches.
        """
        if self._index is not None:
            return self._index.needed_for(event, iface)
        needed: Set[str] = set()
        for sub in list(self.subscriptions.get(iface, [])):
            if not sub.matches(event):
                continue
            if sub.projection is None:
                return None
            needed |= sub.projection
        return needed

    # ------------------------------------------------------------------
    def covered_upstream(self, sub: Subscription, toward: Interface) -> bool:
        """Whether a subscription already forwarded from any *other*
        interface covers ``sub`` -- in a tree, any subscription recorded at
        this broker from interface ``i`` has been propagated to all other
        neighbours, so a covering entry from a different interface than
        ``toward`` means the upstream broker at ``toward`` already knows a
        covering subscription."""
        for iface, entries in list(self.subscriptions.items()):
            if iface == toward:
                continue
            if any(e.covers(sub) and e.sub_id != sub.sub_id for e in entries):
                return True
        return False

    def size(self) -> int:
        return sum(len(v) for v in list(self.subscriptions.values()))
