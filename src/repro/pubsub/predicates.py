"""Attribute constraints, conjunctive filters, matching and covering.

Siena routes messages by comparing event content against subscriptions and
stops subscription propagation when an already-forwarded subscription
*covers* a new one.  Covering is therefore the load-bearing operation of
the whole pub/sub substrate and is implemented here with exact interval
semantics rather than syntactic comparison.

A :class:`Constraint` is ``attr OP value`` with OP in
``== != < <= > >= in``; a :class:`Filter` is a conjunction of constraints.
Internally a filter normalises its constraints per attribute into an
:class:`AttributeRange` (interval + equality set + exclusion set), which
makes both ``matches`` and ``covers`` exact for the operator set we
support.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Tuple

__all__ = ["Constraint", "AttributeRange", "Filter", "TRUE_FILTER"]

_OPS = ("==", "!=", "<", "<=", ">", ">=", "in")


@dataclass(frozen=True)
class Constraint:
    """A single attribute constraint ``attr OP value``."""

    attr: str
    op: str
    value: Any

    def __post_init__(self):
        if self.op not in _OPS:
            raise ValueError(f"unsupported operator {self.op!r}")
        if self.op == "in" and not isinstance(self.value, frozenset):
            object.__setattr__(self, "value", frozenset(self.value))

    def matches(self, value: Any) -> bool:
        """Whether a concrete attribute value satisfies this constraint."""
        if value is None:
            return False
        if self.op == "==":
            return value == self.value
        if self.op == "!=":
            return value != self.value
        if self.op == "<":
            return value < self.value
        if self.op == "<=":
            return value <= self.value
        if self.op == ">":
            return value > self.value
        if self.op == ">=":
            return value >= self.value
        if self.op == "in":
            return value in self.value
        raise AssertionError(self.op)

    def __str__(self) -> str:
        return f"{self.attr} {self.op} {self.value}"


@dataclass
class AttributeRange:
    """Normalised allowed-value set for one attribute.

    The allowed set is ``(low, high)`` with inclusivity flags, intersected
    with ``membership`` (if not None) and minus ``exclusions``.  ``empty``
    marks an unsatisfiable combination (e.g. ``x == 1 AND x == 2``).
    """

    low: float = float("-inf")
    low_inclusive: bool = True
    high: float = float("inf")
    high_inclusive: bool = True
    membership: Optional[FrozenSet[Any]] = None
    exclusions: FrozenSet[Any] = frozenset()
    empty: bool = False

    def add(self, c: Constraint) -> None:
        """Intersect this range with one more constraint."""
        if self.empty:
            return
        if c.op == "==":
            self._intersect_membership(frozenset([c.value]))
        elif c.op == "in":
            self._intersect_membership(c.value)
        elif c.op == "!=":
            self.exclusions = self.exclusions | frozenset([c.value])
        elif c.op in ("<", "<="):
            inc = c.op == "<="
            if c.value < self.high or (c.value == self.high and self.high_inclusive and not inc):
                self.high, self.high_inclusive = c.value, inc
        elif c.op in (">", ">="):
            inc = c.op == ">="
            if c.value > self.low or (c.value == self.low and self.low_inclusive and not inc):
                self.low, self.low_inclusive = c.value, inc
        self._normalise()

    def _intersect_membership(self, values: FrozenSet[Any]) -> None:
        if self.membership is None:
            self.membership = values
        else:
            self.membership = self.membership & values

    def _normalise(self) -> None:
        if self.membership is not None:
            kept = frozenset(
                v for v in self.membership
                if v not in self.exclusions and self._in_interval(v)
            )
            self.membership = kept
            self.exclusions = frozenset()
            if not kept:
                self.empty = True
            return
        if self.low > self.high:
            self.empty = True
        elif self.low == self.high and not (self.low_inclusive and self.high_inclusive):
            self.empty = True

    def _in_interval(self, v: Any) -> bool:
        try:
            if v < self.low or (v == self.low and not self.low_inclusive):
                return False
            if v > self.high or (v == self.high and not self.high_inclusive):
                return False
        except TypeError:
            # non-comparable value (e.g. string vs numeric bound): treat an
            # unbounded interval as allowing it, a bounded one as not.
            return self.low == float("-inf") and self.high == float("inf")
        return True

    def matches(self, value: Any) -> bool:
        if self.empty or value is None:
            return False
        if self.membership is not None:
            return value in self.membership
        if value in self.exclusions:
            return False
        return self._in_interval(value)

    def covers(self, other: "AttributeRange") -> bool:
        """Whether every value allowed by ``other`` is allowed by ``self``."""
        if other.empty:
            return True
        if self.empty:
            return False
        if other.membership is not None:
            return all(self.matches(v) for v in other.membership)
        if self.membership is not None:
            # self is a finite set but other is an interval: only coverable
            # if other is actually a finite interval degenerate case we
            # cannot enumerate -- be conservative.
            return False
        # interval vs interval: self's interval must contain other's and
        # self must not exclude anything other allows.
        if self.low > other.low or (
            self.low == other.low and not self.low_inclusive and other.low_inclusive
        ):
            return False
        if self.high < other.high or (
            self.high == other.high and not self.high_inclusive and other.high_inclusive
        ):
            return False
        return all(not other.matches(v) for v in self.exclusions)

    def hull(self, other: "AttributeRange") -> "AttributeRange":
        """Smallest representable range allowing everything both allow."""
        if self.empty:
            return other
        if other.empty:
            return self
        if self.membership is not None and other.membership is not None:
            return AttributeRange(membership=self.membership | other.membership)
        out = AttributeRange()
        lows = []
        highs = []
        for r in (self, other):
            if r.membership is not None:
                comparable = [v for v in r.membership if isinstance(v, (int, float))]
                if len(comparable) != len(r.membership):
                    return AttributeRange()  # unconstrained hull
                lows.append((min(comparable), True))
                highs.append((max(comparable), True))
            else:
                lows.append((r.low, r.low_inclusive))
                highs.append((r.high, r.high_inclusive))
        out.low, out.low_inclusive = min(lows, key=lambda t: (t[0], not t[1]))
        out.high, out.high_inclusive = max(highs, key=lambda t: (t[0], t[1]))
        out.exclusions = frozenset(
            v for v in self.exclusions | other.exclusions
            if not self.matches(v) and not other.matches(v)
        )
        return out


class Filter:
    """A conjunction of :class:`Constraint` objects.

    The empty filter is TRUE (matches everything); an unsatisfiable
    conjunction reports ``is_empty()``.
    """

    def __init__(self, constraints: Iterable[Constraint] = ()):  # noqa: D107
        self.constraints: Tuple[Constraint, ...] = tuple(constraints)
        self._ranges: Dict[str, AttributeRange] = {}
        for c in self.constraints:
            rng = self._ranges.setdefault(c.attr, AttributeRange())
            rng.add(c)
        #: memoised emptiness -- ranges never change after construction,
        #: and ``matches`` (the per-event hot path) asks every time
        self._empty_cache: Optional[bool] = None

    @classmethod
    def of(cls, *triples: Tuple[str, str, Any]) -> "Filter":
        """Convenience constructor: ``Filter.of(('a', '>', 10), ...)``."""
        return cls(Constraint(a, op, v) for a, op, v in triples)

    def ranges(self) -> Dict[str, AttributeRange]:
        return self._ranges

    def attributes(self) -> FrozenSet[str]:
        return frozenset(self._ranges)

    def is_true(self) -> bool:
        return not self._ranges

    def is_empty(self) -> bool:
        if self._empty_cache is None:
            self._empty_cache = any(r.empty for r in self._ranges.values())
        return self._empty_cache

    def matches(self, attributes: Dict[str, Any]) -> bool:
        if self.is_empty():
            return False
        for attr, rng in self._ranges.items():
            if not rng.matches(attributes.get(attr)):
                return False
        return True

    def covers(self, other: "Filter") -> bool:
        """TRUE iff every attribute assignment matching ``other`` matches self.

        Exact for our constraint language: self covers other iff for every
        attribute self constrains, other constrains it too and other's
        range is contained in self's.
        """
        if other.is_empty():
            return True
        if self.is_empty():
            return False
        for attr, rng in self._ranges.items():
            other_rng = other._ranges.get(attr)
            if other_rng is None:
                return False
            if not rng.covers(other_rng):
                return False
        return True

    def hull(self, other: "Filter") -> "Filter":
        """A filter covering both self and other (per-attribute hull).

        Only attributes constrained by *both* filters stay constrained --
        this is the standard conservative subscription merger.
        """
        merged = Filter()
        merged.constraints = ()
        common = self.attributes() & other.attributes()
        merged._ranges = {
            attr: self._ranges[attr].hull(other._ranges[attr]) for attr in common
        }
        merged._ranges = {
            a: r for a, r in merged._ranges.items()
            if not (r.membership is None and r.low == float("-inf")
                    and r.high == float("inf") and not r.exclusions)
        }
        merged._empty_cache = None  # ranges were rebuilt after __init__
        return merged

    def conjoin(self, other: "Filter") -> "Filter":
        """The conjunction of two filters."""
        return Filter(self.constraints + other.constraints)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Filter):
            return NotImplemented
        return self.covers(other) and other.covers(self)

    def __hash__(self) -> int:  # filters are used in sets of subscriptions
        return hash(frozenset(self._ranges))

    def __str__(self) -> str:
        if self.is_true():
            return "TRUE"
        return " AND ".join(str(c) for c in self.constraints) or "TRUE"

    def __repr__(self) -> str:
        return f"Filter({str(self)})"


#: The filter that matches every event.
TRUE_FILTER = Filter()
