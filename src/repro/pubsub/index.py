"""Counting-algorithm forwarding index for broker subscription tables.

The per-event hot path of the pub/sub layer answers three questions at
every broker an event crosses: which interfaces have at least one
matching subscription, which local subscriptions match, and which
attributes the matching subscriptions on each interface still need.
The reference implementation answers all three by scanning every entry
of the subscription table (`RoutingTable` with ``use_index=False``),
which is linear in the table size *per event per broker* -- the scaling
wall of the discrete-event simulator.

:class:`ForwardingIndex` is a Siena/Gryphon-style counting index over
the same entries, a three-stage pipeline:

1. a **stream hash** maps the event's stream to the bucket of entries
   subscribed to it (most entries of a large table are not -- they are
   never touched);
2. inside the bucket, a **per-attribute index** over the normalised
   :class:`~repro.pubsub.predicates.AttributeRange` predicates finds,
   for each event attribute, the entries whose constraint on that
   attribute is satisfied -- equality/membership constraints by one
   dict lookup, interval constraints by probing only the ranges that
   constrain that attribute within the bucket;
3. a **hit counter** per candidate entry: an entry matches iff every
   one of its constrained attributes was satisfied, i.e. its count
   reaches the number of attributes its filter constrains.

One :meth:`match` probe therefore touches only entries that share the
event's stream, and its result (an :class:`EventMatch`) carries
everything a dissemination hop needs, so the network layer probes once
per broker per event instead of once per question.

The index is maintained incrementally by
:class:`~repro.pubsub.routing.RoutingTable` under subscription adds,
removals, covering-based pruning and in-place replacement; parity with
the reference scans is enforced by ``tests/test_forwarding_index.py``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from .messages import Event
from .predicates import AttributeRange
from .subscriptions import Subscription

__all__ = ["EventMatch", "ForwardingIndex"]


@dataclass
class EventMatch:
    """Everything one probe learned about an event at one broker.

    ``interfaces`` excludes the arrival interface; ``local`` preserves
    the subscription-table order of the LOCAL entries (delivery order is
    part of the parity contract with the reference scans); ``needed``
    maps each matched interface to the union of attributes its matching
    subscriptions request (``None`` = all attributes).
    """

    interfaces: Set[Any] = field(default_factory=set)
    local: List[Subscription] = field(default_factory=list)
    needed: Dict[Any, Optional[Set[str]]] = field(default_factory=dict)

    def forward_order(self, local_marker: Any) -> List[Any]:
        """Neighbour interfaces in deterministic (sorted) order."""
        return sorted(i for i in self.interfaces if i != local_marker)


class _AttrIndex:
    """Index over the AttributeRanges of one attribute in one bucket."""

    __slots__ = ("eq", "intervals")

    def __init__(self) -> None:
        #: membership value -> entry ids whose membership set contains it
        self.eq: Dict[Any, Set[int]] = {}
        #: entry id -> interval-style range (no membership set)
        self.intervals: Dict[int, AttributeRange] = {}

    def add(self, eid: int, rng: AttributeRange) -> None:
        if rng.membership is not None:
            # after normalisation a membership range matches exactly the
            # values in the (already interval/exclusion-filtered) set
            for value in rng.membership:
                self.eq.setdefault(value, set()).add(eid)
        else:
            self.intervals[eid] = rng

    def remove(self, eid: int, rng: AttributeRange) -> None:
        if rng.membership is not None:
            for value in rng.membership:
                bucket = self.eq.get(value)
                if bucket is not None:
                    bucket.discard(eid)
                    if not bucket:
                        del self.eq[value]
        else:
            self.intervals.pop(eid, None)

    def count_hits(self, value: Any, counts: Dict[int, int]) -> None:
        """Bump the hit count of every entry satisfied by ``value``."""
        hit = self.eq.get(value)
        if hit:
            for eid in hit:
                counts[eid] = counts.get(eid, 0) + 1
        for eid, rng in self.intervals.items():
            if rng.matches(value):
                counts[eid] = counts.get(eid, 0) + 1


class _StreamBucket:
    """All entries subscribed to one stream, with their attribute indexes."""

    __slots__ = ("members", "unconstrained", "attrs")

    def __init__(self) -> None:
        self.members: Set[int] = set()
        #: members with no filter constraints: they match on stream alone
        self.unconstrained: Set[int] = set()
        self.attrs: Dict[str, _AttrIndex] = {}

    def is_empty(self) -> bool:
        return not self.members


class _Entry:
    """One (interface, subscription) registration."""

    __slots__ = ("sub", "iface", "needed", "ranges", "dead")

    def __init__(self, sub: Subscription, iface: Any):
        self.sub = sub
        self.iface = iface
        self.ranges = sub.filter.ranges()
        #: hits required for a match = number of constrained attributes
        self.needed = len(self.ranges)
        #: unsatisfiable filters can never match any event
        self.dead = sub.filter.is_empty()


class ForwardingIndex:
    """Incremental counting index over one broker's subscription table.

    Entries are keyed by ``(interface, sub_id)`` -- the same subscription
    may legitimately be installed on several interfaces, but a routing
    table never holds two entries for one subscription on one interface
    (see ``RoutingTable.add_subscription``).  Entry ids are monotone, so
    sorting matched LOCAL entries by id reproduces the subscription
    list's insertion order exactly (in-place replacement reuses the id,
    so list positions stay aligned).
    """

    def __init__(self, local_marker: Any):
        self._local = local_marker
        self._eids = itertools.count()
        self._entries: Dict[int, _Entry] = {}
        self._by_key: Dict[Tuple[Any, int], int] = {}
        self._streams: Dict[str, _StreamBucket] = {}

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def add(self, sub: Subscription, iface: Any) -> None:
        """Register ``sub`` on ``iface`` (replacing any same-key entry)."""
        key = (iface, sub.sub_id)
        eid = self._by_key.get(key)
        if eid is not None:
            self._unregister(eid)
        else:
            eid = next(self._eids)
            self._by_key[key] = eid
        entry = _Entry(sub, iface)
        self._entries[eid] = entry
        for stream in sub.streams:
            bucket = self._streams.get(stream)
            if bucket is None:
                bucket = self._streams[stream] = _StreamBucket()
            bucket.members.add(eid)
            if entry.needed == 0:
                bucket.unconstrained.add(eid)
            else:
                for attr, rng in entry.ranges.items():
                    aidx = bucket.attrs.get(attr)
                    if aidx is None:
                        aidx = bucket.attrs[attr] = _AttrIndex()
                    aidx.add(eid, rng)

    def remove(self, sub_id: int, iface: Any) -> None:
        eid = self._by_key.pop((iface, sub_id), None)
        if eid is None:
            return
        self._unregister(eid)
        del self._entries[eid]

    def _unregister(self, eid: int) -> None:
        entry = self._entries[eid]
        for stream in entry.sub.streams:
            bucket = self._streams.get(stream)
            if bucket is None:
                continue
            bucket.members.discard(eid)
            bucket.unconstrained.discard(eid)
            for attr, rng in entry.ranges.items():
                aidx = bucket.attrs.get(attr)
                if aidx is not None:
                    aidx.remove(eid, rng)
                    if not aidx.eq and not aidx.intervals:
                        del bucket.attrs[attr]
            if bucket.is_empty():
                del self._streams[stream]

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # probing
    # ------------------------------------------------------------------
    def matching_entry_ids(self, event: Event) -> List[int]:
        """Entry ids matching ``event``, in insertion (id) order."""
        bucket = self._streams.get(event.stream)
        if bucket is None:
            return []
        if not bucket.attrs:
            # pure stream-subscription bucket (the simulator's workload):
            # no counting pass at all
            return sorted(bucket.unconstrained)
        matched = list(bucket.unconstrained)
        counts: Dict[int, int] = {}
        for attr, aidx in bucket.attrs.items():
            value = event.attributes.get(attr)
            if value is not None:
                aidx.count_hits(value, counts)
        entries = self._entries
        for eid, hits in counts.items():
            entry = entries[eid]
            if hits == entry.needed and not entry.dead:
                matched.append(eid)
        matched.sort()
        return matched

    def local_matches(self, event: Event) -> List[Subscription]:
        """Matching LOCAL subscriptions in subscription-list order,
        without building the per-interface structures of :meth:`match`."""
        entries = self._entries
        return [
            entries[eid].sub
            for eid in self.matching_entry_ids(event)
            if entries[eid].iface == self._local
        ]

    def needed_for(self, event: Event, iface: Any) -> Optional[Set[str]]:
        """Union of attributes requested by matching entries on ``iface``
        (``None`` = all); an empty set when nothing there matches."""
        needed: Optional[Set[str]] = set()
        entries = self._entries
        for eid in self.matching_entry_ids(event):
            entry = entries[eid]
            if entry.iface != iface:
                continue
            if entry.sub.projection is None:
                return None
            needed |= entry.sub.projection
        return needed

    def match(self, event: Event, arrived_via: Any = None) -> EventMatch:
        """One probe answering a whole dissemination hop.

        Computed eagerly so the result stays valid even if the table is
        mutated (e.g. an unsubscribe) while the hop is being processed.
        """
        out = EventMatch()
        for eid in self.matching_entry_ids(event):
            entry = self._entries[eid]
            iface = entry.iface
            if iface == arrived_via:
                continue
            out.interfaces.add(iface)
            if iface == self._local:
                out.local.append(entry.sub)
            projection = entry.sub.projection
            if iface not in out.needed:
                # the set is created fresh here and never aliased, so
                # later entries may update it in place
                out.needed[iface] = None if projection is None else set(projection)
            else:
                needed = out.needed[iface]
                if needed is not None:
                    if projection is None:
                        out.needed[iface] = None
                    else:
                        needed |= projection
        return out
