"""Subscriptions and advertisements.

A COSMOS subscription (Section 2.1) carries three parts:

* ``S`` -- the set of stream names requested;
* ``P`` -- the set of attributes to retain (``None`` means all; the
  pub/sub projects away everything else as early as possible);
* ``F`` -- a conjunctive :class:`~repro.pubsub.predicates.Filter` used for
  early data filtering inside the network.

Advertisements describe what a source will publish (stream name plus a
filter its messages satisfy) and guide subscription propagation, exactly
as in Siena.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, FrozenSet, Iterable, Optional

from .messages import Event
from .predicates import Filter, TRUE_FILTER

__all__ = ["Subscription", "Advertisement"]

_sub_ids = itertools.count()


@dataclass(frozen=True)
class Subscription:
    """A content-based subscription {S, P, F}."""

    streams: FrozenSet[str]
    projection: Optional[FrozenSet[str]] = None
    filter: Filter = TRUE_FILTER
    sub_id: int = field(default_factory=lambda: next(_sub_ids))

    @classmethod
    def to_streams(
        cls,
        streams: Iterable[str],
        projection: Optional[Iterable[str]] = None,
        filter: Filter = TRUE_FILTER,
    ) -> "Subscription":
        return cls(
            streams=frozenset(streams),
            projection=None if projection is None else frozenset(projection),
            filter=filter,
        )

    def matches(self, event: Event) -> bool:
        """Whether the pub/sub should deliver ``event`` to this subscriber."""
        return event.stream in self.streams and self.filter.matches(
            dict(event.attributes)
        )

    def covers(self, other: "Subscription") -> bool:
        """Every event matching ``other`` also matches ``self``.

        Used to stop redundant subscription propagation: a broker that has
        already forwarded a covering subscription towards a source need not
        forward the covered one.
        """
        if not other.streams <= self.streams:
            return False
        return self.filter.covers(other.filter)

    def requests_attribute(self, attr: str) -> bool:
        return self.projection is None or attr in self.projection

    def merge(self, other: "Subscription") -> "Subscription":
        """The conservative merger of two subscriptions.

        Streams and projections are unioned; the filter is the per-attribute
        hull, so the merged subscription covers both inputs (possibly
        matching more -- the standard precision/state trade-off of
        subscription merging).
        """
        if self.projection is None or other.projection is None:
            projection = None
        else:
            projection = self.projection | other.projection
        return Subscription(
            streams=self.streams | other.streams,
            projection=projection,
            filter=self.filter.hull(other.filter),
        )

    def deliverable(self, event: Event) -> Event:
        """The event as this subscriber receives it (after projection)."""
        return event.project(self.projection)

    def __str__(self) -> str:
        proj = "*" if self.projection is None else "{" + ",".join(sorted(self.projection)) + "}"
        return f"Sub(S={sorted(self.streams)}, P={proj}, F={self.filter})"


@dataclass(frozen=True)
class Advertisement:
    """What a data source promises to publish."""

    stream: str
    filter: Filter = TRUE_FILTER
    adv_id: int = field(default_factory=lambda: next(_sub_ids))

    def intersects(self, sub: Subscription) -> bool:
        """Whether messages from this source could match ``sub``.

        Conservative test: the stream must be requested and the conjunction
        of the two filters must be satisfiable.
        """
        if self.stream not in sub.streams:
            return False
        return not self.filter.conjoin(sub.filter).is_empty()

    def describes(self, event: Event) -> bool:
        return event.stream == self.stream and self.filter.matches(
            dict(event.attributes)
        )
