"""Events and stream naming for the content-based pub/sub substrate.

A message (event) is a set of attribute/value pairs plus the name of the
stream it belongs to, exactly as in Siena-style content-based networking:
routing decisions look only at the content, never at destination addresses.

Result streams get globally unique names derived from the processor that
produces them (the paper names them with the processor's identifier, e.g.
its IP address); :func:`result_stream_name` reproduces that convention.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping

__all__ = ["Event", "result_stream_name"]


def result_stream_name(processor_id: int, query_id: str) -> str:
    """Unique name for the result stream of ``query_id`` hosted at a processor."""
    return f"result::{processor_id}::{query_id}"


@dataclass(frozen=True)
class Event:
    """A single stream message.

    Attributes
    ----------
    stream:
        Name of the stream the event belongs to (source streams use their
        own names, result streams use :func:`result_stream_name`).
    attributes:
        Attribute/value mapping; values are numbers or strings.
    size:
        Payload size in bytes, used for traffic accounting.
    """

    stream: str
    attributes: Mapping[str, Any] = field(default_factory=dict)
    size: float = 1.0

    def get(self, attr: str, default: Any = None) -> Any:
        return self.attributes.get(attr, default)

    def project(self, attrs) -> "Event":
        """Copy of the event keeping only ``attrs`` (None keeps all).

        Size shrinks proportionally to the number of retained attributes,
        which models the early-projection bandwidth saving the paper
        attributes to the pub/sub layer.
        """
        if attrs is None:
            return self
        kept: Dict[str, Any] = {
            a: v for a, v in self.attributes.items() if a in attrs
        }
        if not self.attributes:
            new_size = self.size
        else:
            new_size = self.size * max(1, len(kept)) / len(self.attributes)
        return Event(stream=self.stream, attributes=kept, size=new_size)
