"""Siena-like content-based publish/subscribe substrate."""

from .broker import Broker
from .index import EventMatch, ForwardingIndex
from .messages import Event, result_stream_name
from .network import PubSubNetwork
from .predicates import AttributeRange, Constraint, Filter, TRUE_FILTER
from .routing import LOCAL, RoutingTable
from .subscriptions import Advertisement, Subscription

__all__ = [
    "Event",
    "result_stream_name",
    "Constraint",
    "AttributeRange",
    "Filter",
    "TRUE_FILTER",
    "Subscription",
    "Advertisement",
    "RoutingTable",
    "LOCAL",
    "ForwardingIndex",
    "EventMatch",
    "Broker",
    "PubSubNetwork",
]
