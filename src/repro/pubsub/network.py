"""The broker overlay network: routing, delivery and traffic accounting.

:class:`PubSubNetwork` ties :class:`~repro.pubsub.broker.Broker` instances
to an acyclic overlay (:class:`~repro.topology.overlay.OverlayTree`) and
implements the three Siena protocols the paper relies on:

* **advertise** -- flood an advertisement so every broker knows which
  neighbour leads back to each source (Figure 2(a));
* **subscribe** -- reverse-path propagate a subscription toward the
  advertisers of intersecting advertisements, stopping where a covering
  subscription has already been forwarded (Figure 2(b), including the
  merge-at-``n1`` behaviour via covering);
* **publish** -- content-based forwarding: each event crosses each overlay
  link at most once, is projected down to the attributes still needed
  downstream, and is delivered to every matching local subscriber
  (Figure 2(d)).

Every forwarded byte is accounted per link, so experiments can report the
*measured* weighted communication cost (sum of per-link rate x latency)
next to the optimizer's WEC estimate.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..topology.overlay import OverlayTree
from .broker import Broker
from .messages import Event
from .routing import LOCAL
from .subscriptions import Advertisement, Subscription

__all__ = ["PubSubNetwork"]


def _edge(u: int, v: int) -> Tuple[int, int]:
    return (u, v) if u < v else (v, u)


class PubSubNetwork:
    """A content-based pub/sub service over an overlay tree."""

    def __init__(
        self,
        tree: OverlayTree,
        record_deliveries: bool = True,
        use_index: bool = True,
    ):
        if not tree.is_tree():
            raise ValueError("pub/sub overlay must be an acyclic connected tree")
        self.tree = tree
        self.use_index = use_index
        self.brokers: Dict[int, Broker] = {
            n: Broker(
                node=n, record_deliveries=record_deliveries, use_index=use_index
            )
            for n in tree.nodes
        }
        #: cumulative data bytes forwarded per link
        self.link_bytes: Dict[Tuple[int, int], float] = {}
        #: cumulative control bytes (advertisement/subscription propagation)
        self.control_bytes: Dict[Tuple[int, int], float] = {}
        self._subscriber_node: Dict[int, int] = {}
        #: adv_id -> (source node, advertisement): which broker each
        #: advertisement was flooded from, so a departing broker's
        #: advertisements can be retired with it
        self._advertiser: Dict[int, Tuple[int, Advertisement]] = {}
        #: partitioned overlay links (normalised pairs): events do not
        #: cross them and no bytes are charged while they are down
        self.down_links: Set[Tuple[int, int]] = set()
        #: (u, v) -> (edge list, latency ms) memo for :meth:`account_path`
        self._path_cache: Dict[Tuple[int, int], Tuple[list, float]] = {}
        #: control-plane version: bumped by every subscribe / unsubscribe /
        #: advertise / unadvertise, so callers can memoise routing-derived
        #: state and invalidate it exactly when tables may have changed
        self.version = 0
        #: optional :class:`repro.obs.Observer`; when set, its metrics
        #: registry receives broker-level counters (probes, forwards,
        #: suppressions, repairs).  Reads only -- never affects routing.
        self.observer = None

    # ------------------------------------------------------------------
    # control plane
    # ------------------------------------------------------------------
    def advertise(self, source: int, adv: Advertisement, size: float = 1.0) -> None:
        """Flood ``adv`` from ``source`` over the whole tree."""
        self.version += 1
        obs = self.observer
        if obs is not None and obs.registry is not None:
            obs.registry.inc("broker.advertisements")
        self._advertiser[adv.adv_id] = (source, adv)
        self._broker(source).table.add_advertisement(adv, LOCAL)
        queue = deque([(source, None)])
        while queue:
            node, came_from = queue.popleft()
            for nbr in self.tree.neighbors(node):
                if nbr == came_from:
                    continue
                self._account(self.control_bytes, node, nbr, size)
                self._broker(nbr).table.add_advertisement(adv, node)
                queue.append((nbr, node))

    def subscribe(
        self, node: int, sub: Subscription, size: float = 1.0,
        force: bool = False,
    ) -> None:
        """Install ``sub`` for a subscriber attached at ``node``.

        Propagation follows advertisement pointers toward intersecting
        sources and stops early when coverage makes forwarding redundant.

        ``force=True`` re-propagates all the way to the advertisers even
        through brokers that already know the subscription.  The early
        stops assume the Siena invariant "a recorded subscription has
        been forwarded upstream", which :meth:`unsubscribe` (a tree-wide
        delete, not a protocol walk) breaks: tearing down a subscription
        that covered an identical one from another subscriber leaves the
        survivor's path with a hole *beyond* the brokers that still have
        its entries.  Long-running systems (the discrete-event simulator's
        migration rounds) repair such holes by re-subscribing with
        ``force=True``; the call is idempotent.
        """
        self.version += 1
        obs = self.observer
        if obs is not None and obs.registry is not None:
            obs.registry.inc("broker.subscribes")
            if force:
                obs.registry.inc("broker.covering_repairs")
        broker = self._broker(node)
        self._subscriber_node[sub.sub_id] = node
        broker.table.add_subscription(sub, LOCAL)
        self._propagate(node, sub, from_iface=LOCAL, size=size, force=force)

    def _propagate(
        self, node: int, sub: Subscription, from_iface, size: float,
        force: bool = False,
    ) -> None:
        broker = self._broker(node)
        targets = broker.table.advertiser_interfaces(sub)
        for iface in targets:
            if iface == from_iface:
                continue
            if not force and broker.table.covered_upstream(sub, toward=iface):
                obs = self.observer
                if obs is not None and obs.registry is not None:
                    obs.registry.inc("broker.covering_suppressions")
                continue
            nbr = iface
            assert isinstance(nbr, int)
            # every attempted forward is a real message (the sender cannot
            # know the remote table already holds the subscription), so it
            # is charged whether or not the table changes
            self._account(self.control_bytes, node, nbr, size)
            changed = self._broker(nbr).table.add_subscription(sub, node)
            if changed or force:
                self._propagate(nbr, sub, from_iface=node, size=size, force=force)

    def unsubscribe(self, sub_id: int) -> None:
        """Remove a subscription everywhere (tree-wide)."""
        self.version += 1
        self._subscriber_node.pop(sub_id, None)
        for broker in self.brokers.values():
            broker.table.remove_subscription(sub_id)

    def unadvertise(self, adv_id: int) -> None:
        """Retire an advertisement everywhere (tree-wide).

        The teardown counterpart of :meth:`advertise`, used when a result
        stream stops being produced (a shared group retiring) or moves to
        another node (a shared plan migrating -- retire, then re-advertise
        from the new host).  Like :meth:`unsubscribe` it is modelled as a
        tree-wide delete rather than a protocol walk, so no control
        traffic is charged; subscriptions that had propagated toward the
        old advertiser keep their entries and are repaired by the
        caller's ``subscribe(..., force=True)`` pass.
        """
        self.version += 1
        self._advertiser.pop(adv_id, None)
        for broker in self.brokers.values():
            broker.table.remove_advertisement(adv_id)

    # ------------------------------------------------------------------
    # faults & membership
    # ------------------------------------------------------------------
    def remove_broker(self, node: int) -> Tuple[List[int], List[int]]:
        """Tear down everything *attached* at a departing broker.

        Subscriptions installed at ``node`` are unsubscribed tree-wide,
        and advertisements flooded *from* ``node`` are retired through
        :meth:`unadvertise` -- a departed broker was the sole advertiser
        of its own streams, so leaving them in place would keep dangling
        routes pointing at a producer that no longer exists.  The broker
        itself keeps forwarding (the overlay tree is immutable; the node
        stays as a pure router), which is exactly the graceful-departure
        model of the simulator.  Returns the removed (sub_ids, adv_ids).
        """
        subs = [sid for sid, n in self._subscriber_node.items() if n == node]
        advs = [
            adv_id
            for adv_id, (src, _adv) in self._advertiser.items()
            if src == node
        ]
        for sub_id in subs:
            self.unsubscribe(sub_id)
        for adv_id in advs:
            self.unadvertise(adv_id)
        return subs, advs

    def reset_broker(self, node: int) -> None:
        """Wipe one broker's routing state (the broker-loss fault).

        The node forwards nothing until advertisements are re-flooded and
        subscriptions re-propagated across it (the recovery policy's
        ``force=True`` pass); deliveries whose path crosses it silently
        stop in the meantime -- a restarted broker with empty tables.
        """
        self.version += 1
        self._broker(node).table.clear()

    def reflood_advertisements(self, size: float = 1.0) -> None:
        """Re-flood every live advertisement from its source.

        Broker-loss recovery: flooding is idempotent on brokers that
        still hold the advertisement (their tables dedup by adv_id), and
        repopulates the wiped broker's pointers so subscription
        re-propagation can cross it again.  Control traffic is charged
        per flood, like the original advertise.
        """
        for adv_id in list(self._advertiser):
            source, adv = self._advertiser[adv_id]
            self.advertise(source, adv, size=size)

    def set_link_down(self, u: int, v: int) -> None:
        """Partition one overlay link: events stop crossing it."""
        if v not in self.tree.neighbors(u):
            raise ValueError(f"({u}, {v}) is not an overlay link")
        self.down_links.add(_edge(u, v))

    def set_link_up(self, u: int, v: int) -> None:
        """Heal a partitioned link."""
        self.down_links.discard(_edge(u, v))

    def path_is_up(self, u: int, v: int) -> bool:
        """Whether the overlay path ``u`` -> ``v`` avoids down links."""
        if not self.down_links or u == v:
            return True
        cached = self._path_cache.get((u, v))
        if cached is not None:
            edges = cached[0]
        else:
            path = self.tree.path(u, v)
            edges = list(zip(path, path[1:]))
        return all(_edge(a, b) not in self.down_links for a, b in edges)

    # ------------------------------------------------------------------
    # data plane
    # ------------------------------------------------------------------
    def publish(self, source: int, event: Event) -> List[Tuple[int, Event, Subscription]]:
        """Route ``event`` from ``source``; returns local deliveries.

        Each returned triple is ``(node, projected_event, subscription)``.
        Each dissemination hop matches the event against the broker's
        table exactly once (:meth:`RoutingTable.match_event`) -- one index
        probe (or one reference scan) yields the local deliveries, the
        forwarding set *and* the per-link projections.  Neighbour links
        are walked in sorted order so delivery order is identical on the
        indexed and reference paths.
        """
        deliveries: List[Tuple[int, Event, Subscription]] = []
        probes = 0
        forwards = 0
        queue = deque([(source, None, event)])
        while queue:
            node, arrived_via, ev = queue.popleft()
            broker = self._broker(node)
            match = broker.table.match_event(ev, arrived_via)
            probes += 1
            for projected, sub in broker.deliver_matched(ev, match.local):
                deliveries.append((node, projected, sub))
            for nbr in match.forward_order(LOCAL):
                assert isinstance(nbr, int)
                if self.down_links and _edge(node, nbr) in self.down_links:
                    continue  # partitioned: the event is lost, no bytes
                needed = match.needed[nbr]
                forwarded = ev if needed is None else ev.project(needed)
                self._account(self.link_bytes, node, nbr, forwarded.size)
                queue.append((nbr, node, forwarded))
                forwards += 1
        obs = self.observer
        if obs is not None and obs.registry is not None:
            reg = obs.registry
            reg.inc("broker.index_probes", probes)
            reg.inc("broker.forwards", forwards)
            reg.inc("broker.local_deliveries", len(deliveries))
        return deliveries

    def publish_batch(
        self, source: int, stream: str, rows: int
    ) -> List[Tuple[int, Event, Subscription]]:
        """Route a coalesced batch of ``rows`` same-stream events at once.

        One representative event of size ``rows`` crosses the overlay, so
        each dissemination hop probes the forwarding index (or reference
        scan) once per *batch* instead of once per tuple, while per-link
        traffic is still accounted per row (``size = rows``).

        The representative carries no per-row attributes, so matching is
        decided by the stream alone: correct whenever the installed
        subscriptions for ``stream`` are attribute-insensitive (true for
        the simulator's per-query stream subscriptions -- content filters
        there live inside the engines, not the network).  Callers mixing
        batch publishing with attribute-filtered subscriptions would
        diverge from per-tuple publishing; the sim parity suite pins the
        supported behaviour.
        """
        obs = self.observer
        if obs is not None and obs.registry is not None:
            obs.registry.observe("broker.batch_rows", float(rows))
        event = Event(stream=stream, attributes={}, size=float(rows))
        return self.publish(source, event)

    def publish_rate(self, source: int, event: Event, rate: float) -> int:
        """Account traffic for a *stream* of events shaped like ``event``.

        Instead of pushing ``rate`` identical events per unit time, route a
        single representative and multiply the per-link bytes by ``rate``.
        Returns the number of local deliveries of the representative.
        """
        scaled = Event(stream=event.stream, attributes=event.attributes,
                       size=event.size * rate)
        return len(self.publish(source, scaled))

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def account_path(self, u: int, v: int, size: float) -> float:
        """Account ``size`` data bytes along the overlay path ``u`` -> ``v``.

        For transfers that do not flow through :meth:`publish` -- result
        streams travelling host -> proxy and migration state handoffs in
        the discrete-event simulator.  Returns the path latency (ms) so the
        caller can derive the transfer delay from the same walk.  Paths
        are memoised (the tree is immutable), so repeated transfers over
        one pair -- every result tuple of a query -- skip the tree walk.
        """
        if u == v:
            return 0.0
        key = (u, v)
        cached = self._path_cache.get(key)
        if cached is None:
            path = self.tree.path(u, v)
            cached = (
                list(zip(path, path[1:])),
                sum(self.tree.links[a][b] for a, b in zip(path, path[1:])),
            )
            self._path_cache[key] = cached
            self._path_cache[(v, u)] = ([(b, a) for a, b in cached[0]], cached[1])
        for a, b in cached[0]:
            self._account(self.link_bytes, a, b, size)
        return cached[1]

    def reset_traffic(self) -> None:
        self.link_bytes.clear()
        self.control_bytes.clear()

    def weighted_data_cost(self) -> float:
        """Sum over links of forwarded bytes x link latency (the paper's
        weighted communication cost, measured on the data plane)."""
        total = 0.0
        for (u, v), amount in self.link_bytes.items():
            total += amount * self.tree.links[u][v]
        return total

    def total_data_bytes(self) -> float:
        return sum(self.link_bytes.values())

    def routing_table_sizes(self) -> Dict[int, int]:
        return {n: b.table.size() for n, b in self.brokers.items()}

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _broker(self, node: int) -> Broker:
        try:
            return self.brokers[node]
        except KeyError:
            raise KeyError(f"node {node} is not part of the pub/sub overlay") from None

    @staticmethod
    def _account(book: Dict[Tuple[int, int], float], u: int, v: int, size: float) -> None:
        key = _edge(u, v)
        book[key] = book.get(key, 0.0) + size
