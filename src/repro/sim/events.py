"""A deterministic discrete-event loop.

The simulator's only notion of time: a binary heap of ``(time, seq,
action)`` entries popped in order.  ``seq`` is a monotone counter, so two
events scheduled for the same instant fire in scheduling order -- the
property that makes a whole cluster simulation reproducible bit-for-bit
from one seed (no wall clocks, no hash-order dependence, no threads).

Actions are zero-argument callables (closures over whatever state they
need).  An action may schedule further events, including at the current
time; those run before the loop advances past that instant.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Tuple

__all__ = ["EventHandle", "EventLoop"]

Action = Callable[[], None]


class EventHandle:
    """Handle for one scheduled action; :meth:`cancel` makes the loop
    skip it.

    Cancellation is O(1): the heap entry stays queued and is discarded,
    uncounted, when popped (lazy deletion).  Fault injection uses this to
    retire events targeting state that a crash destroyed.
    """

    __slots__ = ("action", "cancelled")

    def __init__(self, action: Action):
        self.action = action
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class EventLoop:
    """Seeded-simulation event loop (heap-based, deterministic).

    ``past_epsilon`` bounds how far behind ``now`` a schedule may ask
    for: within it the time is clamped to ``now`` (absorbing float
    round-off), beyond it :meth:`schedule` raises -- silently clamping a
    genuinely past timestamp would mask causality bugs in the caller
    (an effect scheduled before its cause), exactly the class of error a
    deterministic simulator exists to surface.
    """

    def __init__(self, start: float = 0.0, past_epsilon: float = 1e-9):
        self.now: float = start
        self.past_epsilon = past_epsilon
        self._heap: List[Tuple[float, int, EventHandle]] = []
        self._seq = itertools.count()
        self.processed: int = 0
        #: optional :class:`repro.obs.SubsystemProfiler`; when set,
        #: :meth:`run_until` attributes its wall time to "event_loop"
        #: (minus whatever nested sections the actions claim)
        self.profiler = None

    def schedule(self, when: float, action: Action) -> EventHandle:
        """Schedule ``action`` at absolute time ``when``.

        Raises ``ValueError`` if ``when`` lies more than ``past_epsilon``
        before ``now``; times within the epsilon are clamped to ``now``
        (the action still runs after every event already queued at
        ``now``, preserving the deterministic total order).  Returns a
        cancellable :class:`EventHandle`.
        """
        if when < self.now - self.past_epsilon:
            raise ValueError(
                f"cannot schedule at t={when!r}: already at t={self.now!r} "
                f"(beyond past_epsilon={self.past_epsilon!r})"
            )
        handle = EventHandle(action)
        heapq.heappush(self._heap, (max(when, self.now), next(self._seq), handle))
        return handle

    def schedule_in(self, delay: float, action: Action) -> EventHandle:
        """Schedule ``action`` ``delay`` time units from now."""
        return self.schedule(self.now + delay, action)

    def peek_time(self) -> float:
        """Time of the next pending event (``inf`` when idle)."""
        return self._heap[0][0] if self._heap else float("inf")

    def run_until(self, end: float) -> int:
        """Process every event with time <= ``end``; returns the count.

        Leaves ``now`` at ``end`` so later scheduling is relative to the
        horizon even if the heap drained early.
        """
        count = 0
        profiler = self.profiler
        if profiler is not None:
            profiler.start("event_loop")
        try:
            while self._heap and self._heap[0][0] <= end:
                when, _, handle = heapq.heappop(self._heap)
                if handle.cancelled:
                    continue
                self.now = when
                handle.action()
                count += 1
        finally:
            if profiler is not None:
                profiler.stop()
        if end != float("inf"):
            self.now = max(self.now, end)
        self.processed += count
        return count

    def run(self) -> int:
        """Drain the heap completely; returns the number of events run."""
        return self.run_until(float("inf"))

    def __len__(self) -> int:
        return len(self._heap)
