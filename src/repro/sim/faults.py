"""Fault injection and elastic membership for the simulated cluster.

Failures and membership changes are *scheduled events* on the cluster's
seeded :class:`~repro.sim.events.EventLoop`, so a run with faults is
exactly as bit-reproducible as one without:

* :class:`ProcessorCrash` -- a processor's engine dies mid-window.  Its
  in-flight deliveries and all in-memory window state are lost; the
  node's *broker* keeps forwarding (the middleware process died, the
  overlay router did not), so queries hosted elsewhere lose nothing.
* :class:`BrokerLoss` -- one broker's routing tables are wiped
  (:meth:`~repro.pubsub.network.PubSubNetwork.reset_broker`).
  Deliveries whose dissemination path crosses the broker silently stop
  until advertisements are re-flooded and subscriptions re-propagated.
* :class:`LinkPartition` -- one overlay link goes down for a while;
  events routed across it are dropped (and not charged), then the link
  heals.
* :class:`ProcessorJoin` / :class:`ProcessorLeave` -- elastic
  membership: a spare node joins the coordinator hierarchy at runtime,
  or a member departs gracefully after migrating its hosted queries.

Recovery is pluggable (:data:`RECOVERY_POLICIES`): the default
:class:`CheckpointRecovery` re-places orphaned queries through the
coordinator's online insertion, restores window state from the latest
periodic checkpoint (piggybacking on the ``adopt_plan`` migration
handoff), and repairs broken subscription covering with the
``force=True`` re-propagation machinery; :class:`NoRecovery` keeps the
failure un-repaired as the baseline the tests compare against.

The module also hosts the *recovery invariants* the test suite and the
``sim_faults`` bench scenario assert: queries untouched by a failed
node lose nothing (exact oracle parity); queries hosted on it lose a
bounded window (their results are a subsequence of the oracle's) and,
with recovery, regain full parity for results derived entirely from
post-recovery inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Dict, List, Optional, Sequence, Tuple

from ..engine.executor import Engine
from ..pubsub.subscriptions import Advertisement

__all__ = [
    "ProcessorCrash",
    "BrokerLoss",
    "LinkPartition",
    "ProcessorJoin",
    "ProcessorLeave",
    "RecoveryPolicy",
    "CheckpointRecovery",
    "NoRecovery",
    "RECOVERY_POLICIES",
    "FaultInjector",
    "is_subsequence",
    "recovery_invariants",
]


# ---------------------------------------------------------------------------
# fault event specifications
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ProcessorCrash:
    """A processor's engine dies at ``at``; window state is lost.

    ``node=None`` picks a processor currently hosting at least one live
    delivery unit via the fault rng.  Recovery (if any) runs
    ``detect_delay`` seconds later -- the failure-detection lag.
    """

    at: float
    node: Optional[int] = None
    detect_delay: float = 0.25


@dataclass(frozen=True)
class BrokerLoss:
    """One broker restarts with empty routing tables at ``at``."""

    at: float
    node: Optional[int] = None
    detect_delay: float = 0.25


@dataclass(frozen=True)
class LinkPartition:
    """One overlay link is down during ``[at, at + duration)``."""

    at: float
    duration: float = 2.0
    link: Optional[Tuple[int, int]] = None


@dataclass(frozen=True)
class ProcessorJoin:
    """The next spare processor joins the hierarchy at ``at``."""

    at: float


@dataclass(frozen=True)
class ProcessorLeave:
    """A processor departs gracefully at ``at``: hosted queries migrate
    out live (state intact), then the node leaves the hierarchy."""

    at: float
    node: Optional[int] = None


# ---------------------------------------------------------------------------
# recovery policies
# ---------------------------------------------------------------------------
class RecoveryPolicy:
    """What the system does after a failure is detected."""

    name = "base"

    def on_processor_crash(
        self,
        inj: "FaultInjector",
        fault: ProcessorCrash,
        node: int,
        victims: List[int],
        gids: List[int],
    ) -> None:
        """Called right after the crash took effect."""

    def on_broker_loss(
        self, inj: "FaultInjector", fault: BrokerLoss, node: int
    ) -> None:
        """Called right after the broker's tables were wiped."""


class NoRecovery(RecoveryPolicy):
    """Baseline: failures stay un-repaired.

    Queries hosted on a crashed processor never produce results again;
    routes across a lost broker stay dark.  The invariant tests use this
    to show recovery is doing real work (strictly less loss with it).
    """

    name = "none"


class CheckpointRecovery(RecoveryPolicy):
    """Default policy: re-place orphans, restore state from checkpoints.

    After ``detect_delay``: the crashed node leaves the coordinator
    hierarchy, each orphaned query re-enters through online insertion
    (Section 3.6), its plan is restored on the new host from the latest
    periodic checkpoint (or recompiled empty when none was taken) via
    the same ``adopt_plan`` handoff a migration uses -- the state
    transfer from the checkpoint store is charged on the overlay and
    pauses deliveries for the handoff delay -- and subscription covering
    holes are repaired with forced re-propagation.  Shared groups
    re-home wholesale: one restored merged plan, a re-flooded result
    advertisement, reinstalled ``p^1`` subscriptions and forced ``p^2``
    re-propagation for every member.
    """

    name = "checkpoint"

    def on_processor_crash(self, inj, fault, node, victims, gids):
        inj.cluster.loop.schedule(
            inj.cluster.loop.now + fault.detect_delay,
            partial(inj.recover_processor_crash, node, victims, gids),
        )

    def on_broker_loss(self, inj, fault, node):
        inj.cluster.loop.schedule(
            inj.cluster.loop.now + fault.detect_delay,
            partial(inj.recover_broker_loss, node),
        )


RECOVERY_POLICIES: Dict[str, type] = {
    "checkpoint": CheckpointRecovery,
    "none": NoRecovery,
}


# ---------------------------------------------------------------------------
# the injector
# ---------------------------------------------------------------------------
class FaultInjector:
    """Schedules fault events and implements their cluster-side effects.

    Owned by a :class:`~repro.sim.cluster.SimCluster` when its scenario
    configures ``faults`` or ``checkpoint_interval``.  All randomness
    (picking unnamed fault targets) draws from the dedicated fault rng
    -- the 9th :class:`numpy.random.SeedSequence` spawn -- so configured
    faults never perturb the workload/arrival/churn streams and fault
    targets are themselves reproducible.
    """

    def __init__(self, cluster, rng, params) -> None:
        self.cluster = cluster
        self.rng = rng
        self.params = params
        policy = RECOVERY_POLICIES.get(params.recovery)
        if policy is None:
            raise ValueError(f"unknown recovery policy {params.recovery!r}")
        self.recovery: RecoveryPolicy = policy()
        #: unit id -> pristine checkpoint plan (query_id on the unshared
        #: plane, group id on the shared one -- ``_units``' key space)
        self.checkpoints: Dict[int, object] = {}

    # -- scheduling ----------------------------------------------------
    def schedule(self) -> None:
        """Install fault events and the periodic checkpoint round."""
        c = self.cluster
        for fault in self.params.faults:
            if fault.at <= c.duration:
                c.loop.schedule(fault.at, partial(self.fire, fault))
        interval = self.params.checkpoint_interval
        if interval is not None and interval <= c.duration:
            c.loop.schedule(interval, self._checkpoint_round)

    def fire(self, fault) -> None:
        c = self.cluster
        c._flush_batches()
        if isinstance(fault, ProcessorCrash):
            self._crash(fault)
        elif isinstance(fault, BrokerLoss):
            self._broker_loss(fault)
        elif isinstance(fault, LinkPartition):
            self._partition(fault)
        elif isinstance(fault, ProcessorJoin):
            self._join(fault)
        elif isinstance(fault, ProcessorLeave):
            self._leave(fault)
        else:
            raise TypeError(f"unknown fault {fault!r}")

    # -- checkpoints ---------------------------------------------------
    def _store_node(self) -> int:
        """Where checkpoints live: the hierarchy's root coordinator."""
        return self.cluster.cosmos.tree.root.coordinator

    def _checkpoint_round(self) -> None:
        """Snapshot every live plan; charge the transfer to the store.

        The stored object is a deep operator clone
        (:meth:`~repro.engine.plans.QueryPlan.checkpoint`) and is itself
        re-cloned at restore time, so one checkpoint can serve repeated
        failures without aliasing live state.
        """
        c = self.cluster
        c._flush_batches()
        obs = c.obs
        profiler = obs.profiler if obs is not None else None
        if profiler is not None:
            profiler.start("recovery")
        store = self._store_node()
        shipped = 0
        state_tuples = 0
        for uid in sorted(c._units):
            unit = c._units[uid]
            if not unit.alive or unit.detached or unit.plan is None:
                continue
            self.checkpoints[uid] = unit.plan.checkpoint()
            state = float(unit.plan.state_size())
            shipped += 1
            state_tuples += int(state)
            if unit.host != store:
                c.network.account_path(unit.host, store, max(1.0, state))
        if obs is not None and obs.registry is not None:
            obs.registry.inc("recovery.checkpoints", shipped)
            obs.registry.inc("recovery.checkpoint_state_tuples", state_tuples)
        nxt = c.loop.now + self.params.checkpoint_interval
        if nxt <= c.duration:
            c.loop.schedule(nxt, self._checkpoint_round)
        if profiler is not None:
            profiler.stop()

    # -- target resolution ---------------------------------------------
    def _pick(self, choices: Sequence[int]) -> Optional[int]:
        if not choices:
            return None
        return int(choices[int(self.rng.integers(len(choices)))])

    def _hosting_processors(self) -> List[int]:
        c = self.cluster
        hosts = {
            u.host
            for u in c._units.values()
            if u.alive and not u.detached
        }
        return sorted(h for h in hosts if h in c.engines)

    # -- processor crash ----------------------------------------------
    def _crash(self, fault: ProcessorCrash) -> None:
        c = self.cluster
        node = fault.node
        if node is None:
            node = self._pick(self._hosting_processors())
        if node is None or node not in c.engines or len(c.processors) <= 1:
            c.fault_log.append(
                {"kind": "crash_skipped", "t": c.loop.now, "node": node}
            )
            return
        victims: List[int] = []
        gids: List[int] = []
        members: List[int] = []
        torn_streams: set = set()
        if c._sharing:
            for gid in sorted(c.groups):
                gs = c.groups[gid]
                if gs.host != node or gs.detached:
                    continue
                c._annotate_pending(gs, "crash", node=node, group=gid)
                gs.pending.clear()
                gs.pending_rel.clear()
                gs.drain_at = float("-inf")
                gs.detached = True
                for sub in gs.p1_subs:
                    c.network.unsubscribe(sub.sub_id)
                    c._by_sub.pop(sub.sub_id, None)
                c.network.unadvertise(gs.adv.adv_id)
                torn_streams.update(gs.streams)
                if gs.alive:
                    gids.append(gid)
                for qid in gs.members:
                    mqs = c.queries[qid]
                    if mqs.alive:
                        mqs.alive = False
                        members.append(qid)
                host_list = c._host_groups.get(node)
                if host_list and gid in host_list:
                    host_list.remove(gid)
        else:
            for qid in sorted(c.queries):
                qs = c.queries[qid]
                if qs.host != node or qs.detached:
                    continue
                c._annotate_pending(qs, "crash", node=node, query=qid)
                qs.pending.clear()
                qs.pending_rel.clear()
                qs.drain_at = float("-inf")
                qs.detached = True
                c.network.unsubscribe(qs.sub.sub_id)
                c._by_sub.pop(qs.sub.sub_id, None)
                torn_streams.update(qs.simq.streams)
                if qs.alive:
                    qs.alive = False
                    victims.append(qid)
        # the engine process is gone; the overlay node keeps routing
        if c.obs is not None:
            c.obs.engine_retired(node, c.engines[node])
        c.engines.pop(node)
        c.processors.remove(node)
        c._pindex = {p: i for i, p in enumerate(c.processors)}
        c.cosmos.remove_processor(node)
        # the broker layer (alive) performed the unsubscribes above, so
        # it repairs covering right away: survivors whose propagation a
        # victim's identical subscription had suppressed must lose ZERO
        # tuples, not just the detect window's worth
        if torn_streams:
            c._refresh_subscriptions(streams=torn_streams)
        c.trace.mark(c.loop.now, "crash", f"p{node}")
        c.fault_log.append(
            {
                "kind": "crash",
                "t": c.loop.now,
                "node": node,
                "queries": sorted(victims + members),
                "groups": gids,
            }
        )
        self.recovery.on_processor_crash(self, fault, node, victims, gids)

    def recover_processor_crash(
        self, node: int, victims: List[int], gids: List[int]
    ) -> None:
        """Re-place and restore everything the crash orphaned."""
        c = self.cluster
        c._flush_batches()
        obs = c.obs
        profiler = obs.profiler if obs is not None else None
        if profiler is not None:
            profiler.start("recovery")
        touched: set = set()
        resumed = c.loop.now
        for qid in victims:
            resumed = max(resumed, self._restore_query(qid, touched))
        for gid in gids:
            resumed = max(resumed, self._rehome_group(gid, touched))
        if touched:
            c._refresh_subscriptions(streams=touched)
        if obs is not None and obs.registry is not None:
            obs.registry.inc("recovery.crash_recoveries")
        if profiler is not None:
            profiler.stop()
        c.trace.mark(c.loop.now, "recover", f"p{node}")
        c.fault_log.append(
            {
                "kind": "recover",
                "t": c.loop.now,
                "node": node,
                "resumed_at": resumed,
            }
        )

    def _restore_query(self, qid: int, touched: set) -> float:
        """Restore one unshared query on a freshly chosen host."""
        c = self.cluster
        qs = c.queries[qid]
        new_host = c.cosmos.insert(qs.simq.spec)
        engine = c.engines[new_host]
        ckpt = self.checkpoints.get(qid)
        if ckpt is not None:
            plan = ckpt.checkpoint()
            engine.adopt_plan(plan)
        else:
            plan = engine.add_query(
                qs.simq.ast, result_stream=f"out_{qs.name}"
            )
        qs.plan = plan
        qs.host = new_host
        qs.alive = True
        qs.detached = False
        qs.slack = c._slack(qs.simq, new_host)
        c.network.subscribe(new_host, qs.sub)
        c._by_sub[qs.sub.sub_id] = qid
        ready = self._handoff(qs, plan, new_host)
        # the lost plan's CPU counter died with it: rebase deltas on the
        # restored plan so measured loads stay non-negative
        qs.cpu_at_sample = plan.cpu_cost()
        qs.cpu_at_adapt = plan.cpu_cost()
        touched.update(qs.simq.streams)
        if c.obs is not None and c.obs.registry is not None:
            c.obs.registry.inc("recovery.orphans_restored")
        return ready

    def _rehome_group(self, gid: int, touched: set) -> float:
        """Restore a whole shared group on the members' majority host."""
        c = self.cluster
        gs = c.groups[gid]
        votes: Dict[int, int] = {}
        for qid in gs.members:
            host = c.cosmos.insert(c.queries[qid].simq.spec)
            votes[host] = votes.get(host, 0) + 1
        if not votes:
            return c.loop.now
        target = min(votes, key=lambda h: (-votes[h], h))
        engine = c.engines[target]
        ckpt = self.checkpoints.get(gid)
        if ckpt is not None:
            plan = ckpt.checkpoint()
            if plan.query is not gs.executed:
                # members that joined after the snapshot widened the
                # group's query; widen the restored operators to match
                plan.widen_to(gs.executed)
            engine.adopt_plan(plan)
        else:
            plan = engine.add_query(
                gs.executed, result_stream=gs.result_stream
            )
        gs.plan = plan
        gs.host = target
        gs.detached = False
        gs.slack = max(
            c._path_latency_ms(int(c.space.source_of[sid]), target)
            for sid in gs.substreams
        ) / 1000.0
        gs.adv = Advertisement(stream=gs.result_stream)
        c.network.advertise(target, gs.adv)
        for sub in gs.p1_subs:
            c.network.subscribe(target, sub)
            c._by_sub[sub.sub_id] = gid
        c._host_groups.setdefault(target, []).append(gid)
        for qid in gs.members:
            mqs = c.queries[qid]
            mqs.host = target
            mqs.alive = True
            c.network.subscribe(
                mqs.simq.spec.proxy, mqs.result_sub, force=True
            )
        ready = self._handoff(gs, plan, target)
        gs.cpu_at_sample = plan.cpu_cost()
        gs.cpu_at_adapt = plan.cpu_cost()
        touched.update(gs.streams)
        if c.obs is not None and c.obs.registry is not None:
            c.obs.registry.inc("recovery.groups_rehomed")
        return ready

    def _handoff(self, unit, plan, new_host: int) -> float:
        """Charge the checkpoint-store transfer; pause deliveries."""
        c = self.cluster
        state = float(plan.state_size())
        lat_ms = c.network.account_path(
            self._store_node(), new_host, max(1.0, state)
        )
        handoff_s = (
            lat_ms + state * c.params.handoff_ms_per_tuple
        ) / 1000.0
        unit.ready = c.loop.now + handoff_s
        unit.last_release = max(unit.last_release, unit.ready)
        unit.last_release_floor = unit.last_release
        return unit.ready

    # -- broker loss ---------------------------------------------------
    def _broker_loss(self, fault: BrokerLoss) -> None:
        c = self.cluster
        node = fault.node
        if node is None:
            node = self._pick(sorted(c.processors))
        if node is None:
            c.fault_log.append(
                {"kind": "broker_loss_skipped", "t": c.loop.now, "node": node}
            )
            return
        c.network.reset_broker(node)
        c.trace.mark(c.loop.now, "broker_loss", f"b{node}")
        c.fault_log.append(
            {"kind": "broker_loss", "t": c.loop.now, "node": node}
        )
        self.recovery.on_broker_loss(self, fault, node)

    def recover_broker_loss(self, node: int) -> None:
        """Re-flood advertisements, then force-repropagate subscriptions.

        Order matters: the wiped broker forwards a subscription only
        toward interfaces its advertisement table points at, so adverts
        must cross it again before the ``force=True`` pass can.
        """
        c = self.cluster
        c._flush_batches()
        obs = c.obs
        profiler = obs.profiler if obs is not None else None
        if profiler is not None:
            profiler.start("recovery")
        c.network.reflood_advertisements()
        c._refresh_subscriptions()
        if c._sharing:
            for gid in sorted(c._res_listeners):
                for qid in c._res_listeners[gid]:
                    qs = c.queries[qid]
                    if qs.result_sub is not None:
                        c.network.subscribe(
                            qs.simq.spec.proxy, qs.result_sub, force=True
                        )
        if obs is not None and obs.registry is not None:
            obs.registry.inc("recovery.broker_recoveries")
        if profiler is not None:
            profiler.stop()
        c.trace.mark(c.loop.now, "recover", f"b{node}")
        c.fault_log.append(
            {"kind": "recover", "t": c.loop.now, "node": node}
        )

    # -- link partition ------------------------------------------------
    def _partition(self, fault: LinkPartition) -> None:
        c = self.cluster
        link = fault.link
        if link is None:
            tree = c.network.tree
            edges = sorted(
                {
                    (min(u, v), max(u, v))
                    for u in tree.links
                    for v in tree.links[u]
                }
            )
            idx = int(self.rng.integers(len(edges)))
            link = edges[idx]
        u, v = link
        c.network.set_link_down(u, v)
        c.trace.mark(c.loop.now, "partition", f"{u}-{v}")
        c.fault_log.append(
            {"kind": "partition", "t": c.loop.now, "link": (u, v)}
        )
        c.loop.schedule(
            c.loop.now + fault.duration, partial(self._heal_link, u, v)
        )

    def _heal_link(self, u: int, v: int) -> None:
        c = self.cluster
        c.network.set_link_up(u, v)
        c.trace.mark(c.loop.now, "heal", f"{u}-{v}")
        c.fault_log.append(
            {"kind": "heal", "t": c.loop.now, "link": (u, v)}
        )

    # -- elastic membership --------------------------------------------
    def _join(self, fault: ProcessorJoin) -> None:
        c = self.cluster
        if not c.spares:
            c.fault_log.append(
                {"kind": "join_skipped", "t": c.loop.now, "node": None}
            )
            return
        node = c.spares.pop(0)
        c.engines[node] = Engine(node=node, use_batches=c.params.use_batches)
        c.processors.append(node)
        c._pindex = {p: i for i, p in enumerate(c.processors)}
        c.cosmos.add_processor(node)
        c.trace.mark(c.loop.now, "join", f"p{node}")
        c.fault_log.append({"kind": "join", "t": c.loop.now, "node": node})

    def _leave(self, fault: ProcessorLeave) -> None:
        """Graceful departure: migrate hosted units out live, then leave."""
        c = self.cluster
        node = fault.node
        if node is None:
            node = self._pick(self._hosting_processors())
        if node is None or node not in c.engines or len(c.processors) <= 1:
            c.fault_log.append(
                {"kind": "leave_skipped", "t": c.loop.now, "node": node}
            )
            return
        orphans = c.cosmos.remove_processor(node)
        touched: set = set()
        moved = 0
        if c._sharing:
            for gid in sorted(c.groups):
                gs = c.groups[gid]
                if gs.host != node or gs.detached:
                    continue
                if gs.alive and gs.members:
                    votes: Dict[int, int] = {}
                    for qid in gs.members:
                        host = c.cosmos.insert(c.queries[qid].simq.spec)
                        votes[host] = votes.get(host, 0) + 1
                    target = min(votes, key=lambda h: (-votes[h], h))
                    c._migrate_group(gid, target)
                    touched.update(gs.streams)
                    moved += len(gs.members)
                else:
                    # a retiring group mid-drain: finish it now, while
                    # its engine still exists
                    c._shared_detach_group(gid)
        else:
            specs = {qid: c.queries[qid].simq.spec for qid in orphans}
            for qid in orphans:
                new_host = c.cosmos.insert(specs[qid])
                c._migrate(qid, new_host)
                touched.update(c.queries[qid].simq.streams)
                moved += 1
            # departures mid-drain are not in the placement any more:
            # finish their detach while the engine is still up
            for qid in sorted(c.queries):
                qs = c.queries[qid]
                if qs.host == node and not qs.detached:
                    c._detach(qid)
        if touched:
            c._refresh_subscriptions(streams=touched)
        if c.obs is not None:
            c.obs.engine_retired(node, c.engines[node])
        c.engines.pop(node)
        c.processors.remove(node)
        c._pindex = {p: i for i, p in enumerate(c.processors)}
        removed_subs, _ = c.network.remove_broker(node)
        # the engine left, not the users: members whose *proxy* sits at
        # the departing node keep listening there (the node stays in the
        # overlay as a router), so reinstall their carves
        for sub_id in removed_subs:
            qid = c._by_result_sub.get(sub_id)
            if qid is None:
                continue
            qs = c.queries[qid]
            if qs.result_sub is not None:
                c.network.subscribe(
                    qs.simq.spec.proxy, qs.result_sub, force=True
                )
        c.trace.mark(c.loop.now, "leave", f"p{node}")
        c.fault_log.append(
            {
                "kind": "leave",
                "t": c.loop.now,
                "node": node,
                "migrated": moved,
            }
        )


# ---------------------------------------------------------------------------
# recovery invariants (shared by tests and the bench gate)
# ---------------------------------------------------------------------------
def is_subsequence(sub: List, full: List) -> bool:
    """Whether ``sub`` appears in ``full`` in order (gaps allowed)."""
    it = iter(full)
    return all(any(x == y for y in it) for x in sub)


def recovery_invariants(
    sim_results: Dict[int, List[Dict]],
    oracle: Dict[int, List[Dict]],
    *,
    affected: set,
    resumed_at: Optional[float] = None,
    window_s: float = 0.0,
) -> List[Tuple[int, str]]:
    """Check the fault-tolerance invariants; returns the violations.

    * a query NOT in ``affected`` (never hosted on a failed node) must
      match the single-engine oracle exactly -- zero result loss;
    * an affected query's results must be a *subsequence* of the
      oracle's -- bounded loss, never corruption or reordering;
    * when ``resumed_at`` is given (recovery ran), every oracle result
      of an affected query with ``timestamp > resumed_at + window_s``
      must be present -- full parity once the lost window has aged out
      (join timestamps are probe timestamps, so such results derive
      entirely from post-recovery inputs).
    """
    violations: List[Tuple[int, str]] = []
    for qid in sorted(oracle):
        want = oracle[qid]
        got = sim_results.get(qid, [])
        if qid not in affected:
            if got != want:
                violations.append((qid, "exact"))
            continue
        if not is_subsequence(got, want):
            violations.append((qid, "subsequence"))
            continue
        if resumed_at is not None:
            horizon = resumed_at + window_s
            missing = [
                r
                for r in want
                if r.get("timestamp", 0.0) > horizon and r not in got
            ]
            if missing:
                violations.append((qid, "post_recovery_parity"))
    return violations
