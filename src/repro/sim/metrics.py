"""Evaluation metrics (Section 4).

The paper reports two system-level metrics:

* **weighted communication cost** -- per-unit-time traffic x latency,
  summed over links.  We measure it on the pub/sub overlay: every
  substream is multicast from its source to the set of processors hosting
  at least one interested query (each overlay link carries the substream
  at most once -- the sharing COSMOS exploits), and every query's result
  stream travels from its host to its proxy.  Result delivery from a proxy
  to its local user is identical under every scheme and is excluded, as in
  the paper.
* **load standard deviation** -- stddev of per-processor query load
  (normalised by capability), the load-balance indicator of Figures 7-10.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..query.interest import SubstreamSpace, iter_bits
from ..query.workload import QuerySpec
from ..topology.overlay import OverlayTree

__all__ = ["RootedOverlay", "CostModel", "load_stddev"]


class RootedOverlay:
    """An overlay tree rooted once for fast path/multicast queries."""

    def __init__(self, tree: OverlayTree):
        self.tree = tree
        root = tree.nodes[0]
        self.parent: Dict[int, int] = {root: root}
        self.depth: Dict[int, int] = {root: 0}
        self.up_latency: Dict[int, float] = {root: 0.0}
        stack = [root]
        while stack:
            u = stack.pop()
            for v, lat in tree.neighbors(u).items():
                if v not in self.parent:
                    self.parent[v] = u
                    self.depth[v] = self.depth[u] + 1
                    self.up_latency[v] = lat
                    stack.append(v)

    def path_edges(self, u: int, v: int) -> List[int]:
        """Edges on the tree path, each identified by its lower endpoint
        (the child side of the parent link)."""
        edges: List[int] = []
        a, b = u, v
        while a != b:
            if self.depth[a] >= self.depth[b]:
                edges.append(a)
                a = self.parent[a]
            else:
                edges.append(b)
                b = self.parent[b]
        return edges

    def path_latency(self, u: int, v: int) -> float:
        return sum(self.up_latency[e] for e in self.path_edges(u, v))

    def multicast_cost(self, source: int, sinks: Iterable[int]) -> float:
        """Latency-weighted size of the multicast edge union."""
        used: set = set()
        for sink in set(sinks):
            if sink == source:
                continue
            used.update(self.path_edges(source, sink))
        return sum(self.up_latency[e] for e in used)


@dataclass
class CostModel:
    """Measures weighted communication cost of a placement.

    Two accounting modes:

    * ``"unicast"`` (default) -- each substream travels once per *distinct
      hosting processor* over the shortest topology path (co-location is
      the only sharing).  This matches the paper's link-level metric on a
      large WAN, where paths from a source to scattered processors share
      few links.
    * ``"multicast"`` -- each substream is multicast over the pub/sub
      overlay tree, each tree link carrying it at most once.  This is the
      exact pub/sub data plane; on small overlays path sharing compresses
      the differences between schemes.
    """

    overlay: Optional[RootedOverlay]
    space: SubstreamSpace
    distance: Optional[object] = None  # LatencyOracle-like callable

    @classmethod
    def over(
        cls,
        tree: Optional[OverlayTree],
        space: SubstreamSpace,
        distance=None,
    ) -> "CostModel":
        return cls(
            overlay=RootedOverlay(tree) if tree is not None else None,
            space=space,
            distance=distance,
        )

    def weighted_cost(
        self,
        placement: Dict[int, int],
        queries: Sequence[QuerySpec],
        mode: str = "unicast",
    ) -> float:
        """Source delivery cost + result delivery cost of a placement."""
        if mode not in ("unicast", "multicast"):
            raise ValueError(f"unknown mode {mode!r}")
        if mode == "unicast" and self.distance is None:
            raise ValueError("unicast mode needs a distance oracle")
        if mode == "multicast" and self.overlay is None:
            raise ValueError("multicast mode needs an overlay tree")

        interested: Dict[int, set] = {}
        for q in queries:
            host = placement[q.query_id]
            for sid in iter_bits(q.mask):
                interested.setdefault(sid, set()).add(host)

        total = 0.0
        if mode == "multicast":
            for sid, hosts in interested.items():
                source = int(self.space.source_of[sid])
                total += float(self.space.rates[sid]) * self.overlay.multicast_cost(
                    source, hosts
                )
        else:
            total += self._unicast_source_cost(interested)

        for q in queries:
            host = placement[q.query_id]
            if host != q.proxy:
                if mode == "multicast":
                    total += q.result_rate * self.overlay.path_latency(host, q.proxy)
                else:
                    total += q.result_rate * self.distance(host, q.proxy)
        return total

    def _unicast_source_cost(self, interested: Dict[int, set]) -> float:
        """Source-delivery cost, vectorised over each source's row.

        When the distance oracle exposes cached per-node rows
        (:meth:`~repro.topology.latency.LatencyOracle.row`), the cost of
        one source serving all its substreams' hosts is a single gather;
        otherwise fall back to scalar distance calls.
        """
        row_of = getattr(self.distance, "row", None)
        if row_of is None:
            total = 0.0
            for sid, hosts in interested.items():
                source = int(self.space.source_of[sid])
                rate = float(self.space.rates[sid])
                for host in hosts:
                    total += rate * self.distance(source, host)
            return total

        # group substreams by source so each row is fetched once
        by_source: Dict[int, List[int]] = {}
        for sid in interested:
            by_source.setdefault(int(self.space.source_of[sid]), []).append(sid)
        total = 0.0
        rates = self.space.rates
        for source, sids in by_source.items():
            row = np.asarray(row_of(source))
            for sid in sids:
                hosts = np.fromiter(
                    interested[sid], dtype=np.int64, count=len(interested[sid])
                )
                total += float(rates[sid]) * float(row[hosts].sum())
        return total


def load_stddev(
    placement: Dict[int, int],
    queries: Sequence[QuerySpec],
    processors: Sequence[int],
    capabilities: Optional[Dict[int, float]] = None,
) -> float:
    """Standard deviation of per-processor load (capability-normalised).

    Accumulation is one ``bincount`` over processor indices rather than a
    per-query dictionary update.
    """
    capabilities = capabilities or {}
    index = {p: i for i, p in enumerate(processors)}
    hosts = np.fromiter(
        (index[placement[q.query_id]] for q in queries),
        dtype=np.int64,
        count=len(queries),
    )
    weights = np.fromiter(
        (q.load for q in queries), dtype=float, count=len(queries)
    )
    loads = np.bincount(hosts, weights=weights, minlength=len(processors))
    caps = np.fromiter(
        (capabilities.get(p, 1.0) for p in processors),
        dtype=float,
        count=len(processors),
    )
    return float(np.std(loads / caps))
