"""Time-series traces of a simulation run.

A :class:`SimTrace` is the machine-readable record the bench scenarios
put in ``BENCH_core.json``: periodic samples (throughput, end-to-end
latency, measured load stddev, traffic counters), one mark per
adaptation round (load stddev regrouped before/after the round's
migrations), and one mark per lifecycle event (query arrival/departure,
hot-spot shift).  Everything is plain floats/ints so ``to_dict`` is
JSON-ready and two runs of the same seeded scenario can be compared for
bit-identical equality.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

__all__ = ["TraceSample", "AdaptationMark", "SimTrace", "TRACE_SCHEMA_VERSION"]

#: version of the ``SimTrace.to_dict`` artifact layout; bump on any
#: field addition/removal so BENCH/TRACE consumers can dispatch
TRACE_SCHEMA_VERSION = 1


@dataclass
class TraceSample:
    """One periodic sample of cluster-wide state."""

    t: float
    #: result tuples delivered per second since the previous sample
    throughput: float
    #: mean / max end-to-end result latency (s) over the interval
    mean_latency: float
    max_latency: float
    #: stddev over engines of measured load (tuples inspected / s)
    load_stddev: float
    alive_queries: int
    migrations_total: int
    #: cumulative overlay traffic (bytes x link count units)
    data_bytes: float
    control_bytes: float
    results_total: int


@dataclass
class AdaptationMark:
    """One Section 3.7 adaptation round, as the simulator observed it."""

    t: float
    #: measured-load stddev under the placement before / after the round
    stddev_before: float
    stddev_after: float
    migrated_queries: int
    #: operator-state tuples shipped between engines by the migrations
    moved_state: float
    #: wall-clock seconds the coordinator tree spent deciding
    optimizer_cpu_s: float


@dataclass
class SimTrace:
    """The full record of one simulation run."""

    seed: int
    samples: List[TraceSample] = field(default_factory=list)
    adaptations: List[AdaptationMark] = field(default_factory=list)
    #: (t, kind, detail) lifecycle events: query_add / query_remove / hotspot
    events: List[tuple] = field(default_factory=list)

    def mark(self, t: float, kind: str, detail: str) -> None:
        self.events.append((round(t, 9), kind, detail))

    # ------------------------------------------------------------------
    def latencies(self) -> List[float]:
        return [s.mean_latency for s in self.samples if s.throughput > 0]

    def stddev_trajectory(self) -> List[float]:
        return [s.load_stddev for s in self.samples]

    def total_results(self) -> int:
        return self.samples[-1].results_total if self.samples else 0

    def total_migrations(self) -> int:
        return self.samples[-1].migrations_total if self.samples else 0

    def stddev_improved(self) -> bool:
        """Did some adaptation round reduce the measured load stddev?"""
        return any(a.stddev_after < a.stddev_before for a in self.adaptations)

    # ------------------------------------------------------------------
    def to_dict(self, include_timing: bool = False) -> Dict:
        """JSON-ready dict; identical seeded runs produce identical dicts.

        ``optimizer_cpu_s`` is the one wall-clock (hence nondeterministic)
        field, so it is dropped unless ``include_timing`` is set.
        """
        adaptations = []
        for a in self.adaptations:
            d = asdict(a)
            if not include_timing:
                d.pop("optimizer_cpu_s")
            adaptations.append(d)
        return {
            "schema_version": TRACE_SCHEMA_VERSION,
            "seed": self.seed,
            "samples": [asdict(s) for s in self.samples],
            "adaptations": adaptations,
            "events": [list(e) for e in self.events],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "SimTrace":
        """Reconstruct a trace from :meth:`to_dict` output.

        Round-trips exactly: ``SimTrace.from_dict(t.to_dict(True))``
        equals ``t``.  Timing-stripped dicts reconstruct with
        ``optimizer_cpu_s=0.0``.
        """
        version = data.get("schema_version", 1)
        if version != TRACE_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported trace schema_version {version!r} "
                f"(expected {TRACE_SCHEMA_VERSION})"
            )
        trace = cls(seed=data["seed"])
        trace.samples = [TraceSample(**s) for s in data["samples"]]
        trace.adaptations = [
            AdaptationMark(optimizer_cpu_s=0.0, **a)
            if "optimizer_cpu_s" not in a
            else AdaptationMark(**a)
            for a in data["adaptations"]
        ]
        trace.events = [tuple(e) for e in data["events"]]
        return trace

    def summary(self) -> Dict:
        """Compact stats for bench reports (full samples stay available)."""
        lats = self.latencies()
        return {
            "samples": len(self.samples),
            "results_total": self.total_results(),
            "migrations_total": self.total_migrations(),
            "adaptation_rounds": len(self.adaptations),
            "mean_latency_s": sum(lats) / len(lats) if lats else 0.0,
            "max_latency_s": max(
                (s.max_latency for s in self.samples), default=0.0
            ),
            "final_load_stddev": (
                self.samples[-1].load_stddev if self.samples else 0.0
            ),
            "stddev_improved": self.stddev_improved(),
            "data_bytes": self.samples[-1].data_bytes if self.samples else 0.0,
        }
