"""Simulation runtime and metrics."""

from .metrics import CostModel, RootedOverlay, load_stddev

__all__ = ["CostModel", "RootedOverlay", "load_stddev"]
