"""Simulation runtime and metrics.

Two layers:

* :mod:`repro.sim.metrics` -- the *static* Section 4 metrics (weighted
  communication cost, load stddev) computed from a placement;
* the discrete-event cluster simulator (:mod:`repro.sim.cluster` plus
  :mod:`~repro.sim.events` / :mod:`~repro.sim.workload` /
  :mod:`~repro.sim.trace`) -- COSMOS *executed* over simulated time with
  churn, hot spots and measured-load adaptation.  Entry point:
  :func:`run_scenario`.
"""

from .cluster import (
    ChurnParams,
    HotSpotShift,
    ScenarioParams,
    SimCluster,
    SimReport,
    oracle_results,
    run_scenario,
)
from .events import EventHandle, EventLoop
from .faults import (
    RECOVERY_POLICIES,
    BrokerLoss,
    CheckpointRecovery,
    FaultInjector,
    LinkPartition,
    NoRecovery,
    ProcessorCrash,
    ProcessorJoin,
    ProcessorLeave,
    RecoveryPolicy,
    is_subsequence,
    recovery_invariants,
)
from .metrics import CostModel, RootedOverlay, load_stddev
from .trace import AdaptationMark, SimTrace, TraceSample
from .workload import SimQuery, SimQueryFactory, SimWorkloadParams, measure_rates

__all__ = [
    "AdaptationMark",
    "BrokerLoss",
    "CheckpointRecovery",
    "ChurnParams",
    "CostModel",
    "EventHandle",
    "EventLoop",
    "FaultInjector",
    "HotSpotShift",
    "LinkPartition",
    "NoRecovery",
    "ProcessorCrash",
    "ProcessorJoin",
    "ProcessorLeave",
    "RECOVERY_POLICIES",
    "RecoveryPolicy",
    "RootedOverlay",
    "ScenarioParams",
    "SimCluster",
    "SimQuery",
    "SimQueryFactory",
    "SimReport",
    "SimTrace",
    "SimWorkloadParams",
    "TraceSample",
    "is_subsequence",
    "load_stddev",
    "measure_rates",
    "oracle_results",
    "recovery_invariants",
    "run_scenario",
]
