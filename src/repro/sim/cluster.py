"""The discrete-event cluster simulator: COSMOS end to end.

Runs the whole middleware over simulated time: one
:class:`~repro.engine.executor.Engine` per processor, source tuples
generated per substream at the space's (possibly shifting) rates,
dissemination over the real content-based pub/sub overlay
(:class:`~repro.pubsub.network.PubSubNetwork` on a minimum-latency
spanning tree) with shortest-path transit delays, and the coordinator
hierarchy adapting placements from loads *measured* on the running
engines (Section 3.7/3.8 closed-loop, not the static estimates the
figure experiments use).

Correctness model
-----------------
A tuple emitted at time ``t`` reaches a query hosted at processor ``h``
after the overlay path latency; the engine processes each query's
inputs in timestamp order behind a per-query reordering slack equal to
the query's worst input-path delay (the standard out-of-order handling
of stream engines).  Because every query therefore consumes its inputs
in emission order, the distributed execution is *result-equivalent* to
a single giant engine hosting every query -- the oracle
(:func:`oracle_results`) the churn tests compare against.  Migrations
move the compiled plan object (window state included) between engines,
so adaptation rounds never lose or duplicate results; they only add the
state-handoff delay to the moved query's deliveries.

Determinism: all randomness flows from one ``numpy`` seed through
:class:`numpy.random.SeedSequence` spawns, and all timing through the
heap-based :class:`~repro.sim.events.EventLoop`, so two runs of the same
scenario produce bit-identical traces.

Data planes
-----------
With ``ScenarioParams.use_batches`` (the default) the tuple path runs
columnar: same-substream tuples emitted within one mean source
inter-arrival coalesce into a single
:meth:`~repro.pubsub.network.PubSubNetwork.publish_batch` (one
forwarding probe per hop per batch, link bytes accounted per row), and
released rows reach the engines as
:class:`~repro.engine.tuples.TupleBatch`\\ es through one drain event
per batch instead of one release event per tuple.  Emission events stay
per-tuple (the rng draw order defines the workload), every
control-plane event (churn, migration rounds, hot spots, sampling)
flushes the coalescing buffers first, and per-query deliveries stay in
timestamp order -- so traces, results, link traffic and CPU counters
are bit-identical to ``use_batches=False``, the per-tuple reference
plane (``tests/test_batch_parity.py``).
"""

from __future__ import annotations

import bisect
from collections import deque
from dataclasses import dataclass, field
from functools import partial
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from ..core.cosmos import Cosmos, CosmosConfig
from ..engine.executor import Engine
from ..engine.plans import QueryPlan
from ..engine.tuples import StreamTuple, TupleBatch
from ..pubsub.messages import Event
from ..pubsub.network import PubSubNetwork
from ..pubsub.subscriptions import Subscription
from ..topology.latency import LatencyOracle, select_roles
from ..topology.overlay import minimum_latency_spanning_tree
from ..topology.transit_stub import TransitStubParams, generate_transit_stub
from ..query.interest import SubstreamSpace
from .events import EventLoop
from .trace import AdaptationMark, SimTrace, TraceSample
from .workload import (
    VALUE_DOMAIN,
    SimQuery,
    SimQueryFactory,
    SimWorkloadParams,
    stream_name,
)

__all__ = [
    "ChurnParams",
    "HotSpotShift",
    "ScenarioParams",
    "SimCluster",
    "SimReport",
    "run_scenario",
    "oracle_results",
]


@dataclass(frozen=True)
class ChurnParams:
    """Query arrival/departure process (both exponential)."""

    arrival_rate: float = 0.5  # queries per second
    mean_lifetime: float = 20.0  # seconds


@dataclass(frozen=True)
class HotSpotShift:
    """A runtime rate perturbation: ``substreams`` random substreams get
    their rates multiplied by ``factor`` at time ``at`` (Figure 10's I/D
    steps, driven from inside the simulation)."""

    at: float = 15.0
    substreams: int = 10
    factor: float = 3.0


@dataclass(frozen=True)
class ScenarioParams:
    """Run-level knobs of a simulation scenario."""

    duration: float = 30.0
    sample_interval: float = 5.0
    #: period of Section 3.7 adaptation rounds (None disables adaptation)
    adapt_interval: Optional[float] = 10.0
    #: "cosmos" = Algorithm 1+2 initial distribution; "skewed" = pile the
    #: initial queries on a few processors (the Figure 7 adopt scenario)
    initial_placement: str = "cosmos"
    churn: Optional[ChurnParams] = None
    hotspot: Optional[HotSpotShift] = None
    #: per-state-tuple serialisation cost added to a migration's handoff
    handoff_ms_per_tuple: float = 0.05
    #: route dissemination through the counting forwarding index (False =
    #: the reference scan path; traces must be identical either way)
    use_index: bool = True
    #: coalesce same-substream tuples emitted within one source
    #: inter-arrival window into a single batch publish + batched engine
    #: deliveries (False = the per-tuple scalar data plane; full-run
    #: traces, results, link traffic and cpu_costs must be identical
    #: either way)
    use_batches: bool = True


@dataclass
class _QueryState:
    """Runtime state of one query inside the cluster."""

    simq: SimQuery
    host: int
    sub: Subscription
    plan: QueryPlan
    #: reordering slack: worst input-path delay (seconds)
    slack: float
    #: release time assigned to the latest delivered tuple (monotone)
    last_release: float = 0.0
    #: batch plane: ``last_release`` as of the last control-plane event.
    #: Within a control-free window the scalar release chain collapses to
    #: ``max(ts + slack, release_floor)`` per row (timestamps are merged
    #: in order, so earlier chain links never dominate), which makes the
    #: release of a row independent of *publish* order -- coalesced
    #: batches of different substreams may publish out of timestamp order
    last_release_floor: float = 0.0
    #: earliest time deliveries may resume after a migration handoff
    ready: float = 0.0
    pending: Deque[StreamTuple] = field(default_factory=deque)
    #: batch-mode pending deliveries: (timestamp, emit seq, tuple,
    #: release) kept sorted by (timestamp, seq) -- the order the scalar
    #: path delivers in.  Release times are non-decreasing along it.
    pending_rel: List[Tuple[float, int, StreamTuple, float]] = field(
        default_factory=list
    )
    #: latest scheduled (not yet fired) drain event time, for dedup: a
    #: pending drain at T delivers every row with release <= T, so no
    #: extra event is needed for rows releasing at or before T
    drain_at: float = float("-inf")
    alive: bool = True
    detached: bool = False
    cpu_at_sample: int = 0
    cpu_at_adapt: int = 0
    results: List[StreamTuple] = field(default_factory=list)
    #: per-query latency accumulators for the current sample interval;
    #: merged in query-id order at each sample so the scalar and batch
    #: paths sum floats in one canonical order
    lat_sum: float = 0.0
    lat_max: float = 0.0

    @property
    def name(self) -> str:
        return self.simq.name


@dataclass
class SimReport:
    """Everything a scenario run produced."""

    trace: SimTrace
    queries: Dict[int, SimQuery]
    placement: Dict[int, int]
    tuples_emitted: int
    events_processed: int
    #: per-query result tuple values, only when ``record=True``
    results: Optional[Dict[int, List[Dict]]] = None
    #: ordered action log (tuple / add / remove), only when ``record=True``
    actions: Optional[List[Tuple[str, object]]] = None
    #: final per-link data traffic, only when ``record=True``
    link_bytes: Optional[Dict[Tuple[int, int], float]] = None
    #: final per-query engine CPU counters, only when ``record=True``
    cpu_costs: Optional[Dict[int, int]] = None


class SimCluster:
    """Engines + pub/sub + coordinator tree under one event loop."""

    def __init__(
        self,
        *,
        oracle: LatencyOracle,
        sources: List[int],
        processors: List[int],
        space: SubstreamSpace,
        cosmos: Cosmos,
        params: ScenarioParams,
        factory: SimQueryFactory,
        arrival_rng: np.random.Generator,
        value_rng: np.random.Generator,
        churn_rng: Optional[np.random.Generator] = None,
        seed: int = 0,
        record: bool = False,
    ):
        self.oracle = oracle
        self.sources = list(sources)
        self.processors = list(processors)
        self.space = space
        self.cosmos = cosmos
        self.params = params
        self.factory = factory
        self.arrival_rng = arrival_rng
        self.value_rng = value_rng
        self.churn_rng = churn_rng
        self.record = record

        self.loop = EventLoop()
        self.trace = SimTrace(seed=seed)
        overlay = minimum_latency_spanning_tree(
            self.sources + self.processors, oracle
        )
        self.network = PubSubNetwork(
            overlay, record_deliveries=False, use_index=params.use_index
        )
        from ..pubsub.subscriptions import Advertisement

        for sid in range(len(space)):
            self.network.advertise(
                int(space.source_of[sid]), Advertisement(stream=stream_name(sid))
            )
        self.engines: Dict[int, Engine] = {
            p: Engine(node=p, use_batches=params.use_batches)
            for p in self.processors
        }
        self.queries: Dict[int, _QueryState] = {}
        self._by_sub: Dict[int, int] = {}
        self._pindex = {p: i for i, p in enumerate(self.processors)}
        self._path_ms: Dict[Tuple[int, int], float] = {}
        self._emit_gen: List[int] = [0] * len(space)

        self.duration = params.duration
        self.tuples_emitted = 0
        self.results_total = 0
        self.migrations = 0
        self._interval_results = 0
        self._last_sample_t = 0.0
        self.actions: Optional[List[Tuple[str, object]]] = [] if record else None

        #: batch data plane: per-substream (emit seq, tuple) rows awaiting
        #: the coalesced publish, plus stats on coalescing effectiveness
        self._batching = params.use_batches
        self._src_pending: List[List[Tuple[int, StreamTuple]]] = [
            [] for _ in range(len(space))
        ]
        self._emit_seq = 0
        self.batch_publishes = 0

    # ------------------------------------------------------------------
    # latency helpers
    # ------------------------------------------------------------------
    def _path_latency_ms(self, u: int, v: int) -> float:
        """Overlay path latency (ms) between two overlay nodes, cached."""
        if u == v:
            return 0.0
        key = (u, v) if u < v else (v, u)
        lat = self._path_ms.get(key)
        if lat is None:
            lat = self.network.tree.path_latency(u, v)
            self._path_ms[key] = lat
        return lat

    def _slack(self, simq: SimQuery, host: int) -> float:
        """Reordering slack (s): the query's worst input transit delay."""
        return max(
            self._path_latency_ms(int(self.space.source_of[sid]), host)
            for sid in simq.substreams
        ) / 1000.0

    # ------------------------------------------------------------------
    # query lifecycle
    # ------------------------------------------------------------------
    def add_query(self, simq: SimQuery, host: int) -> _QueryState:
        """Install a query on its host engine and subscribe its inputs."""
        # the new subscription changes routing tables: coalesced batches
        # emitted under the old tables must be published first
        self._flush_batches()
        engine = self.engines[host]
        plan = engine.add_query(simq.ast, result_stream=f"out_{simq.name}")
        sub = Subscription.to_streams(simq.streams)
        self.network.subscribe(host, sub)
        qs = _QueryState(
            simq=simq,
            host=host,
            sub=sub,
            plan=plan,
            slack=self._slack(simq, host),
            last_release=self.loop.now,
            last_release_floor=self.loop.now,
        )
        self.queries[simq.query_id] = qs
        self._by_sub[sub.sub_id] = simq.query_id
        if self.actions is not None:
            self.actions.append(("add", simq))
        return qs

    def remove_query(self, query_id: int) -> None:
        """Query departure: stop deliveries now, detach after the drain.

        The subscription is torn down immediately (no new tuples), but
        the plan stays on its engine until every already-delivered tuple
        has been processed, so the distributed run emits exactly the
        results a single-engine oracle does for the same action order.
        """
        qs = self.queries[query_id]
        if not qs.alive:
            return
        self._flush_batches()
        qs.alive = False
        if self.actions is not None:
            self.actions.append(("remove", qs.simq))
        self.network.unsubscribe(qs.sub.sub_id)
        self._by_sub.pop(qs.sub.sub_id, None)
        self._refresh_subscriptions(streams=set(qs.simq.streams))
        self.loop.schedule(
            max(self.loop.now, qs.last_release), partial(self._detach, query_id)
        )

    def _detach(self, query_id: int) -> None:
        qs = self.queries[query_id]
        if qs.detached:
            return
        # deliver anything still in flight first: a migration can push
        # last_release past already-scheduled release events, making them
        # fire (rescheduled) at the same instant as this detach but after
        # it in the queue -- dropping them would diverge from the oracle,
        # which processes every tuple emitted before the departure
        while qs.pending:
            self._deliver_now(qs, qs.pending.popleft())
        if qs.pending_rel:
            # batch mode: rows still pending here were paused past their
            # release (migration handoff) -- the scalar plane's detach
            # loop above delivers exactly those at loop.now as well
            rows = [(t, self.loop.now) for _, _, t, _ in qs.pending_rel]
            qs.pending_rel.clear()
            self._deliver_rows(qs, rows)
        qs.detached = True
        self.engines[qs.host].remove_query(qs.name)

    def _refresh_subscriptions(self, streams: Optional[set] = None) -> None:
        """Re-propagate live subscriptions (optionally: only those sharing
        a stream with ``streams``).

        Covering-based tables prune a subscription whose propagation an
        identical earlier one made redundant; when that earlier one is
        torn down (migration, departure) the pruned path must be
        re-announced.  Re-subscribing is idempotent, so this simply fills
        the gaps the removal opened.
        """
        for qs in self.queries.values():
            if not qs.alive:
                continue
            if streams is not None and not (streams & set(qs.simq.streams)):
                continue
            self.network.subscribe(qs.host, qs.sub, force=True)

    def _migrate(self, query_id: int, new_host: int) -> float:
        """Move a query's plan (state included) to ``new_host``.

        Charges the overlay for the state transfer and pauses the query's
        deliveries for the handoff delay; returns the state size moved.
        """
        qs = self.queries[query_id]
        old = qs.host
        plan = self.engines[old].remove_query(qs.name)
        self.engines[new_host].adopt_plan(plan)
        self.network.unsubscribe(qs.sub.sub_id)
        qs.host = new_host
        self.network.subscribe(new_host, qs.sub)
        qs.slack = self._slack(qs.simq, new_host)
        state_tuples = float(plan.state_size())
        lat_ms = self.network.account_path(old, new_host, max(1.0, state_tuples))
        handoff_s = (
            lat_ms + state_tuples * self.params.handoff_ms_per_tuple
        ) / 1000.0
        qs.ready = self.loop.now + handoff_s
        qs.last_release = max(qs.last_release, qs.ready)
        # a migration is a control-plane event: every already-emitted row
        # has been published (the adapt round flushed), so the scalar
        # release chain restarts from the bumped value
        qs.last_release_floor = qs.last_release
        self.migrations += 1
        return state_tuples

    # ------------------------------------------------------------------
    # data plane
    # ------------------------------------------------------------------
    def _emit(self, sid: int, gen: int) -> None:
        """One source tuple of substream ``sid``; reschedules itself.

        ``gen`` is the substream's emission-chain generation: a hot-spot
        shift bumps it and starts a fresh chain at the new rate, which
        both revives substreams whose chain had run past the horizon and
        applies the new rate immediately; the superseded chain sees the
        stale generation and dies here.

        On the batch data plane the tuple is not published here: it joins
        the substream's coalescing buffer, and the buffer's first row
        schedules the batch publish one mean inter-arrival later
        (:meth:`_flush_substream`).  Drawing values/arrivals stays in
        this per-tuple event so the rng consumption order -- and hence
        every generated tuple -- is identical on both planes.
        """
        if gen != self._emit_gen[sid]:
            return
        t = self.loop.now
        tup = StreamTuple(
            stream_name(sid),
            {
                "value": int(self.value_rng.integers(0, VALUE_DOMAIN)),
                "timestamp": t,
            },
        )
        if self.actions is not None:
            self.actions.append(("tuple", tup))
        rate = float(self.space.rates[sid])
        self._emit_seq += 1
        if self._batching:
            pending = self._src_pending[sid]
            pending.append((self._emit_seq, tup))
            if len(pending) == 1:
                # coalescing window: one mean source inter-arrival (a
                # dead substream's lone row flushes immediately)
                window = 1.0 / rate if rate > 1e-12 else 0.0
                self.loop.schedule(
                    t + window, partial(self._flush_substream, sid)
                )
        else:
            self._publish_rows(sid, [(self._emit_seq, tup)])
        self.tuples_emitted += 1
        if rate > 1e-12:
            nxt = t + float(self.arrival_rng.exponential(1.0 / rate))
            if nxt <= self.duration:
                self.loop.schedule(nxt, partial(self._emit, sid, gen))

    def _publish_rows(
        self, sid: int, rows: List[Tuple[int, StreamTuple]]
    ) -> None:
        """Publish (seq, tuple) rows of one substream; queue deliveries.

        The scalar plane calls this once per tuple (one content-based
        probe each); the batch plane once per coalesced buffer (one probe
        for the whole batch, link traffic still accounted per row).
        Release times follow the scalar formula ``max(ts + slack,
        last_release)``; along a query's timestamp order that equals
        ``max(ts + slack, last_release at publish)`` for every row, so
        computing them batch-at-a-time yields the scalar values.
        """
        source = int(self.space.source_of[sid])
        if self._batching:
            deliveries = self.network.publish_batch(
                source, stream_name(sid), len(rows)
            )
            self.batch_publishes += 1
        else:
            tup0 = rows[0][1]
            event = Event(stream=tup0.stream, attributes=tup0.values, size=1.0)
            deliveries = self.network.publish(source, event)
        for _node, _ev, sub in deliveries:
            query_id = self._by_sub.get(sub.sub_id)
            if query_id is None:
                continue
            qs = self.queries[query_id]
            if not self._batching:
                tup = rows[0][1]
                release = max(tup.timestamp + qs.slack, qs.last_release)
                qs.last_release = release
                qs.pending.append(tup)
                self.loop.schedule(
                    release, partial(self._release_one, query_id)
                )
                continue
            release_last = 0.0
            for seq, tup in rows:
                release = max(tup.timestamp + qs.slack, qs.last_release_floor)
                qs.last_release = max(qs.last_release, release)
                # sorted insert by (timestamp, emission seq): rows of
                # *other* substreams may already sit in pending_rel with
                # later timestamps (their batch flushed earlier)
                bisect.insort(qs.pending_rel, (tup.timestamp, seq, tup, release))
                release_last = release
            when = max(release_last, self.loop.now)
            if when > qs.drain_at:
                qs.drain_at = when
                self.loop.schedule(when, partial(self._drain_query, query_id))

    def _flush_substream(self, sid: int) -> None:
        """Publish a substream's coalesced rows as one batch."""
        rows = self._src_pending[sid]
        if not rows:
            return
        self._src_pending[sid] = []
        self._publish_rows(sid, rows)

    def _flush_batches(self) -> None:
        """Publish every coalesced buffer now (batch plane only).

        Called before any control-plane change (subscription add/remove,
        migration round, rate shift, sampling): the buffered rows were
        emitted under the *current* routing tables and host placements,
        and publishing them early is always safe -- matching, releases
        and accounting depend only on state that has not changed since
        their emission.
        """
        if not self._batching:
            return
        for sid in range(len(self._src_pending)):
            if self._src_pending[sid]:
                self._flush_substream(sid)
        for query_id in sorted(self.queries):
            qs = self.queries[query_id]
            if not qs.detached and qs.pending_rel:
                self._drain_ready(qs)

    def _release_one(self, query_id: int) -> None:
        """Deliver the oldest pending tuple of a query to its plan.

        Pending tuples form a FIFO per query, so deliveries happen in
        emission order even when a migration's handoff pause reschedules
        release events.
        """
        qs = self.queries[query_id]
        if qs.detached or not qs.pending:
            return
        if self.loop.now < qs.ready:
            self.loop.schedule(qs.ready, partial(self._release_one, query_id))
            return
        self._deliver_now(qs, qs.pending.popleft())

    def _drain_query(self, query_id: int) -> None:
        """Deliver a query's released batch rows (batch plane)."""
        qs = self.queries.get(query_id)
        if qs is None or qs.detached:
            return
        if self.loop.now >= qs.drain_at:
            qs.drain_at = float("-inf")
        if not qs.pending_rel:
            return
        if self.loop.now < qs.ready:
            if qs.ready > qs.drain_at:
                qs.drain_at = qs.ready
                self.loop.schedule(
                    qs.ready, partial(self._drain_query, query_id)
                )
            return
        # a two-input query must consume its inputs in timestamp order:
        # rows of its *other* substream emitted before now may still sit
        # in a coalescing buffer (their flush is later) -- publish them
        # first so pending_rel holds every row that can precede the
        # released prefix (flushing early is always safe)
        for sid in qs.simq.substreams:
            if self._src_pending[sid]:
                self._flush_substream(sid)
        self._drain_ready(qs)

    def _drain_ready(self, qs: _QueryState) -> None:
        """Deliver the prefix of ``pending_rel`` whose release has come.

        Each row is accounted at ``max(release, ready)`` -- exactly when
        the scalar path's per-tuple release event would have delivered it
        (its event fires at ``release``, or is pushed to ``ready`` by a
        migration handoff pause).
        """
        now = self.loop.now
        if now < qs.ready:
            return
        pend = qs.pending_rel
        k = 0
        while k < len(pend) and pend[k][3] <= now:
            k += 1
        if not k:
            return
        rows = [(tup, max(release, qs.ready)) for _, _, tup, release in pend[:k]]
        del pend[:k]
        self._deliver_rows(qs, rows)

    def _deliver_rows(
        self, qs: _QueryState, rows: List[Tuple[StreamTuple, float]]
    ) -> None:
        """Deliver (tuple, delivery-time) rows as same-stream batches.

        For join-less plans (no window state, so scalar and batch pushes
        are freely interchangeable), single-row runs skip the columnar
        round trip: ``push_query`` is the same computation
        (bit-identical results and counters) without the batch assembly
        overhead, which matters when low traffic or frequent control
        events shrink batches to one row.  Join plans always go columnar
        -- their ``ColumnWindow`` state must see every row.
        """
        engine = self.engines[qs.host]
        scalar_ok = qs.plan.join is None
        i = 0
        while i < len(rows):
            j = i
            stream = rows[i][0].stream
            while j < len(rows) and rows[j][0].stream == stream:
                j += 1
            if scalar_ok and j - i == 1:
                tup, at = rows[i]
                self._account_results(
                    qs, tup, engine.push_query(qs.name, tup), at
                )
            else:
                batch = TupleBatch.from_tuples(
                    stream, [tup for tup, _ in rows[i:j]]
                )
                per_row = engine.push_query_batch(qs.name, batch)
                for (tup, at), results in zip(rows[i:j], per_row):
                    self._account_results(qs, tup, results, at)
            i = j

    def _deliver_now(self, qs: _QueryState, tup: StreamTuple) -> None:
        """Push one tuple into a query's plan and account its results."""
        results = self.engines[qs.host].push_query(qs.name, tup)
        self._account_results(qs, tup, results, self.loop.now)

    def _account_results(
        self,
        qs: _QueryState,
        tup: StreamTuple,
        results: List[StreamTuple],
        at: float,
    ) -> None:
        """Account one delivered tuple's results (latency, proxy traffic)."""
        if not results:
            return
        proxy = qs.simq.spec.proxy
        proxy_ms = 0.0
        if qs.host != proxy:
            proxy_ms = self.network.account_path(qs.host, proxy, float(len(results)))
        latency = (at - tup.timestamp) + proxy_ms / 1000.0
        for r in results:
            self._interval_results += 1
            qs.lat_sum += latency
            if latency > qs.lat_max:
                qs.lat_max = latency
            self.results_total += 1
            if self.record:
                qs.results.append(r)

    # ------------------------------------------------------------------
    # dynamics: churn, hot spots, adaptation, sampling
    # ------------------------------------------------------------------
    def _churn_arrival(self, churn: ChurnParams) -> None:
        simq = self.factory.make()
        host = self.cosmos.insert(simq.spec)
        self.add_query(simq, host)
        self.trace.mark(self.loop.now, "query_add", simq.name)
        lifetime = float(self.churn_rng.exponential(churn.mean_lifetime))
        self.loop.schedule(
            self.loop.now + lifetime,
            partial(self._churn_departure, simq.query_id),
        )
        nxt = self.loop.now + float(
            self.churn_rng.exponential(1.0 / churn.arrival_rate)
        )
        if nxt <= self.duration:
            self.loop.schedule(nxt, partial(self._churn_arrival, churn))

    def _churn_departure(self, query_id: int) -> None:
        qs = self.queries.get(query_id)
        if qs is None or not qs.alive:
            return
        self.trace.mark(self.loop.now, "query_remove", qs.name)
        self.cosmos.remove(query_id)
        self.remove_query(query_id)

    def _hotspot(self, substream_ids: List[int], factor: float) -> None:
        self._flush_batches()
        self.space.perturb_rates(substream_ids, factor)
        # restart each affected substream's emission chain at the new rate
        # (also revives chains whose next arrival had run past the horizon)
        for sid in substream_ids:
            self._emit_gen[sid] += 1
            rate = float(self.space.rates[sid])
            if rate > 1e-12:
                nxt = self.loop.now + float(
                    self.arrival_rng.exponential(1.0 / rate)
                )
                if nxt <= self.duration:
                    self.loop.schedule(
                        nxt, partial(self._emit, sid, self._emit_gen[sid])
                    )
        self.trace.mark(
            self.loop.now, "hotspot", f"{len(substream_ids)}x{factor:g}"
        )

    def _measured_loads(self, dt: float, counter: str) -> Dict[int, float]:
        """Per-query loads from engine CPU counters since the last round."""
        loads: Dict[int, float] = {}
        for query_id, qs in self.queries.items():
            if not qs.alive or qs.detached:
                continue
            cpu = qs.plan.cpu_cost()
            loads[query_id] = (cpu - getattr(qs, counter)) / dt
            setattr(qs, counter, cpu)
        return loads

    def _placement_stddev(self, loads: Dict[int, float]) -> float:
        per_host = np.zeros(len(self.processors))
        for query_id, load in loads.items():
            qs = self.queries[query_id]
            if not qs.alive:
                continue
            per_host[self._pindex[qs.host]] += load
        return float(np.std(per_host))

    def _adapt_round(self) -> None:
        """One Section 3.7 round driven by *measured* engine loads."""
        # measured loads must include every delivery the scalar plane
        # would have processed by now; migrations change hosts/tables
        self._flush_batches()
        dt = self.params.adapt_interval
        loads = self._measured_loads(dt, "cpu_at_adapt")
        if loads:
            stddev_before = self._placement_stddev(loads)
            cpu0 = self.cosmos.total_time()
            self.cosmos.refresh_measured_loads(loads)
            self.cosmos.adapt()
            moved = 0
            moved_state = 0.0
            moved_streams: set = set()
            for query_id in loads:
                qs = self.queries[query_id]
                new_host = self.cosmos.placement.get(query_id)
                if new_host is not None and new_host != qs.host:
                    moved_state += self._migrate(query_id, new_host)
                    moved += 1
                    moved_streams.update(qs.simq.streams)
            if moved:
                # only subscriptions overlapping a moved query's streams
                # can have been left with coverage holes
                self._refresh_subscriptions(streams=moved_streams)
            self.trace.adaptations.append(
                AdaptationMark(
                    t=self.loop.now,
                    stddev_before=stddev_before,
                    stddev_after=self._placement_stddev(loads),
                    migrated_queries=moved,
                    moved_state=moved_state,
                    optimizer_cpu_s=self.cosmos.total_time() - cpu0,
                )
            )
        nxt = self.loop.now + dt
        if nxt <= self.duration:
            self.loop.schedule(nxt, self._adapt_round)

    def _sample(self, closing: bool = False) -> None:
        # the sample must observe every delivery the scalar plane has
        # processed by this instant
        self._flush_batches()
        # actual elapsed interval: equals sample_interval for periodic
        # samples, but the closing sample covers only the drain tail
        dt = max(self.loop.now - self._last_sample_t, 1e-9)
        self._last_sample_t = self.loop.now
        loads = self._measured_loads(dt, "cpu_at_sample")
        n = self._interval_results
        # merge per-query latency accumulators in query-id order: one
        # canonical float summation order on both data planes
        lat_sum = 0.0
        lat_max = 0.0
        for query_id in sorted(self.queries):
            qs = self.queries[query_id]
            lat_sum += qs.lat_sum
            if qs.lat_max > lat_max:
                lat_max = qs.lat_max
            qs.lat_sum = 0.0
            qs.lat_max = 0.0
        self.trace.samples.append(
            TraceSample(
                t=self.loop.now if not closing else max(self.loop.now, self.duration),
                throughput=n / dt,
                mean_latency=lat_sum / n if n else 0.0,
                max_latency=lat_max,
                load_stddev=self._placement_stddev(loads),
                alive_queries=sum(1 for q in self.queries.values() if q.alive),
                migrations_total=self.migrations,
                data_bytes=float(sum(self.network.link_bytes.values())),
                control_bytes=float(sum(self.network.control_bytes.values())),
                results_total=self.results_total,
            )
        )
        self._interval_results = 0
        if not closing:
            nxt = self.loop.now + dt
            if nxt <= self.duration:
                self.loop.schedule(nxt, self._sample)

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule the initial event population."""
        for sid in range(len(self.space)):
            rate = float(self.space.rates[sid])
            if rate > 1e-12:
                first = float(self.arrival_rng.exponential(1.0 / rate))
                if first <= self.duration:
                    self.loop.schedule(first, partial(self._emit, sid, 0))
        if self.params.sample_interval <= self.duration:
            self.loop.schedule(self.params.sample_interval, self._sample)
        if (
            self.params.adapt_interval is not None
            and self.params.adapt_interval <= self.duration
        ):
            self.loop.schedule(self.params.adapt_interval, self._adapt_round)

    def run(self) -> None:
        """Run to the horizon, then drain in-flight deliveries."""
        self.loop.run_until(self.duration)
        self.loop.run()  # nothing reschedules past the horizon
        if self._interval_results:
            self._sample(closing=True)  # catch the drain tail


def run_scenario(
    *,
    seed: int = 0,
    topology: Optional[TransitStubParams] = None,
    num_sources: int = 4,
    num_processors: int = 8,
    workload: SimWorkloadParams = SimWorkloadParams(),
    scenario: ScenarioParams = ScenarioParams(),
    cosmos_config: Optional[CosmosConfig] = None,
    record: bool = False,
) -> SimReport:
    """Build a cluster and run one scenario end to end.

    Everything -- topology, role selection, substream space, query
    population, tuple arrivals, churn -- derives from ``seed`` via
    :class:`numpy.random.SeedSequence` spawns, so equal seeds give
    bit-identical :class:`SimReport` traces.  With ``record=True`` the
    report additionally carries the ordered action log and every
    query's result tuples, which :func:`oracle_results` can replay on a
    single engine for correctness checks.
    """
    spawned = np.random.SeedSequence(seed).spawn(8)
    rngs = [np.random.default_rng(s) for s in spawned]
    (topo_rng, roles_rng, space_rng, factory_rng,
     arrival_rng, value_rng, churn_rng, hotspot_rng) = rngs

    topo = generate_transit_stub(
        topology
        or TransitStubParams(
            transit_domains=2, transit_nodes=3,
            stubs_per_transit_node=2, stub_nodes=4,
        ),
        rng=topo_rng,
    )
    oracle = LatencyOracle(topo)
    sources, processors = select_roles(
        topo, num_sources, num_processors, rng=roles_rng
    )
    space = SubstreamSpace.random(
        workload.num_substreams,
        sources,
        rate_range=workload.rate_range,
        rng=space_rng,
    )
    factory = SimQueryFactory(space, processors, workload, factory_rng)
    initial = factory.make_batch(workload.num_queries)
    specs = [q.spec for q in initial]

    cosmos = Cosmos(
        oracle,
        processors,
        space,
        cosmos_config or CosmosConfig(k=4, vmax=60, seed=seed),
    )
    if scenario.initial_placement == "skewed":
        hosts = processors[: max(1, len(processors) // 8)]
        cosmos.adopt(
            specs,
            {q.query_id: hosts[i % len(hosts)] for i, q in enumerate(specs)},
        )
    elif scenario.initial_placement == "cosmos":
        cosmos.distribute(specs)
    else:
        raise ValueError(
            f"unknown initial placement {scenario.initial_placement!r}"
        )

    cluster = SimCluster(
        oracle=oracle,
        sources=sources,
        processors=processors,
        space=space,
        cosmos=cosmos,
        params=scenario,
        factory=factory,
        arrival_rng=arrival_rng,
        value_rng=value_rng,
        churn_rng=churn_rng,
        seed=seed,
        record=record,
    )
    for simq in initial:
        cluster.add_query(simq, cosmos.placement[simq.query_id])
    if scenario.churn is not None:
        first = float(churn_rng.exponential(1.0 / scenario.churn.arrival_rate))
        if first <= scenario.duration:
            cluster.loop.schedule(
                first, partial(cluster._churn_arrival, scenario.churn)
            )
    if scenario.hotspot is not None and scenario.hotspot.at <= scenario.duration:
        count = min(scenario.hotspot.substreams, len(space))
        chosen = [
            int(s)
            for s in hotspot_rng.choice(len(space), size=count, replace=False)
        ]
        cluster.loop.schedule(
            scenario.hotspot.at,
            partial(cluster._hotspot, chosen, scenario.hotspot.factor),
        )
    cluster.start()
    cluster.run()

    results = None
    link_bytes = None
    cpu_costs = None
    if record:
        results = {
            query_id: [dict(t.values) for t in qs.results]
            for query_id, qs in cluster.queries.items()
        }
        link_bytes = dict(cluster.network.link_bytes)
        cpu_costs = {
            query_id: qs.plan.cpu_cost()
            for query_id, qs in cluster.queries.items()
        }
    return SimReport(
        trace=cluster.trace,
        queries={qid: qs.simq for qid, qs in cluster.queries.items()},
        placement=dict(cosmos.placement),
        tuples_emitted=cluster.tuples_emitted,
        events_processed=cluster.loop.processed,
        results=results,
        actions=cluster.actions,
        link_bytes=link_bytes,
        cpu_costs=cpu_costs,
    )


def oracle_results(
    actions: List[Tuple[str, object]]
) -> Dict[int, List[Dict]]:
    """Replay a recorded action log on ONE engine hosting every query.

    The ground truth for distributed execution: since the cluster
    delivers each query's inputs in emission order (see the module
    docstring), pushing the same tuples in the same global order through
    a single engine must produce exactly the same result tuples per
    query, churn included.
    """
    engine = Engine()
    out: Dict[int, List[Dict]] = {}

    def _sink(bucket: List[Dict], t: StreamTuple) -> None:
        bucket.append(dict(t.values))

    for kind, payload in actions:
        if kind == "tuple":
            engine.push(payload)
        elif kind == "add":
            simq: SimQuery = payload
            engine.add_query(simq.ast, result_stream=f"out_{simq.name}")
            bucket: List[Dict] = []
            out[simq.query_id] = bucket
            engine.on_result(simq.name, partial(_sink, bucket))
        elif kind == "remove":
            engine.remove_query(payload.name)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown action kind {kind!r}")
    return out
