"""The discrete-event cluster simulator: COSMOS end to end.

Runs the whole middleware over simulated time: one
:class:`~repro.engine.executor.Engine` per processor, source tuples
generated per substream at the space's (possibly shifting) rates,
dissemination over the real content-based pub/sub overlay
(:class:`~repro.pubsub.network.PubSubNetwork` on a minimum-latency
spanning tree) with shortest-path transit delays, and the coordinator
hierarchy adapting placements from loads *measured* on the running
engines (Section 3.7/3.8 closed-loop, not the static estimates the
figure experiments use).

Correctness model
-----------------
A tuple emitted at time ``t`` reaches a query hosted at processor ``h``
after the overlay path latency; the engine processes each query's
inputs in timestamp order behind a per-query reordering slack equal to
the query's worst input-path delay (the standard out-of-order handling
of stream engines).  Because every query therefore consumes its inputs
in emission order, the distributed execution is *result-equivalent* to
a single giant engine hosting every query -- the oracle
(:func:`oracle_results`) the churn tests compare against.  Migrations
move the compiled plan object (window state included) between engines,
so adaptation rounds never lose or duplicate results; they only add the
state-handoff delay to the moved query's deliveries.

Determinism: all randomness flows from one ``numpy`` seed through
:class:`numpy.random.SeedSequence` spawns, and all timing through the
heap-based :class:`~repro.sim.events.EventLoop`, so two runs of the same
scenario produce bit-identical traces.

Data planes
-----------
With ``ScenarioParams.use_batches`` (the default) the tuple path runs
columnar: same-substream tuples emitted within one mean source
inter-arrival coalesce into a single
:meth:`~repro.pubsub.network.PubSubNetwork.publish_batch` (one
forwarding probe per hop per batch, link bytes accounted per row), and
released rows reach the engines as
:class:`~repro.engine.tuples.TupleBatch`\\ es through one drain event
per batch instead of one release event per tuple.  Emission events stay
per-tuple (the rng draw order defines the workload), every
control-plane event (churn, migration rounds, hot spots, sampling)
flushes the coalescing buffers first, and per-query deliveries stay in
timestamp order -- so traces, results, link traffic and CPU counters
are bit-identical to ``use_batches=False``, the per-tuple reference
plane (``tests/test_batch_parity.py``).
"""

from __future__ import annotations

import bisect
from collections import deque
from dataclasses import dataclass, field
from functools import partial
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from ..core.cosmos import Cosmos, CosmosConfig
from ..engine.executor import Engine
from ..obs.observer import Observer
from ..engine.plans import QueryPlan
from ..engine.tuples import StreamTuple, TupleBatch
from ..pubsub.messages import Event
from ..pubsub.network import PubSubNetwork
from ..pubsub.subscriptions import Subscription
from ..topology.latency import LatencyOracle, select_roles
from ..topology.overlay import minimum_latency_spanning_tree
from ..topology.transit_stub import TransitStubParams, generate_transit_stub
from ..query.interest import SubstreamSpace
from .events import EventLoop
from .trace import AdaptationMark, SimTrace, TraceSample
from .workload import (
    VALUE_DOMAIN,
    SimQuery,
    SimQueryFactory,
    SimWorkloadParams,
    stream_name,
)

__all__ = [
    "ChurnParams",
    "HotSpotShift",
    "ScenarioParams",
    "SimCluster",
    "SimReport",
    "run_scenario",
    "oracle_results",
]


@dataclass(frozen=True)
class ChurnParams:
    """Query arrival/departure process (both exponential)."""

    arrival_rate: float = 0.5  # queries per second
    mean_lifetime: float = 20.0  # seconds


@dataclass(frozen=True)
class HotSpotShift:
    """A runtime rate perturbation: ``substreams`` random substreams get
    their rates multiplied by ``factor`` at time ``at`` (Figure 10's I/D
    steps, driven from inside the simulation)."""

    at: float = 15.0
    substreams: int = 10
    factor: float = 3.0


@dataclass(frozen=True)
class ScenarioParams:
    """Run-level knobs of a simulation scenario."""

    duration: float = 30.0
    sample_interval: float = 5.0
    #: period of Section 3.7 adaptation rounds (None disables adaptation)
    adapt_interval: Optional[float] = 10.0
    #: "cosmos" = Algorithm 1+2 initial distribution; "skewed" = pile the
    #: initial queries on a few processors (the Figure 7 adopt scenario)
    initial_placement: str = "cosmos"
    churn: Optional[ChurnParams] = None
    hotspot: Optional[HotSpotShift] = None
    #: per-state-tuple serialisation cost added to a migration's handoff
    handoff_ms_per_tuple: float = 0.05
    #: route dissemination through the counting forwarding index (False =
    #: the reference scan path; traces must be identical either way)
    use_index: bool = True
    #: coalesce same-substream tuples emitted within one source
    #: inter-arrival window into a single batch publish + batched engine
    #: deliveries (False = the per-tuple scalar data plane; full-run
    #: traces, results, link traffic and cpu_costs must be identical
    #: either way)
    use_batches: bool = True
    #: shared multi-query execution (Section 2): per-processor groups of
    #: overlapping queries execute ONE merged superset plan, with
    #: ``p^1`` source subscriptions carrying the merged filters for early
    #: dropping and per-member ``p^2`` split subscriptions carving each
    #: user's results out of the group result stream at the proxies.
    #: ``False`` (the default) is the unshared plane, bit-identical to
    #: the pre-sharing simulator; ``True`` must still deliver exactly the
    #: per-user-query results of the single-engine oracle.
    use_sharing: bool = False
    #: scheduled fault/membership events (see :mod:`repro.sim.faults`);
    #: the empty default leaves every existing trace bit-identical
    faults: Tuple[object, ...] = ()
    #: recovery policy name (key of ``RECOVERY_POLICIES``)
    recovery: str = "checkpoint"
    #: period of window-state checkpoints to the hierarchy root (None
    #: disables checkpointing; crashes then restore into empty windows)
    checkpoint_interval: Optional[float] = None
    #: extra processors selected but kept outside the initial membership,
    #: available to :class:`~repro.sim.faults.ProcessorJoin` events
    spare_processors: int = 0
    #: delta-maintained optimizer state across adaptation rounds (False
    #: selects the full-rebuild reference mode; placements are
    #: bit-identical either way)
    opt_incremental: bool = True


@dataclass
class _QueryState:
    """Runtime state of one query inside the cluster.

    On the shared plane (``use_sharing=True``) a query does not own a
    plan or a source subscription -- its group does -- so ``sub``/``plan``
    stay ``None`` and the sharing fields at the bottom point at the
    group and the member's ``p^2`` result subscription instead.
    """

    simq: SimQuery
    host: int
    sub: Optional[Subscription]
    plan: Optional[QueryPlan]
    #: reordering slack: worst input-path delay (seconds)
    slack: float
    #: release time assigned to the latest delivered tuple (monotone)
    last_release: float = 0.0
    #: batch plane: ``last_release`` as of the last control-plane event.
    #: Within a control-free window the scalar release chain collapses to
    #: ``max(ts + slack, release_floor)`` per row (timestamps are merged
    #: in order, so earlier chain links never dominate), which makes the
    #: release of a row independent of *publish* order -- coalesced
    #: batches of different substreams may publish out of timestamp order
    last_release_floor: float = 0.0
    #: earliest time deliveries may resume after a migration handoff
    ready: float = 0.0
    #: scalar-plane pending deliveries: (tuple, release) in FIFO order;
    #: releases are non-decreasing, and keeping them lets a release event
    #: verify the head's time really has come (a force-drain can leave
    #: stale events behind)
    pending: Deque[Tuple[StreamTuple, float]] = field(default_factory=deque)
    #: batch-mode pending deliveries: (timestamp, emit seq, tuple,
    #: release) kept sorted by (timestamp, seq) -- the order the scalar
    #: path delivers in.  Release times are non-decreasing along it.
    pending_rel: List[Tuple[float, int, StreamTuple, float]] = field(
        default_factory=list
    )
    #: latest scheduled (not yet fired) drain event time, for dedup: a
    #: pending drain at T delivers every row with release <= T, so no
    #: extra event is needed for rows releasing at or before T
    drain_at: float = float("-inf")
    alive: bool = True
    detached: bool = False
    cpu_at_sample: int = 0
    cpu_at_adapt: int = 0
    results: List[StreamTuple] = field(default_factory=list)
    #: per-query latency accumulators for the current sample interval;
    #: merged in query-id order at each sample so the scalar and batch
    #: paths sum floats in one canonical order
    lat_sum: float = 0.0
    lat_max: float = 0.0
    #: shared plane: the group this member executes in
    group: Optional[int] = None
    #: shared plane: the member's ``p^2`` split result subscription
    result_sub: Optional[Subscription] = None
    #: shared plane: when the member joined (its carve's lower time bound)
    added_at: float = 0.0

    @property
    def name(self) -> str:
        return self.simq.name

    @property
    def substreams(self) -> Tuple[int, ...]:
        """Input substreams (delivery units expose these uniformly)."""
        return self.simq.substreams


@dataclass
class _GroupState:
    """One shared group: the delivery unit of the shared data plane.

    Carries exactly the release/drain machinery a :class:`_QueryState`
    carries on the unshared plane (the event-loop delivery code treats
    either as its "unit"), plus the merged plan and the subscription
    bookkeeping of the group.  All members of a group read the *same*
    streams (mergeability requires aligned bindings), so one reordering
    slack and one release chain serve the whole group.
    """

    gid: int
    host: int
    #: the merged superset query the plan executes.  Monotone: it only
    #: ever *widens* (member joins widen the plan in place; member
    #: departures must not narrow it, because the join-window state the
    #: survivors still need was built under the wide version).
    executed: Query
    plan: QueryPlan
    result_stream: str
    #: current advertisement of ``result_stream`` (re-issued on migration)
    adv: object
    #: live member query ids, join order
    members: List[int] = field(default_factory=list)
    #: every query id that ever executed here (CPU attribution at report)
    all_members: List[int] = field(default_factory=list)
    #: input substreams, founder binding order
    substreams: Tuple[int, ...] = ()
    streams: Tuple[str, ...] = ()
    #: installed ``p^1`` source subscriptions (merged filters)
    p1_subs: List[Subscription] = field(default_factory=list)
    slack: float = 0.0
    last_release: float = 0.0
    last_release_floor: float = 0.0
    ready: float = 0.0
    pending: Deque[Tuple[StreamTuple, float]] = field(default_factory=deque)
    pending_rel: List[Tuple[float, int, StreamTuple, float]] = field(
        default_factory=list
    )
    drain_at: float = float("-inf")
    alive: bool = True
    detached: bool = False
    #: engine CPU counter snapshots (per-group; shares attributed to members)
    cpu_at_sample: int = 0
    cpu_at_adapt: int = 0

    @property
    def name(self) -> str:
        return self.plan.query.name


@dataclass
class SimReport:
    """Everything a scenario run produced."""

    trace: SimTrace
    queries: Dict[int, SimQuery]
    placement: Dict[int, int]
    tuples_emitted: int
    events_processed: int
    #: per-query result tuple values, only when ``record=True``
    results: Optional[Dict[int, List[Dict]]] = None
    #: ordered action log (tuple / add / remove), only when ``record=True``
    actions: Optional[List[Tuple[str, object]]] = None
    #: final per-link data traffic, only when ``record=True``
    link_bytes: Optional[Dict[Tuple[int, int], float]] = None
    #: final per-query engine CPU counters, only when ``record=True``.
    #: On the shared plane these are per-group totals attributed equally
    #: to every query that ever executed in the group (floats).
    cpu_costs: Optional[Dict[int, float]] = None
    #: user queries submitted over the whole run
    user_queries: int = 0
    #: plans that actually executed: equals ``user_queries`` on the
    #: unshared plane, the number of shared groups with ``use_sharing``
    executed_queries: int = 0
    #: ordered fault/membership/recovery log (empty without faults)
    fault_log: List[Dict] = field(default_factory=list)


class SimCluster:
    """Engines + pub/sub + coordinator tree under one event loop."""

    def __init__(
        self,
        *,
        oracle: LatencyOracle,
        sources: List[int],
        processors: List[int],
        space: SubstreamSpace,
        cosmos: Cosmos,
        params: ScenarioParams,
        factory: SimQueryFactory,
        arrival_rng: np.random.Generator,
        value_rng: np.random.Generator,
        churn_rng: Optional[np.random.Generator] = None,
        fault_rng: Optional[np.random.Generator] = None,
        spares: Optional[List[int]] = None,
        seed: int = 0,
        record: bool = False,
        observer: Optional[Observer] = None,
    ):
        self.oracle = oracle
        self.sources = list(sources)
        self.processors = list(processors)
        self.space = space
        self.cosmos = cosmos
        self.params = params
        self.factory = factory
        self.arrival_rng = arrival_rng
        self.value_rng = value_rng
        self.churn_rng = churn_rng
        self.spares = list(spares or [])
        self.record = record

        self.loop = EventLoop()
        #: optional :class:`repro.obs.Observer`.  Read-only taps: spans,
        #: metrics and profiler sections all consume state the simulation
        #: computes anyway, so ``obs`` never changes a run's behaviour.
        #: Wired before the network exists so even construction-time
        #: broker activity (source advertisements) is metered.
        self.obs = observer
        if observer is not None:
            self.loop.profiler = observer.profiler
        self.trace = SimTrace(seed=seed)
        overlay = minimum_latency_spanning_tree(
            self.sources + self.processors + self.spares, oracle
        )
        self.network = PubSubNetwork(
            overlay, record_deliveries=False, use_index=params.use_index
        )
        self.network.observer = observer
        from ..pubsub.subscriptions import Advertisement

        for sid in range(len(space)):
            self.network.advertise(
                int(space.source_of[sid]), Advertisement(stream=stream_name(sid))
            )
        self.engines: Dict[int, Engine] = {
            p: Engine(node=p, use_batches=params.use_batches)
            for p in self.processors
        }
        self.queries: Dict[int, _QueryState] = {}
        self._by_sub: Dict[int, int] = {}
        #: shared plane state.  Source deliveries resolve through
        #: ``_by_sub`` to a *delivery unit* id -- a query id on the
        #: unshared plane, a group id (``_by_sub`` maps ``p^1`` sub ids)
        #: on the shared one -- and ``_units`` is the matching dict, so
        #: the release/drain machinery is identical on both planes.
        self._sharing = params.use_sharing
        self.groups: Dict[int, _GroupState] = {}
        self._units: Dict[int, object] = self.groups if self._sharing else self.queries
        self._next_gid = 0
        self._host_groups: Dict[int, List[int]] = {}
        #: ``p^2`` result subscription id -> member query id
        self._by_result_sub: Dict[int, int] = {}
        #: group id -> member query ids with an installed ``p^2`` sub
        #: (join order; departed members linger until their carve drains)
        self._res_listeners: Dict[int, List[int]] = {}
        #: memoised dissemination routes (shared plane): per-row content
        #: matching against every candidate subscription with per-link
        #: traffic charged on the union of paths to the accepting nodes
        #: -- the exact deliveries and byte counts of the hop-by-hop
        #: walk, minus the per-event tree traversal.  ``_route_fast``
        #: stays on; the parity tests flip it to pin the equivalence.
        #: Fault scenarios force the hop-by-hop reference: the memoised
        #: route bypasses broker tables, so it cannot observe a wiped
        #: broker (BrokerLoss) or a partitioned link.
        self._route_fast = not params.faults
        #: substream -> (network version, [(host, compiled matcher, gid)])
        self._src_route: Dict[int, Tuple[int, List[Tuple[int, object, int]]]] = {}
        self._edge_paths: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        #: sub_id -> compiled membership test (fast path of Filter.matches)
        self._match_fns: Dict[int, object] = {}
        self._pindex = {p: i for i, p in enumerate(self.processors)}
        self._path_ms: Dict[Tuple[int, int], float] = {}
        self._emit_gen: List[int] = [0] * len(space)

        self.duration = params.duration
        self.tuples_emitted = 0
        self.results_total = 0
        self.migrations = 0
        self._interval_results = 0
        self._last_sample_t = 0.0
        self.actions: Optional[List[Tuple[str, object]]] = [] if record else None

        #: batch data plane: per-substream (emit seq, tuple) rows awaiting
        #: the coalesced publish, plus stats on coalescing effectiveness
        self._batching = params.use_batches
        self._src_pending: List[List[Tuple[int, StreamTuple]]] = [
            [] for _ in range(len(space))
        ]
        self._emit_seq = 0
        self.batch_publishes = 0

        #: ordered fault/membership/recovery log (always present; empty
        #: without configured faults)
        self.fault_log: List[Dict] = []
        self.faults = None
        if params.faults or params.checkpoint_interval is not None:
            from .faults import FaultInjector

            self.faults = FaultInjector(self, fault_rng, params)

    # ------------------------------------------------------------------
    # latency helpers
    # ------------------------------------------------------------------
    def _path_latency_ms(self, u: int, v: int) -> float:
        """Overlay path latency (ms) between two overlay nodes, cached."""
        if u == v:
            return 0.0
        key = (u, v) if u < v else (v, u)
        lat = self._path_ms.get(key)
        if lat is None:
            lat = self.network.tree.path_latency(u, v)
            self._path_ms[key] = lat
        return lat

    def _slack(self, simq: SimQuery, host: int) -> float:
        """Reordering slack (s): the query's worst input transit delay."""
        return max(
            self._path_latency_ms(int(self.space.source_of[sid]), host)
            for sid in simq.substreams
        ) / 1000.0

    # ------------------------------------------------------------------
    # query lifecycle
    # ------------------------------------------------------------------
    def add_query(self, simq: SimQuery, host: int) -> _QueryState:
        """Install a query on its host engine and subscribe its inputs."""
        if self._sharing:
            return self._shared_add(simq, host)
        # the new subscription changes routing tables: coalesced batches
        # emitted under the old tables must be published first
        self._flush_batches()
        engine = self.engines[host]
        plan = engine.add_query(simq.ast, result_stream=f"out_{simq.name}")
        sub = Subscription.to_streams(simq.streams)
        self.network.subscribe(host, sub)
        qs = _QueryState(
            simq=simq,
            host=host,
            sub=sub,
            plan=plan,
            slack=self._slack(simq, host),
            last_release=self.loop.now,
            last_release_floor=self.loop.now,
        )
        self.queries[simq.query_id] = qs
        self._by_sub[sub.sub_id] = simq.query_id
        if self.actions is not None:
            self.actions.append(("add", simq))
        return qs

    # ------------------------------------------------------------------
    # shared plane: group lifecycle
    # ------------------------------------------------------------------
    def _shared_add(self, simq: SimQuery, host: int) -> _QueryState:
        """Install a query into a shared group on ``host``.

        The query joins the first live group on its host it is mergeable
        with (widening the group's plan *in place*, so existing window
        state survives) or founds a new one.  The member's ``p^2`` split
        subscription carves its results out of the group result stream at
        its proxy; the carve carries a lower time bound at ``now`` so the
        member never receives results derived from inputs that predate it
        (its own freshly-compiled plan would have started with empty
        windows -- the single-engine oracle semantics).
        """
        from ..query.merging import merge_all, merge_queries, mergeable, split_subscription

        self._flush_batches()
        now = self.loop.now
        replaced = 0
        gs: Optional[_GroupState] = None
        for gid in self._host_groups.get(host, ()):
            cand = self.groups[gid]
            if cand.alive and mergeable(cand.executed, simq.ast):
                gs = cand
                break
        if gs is None:
            gs = self._found_group(simq, host)
        else:
            widened = merge_queries(gs.executed, simq.ast, name=gs.name)
            gs.plan.widen_to(widened)
            gs.executed = widened
            gs.members.append(simq.query_id)
            gs.all_members.append(simq.query_id)
            # merged filters may have weakened: replace the p^1 set (old
            # set torn down first) and repair covering holes the
            # teardown opened for other groups on the same streams.  The
            # filters track the *live* members' hull -- tighter than the
            # monotone executed query whenever departures narrowed it
            self._install_p1(
                gs,
                query=merge_all(
                    [self.queries[qid].simq.ast for qid in gs.members[:-1]]
                    + [simq.ast],
                    name=gs.name,
                ),
            )
            # existing members' carves were built against the previous
            # merged query; windows that just grew past a member's own
            # window need a (new) timestamp_lag band, so recompute them.
            # Once the group's hull stabilises the recomputed carve is
            # unchanged and the member keeps its installed subscription.
            for qid in gs.members[:-1]:
                mqs = self.queries[qid]
                carve = split_subscription(
                    gs.executed, mqs.simq.ast, gs.result_stream,
                    emitted_after=mqs.added_at,
                )
                old = mqs.result_sub
                if (
                    old is not None
                    and old.streams == carve.streams
                    and old.projection == carve.projection
                    and old.filter == carve.filter
                ):
                    continue
                self._replace_result_sub(mqs, carve)
                replaced += 1
        qs = _QueryState(
            simq=simq,
            host=host,
            sub=None,
            plan=None,
            slack=gs.slack,
            last_release=now,
            last_release_floor=now,
            group=gs.gid,
            added_at=now,
        )
        self.queries[simq.query_id] = qs
        self._replace_result_sub(
            qs,
            split_subscription(
                gs.executed, simq.ast, gs.result_stream, emitted_after=now
            ),
        )
        # replacing subscriptions tears old ones down one at a time; when
        # that happened, one forced pass over the group's installed p^2
        # set (departed members' capped carves included -- they listen
        # until their drain) closes any covering hole a removal opened
        if replaced:
            for qid in self._res_listeners.get(gs.gid, ()):
                mqs = self.queries[qid]
                self.network.subscribe(
                    mqs.simq.spec.proxy, mqs.result_sub, force=True
                )
        if self.actions is not None:
            self.actions.append(("add", simq))
        return qs

    def _found_group(self, simq: SimQuery, host: int) -> _GroupState:
        """Create a fresh group executing ``simq`` alone."""
        from ..pubsub.subscriptions import Advertisement
        from ..query.ast import Query as QueryAst

        gid = self._next_gid
        self._next_gid += 1
        name = f"shared_g{gid}"
        executed = QueryAst(
            select=simq.ast.select,
            bindings=simq.ast.bindings,
            where=simq.ast.where,
            name=name,
        )
        result_stream = f"shared::{gid}"
        engine = self.engines[host]
        plan = engine.add_query(executed, result_stream=result_stream)
        adv = Advertisement(stream=result_stream)
        self.network.advertise(host, adv)
        gs = _GroupState(
            gid=gid,
            host=host,
            executed=executed,
            plan=plan,
            result_stream=result_stream,
            adv=adv,
            members=[simq.query_id],
            all_members=[simq.query_id],
            substreams=simq.substreams,
            streams=simq.streams,
            slack=self._slack(simq, host),
            last_release=self.loop.now,
            last_release_floor=self.loop.now,
        )
        self.groups[gid] = gs
        self._host_groups.setdefault(host, []).append(gid)
        self._install_p1(gs)
        return gs

    def _install_p1(self, gs: _GroupState, query=None) -> None:
        """(Re)install a group's ``p^1`` set; old subscriptions go first.

        ``query`` defaults to the group's executed query; departures pass
        the survivors' (narrower) hull instead.  Leaving the stale set
        installed would accumulate subscriptions on the processor forever
        and, whenever a re-merge narrows the hull, keep pulling tuples
        nobody needs.  The teardown can open covering holes for other
        groups' subscriptions on the same streams, so they are repaired
        by forced re-propagation.  A re-merge that leaves every filter
        where it was (the common case once a group's hull stabilises) is
        a no-op: nothing is torn down, so nothing needs repair.
        """
        from ..query.merging import source_subscriptions

        fresh = source_subscriptions(query if query is not None else gs.executed)
        if len(fresh) == len(gs.p1_subs) and all(
            old.streams == new.streams
            and old.projection == new.projection
            and old.filter == new.filter
            for old, new in zip(gs.p1_subs, fresh)
        ):
            return
        had_old = bool(gs.p1_subs)
        touched = set(gs.streams)
        for sub in gs.p1_subs:
            self.network.unsubscribe(sub.sub_id)
            self._by_sub.pop(sub.sub_id, None)
            self._match_fns.pop(sub.sub_id, None)
        gs.p1_subs = fresh
        for sub in gs.p1_subs:
            self.network.subscribe(gs.host, sub)
            self._by_sub[sub.sub_id] = gs.gid
        if had_old:
            self._refresh_subscriptions(streams=touched)

    def _replace_result_sub(self, qs: _QueryState, sub: Subscription) -> None:
        """Swap a member's ``p^2`` subscription for ``sub`` at its proxy."""
        if qs.result_sub is not None:
            self.network.unsubscribe(qs.result_sub.sub_id)
            self._by_result_sub.pop(qs.result_sub.sub_id, None)
            self._match_fns.pop(qs.result_sub.sub_id, None)
        qs.result_sub = sub
        self._by_result_sub[sub.sub_id] = qs.simq.query_id
        listeners = self._res_listeners.setdefault(qs.group, [])
        if qs.simq.query_id not in listeners:
            listeners.append(qs.simq.query_id)
        self.network.subscribe(qs.simq.spec.proxy, sub)

    def _shared_remove(self, query_id: int) -> None:
        """Member departure on the shared plane.

        The member's carve gets an upper time bound at ``now`` (results
        derived from later inputs belong only to the survivors), its
        group's membership shrinks -- the merged plan itself stays wide:
        narrowing it would rebuild operators and lose the window state
        the survivors still need -- and the ``p^1`` filters narrow to the
        survivors' hull.  The capped subscription is finally torn down
        once every input emitted before the departure has drained.
        """
        from ..query.merging import merge_all, split_subscription

        qs = self.queries[query_id]
        if not qs.alive:
            return
        self._flush_batches()
        now = self.loop.now
        qs.alive = False
        gs = self.groups[qs.group]
        self._annotate_pending(
            gs, "query_remove", query=query_id, group=gs.gid
        )
        if self.actions is not None:
            self.actions.append(("remove", qs.simq))
        self._replace_result_sub(
            qs,
            split_subscription(
                gs.executed, qs.simq.ast, gs.result_stream,
                emitted_after=qs.added_at, emitted_before=now,
            ),
        )
        # the cap tore the member's old subscription down: repair any
        # covering hole that opened for the group's other listeners
        for qid in self._res_listeners.get(gs.gid, ()):
            if qid == query_id:
                continue
            lqs = self.queries[qid]
            self.network.subscribe(
                lqs.simq.spec.proxy, lqs.result_sub, force=True
            )
        gs.members.remove(query_id)
        if gs.members:
            # p^1 filters narrow to the survivors' hull; the plan's own
            # (wider) select keeps running -- tuples the narrowed filters
            # drop cannot contribute to any survivor's carved results
            survivors = merge_all(
                [self.queries[qid].simq.ast for qid in gs.members],
                name=gs.name,
            )
            self._install_p1(gs, query=survivors)
            self.loop.schedule(
                max(now, gs.last_release),
                partial(self._shared_detach_member, query_id),
            )
        else:
            # last member out: the group retires with it
            gs.alive = False
            for sub in gs.p1_subs:
                self.network.unsubscribe(sub.sub_id)
                self._by_sub.pop(sub.sub_id, None)
                self._match_fns.pop(sub.sub_id, None)
            gs.p1_subs = []
            self._refresh_subscriptions(streams=set(gs.streams))
            self.loop.schedule(
                max(now, gs.last_release),
                partial(self._shared_detach_group, gs.gid),
            )
            self.loop.schedule(
                max(now, gs.last_release),
                partial(self._shared_detach_member, query_id),
            )

    def _shared_detach_member(self, query_id: int) -> None:
        """Finish a member departure once its group drained.

        Mirrors :meth:`_detach`: inputs emitted before the departure may
        still sit in the group's pending buffers when a migration pause
        pushed their release events to this very instant but behind this
        event in the queue -- deliver them first (later inputs ride along
        early; the departed member's upper time bound keeps them out of
        its carve, and survivors receive identical content either way).
        """
        qs = self.queries[query_id]
        if qs.detached:
            return
        gs = self.groups[qs.group]
        if not gs.detached:
            self._drain_unit_completely(gs)
        qs.detached = True
        if qs.result_sub is not None:
            self.network.unsubscribe(qs.result_sub.sub_id)
            self._by_result_sub.pop(qs.result_sub.sub_id, None)
            self._match_fns.pop(qs.result_sub.sub_id, None)
            qs.result_sub = None
        listeners = self._res_listeners.get(qs.group)
        if listeners and query_id in listeners:
            listeners.remove(query_id)

    def _shared_detach_group(self, gid: int) -> None:
        """Tear a retired group down after its drain: deliver what is in
        flight, remove the merged plan, retire the result stream."""
        gs = self.groups[gid]
        if gs.detached:
            return
        self._drain_unit_completely(gs)
        gs.detached = True
        plan = self.engines[gs.host].remove_query(gs.name)
        if self.obs is not None:
            self.obs.plan_retired(gs.host, gs.name, plan)
        self.network.unadvertise(gs.adv.adv_id)
        host_list = self._host_groups.get(gs.host)
        if host_list and gid in host_list:
            host_list.remove(gid)

    def _drain_unit_completely(self, unit) -> None:
        """Deliver everything pending on a unit, releases regardless."""
        while unit.pending:
            self._deliver_now(unit, unit.pending.popleft()[0])
        if unit.pending_rel:
            rows = [(t, self.loop.now) for _, _, t, _ in unit.pending_rel]
            unit.pending_rel.clear()
            self._deliver_rows(unit, rows)

    def remove_query(self, query_id: int) -> None:
        """Query departure: stop deliveries now, detach after the drain.

        The subscription is torn down immediately (no new tuples), but
        the plan stays on its engine until every already-delivered tuple
        has been processed, so the distributed run emits exactly the
        results a single-engine oracle does for the same action order.
        """
        if self._sharing:
            self._shared_remove(query_id)
            return
        qs = self.queries[query_id]
        if not qs.alive:
            return
        self._flush_batches()
        qs.alive = False
        self._annotate_pending(qs, "query_remove", query=query_id)
        if self.actions is not None:
            self.actions.append(("remove", qs.simq))
        self.network.unsubscribe(qs.sub.sub_id)
        self._by_sub.pop(qs.sub.sub_id, None)
        self._refresh_subscriptions(streams=set(qs.simq.streams))
        self.loop.schedule(
            max(self.loop.now, qs.last_release), partial(self._detach, query_id)
        )

    def _detach(self, query_id: int) -> None:
        qs = self.queries[query_id]
        if qs.detached:
            return
        # deliver anything still in flight first: a migration can push
        # last_release past already-scheduled release events, making them
        # fire (rescheduled) at the same instant as this detach but after
        # it in the queue -- dropping them would diverge from the oracle,
        # which processes every tuple emitted before the departure
        while qs.pending:
            self._deliver_now(qs, qs.pending.popleft()[0])
        if qs.pending_rel:
            # batch mode: rows still pending here were paused past their
            # release (migration handoff) -- the scalar plane's detach
            # loop above delivers exactly those at loop.now as well
            rows = [(t, self.loop.now) for _, _, t, _ in qs.pending_rel]
            qs.pending_rel.clear()
            self._deliver_rows(qs, rows)
        qs.detached = True
        plan = self.engines[qs.host].remove_query(qs.name)
        if self.obs is not None:
            self.obs.plan_retired(qs.host, qs.name, plan)

    def _refresh_subscriptions(self, streams: Optional[set] = None) -> None:
        """Re-propagate live subscriptions (optionally: only those sharing
        a stream with ``streams``).

        Covering-based tables prune a subscription whose propagation an
        identical earlier one made redundant; when that earlier one is
        torn down (migration, departure) the pruned path must be
        re-announced.  Re-subscribing is idempotent, so this simply fills
        the gaps the removal opened.  On the shared plane the live source
        subscriptions are the groups' ``p^1`` sets.
        """
        if self._sharing:
            for gid in sorted(self.groups):
                gs = self.groups[gid]
                if not gs.alive or gs.detached:
                    continue
                if streams is not None and not (streams & set(gs.streams)):
                    continue
                for sub in gs.p1_subs:
                    self.network.subscribe(gs.host, sub, force=True)
            return
        for qs in self.queries.values():
            if not qs.alive or qs.detached:
                continue
            if streams is not None and not (streams & set(qs.simq.streams)):
                continue
            self.network.subscribe(qs.host, qs.sub, force=True)

    def _annotate_pending(self, unit, kind: str, **fields) -> None:
        """Annotate the spans of every tuple still queued on ``unit``.

        Lifecycle events (migration, crash, removal) touch tuples that
        are in flight; their provenance spans record the event so a
        reader can see why a delivery was delayed or lost.
        """
        obs = self.obs
        if obs is None or obs.spans is None:
            return
        spans = obs.spans
        now = self.loop.now
        for tup, _release in unit.pending:
            spans.annotate(tup, kind, now, **fields)
        for _ts, _seq, tup, _release in unit.pending_rel:
            spans.annotate(tup, kind, now, **fields)

    def _migrate(self, query_id: int, new_host: int) -> float:
        """Move a query's plan (state included) to ``new_host``.

        Charges the overlay for the state transfer and pauses the query's
        deliveries for the handoff delay; returns the state size moved.
        """
        qs = self.queries[query_id]
        old = qs.host
        self._annotate_pending(qs, "migrate", query=query_id, src=old,
                               dst=new_host)
        plan = self.engines[old].remove_query(qs.name)
        self.engines[new_host].adopt_plan(plan)
        self.network.unsubscribe(qs.sub.sub_id)
        qs.host = new_host
        self.network.subscribe(new_host, qs.sub)
        qs.slack = self._slack(qs.simq, new_host)
        state_tuples = float(plan.state_size())
        lat_ms = self.network.account_path(old, new_host, max(1.0, state_tuples))
        handoff_s = (
            lat_ms + state_tuples * self.params.handoff_ms_per_tuple
        ) / 1000.0
        qs.ready = self.loop.now + handoff_s
        qs.last_release = max(qs.last_release, qs.ready)
        # a migration is a control-plane event: every already-emitted row
        # has been published (the adapt round flushed), so the scalar
        # release chain restarts from the bumped value
        qs.last_release_floor = qs.last_release
        self.migrations += 1
        return state_tuples

    def _migrate_group(self, gid: int, new_host: int) -> float:
        """Move a whole shared group -- plan, state, subscriptions.

        A merged plan is one unit of window state: its members execute
        together or not at all, so adaptation moves the group wholesale.
        The result stream is re-homed (old advertisement retired, a fresh
        one flooded from the new host) and every member's ``p^2``
        subscription re-propagates toward it with ``force=True``; the
        handoff pauses the *group's* deliveries, exactly like a
        single-query migration pauses one query.
        """
        from ..pubsub.subscriptions import Advertisement

        gs = self.groups[gid]
        old = gs.host
        self._annotate_pending(gs, "migrate", group=gid, src=old,
                               dst=new_host)
        plan = self.engines[old].remove_query(gs.name)
        self.engines[new_host].adopt_plan(plan)
        for sub in gs.p1_subs:
            self.network.unsubscribe(sub.sub_id)
            self._by_sub.pop(sub.sub_id, None)
        gs.host = new_host
        for sub in gs.p1_subs:
            self.network.subscribe(new_host, sub)
            self._by_sub[sub.sub_id] = gid
        self.network.unadvertise(gs.adv.adv_id)
        gs.adv = Advertisement(stream=gs.result_stream)
        self.network.advertise(new_host, gs.adv)
        for qid in gs.members:
            mqs = self.queries[qid]
            mqs.host = new_host
            self.network.subscribe(
                mqs.simq.spec.proxy, mqs.result_sub, force=True
            )
        gs.slack = max(
            self._path_latency_ms(int(self.space.source_of[sid]), new_host)
            for sid in gs.substreams
        ) / 1000.0
        state_tuples = float(plan.state_size())
        lat_ms = self.network.account_path(old, new_host, max(1.0, state_tuples))
        handoff_s = (
            lat_ms + state_tuples * self.params.handoff_ms_per_tuple
        ) / 1000.0
        gs.ready = self.loop.now + handoff_s
        gs.last_release = max(gs.last_release, gs.ready)
        gs.last_release_floor = gs.last_release
        self.migrations += 1
        host_list = self._host_groups.get(old)
        if host_list and gid in host_list:
            host_list.remove(gid)
        self._host_groups.setdefault(new_host, []).append(gid)
        return state_tuples

    # ------------------------------------------------------------------
    # data plane
    # ------------------------------------------------------------------
    def _emit(self, sid: int, gen: int) -> None:
        """One source tuple of substream ``sid``; reschedules itself.

        ``gen`` is the substream's emission-chain generation: a hot-spot
        shift bumps it and starts a fresh chain at the new rate, which
        both revives substreams whose chain had run past the horizon and
        applies the new rate immediately; the superseded chain sees the
        stale generation and dies here.

        On the batch data plane the tuple is not published here: it joins
        the substream's coalescing buffer, and the buffer's first row
        schedules the batch publish one mean inter-arrival later
        (:meth:`_flush_substream`).  Drawing values/arrivals stays in
        this per-tuple event so the rng consumption order -- and hence
        every generated tuple -- is identical on both planes.
        """
        if gen != self._emit_gen[sid]:
            return
        t = self.loop.now
        tup = StreamTuple(
            stream_name(sid),
            {
                "value": int(self.value_rng.integers(0, VALUE_DOMAIN)),
                "timestamp": t,
            },
        )
        if self.actions is not None:
            self.actions.append(("tuple", tup))
        rate = float(self.space.rates[sid])
        self._emit_seq += 1
        obs = self.obs
        if (
            obs is not None
            and obs.spans is not None
            and obs.spans.wants(self._emit_seq)
        ):
            obs.spans.begin(self._emit_seq, sid, tup, t)
        if self._batching:
            pending = self._src_pending[sid]
            pending.append((self._emit_seq, tup))
            if len(pending) == 1:
                # coalescing window: one mean source inter-arrival (a
                # dead substream's lone row flushes immediately)
                window = 1.0 / rate if rate > 1e-12 else 0.0
                self.loop.schedule(
                    t + window, partial(self._flush_substream, sid)
                )
        else:
            self._publish_rows(sid, [(self._emit_seq, tup)])
        self.tuples_emitted += 1
        if rate > 1e-12:
            nxt = t + float(self.arrival_rng.exponential(1.0 / rate))
            if nxt <= self.duration:
                self.loop.schedule(nxt, partial(self._emit, sid, gen))

    def _publish_rows(
        self, sid: int, rows: List[Tuple[int, StreamTuple]]
    ) -> None:
        """Publish (seq, tuple) rows of one substream; queue deliveries.

        The scalar plane calls this once per tuple (one content-based
        probe each); the batch plane once per coalesced buffer (one probe
        for the whole batch, link traffic still accounted per row).
        Release times follow the scalar formula ``max(ts + slack,
        last_release)``; along a query's timestamp order that equals
        ``max(ts + slack, last_release at publish)`` for every row, so
        computing them batch-at-a-time yields the scalar values.
        """
        if self._sharing:
            self._publish_rows_shared(sid, rows)
            return
        obs = self.obs
        profiler = obs.profiler if obs is not None else None
        spans = obs.spans if obs is not None else None
        if profiler is not None:
            profiler.start("dissemination")
        source = int(self.space.source_of[sid])
        if spans is not None:
            for seq, tup in rows:
                span = spans.lookup(tup)
                if span is not None:
                    span.hop(
                        "publish", self.loop.now, substream=sid, source=source
                    )
        if self._batching:
            deliveries = self.network.publish_batch(
                source, stream_name(sid), len(rows)
            )
            self.batch_publishes += 1
        else:
            tup0 = rows[0][1]
            event = Event(stream=tup0.stream, attributes=tup0.values, size=1.0)
            deliveries = self.network.publish(source, event)
        for _node, _ev, sub in deliveries:
            query_id = self._by_sub.get(sub.sub_id)
            if query_id is None:
                continue
            qs = self.queries[query_id]
            if not self._batching:
                tup = rows[0][1]
                release = max(tup.timestamp + qs.slack, qs.last_release)
                qs.last_release = release
                qs.pending.append((tup, release))
                if spans is not None:
                    span = spans.lookup(tup)
                    if span is not None:
                        span.hop(
                            "queued", self.loop.now, query=query_id,
                            host=qs.host, release=round(release, 9),
                            overlay_hops=len(self._edges(source, qs.host)),
                        )
                self.loop.schedule(
                    release, partial(self._release_one, query_id)
                )
                continue
            release_last = 0.0
            for seq, tup in rows:
                release = max(tup.timestamp + qs.slack, qs.last_release_floor)
                qs.last_release = max(qs.last_release, release)
                # sorted insert by (timestamp, emission seq): rows of
                # *other* substreams may already sit in pending_rel with
                # later timestamps (their batch flushed earlier)
                bisect.insort(qs.pending_rel, (tup.timestamp, seq, tup, release))
                release_last = release
                if spans is not None:
                    span = spans.lookup(tup)
                    if span is not None:
                        span.hop(
                            "queued", self.loop.now, query=query_id,
                            host=qs.host, release=round(release, 9),
                            overlay_hops=len(self._edges(source, qs.host)),
                        )
            when = max(release_last, self.loop.now)
            if when > qs.drain_at:
                qs.drain_at = when
                self.loop.schedule(when, partial(self._drain_query, query_id))
        if profiler is not None:
            profiler.stop()

    def _edges(self, u: int, v: int) -> List[Tuple[int, int]]:
        """Overlay path ``u -> v`` as normalised edge keys, memoised."""
        if u == v:
            return []
        key = (u, v)
        edges = self._edge_paths.get(key)
        if edges is None:
            path = self.network.tree.path(u, v)
            edges = [
                (a, b) if a < b else (b, a) for a, b in zip(path, path[1:])
            ]
            self._edge_paths[key] = edges
            self._edge_paths[(v, u)] = edges
        return edges

    def _charge_union(self, source: int, nodes: List[int], size: float) -> None:
        """Charge ``size`` bytes on the union of paths ``source -> nodes``.

        An event crosses an overlay link exactly when some matching
        subscriber lies beyond it, i.e. on the union of the tree paths to
        the accepting nodes -- the same links (each once) the hop-by-hop
        forwarding walk would charge.
        """
        book = self.network.link_bytes
        if len(nodes) == 1:
            for edge in self._edges(source, nodes[0]):
                book[edge] = book.get(edge, 0.0) + size
            return
        union = set()
        for node in nodes:
            union.update(self._edges(source, node))
        for edge in union:
            book[edge] = book.get(edge, 0.0) + size

    def _matcher(self, sub: Subscription):
        """A compiled equivalent of ``sub.filter.matches``, memoised.

        The shared plane evaluates subscription filters once per result
        per listener and once per source row per candidate group -- the
        hottest per-event work left after routing is memoised.  Filters
        here are conjunctions of numeric interval bounds, which compile
        to a flat tuple walk; anything fancier (memberships, exclusions,
        non-numeric values) falls back to the exact generic evaluator.
        """
        fn = self._match_fns.get(sub.sub_id)
        if fn is not None:
            return fn
        filt = sub.filter
        tests = []
        simple = not filt.is_empty()
        for attr, rng in filt.ranges().items():
            if rng.membership is not None or rng.exclusions:
                simple = False
                break
            tests.append(
                (attr, rng.low, rng.low_inclusive, rng.high, rng.high_inclusive)
            )
        if not simple:
            fn = filt.matches
        else:
            def fn(values, _tests=tuple(tests), _fallback=filt.matches):
                try:
                    for attr, low, low_inc, high, high_inc in _tests:
                        v = values.get(attr)
                        if v is None:
                            return False
                        if v < low or (v == low and not low_inc):
                            return False
                        if v > high or (v == high and not high_inc):
                            return False
                    return True
                except TypeError:
                    # non-numeric value against a numeric bound: the
                    # generic evaluator defines the semantics
                    return _fallback(values)
        self._match_fns[sub.sub_id] = fn
        return fn

    def _src_candidates(self, sid: int) -> List[Tuple[int, Subscription, int]]:
        """Groups whose ``p^1`` set requests substream ``sid``'s stream.

        Memoised against the network's control-plane version: the
        candidate set only changes when subscriptions change.
        """
        route = self._src_route.get(sid)
        if route is not None and route[0] == self.network.version:
            return route[1]
        stream = stream_name(sid)
        cands: List[Tuple[int, Subscription, int]] = []
        for gid in sorted(self.groups):
            gs = self.groups[gid]
            if not gs.alive:
                continue
            for sub in gs.p1_subs:
                if stream in sub.streams:
                    cands.append((gs.host, self._matcher(sub), gid))
        self._src_route[sid] = (self.network.version, cands)
        return cands

    def _publish_rows_shared(self, sid: int, rows: List[Tuple[int, StreamTuple]]) -> None:
        """Publish one substream's rows on the shared plane.

        The groups' ``p^1`` subscriptions carry content filters (the
        merged selection hulls), so every row is matched individually
        against them -- early dropping *is* per-row content matching; an
        attribute-free representative batch event would defeat it.  On
        the (default) memoised route, each row is matched against the
        cached candidate set and charged on the union of overlay paths to
        its accepting hosts -- delivery-and-byte identical to routing the
        row through :meth:`PubSubNetwork.publish`, which stays available
        as the reference (``_route_fast=False``, pinned by the parity
        tests).  The batch plane still wins engine-side: a coalesced
        buffer's surviving rows reach each group through its sorted
        pending list and drain as TupleBatch pushes.
        """
        obs = self.obs
        profiler = obs.profiler if obs is not None else None
        spans = obs.spans if obs is not None else None
        if profiler is not None:
            profiler.start("dissemination")
        source = int(self.space.source_of[sid])
        if spans is not None:
            for seq, tup in rows:
                span = spans.lookup(tup)
                if span is not None:
                    span.hop(
                        "publish", self.loop.now, substream=sid, source=source
                    )
        per_unit: Dict[int, List[Tuple[int, StreamTuple]]] = {}
        order: List[int] = []
        if self._route_fast:
            cands = self._src_candidates(sid)
            charges: Dict[Tuple[int, ...], int] = {}
            for seq, tup in rows:
                accepted: List[int] = []
                for host, matches, gid in cands:
                    if not matches(tup.values):
                        continue
                    bucket = per_unit.get(gid)
                    if bucket is None:
                        per_unit[gid] = bucket = []
                        order.append(gid)
                    bucket.append((seq, tup))
                    accepted.append(host)
                if accepted:
                    key = tuple(accepted)
                    charges[key] = charges.get(key, 0) + 1
            # rows with one accepting set charge once with the row count:
            # all sizes are integral, so the float totals are exactly the
            # per-row sums the hop-by-hop walk accumulates
            for key, count in charges.items():
                self._charge_union(source, list(key), float(count))
        else:
            for seq, tup in rows:
                event = Event(stream=tup.stream, attributes=tup.values, size=1.0)
                for _node, _ev, sub in self.network.publish(source, event):
                    gid = self._by_sub.get(sub.sub_id)
                    if gid is None:
                        continue
                    bucket = per_unit.get(gid)
                    if bucket is None:
                        per_unit[gid] = bucket = []
                        order.append(gid)
                    bucket.append((seq, tup))
        if self._batching:
            self.batch_publishes += 1
        for gid in order:
            gs = self.groups[gid]
            unit_rows = per_unit[gid]
            if not self._batching:
                (seq, tup) = unit_rows[0]
                release = max(tup.timestamp + gs.slack, gs.last_release)
                gs.last_release = release
                gs.pending.append((tup, release))
                if spans is not None:
                    span = spans.lookup(tup)
                    if span is not None:
                        span.hop(
                            "queued", self.loop.now, group=gid, host=gs.host,
                            release=round(release, 9),
                            overlay_hops=len(self._edges(source, gs.host)),
                        )
                self.loop.schedule(release, partial(self._release_one, gid))
                continue
            release_last = 0.0
            for seq, tup in unit_rows:
                release = max(tup.timestamp + gs.slack, gs.last_release_floor)
                gs.last_release = max(gs.last_release, release)
                bisect.insort(gs.pending_rel, (tup.timestamp, seq, tup, release))
                release_last = release
                if spans is not None:
                    span = spans.lookup(tup)
                    if span is not None:
                        span.hop(
                            "queued", self.loop.now, group=gid, host=gs.host,
                            release=round(release, 9),
                            overlay_hops=len(self._edges(source, gs.host)),
                        )
            when = max(release_last, self.loop.now)
            if when > gs.drain_at:
                gs.drain_at = when
                self.loop.schedule(when, partial(self._drain_query, gid))
        if profiler is not None:
            profiler.stop()

    def _flush_substream(self, sid: int) -> None:
        """Publish a substream's coalesced rows as one batch."""
        rows = self._src_pending[sid]
        if not rows:
            return
        self._src_pending[sid] = []
        self._publish_rows(sid, rows)

    def _flush_batches(self) -> None:
        """Publish every coalesced buffer now (batch plane only).

        Called before any control-plane change (subscription add/remove,
        migration round, rate shift, sampling): the buffered rows were
        emitted under the *current* routing tables and host placements,
        and publishing them early is always safe -- matching, releases
        and accounting depend only on state that has not changed since
        their emission.
        """
        if not self._batching:
            return
        for sid in range(len(self._src_pending)):
            if self._src_pending[sid]:
                self._flush_substream(sid)
        for unit_id in sorted(self._units):
            qs = self._units[unit_id]
            if not qs.detached and qs.pending_rel:
                self._drain_ready(qs)

    def _release_one(self, unit_id: int) -> None:
        """Deliver the oldest pending tuple of a unit to its plan.

        Pending tuples form a FIFO per delivery unit (query, or shared
        group), so deliveries happen in emission order even when a
        migration's handoff pause reschedules release events.
        """
        qs = self._units[unit_id]
        if qs.detached or not qs.pending:
            return
        if self.loop.now < qs.ready:
            self.loop.schedule(qs.ready, partial(self._release_one, unit_id))
            return
        tup, release = qs.pending[0]
        if self.loop.now < release:
            # stale event: its own tuple was force-drained earlier (member
            # departure, crash recovery).  The head tuple's own release
            # event is still queued and will deliver it on time.
            return
        qs.pending.popleft()
        self._deliver_now(qs, tup)

    def _drain_query(self, unit_id: int) -> None:
        """Deliver a unit's released batch rows (batch plane)."""
        qs = self._units.get(unit_id)
        if qs is None or qs.detached:
            return
        if self.loop.now >= qs.drain_at:
            qs.drain_at = float("-inf")
        if not qs.pending_rel:
            return
        if self.loop.now < qs.ready:
            if qs.ready > qs.drain_at:
                qs.drain_at = qs.ready
                self.loop.schedule(
                    qs.ready, partial(self._drain_query, unit_id)
                )
            return
        # a two-input query must consume its inputs in timestamp order:
        # rows of its *other* substream emitted before now may still sit
        # in a coalescing buffer (their flush is later) -- publish them
        # first so pending_rel holds every row that can precede the
        # released prefix (flushing early is always safe)
        for sid in qs.substreams:
            if self._src_pending[sid]:
                self._flush_substream(sid)
        self._drain_ready(qs)

    def _drain_ready(self, qs) -> None:
        """Deliver the prefix of ``pending_rel`` whose release has come.

        Each row is accounted at ``max(release, ready)`` -- exactly when
        the scalar path's per-tuple release event would have delivered it
        (its event fires at ``release``, or is pushed to ``ready`` by a
        migration handoff pause).
        """
        now = self.loop.now
        if now < qs.ready:
            return
        pend = qs.pending_rel
        k = 0
        while k < len(pend) and pend[k][3] <= now:
            k += 1
        if not k:
            return
        rows = [(tup, max(release, qs.ready)) for _, _, tup, release in pend[:k]]
        del pend[:k]
        self._deliver_rows(qs, rows)

    def _deliver_rows(
        self, qs, rows: List[Tuple[StreamTuple, float]]
    ) -> None:
        """Deliver (tuple, delivery-time) rows as same-stream batches.

        For join-less plans (no window state, so scalar and batch pushes
        are freely interchangeable), single-row runs skip the columnar
        round trip: ``push_query`` is the same computation
        (bit-identical results and counters) without the batch assembly
        overhead, which matters when low traffic or frequent control
        events shrink batches to one row.  Join plans always go columnar
        -- their ``ColumnWindow`` state must see every row.
        """
        obs = self.obs
        profiler = obs.profiler if obs is not None else None
        spans = obs.spans if obs is not None else None
        if profiler is not None:
            profiler.start("operator_exec")
        engine = self.engines[qs.host]
        scalar_ok = qs.plan.join is None
        i = 0
        while i < len(rows):
            j = i
            stream = rows[i][0].stream
            while j < len(rows) and rows[j][0].stream == stream:
                j += 1
            tracked = None
            if spans is not None:
                tracked = [
                    span
                    for tup, _ in rows[i:j]
                    for span in (spans.lookup(tup),)
                    if span is not None
                ]
                before = qs.plan.operator_counters() if tracked else None
            if scalar_ok and j - i == 1:
                tup, at = rows[i]
                self._account_results(
                    qs, tup, engine.push_query(qs.name, tup), at
                )
            else:
                batch = TupleBatch.from_tuples(
                    stream, [tup for tup, _ in rows[i:j]]
                )
                per_row = engine.push_query_batch(qs.name, batch)
                for (tup, at), results in zip(rows[i:j], per_row):
                    self._account_results(qs, tup, results, at)
            if tracked:
                after = qs.plan.operator_counters()
                delta = {
                    key: after[key] - before.get(key, 0)
                    for key in after
                    if after[key] != before.get(key, 0)
                }
                for span in tracked:
                    span.annotate(
                        "operators", self.loop.now, rows=j - i,
                        counters=delta,
                    )
            i = j
        if profiler is not None:
            profiler.stop()

    def _deliver_now(self, qs, tup: StreamTuple) -> None:
        """Push one tuple into a query's plan and account its results."""
        obs = self.obs
        profiler = obs.profiler if obs is not None else None
        spans = obs.spans if obs is not None else None
        if profiler is not None:
            profiler.start("operator_exec")
        span = spans.lookup(tup) if spans is not None else None
        before = qs.plan.operator_counters() if span is not None else None
        results = self.engines[qs.host].push_query(qs.name, tup)
        if span is not None:
            after = qs.plan.operator_counters()
            delta = {
                key: after[key] - before.get(key, 0)
                for key in after
                if after[key] != before.get(key, 0)
            }
            span.annotate("operators", self.loop.now, rows=1, counters=delta)
        self._account_results(qs, tup, results, self.loop.now)
        if profiler is not None:
            profiler.stop()

    def _account_group_results(
        self,
        gs: _GroupState,
        tup: StreamTuple,
        results: List[StreamTuple],
        at: float,
    ) -> None:
        """Publish a merged plan's results; members carve at their proxies.

        Every result of the merged query is published on the group's
        result stream through the real pub/sub network; each delivery is
        one member's ``p^2`` subscription matching (residual selections,
        window bands, lifetime span), and is accounted against *that*
        member -- latency is the input's age at delivery plus the
        host-to-proxy transit, traffic is charged per overlay link by the
        publish itself.
        """
        obs = self.obs
        span = None
        if obs is not None and obs.spans is not None:
            span = obs.spans.lookup(tup)
            if span is not None:
                span.hop(
                    "engine", at, group=gs.gid, host=gs.host,
                    results=len(results),
                )
        if not results:
            return
        if self._route_fast:
            host = gs.host
            checks = []
            carved: Optional[Dict[int, int]] = {} if span is not None else None
            for query_id in self._res_listeners.get(gs.gid, ()):
                qs = self.queries[query_id]
                checks.append((
                    qs,
                    self._matcher(qs.result_sub),
                    qs.result_sub.projection,
                    qs.simq.spec.proxy,
                    self._path_latency_ms(host, qs.simq.spec.proxy) / 1000.0,
                ))
            charges: Dict[Tuple[int, ...], int] = {}
            base = at - tup.timestamp
            for r in results:
                values = r.values
                accepted: List[int] = []
                for qs, matches, projection, proxy, proxy_s in checks:
                    if not matches(values):
                        continue
                    accepted.append(proxy)
                    if carved is not None:
                        qid = qs.simq.query_id
                        carved[qid] = carved.get(qid, 0) + 1
                    latency = base + proxy_s
                    self._interval_results += 1
                    qs.lat_sum += latency
                    if latency > qs.lat_max:
                        qs.lat_max = latency
                    self.results_total += 1
                    if self.record:
                        delivered = (
                            dict(values)
                            if projection is None
                            else {
                                k: v for k, v in values.items()
                                if k in projection
                            }
                        )
                        qs.results.append(
                            StreamTuple(gs.result_stream, delivered)
                        )
                if accepted:
                    key = tuple(accepted)
                    charges[key] = charges.get(key, 0) + 1
            for key, count in charges.items():
                self._charge_union(gs.host, list(key), float(count))
            if span is not None:
                for qid in sorted(carved):
                    span.hop(
                        "carve", at, group=gs.gid, member=qid,
                        results=carved[qid],
                    )
            return
        carved = {} if span is not None else None
        for r in results:
            event = Event(
                stream=gs.result_stream, attributes=dict(r.values), size=1.0
            )
            for node, delivered, sub in self.network.publish(gs.host, event):
                query_id = self._by_result_sub.get(sub.sub_id)
                if query_id is None:
                    continue
                if carved is not None:
                    carved[query_id] = carved.get(query_id, 0) + 1
                qs = self.queries[query_id]
                latency = (at - tup.timestamp) + (
                    self._path_latency_ms(gs.host, node) / 1000.0
                )
                self._interval_results += 1
                qs.lat_sum += latency
                if latency > qs.lat_max:
                    qs.lat_max = latency
                self.results_total += 1
                if self.record:
                    qs.results.append(
                        StreamTuple(delivered.stream, dict(delivered.attributes))
                    )
        if span is not None:
            for qid in sorted(carved):
                span.hop(
                    "carve", at, group=gs.gid, member=qid, results=carved[qid]
                )

    def _account_results(
        self,
        qs,
        tup: StreamTuple,
        results: List[StreamTuple],
        at: float,
    ) -> None:
        """Account one delivered tuple's results (latency, proxy traffic)."""
        if self._sharing:
            self._account_group_results(qs, tup, results, at)
            return
        obs = self.obs
        span = None
        if obs is not None and obs.spans is not None:
            span = obs.spans.lookup(tup)
            if span is not None:
                span.hop(
                    "engine", at, query=qs.simq.query_id, host=qs.host,
                    results=len(results),
                )
        if not results:
            return
        proxy = qs.simq.spec.proxy
        proxy_ms = 0.0
        if qs.host != proxy:
            proxy_ms = self.network.account_path(qs.host, proxy, float(len(results)))
        latency = (at - tup.timestamp) + proxy_ms / 1000.0
        if span is not None:
            span.hop(
                "sink", at, query=qs.simq.query_id, proxy=proxy,
                results=len(results), latency=round(latency, 9),
            )
        for r in results:
            self._interval_results += 1
            qs.lat_sum += latency
            if latency > qs.lat_max:
                qs.lat_max = latency
            self.results_total += 1
            if self.record:
                qs.results.append(r)

    # ------------------------------------------------------------------
    # dynamics: churn, hot spots, adaptation, sampling
    # ------------------------------------------------------------------
    def _churn_arrival(self, churn: ChurnParams) -> None:
        simq = self.factory.make()
        obs = self.obs
        profiler = obs.profiler if obs is not None else None
        if profiler is not None:
            profiler.start("coordinator")
        host = self.cosmos.insert(simq.spec)
        if profiler is not None:
            profiler.stop()
        self.add_query(simq, host)
        self.trace.mark(self.loop.now, "query_add", simq.name)
        lifetime = float(self.churn_rng.exponential(churn.mean_lifetime))
        self.loop.schedule(
            self.loop.now + lifetime,
            partial(self._churn_departure, simq.query_id),
        )
        nxt = self.loop.now + float(
            self.churn_rng.exponential(1.0 / churn.arrival_rate)
        )
        if nxt <= self.duration:
            self.loop.schedule(nxt, partial(self._churn_arrival, churn))

    def _churn_departure(self, query_id: int) -> None:
        qs = self.queries.get(query_id)
        if qs is None or not qs.alive:
            return
        self.trace.mark(self.loop.now, "query_remove", qs.name)
        self.cosmos.remove(query_id)
        self.remove_query(query_id)

    def _hotspot(self, substream_ids: List[int], factor: float) -> None:
        self._flush_batches()
        self.space.perturb_rates(substream_ids, factor)
        # restart each affected substream's emission chain at the new rate
        # (also revives chains whose next arrival had run past the horizon)
        for sid in substream_ids:
            self._emit_gen[sid] += 1
            rate = float(self.space.rates[sid])
            if rate > 1e-12:
                nxt = self.loop.now + float(
                    self.arrival_rng.exponential(1.0 / rate)
                )
                if nxt <= self.duration:
                    self.loop.schedule(
                        nxt, partial(self._emit, sid, self._emit_gen[sid])
                    )
        self.trace.mark(
            self.loop.now, "hotspot", f"{len(substream_ids)}x{factor:g}"
        )

    def _measured_loads(self, dt: float, counter: str) -> Dict[int, float]:
        """Per-query loads from engine CPU counters since the last round.

        On the shared plane the engine only meters merged plans, so each
        group's CPU delta is attributed back to its live members in equal
        shares -- the per-query numbers the optimizer's refresh
        (Section 3.8) expects, measured on what actually executed.
        """
        loads: Dict[int, float] = {}
        if self._sharing:
            for gid in sorted(self.groups):
                gs = self.groups[gid]
                cpu = gs.plan.cpu_cost()
                delta = cpu - getattr(gs, counter)
                setattr(gs, counter, cpu)
                members = [
                    qid for qid in gs.members
                    if self.queries[qid].alive and not self.queries[qid].detached
                ]
                if not members:
                    continue
                share = delta / len(members) / dt
                for qid in members:
                    loads[qid] = share
            return loads
        for query_id, qs in self.queries.items():
            if not qs.alive or qs.detached:
                continue
            cpu = qs.plan.cpu_cost()
            loads[query_id] = (cpu - getattr(qs, counter)) / dt
            setattr(qs, counter, cpu)
        return loads

    def _placement_stddev(self, loads: Dict[int, float]) -> float:
        per_host = np.zeros(len(self.processors))
        for query_id, load in loads.items():
            qs = self.queries[query_id]
            if not qs.alive:
                continue
            per_host[self._pindex[qs.host]] += load
        return float(np.std(per_host))

    def _adapt_round(self) -> None:
        """One Section 3.7 round driven by *measured* engine loads."""
        obs = self.obs
        profiler = obs.profiler if obs is not None else None
        if profiler is not None:
            profiler.start("coordinator")
        # measured loads must include every delivery the scalar plane
        # would have processed by now; migrations change hosts/tables
        self._flush_batches()
        dt = self.params.adapt_interval
        loads = self._measured_loads(dt, "cpu_at_adapt")
        if loads:
            stddev_before = self._placement_stddev(loads)
            cpu0 = self.cosmos.total_time()
            self.cosmos.refresh_measured_loads(loads)
            self.cosmos.adapt()
            moved = 0
            moved_state = 0.0
            moved_streams: set = set()
            if self._sharing:
                # a shared plan moves as one unit: the group follows the
                # majority of its members' new placements (ties to the
                # smallest host id), so the optimizer's per-query wishes
                # steer groups without splitting their window state
                for gid in sorted(self.groups):
                    gs = self.groups[gid]
                    if not gs.alive or not gs.members:
                        continue
                    votes: Dict[int, int] = {}
                    for qid in gs.members:
                        host = self.cosmos.placement.get(qid)
                        if host is not None:
                            votes[host] = votes.get(host, 0) + 1
                    if not votes:
                        continue
                    target = min(
                        votes, key=lambda h: (-votes[h], h)
                    )
                    if target != gs.host:
                        moved_state += self._migrate_group(gid, target)
                        moved += len(gs.members)
                        moved_streams.update(gs.streams)
            else:
                for query_id in loads:
                    qs = self.queries[query_id]
                    new_host = self.cosmos.placement.get(query_id)
                    if new_host is not None and new_host != qs.host:
                        moved_state += self._migrate(query_id, new_host)
                        moved += 1
                        moved_streams.update(qs.simq.streams)
            if moved:
                # only subscriptions overlapping a moved query's streams
                # can have been left with coverage holes
                self._refresh_subscriptions(streams=moved_streams)
            self.trace.adaptations.append(
                AdaptationMark(
                    t=self.loop.now,
                    stddev_before=stddev_before,
                    stddev_after=self._placement_stddev(loads),
                    migrated_queries=moved,
                    moved_state=moved_state,
                    optimizer_cpu_s=self.cosmos.total_time() - cpu0,
                )
            )
        if profiler is not None:
            profiler.stop()
        nxt = self.loop.now + dt
        if nxt <= self.duration:
            self.loop.schedule(nxt, self._adapt_round)

    def _sample(self, closing: bool = False) -> None:
        obs = self.obs
        profiler = obs.profiler if obs is not None else None
        if profiler is not None:
            profiler.start("sampling")
        # the sample must observe every delivery the scalar plane has
        # processed by this instant
        self._flush_batches()
        # actual elapsed interval: equals sample_interval for periodic
        # samples, but the closing sample covers only the drain tail
        dt = max(self.loop.now - self._last_sample_t, 1e-9)
        self._last_sample_t = self.loop.now
        loads = self._measured_loads(dt, "cpu_at_sample")
        n = self._interval_results
        # merge per-query latency accumulators in query-id order: one
        # canonical float summation order on both data planes
        lat_sum = 0.0
        lat_max = 0.0
        for query_id in sorted(self.queries):
            qs = self.queries[query_id]
            lat_sum += qs.lat_sum
            if qs.lat_max > lat_max:
                lat_max = qs.lat_max
            qs.lat_sum = 0.0
            qs.lat_max = 0.0
        self.trace.samples.append(
            TraceSample(
                t=self.loop.now if not closing else max(self.loop.now, self.duration),
                throughput=n / dt,
                mean_latency=lat_sum / n if n else 0.0,
                max_latency=lat_max,
                load_stddev=self._placement_stddev(loads),
                alive_queries=sum(1 for q in self.queries.values() if q.alive),
                migrations_total=self.migrations,
                data_bytes=float(sum(self.network.link_bytes.values())),
                control_bytes=float(sum(self.network.control_bytes.values())),
                results_total=self.results_total,
            )
        )
        self._interval_results = 0
        if not closing:
            nxt = self.loop.now + dt
            if nxt <= self.duration:
                self.loop.schedule(nxt, self._sample)
        if profiler is not None:
            profiler.stop()

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule the initial event population."""
        for sid in range(len(self.space)):
            rate = float(self.space.rates[sid])
            if rate > 1e-12:
                first = float(self.arrival_rng.exponential(1.0 / rate))
                if first <= self.duration:
                    self.loop.schedule(first, partial(self._emit, sid, 0))
        if self.params.sample_interval <= self.duration:
            self.loop.schedule(self.params.sample_interval, self._sample)
        if (
            self.params.adapt_interval is not None
            and self.params.adapt_interval <= self.duration
        ):
            self.loop.schedule(self.params.adapt_interval, self._adapt_round)
        if self.faults is not None:
            self.faults.schedule()

    def run(self) -> None:
        """Run to the horizon, then drain in-flight deliveries."""
        self.loop.run_until(self.duration)
        self.loop.run()  # nothing reschedules past the horizon
        if self._interval_results:
            self._sample(closing=True)  # catch the drain tail


def run_scenario(
    *,
    seed: int = 0,
    topology: Optional[TransitStubParams] = None,
    num_sources: int = 4,
    num_processors: int = 8,
    workload: SimWorkloadParams = SimWorkloadParams(),
    scenario: ScenarioParams = ScenarioParams(),
    cosmos_config: Optional[CosmosConfig] = None,
    record: bool = False,
    observer: Optional[Observer] = None,
) -> SimReport:
    """Build a cluster and run one scenario end to end.

    Everything -- topology, role selection, substream space, query
    population, tuple arrivals, churn -- derives from ``seed`` via
    :class:`numpy.random.SeedSequence` spawns, so equal seeds give
    bit-identical :class:`SimReport` traces.  With ``record=True`` the
    report additionally carries the ordered action log and every
    query's result tuples, which :func:`oracle_results` can replay on a
    single engine for correctness checks.

    ``observer`` attaches the observability layer
    (:class:`~repro.obs.observer.Observer`): provenance spans, the
    metrics registry and the subsystem profiler.  Observation is
    strictly read-only -- it draws no random numbers, schedules no
    events and feeds no wall-clock values back into the simulation, so
    the report is bit-identical with or without it.
    """
    if observer is not None:
        observer.begin(seed)
    profiler = observer.profiler if observer is not None else None
    if profiler is not None:
        profiler.start("setup")
    # the 9th spawn feeds fault-target resolution; SeedSequence spawning
    # is prefix-stable, so the first 8 streams -- and with them every
    # fault-free trace -- are bit-identical to the spawn(8) era
    spawned = np.random.SeedSequence(seed).spawn(9)
    rngs = [np.random.default_rng(s) for s in spawned]
    (topo_rng, roles_rng, space_rng, factory_rng,
     arrival_rng, value_rng, churn_rng, hotspot_rng, fault_rng) = rngs

    topo = generate_transit_stub(
        topology
        or TransitStubParams(
            transit_domains=2, transit_nodes=3,
            stubs_per_transit_node=2, stub_nodes=4,
        ),
        rng=topo_rng,
    )
    oracle = LatencyOracle(topo)
    sources, processors = select_roles(
        topo,
        num_sources,
        num_processors + scenario.spare_processors,
        rng=roles_rng,
    )
    # spares sit in the overlay from the start (brokers and all) but stay
    # outside the engine/coordinator membership until a ProcessorJoin
    spares = processors[num_processors:]
    processors = processors[:num_processors]
    space = SubstreamSpace.random(
        workload.num_substreams,
        sources,
        rate_range=workload.rate_range,
        rng=space_rng,
    )
    factory = SimQueryFactory(space, processors, workload, factory_rng)
    initial = factory.make_batch(workload.num_queries)
    specs = [q.spec for q in initial]

    cosmos = Cosmos(
        oracle,
        processors,
        space,
        cosmos_config
        or CosmosConfig(
            k=4, vmax=60, seed=seed, incremental=scenario.opt_incremental
        ),
    )
    if scenario.initial_placement == "skewed":
        hosts = processors[: max(1, len(processors) // 8)]
        cosmos.adopt(
            specs,
            {q.query_id: hosts[i % len(hosts)] for i, q in enumerate(specs)},
        )
    elif scenario.initial_placement == "cosmos":
        cosmos.distribute(specs)
    else:
        raise ValueError(
            f"unknown initial placement {scenario.initial_placement!r}"
        )

    cluster = SimCluster(
        oracle=oracle,
        sources=sources,
        processors=processors,
        space=space,
        cosmos=cosmos,
        params=scenario,
        factory=factory,
        arrival_rng=arrival_rng,
        value_rng=value_rng,
        churn_rng=churn_rng,
        fault_rng=fault_rng,
        spares=spares,
        seed=seed,
        record=record,
        observer=observer,
    )
    for simq in initial:
        cluster.add_query(simq, cosmos.placement[simq.query_id])
    if scenario.churn is not None:
        first = float(churn_rng.exponential(1.0 / scenario.churn.arrival_rate))
        if first <= scenario.duration:
            cluster.loop.schedule(
                first, partial(cluster._churn_arrival, scenario.churn)
            )
    if scenario.hotspot is not None and scenario.hotspot.at <= scenario.duration:
        count = min(scenario.hotspot.substreams, len(space))
        chosen = [
            int(s)
            for s in hotspot_rng.choice(len(space), size=count, replace=False)
        ]
        cluster.loop.schedule(
            scenario.hotspot.at,
            partial(cluster._hotspot, chosen, scenario.hotspot.factor),
        )
    if profiler is not None:
        profiler.stop()
    cluster.start()
    cluster.run()
    if observer is not None:
        observer.finish(cluster)

    results = None
    link_bytes = None
    cpu_costs = None
    if record:
        results = {
            query_id: [dict(t.values) for t in qs.results]
            for query_id, qs in cluster.queries.items()
        }
        link_bytes = dict(cluster.network.link_bytes)
        if scenario.use_sharing:
            # the engine meters merged plans; attribute each group's
            # total equally over every query that ever executed in it
            cpu_costs = {}
            for gid in sorted(cluster.groups):
                gs = cluster.groups[gid]
                share = gs.plan.cpu_cost() / max(1, len(gs.all_members))
                for qid in gs.all_members:
                    cpu_costs[qid] = cpu_costs.get(qid, 0.0) + share
        else:
            cpu_costs = {
                query_id: qs.plan.cpu_cost()
                for query_id, qs in cluster.queries.items()
            }
    return SimReport(
        trace=cluster.trace,
        queries={qid: qs.simq for qid, qs in cluster.queries.items()},
        placement=dict(cosmos.placement),
        tuples_emitted=cluster.tuples_emitted,
        events_processed=cluster.loop.processed,
        results=results,
        actions=cluster.actions,
        link_bytes=link_bytes,
        cpu_costs=cpu_costs,
        user_queries=len(cluster.queries),
        executed_queries=(
            len(cluster.groups) if scenario.use_sharing else len(cluster.queries)
        ),
        fault_log=cluster.fault_log,
    )


def oracle_results(
    actions: List[Tuple[str, object]]
) -> Dict[int, List[Dict]]:
    """Replay a recorded action log on ONE engine hosting every query.

    The ground truth for distributed execution: since the cluster
    delivers each query's inputs in emission order (see the module
    docstring), pushing the same tuples in the same global order through
    a single engine must produce exactly the same result tuples per
    query, churn included.
    """
    engine = Engine()
    out: Dict[int, List[Dict]] = {}

    def _sink(bucket: List[Dict], t: StreamTuple) -> None:
        bucket.append(dict(t.values))

    for kind, payload in actions:
        if kind == "tuple":
            engine.push(payload)
        elif kind == "add":
            simq: SimQuery = payload
            engine.add_query(simq.ast, result_stream=f"out_{simq.name}")
            bucket: List[Dict] = []
            out[simq.query_id] = bucket
            engine.on_result(simq.name, partial(_sink, bucket))
        elif kind == "remove":
            engine.remove_query(payload.name)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown action kind {kind!r}")
    return out
