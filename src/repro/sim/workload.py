"""Executable workloads for the discrete-event cluster simulator.

The optimizer's workload (:mod:`repro.query.workload`) describes queries
abstractly -- an interest mask over substreams plus estimated rates.  The
simulator needs queries the per-processor engines can *run*, so this
module generates the paper's query class in executable form: each
substream is one named stream (``S<sid>``) carrying integer ``value``
readings, and each query is a real CQL selection (one input) or window
band join (two inputs) over those streams, paired with the
:class:`~repro.query.workload.QuerySpec` the coordinator hierarchy
optimizes.

Tuple arrivals are a Poisson process per substream: interarrival times
are exponential draws at the substream's *current* rate, so a hot-spot
rate shift mid-run changes the traffic without touching the generator
code.  All randomness flows through caller-provided
:class:`numpy.random.Generator` streams for end-to-end reproducibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..query.ast import Query
from ..query.interest import SubstreamSpace, mask_of
from ..query.parser import parse_query
from ..query.workload import QuerySpec

__all__ = [
    "SimWorkloadParams",
    "SimQuery",
    "SimQueryFactory",
    "stream_name",
    "measure_rates",
]

#: value attribute domain: readings are uniform integers in [0, VALUE_DOMAIN)
VALUE_DOMAIN = 1000


def stream_name(substream_id: int) -> str:
    """The engine-visible stream name of a substream."""
    return f"S{substream_id}"


@dataclass(frozen=True)
class SimWorkloadParams:
    """Knobs of the executable simulation workload."""

    num_substreams: int = 60
    num_queries: int = 40
    #: per-substream tuple rates (tuples/s), uniform in this range
    rate_range: Tuple[float, float] = (0.2, 1.0)
    #: fraction of queries that are two-way window joins
    join_fraction: float = 0.5
    #: join/selection window extents (seconds), uniform integer draw
    window_range: Tuple[int, int] = (5, 30)
    #: selection predicates keep roughly this fraction of tuples
    selectivity_range: Tuple[float, float] = (0.3, 0.9)
    #: zipf skew of substream popularity (0 = uniform)
    zipf_theta: float = 0.8
    #: QuerySpec.load = load_factor * input tuple rate
    load_factor: float = 1.0
    #: restrict query interests to a pool of this many substreams (None =
    #: the whole space).  The workload-overlap knob of the sharing
    #: benchmarks: a small pool makes many queries read the same streams,
    #: so per-processor result sharing can fold them into few merged
    #: plans; substream *rates* and sources are untouched.
    pool_substreams: Optional[int] = None


@dataclass
class SimQuery:
    """One executable query plus its optimizer-facing spec."""

    spec: QuerySpec
    ast: Query
    text: str
    #: input stream names (1 or 2), in binding order
    streams: Tuple[str, ...]
    substreams: Tuple[int, ...]

    @property
    def query_id(self) -> int:
        return self.spec.query_id

    @property
    def name(self) -> str:
        return f"q{self.spec.query_id}"


class SimQueryFactory:
    """Seeded generator of executable sim queries.

    Substream popularity is zipfian over a private permutation (one
    hot-spot group, the degenerate ``g=1`` case of the paper's setup);
    churn scenarios call :meth:`make` for every arriving query, so the
    whole population -- initial and churned -- comes from one generator
    stream.
    """

    def __init__(
        self,
        space: SubstreamSpace,
        processors: Sequence[int],
        params: SimWorkloadParams,
        rng: np.random.Generator,
    ):
        self.space = space
        self.processors = list(processors)
        self.params = params
        self.rng = rng
        self._next_id = 0
        n = len(space)
        self._perm = rng.permutation(n)
        #: queries draw from the first ``pool`` permutation ranks only;
        #: the default (the whole space) leaves the rng draws -- and so
        #: every previously generated workload -- unchanged
        self._pool = n
        if params.pool_substreams is not None:
            if params.pool_substreams < 1:
                raise ValueError("pool_substreams must be >= 1")
            self._pool = min(n, params.pool_substreams)
        ranks = np.arange(1, self._pool + 1, dtype=float)
        weights = ranks ** (-params.zipf_theta)
        self._popularity = weights / weights.sum()

    def _pick_substreams(self, k: int) -> List[int]:
        picks = self.rng.choice(
            self._pool, size=k, replace=False, p=self._popularity
        )
        return [int(self._perm[int(r)]) for r in picks]

    def make(self) -> SimQuery:
        """Generate the next query (selection or band join)."""
        qid = self._next_id
        self._next_id += 1
        p = self.params
        is_join = (
            self._pool >= 2 and float(self.rng.random()) < p.join_fraction
        )
        lo, hi = p.window_range
        threshold = int(
            (1.0 - self.rng.uniform(*p.selectivity_range)) * VALUE_DOMAIN
        )
        if is_join:
            a, b = self._pick_substreams(2)
            wa = int(self.rng.integers(lo, hi + 1))
            wb = int(self.rng.integers(lo, hi + 1))
            text = (
                f"SELECT * FROM {stream_name(a)} [Range {wa} Seconds] A,"
                f" {stream_name(b)} [Range {wb} Seconds] B"
                f" WHERE A.value > B.value AND A.value > {threshold}"
            )
            subs: Tuple[int, ...] = (a, b)
            window_seconds = float(wa + wb)
        else:
            (a,) = self._pick_substreams(1)
            wa = int(self.rng.integers(lo, hi + 1))
            text = (
                f"SELECT * FROM {stream_name(a)} [Range {wa} Seconds] A"
                f" WHERE A.value > {threshold}"
            )
            subs = (a,)
            window_seconds = float(wa)
        mask = mask_of(subs)
        input_rate = self.space.rate(mask)
        spec = QuerySpec(
            query_id=qid,
            proxy=int(self.rng.choice(np.asarray(self.processors))),
            mask=mask,
            group=0,
            load=p.load_factor * input_rate,
            result_rate=(1.0 - threshold / VALUE_DOMAIN) * input_rate,
            state_size=window_seconds * input_rate,
        )
        ast = parse_query(text, name=f"q{qid}")
        return SimQuery(
            spec=spec,
            ast=ast,
            text=text,
            streams=tuple(stream_name(s) for s in subs),
            substreams=subs,
        )

    def make_batch(self, count: int) -> List[SimQuery]:
        return [self.make() for _ in range(count)]


def measure_rates(
    space: SubstreamSpace, duration: float, rng: np.random.Generator
) -> np.ndarray:
    """Per-substream rates *measured* over a simulated interval.

    The simulator emits tuples as independent Poisson processes at the
    space's nominal rates; the number of arrivals in ``duration`` is then
    Poisson(rate * duration) exactly, so sampling those counts and
    dividing by the interval is the closed form of "run the arrival
    process and count" -- measurement noise included.  Experiments use
    this to source load numbers from the simulator instead of the static
    expectation (see ``repro.experiments.fig10``).
    """
    if duration <= 0:
        raise ValueError("measurement duration must be positive")
    counts = rng.poisson(space.rates * duration)
    return counts / duration
