"""Figure 9: effect of the cluster size parameter ``k``.

A smaller ``k`` makes the coordinator tree taller: more coarsening steps
(worse distribution quality) but fewer children per coordinator (higher
root throughput for online insertion).  The experiment sweeps ``k`` and
reports, per value:

* 9(a) the weighted communication cost of the resulting distribution;
* 9(b) the root coordinator's query-insertion throughput (queries/s),
  measured over a stream of online insertions exactly as the paper does
  ("collect the time for the root coordinator to distribute a query").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from .config import ExperimentConfig, bench_scale, build_testbed

__all__ = ["Fig9Row", "run"]


@dataclass
class Fig9Row:
    k: int
    tree_height: int
    cost: float
    #: root-coordinator insertions per second
    throughput: float


def run(
    config: ExperimentConfig = None,
    ks: Sequence[int] = (2, 4, 8, 16),
    insertions: int = 200,
    num_processors: int = 128,
) -> List[Fig9Row]:
    """Sweep k.  The processor count defaults to 128 (more than the other
    bench experiments) so that the root's fan-out actually grows with k,
    as it does at the paper's 256-processor scale."""
    config = config or bench_scale()
    if num_processors:
        from dataclasses import replace

        config = replace(config, num_processors=num_processors)
    rows: List[Fig9Row] = []
    for k in ks:
        bed = build_testbed(config.with_k(k))
        cosmos = bed.new_cosmos()
        cosmos.distribute(bed.workload.queries)

        # warm up caches (latency rows, routing state) outside the
        # measurement, then time the root coordinator's routing work
        warmup = bed.workload.new_queries(10, bed.processors)
        for q in warmup:
            cosmos.insert(q)
        fresh = bed.workload.new_queries(insertions, bed.processors)
        root = cosmos.root
        before = root.cpu_time
        for q in fresh:
            cosmos.insert(q)
        root_time = root.cpu_time - before
        throughput = insertions / root_time if root_time > 0 else float("inf")

        placement = dict(cosmos.placement)
        cost = bed.cost_model.weighted_cost(placement, bed.workload.queries)
        rows.append(
            Fig9Row(
                k=k,
                tree_height=cosmos.tree_height(),
                cost=cost,
                throughput=throughput,
            )
        )
    return rows


def format_rows(rows: Sequence[Fig9Row]) -> str:
    lines = [
        "Figure 9: cluster size parameter k",
        f"{'k':>3} {'height':>6} {'cost(x1k)':>10} {'root-throughput (q/s)':>22}",
    ]
    for r in rows:
        lines.append(
            f"{r.k:>3} {r.tree_height:>6} {r.cost / 1e3:>10.1f} {r.throughput:>22.0f}"
        )
    return "\n".join(lines)
