"""Figure 7: adapting to inaccurate a-priori statistics.

A-priori statistics are hard to collect in a large system, so the paper
models "inaccurate statistics" as a *random* initial query allocation and
lets the adaptive redistribution repair it over 12 rounds.  Three series:

* NA-Inaccurate -- random initial allocation, no adaptation (flat);
* A-Inaccurate  -- random initial allocation + adaptation each round;
* A-Accurate    -- proper initial distribution + adaptation each round.

Figure 7(a) tracks the weighted communication cost per round, 7(b) the
standard deviation of processor load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..baselines.simple import random_placement
from .config import ExperimentConfig, bench_scale, build_testbed

__all__ = ["Fig7Series", "run"]


@dataclass
class Fig7Series:
    """Cost and load-stddev trajectories over adaptation rounds."""

    rounds: List[int] = field(default_factory=list)
    na_inaccurate_cost: List[float] = field(default_factory=list)
    a_inaccurate_cost: List[float] = field(default_factory=list)
    a_accurate_cost: List[float] = field(default_factory=list)
    na_inaccurate_std: List[float] = field(default_factory=list)
    a_inaccurate_std: List[float] = field(default_factory=list)
    a_accurate_std: List[float] = field(default_factory=list)


def run(
    config: ExperimentConfig = None, rounds: int = 12
) -> Fig7Series:
    config = config or bench_scale()
    bed = build_testbed(config)
    queries = bed.workload.queries

    pl_random = random_placement(queries, bed.processors, seed=config.seed + 7)

    cosmos_inacc = bed.new_cosmos()
    cosmos_inacc.adopt(queries, pl_random)

    cosmos_acc = bed.new_cosmos()
    cosmos_acc.distribute(queries)

    series = Fig7Series()
    for rnd in range(rounds + 1):
        series.rounds.append(rnd)
        series.na_inaccurate_cost.append(bed.cost(pl_random))
        series.na_inaccurate_std.append(bed.stddev(pl_random))
        series.a_inaccurate_cost.append(bed.cost(dict(cosmos_inacc.placement)))
        series.a_inaccurate_std.append(bed.stddev(dict(cosmos_inacc.placement)))
        series.a_accurate_cost.append(bed.cost(dict(cosmos_acc.placement)))
        series.a_accurate_std.append(bed.stddev(dict(cosmos_acc.placement)))
        if rnd < rounds:
            cosmos_inacc.adapt()
            cosmos_acc.adapt()
    return series


def format_series(s: Fig7Series) -> str:
    lines = [
        "Figure 7: adapting to inaccurate statistics",
        f"{'round':>5} | {'NA-In cost':>10} {'A-In cost':>10} {'A-Acc cost':>10}"
        f" | {'NA-In std':>9} {'A-In std':>9} {'A-Acc std':>9}",
    ]
    for i, rnd in enumerate(s.rounds):
        lines.append(
            f"{rnd:>5} | {s.na_inaccurate_cost[i] / 1e3:>10.1f}"
            f" {s.a_inaccurate_cost[i] / 1e3:>10.1f}"
            f" {s.a_accurate_cost[i] / 1e3:>10.1f}"
            f" | {s.na_inaccurate_std[i]:>9.2f}"
            f" {s.a_inaccurate_std[i]:>9.2f}"
            f" {s.a_accurate_std[i]:>9.2f}"
        )
    return "\n".join(lines)
