"""Experiment drivers, one per paper figure/table."""

from . import fig6, fig7, fig8, fig9, fig10, fig11, table2
from .config import (
    ExperimentConfig,
    Testbed,
    bench_scale,
    build_testbed,
    paper_scale,
)

__all__ = [
    "ExperimentConfig",
    "Testbed",
    "bench_scale",
    "paper_scale",
    "build_testbed",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "table2",
]
