"""Figure 8: new query arrival.

Starting from an initial population, batches of new queries arrive every
interval (the paper: 30,000 initial, 1,500 new per 200-second interval).
Three policies:

* Random          -- new queries land on random processors;
* Online          -- COSMOS online insertion (Section 3.6);
* Online-Adaptive -- online insertion plus one adaptation round per
  interval.

Figure 8(a) reports average weighted communication cost per interval,
8(b) the standard deviation of processor loads.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..baselines.simple import random_placement
from .config import ExperimentConfig, bench_scale, build_testbed

__all__ = ["Fig8Series", "run"]


@dataclass
class Fig8Series:
    intervals: List[int] = field(default_factory=list)
    random_cost: List[float] = field(default_factory=list)
    online_cost: List[float] = field(default_factory=list)
    online_adaptive_cost: List[float] = field(default_factory=list)
    random_std: List[float] = field(default_factory=list)
    online_std: List[float] = field(default_factory=list)
    online_adaptive_std: List[float] = field(default_factory=list)


def run(
    config: ExperimentConfig = None,
    intervals: int = 10,
    batch_size: int = 75,
) -> Fig8Series:
    """The arrival experiment (defaults scaled to the bench config:
    1,500 initial queries + 75 per interval mirrors the paper's
    30,000 + 1,500 at 5%)."""
    config = config or bench_scale()
    bed = build_testbed(config)
    initial = list(bed.workload.queries)

    # three independent policies over the same arrival sequence
    cosmos_online = bed.new_cosmos()
    cosmos_online.distribute(initial)
    cosmos_adaptive = bed.new_cosmos()
    cosmos_adaptive.distribute(initial)
    pl_random: Dict[int, int] = dict(cosmos_online.placement)
    rng = random.Random(config.seed + 8)

    batches = [
        bed.workload.new_queries(batch_size, bed.processors)
        for _ in range(intervals)
    ]

    def snapshot(series: Fig8Series, interval: int) -> None:
        queries = bed.workload.queries[: len(initial) + interval * batch_size]
        series.intervals.append(interval)
        for name, placement in (
            ("random", pl_random),
            ("online", dict(cosmos_online.placement)),
            ("online_adaptive", dict(cosmos_adaptive.placement)),
        ):
            cost = bed.cost_model.weighted_cost(placement, queries)
            from ..sim.metrics import load_stddev

            std = load_stddev(placement, queries, bed.processors)
            getattr(series, f"{name}_cost").append(cost)
            getattr(series, f"{name}_std").append(std)

    series = Fig8Series()
    snapshot(series, 0)
    for i, batch in enumerate(batches, start=1):
        for q in batch:
            pl_random[q.query_id] = rng.choice(bed.processors)
            cosmos_online.insert(q)
            cosmos_adaptive.insert(q)
        cosmos_adaptive.adapt()
        snapshot(series, i)
    return series


def format_series(s: Fig8Series) -> str:
    lines = [
        "Figure 8: new query arrival",
        f"{'intv':>4} | {'Rand cost':>10} {'Onl cost':>10} {'Onl-A cost':>10}"
        f" | {'Rand std':>8} {'Onl std':>8} {'Onl-A std':>8}",
    ]
    for i, t in enumerate(s.intervals):
        lines.append(
            f"{t:>4} | {s.random_cost[i] / 1e3:>10.1f}"
            f" {s.online_cost[i] / 1e3:>10.1f}"
            f" {s.online_adaptive_cost[i] / 1e3:>10.1f}"
            f" | {s.random_std[i]:>8.2f} {s.online_std[i]:>8.2f}"
            f" {s.online_adaptive_std[i]:>8.2f}"
        )
    return "\n".join(lines)
