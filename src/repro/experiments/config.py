"""Experiment configurations: bench-scale presets plus the paper-scale one.

The paper's simulation uses a 4096-node GT-ITM transit-stub topology with
100 sources, 256 processors, 20,000 substreams and 5,000-60,000 queries.
Pure-Python optimization at that scale takes hours, so the bench presets
shrink every dimension while preserving the ratios that drive the
phenomena (queries per processor, substream sampling fraction, group
count); ``paper_scale()`` retains the original numbers for anyone willing
to wait.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.cosmos import Cosmos, CosmosConfig
from ..query.workload import Workload, WorkloadParams, generate_workload
from ..sim.metrics import CostModel
from ..topology.latency import LatencyOracle, select_roles
from ..topology.overlay import minimum_latency_spanning_tree
from ..topology.transit_stub import TransitStubParams, Topology, generate_transit_stub

__all__ = ["ExperimentConfig", "Testbed", "bench_scale", "paper_scale", "build_testbed"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything needed to set up one simulation run."""

    topology: TransitStubParams
    num_sources: int
    num_processors: int
    workload: WorkloadParams
    cosmos: CosmosConfig = CosmosConfig()
    seed: int = 0

    def with_queries(self, num_queries: int) -> "ExperimentConfig":
        """Copy of this config with a different query-population size."""
        from dataclasses import replace

        return replace(self, workload=replace(self.workload, num_queries=num_queries))

    def with_k(self, k: int) -> "ExperimentConfig":
        """Copy of this config with a different cluster-size parameter."""
        from dataclasses import replace

        return replace(self, cosmos=replace(self.cosmos, k=k))


def bench_scale(num_queries: int = 1500) -> ExperimentConfig:
    """Scaled-down default used by the benchmark suite."""
    return ExperimentConfig(
        topology=TransitStubParams(
            transit_domains=3,
            transit_nodes=4,
            stubs_per_transit_node=4,
            stub_nodes=6,
        ),
        num_sources=10,
        num_processors=32,
        workload=WorkloadParams(
            num_substreams=4000,
            num_queries=num_queries,
            groups=20,
            substreams_per_query=(20, 40),
            selectivity_range=(0.01, 0.05),
        ),
        cosmos=CosmosConfig(k=4, vmax=80, max_overlap_neighbors=30),
    )


def paper_scale(num_queries: int = 30000) -> ExperimentConfig:
    """The paper's simulation setup (slow in pure Python)."""
    return ExperimentConfig(
        topology=TransitStubParams.paper_scale(),
        num_sources=100,
        num_processors=256,
        workload=WorkloadParams(
            num_substreams=20000,
            num_queries=num_queries,
            groups=20,
            substreams_per_query=(100, 200),
        ),
        cosmos=CosmosConfig(k=4, vmax=150, max_overlap_neighbors=30),
    )


@dataclass
class Testbed:
    """A materialised experiment environment."""

    config: ExperimentConfig
    topology: Topology
    oracle: LatencyOracle
    sources: List[int]
    processors: List[int]
    workload: Workload
    cost_model: CostModel

    def new_cosmos(self, config: Optional[CosmosConfig] = None) -> Cosmos:
        """A fresh Cosmos instance over this testbed's resources."""
        return Cosmos(
            self.oracle,
            self.processors,
            self.workload.space,
            config or self.config.cosmos,
        )

    def cost(self, placement: Dict[int, int]) -> float:
        """Weighted communication cost of a placement (Section 4 metric)."""
        return self.cost_model.weighted_cost(placement, self.workload.queries)

    def stddev(self, placement: Dict[int, int]) -> float:
        """Capability-normalised load standard deviation of a placement."""
        from ..sim.metrics import load_stddev

        return load_stddev(placement, self.workload.queries, self.processors)


def build_testbed(config: ExperimentConfig) -> Testbed:
    """Generate topology, roles and workload for a config."""
    topo = generate_transit_stub(config.topology, seed=config.seed)
    oracle = LatencyOracle(topo)
    sources, processors = select_roles(
        topo, config.num_sources, config.num_processors, seed=config.seed + 1
    )
    workload = generate_workload(
        config.workload, sources, processors, seed=config.seed + 2
    )
    cost_model = CostModel.over(None, workload.space, distance=oracle)
    return Testbed(
        config=config,
        topology=topo,
        oracle=oracle,
        sources=sources,
        processors=processors,
        workload=workload,
        cost_model=cost_model,
    )
