"""Table 2: the worked graph-mapping example of Section 3.1.

Reconstructs the Figure 5 instance -- two data sources, two processors,
four queries, with Q1's requested data containing Q3's (hence an overlap
edge between Q1 and Q3) -- and evaluates the WEC of the paper's three
mapping schemes:

* Scheme 1: every query at its local processor;
* Scheme 2: optimal if the Q1/Q3 sharing is ignored;
* Scheme 3: the sharing-aware optimum (smallest WEC).

The exact edge latencies of Figure 5 are not fully legible in the paper,
so the instance here is rebuilt from the described structure; the *claim*
the table supports -- WEC(scheme 3) < WEC(scheme 2) < WEC(scheme 1) -- is
what the bench asserts and reports.  The instance is also exported for
the unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..core.graphs import (
    NetVertex,
    NetworkGraph,
    NVertex,
    QueryGraph,
    QVertex,
)
from ..core.mapping import map_graph

__all__ = ["Table2Instance", "build_instance", "run"]

# topology node ids for the example
S1, S2, N1, N2 = 0, 1, 2, 3

#: symmetric latencies of the example network (Figure 5(a)-like):
#: each processor is close to one source and far from the other.
_DIST = {
    (S1, N1): 1.0,
    (S1, N2): 5.0,
    (S2, N1): 5.0,
    (S2, N2): 1.0,
    (N1, N2): 5.0,
    (S1, S2): 6.0,
}


def _distance(a: int, b: int) -> float:
    if a == b:
        return 0.0
    return _DIST.get((a, b), _DIST.get((b, a), 10.0))


@dataclass
class Table2Instance:
    ng: NetworkGraph
    qg: QueryGraph
    schemes: Dict[str, Dict]  # scheme name -> mapping


def build_instance() -> Table2Instance:
    """The Figure 5 query/network graphs."""
    ng = NetworkGraph(
        [
            NetVertex(vid="n1", site=N1, capability=1.0, covers=frozenset([N1])),
            NetVertex(vid="n2", site=N2, capability=1.0, covers=frozenset([N2])),
        ],
        _distance,
    )

    qg = QueryGraph()
    # Q1 requests 10 bit/s from s1, result 1 bit/s to its proxy n1
    # Q2 requests 10 bit/s from s2, result 1 bit/s to n1
    # Q3 requests  5 bit/s from s1 (contained in Q1's data!) and sends a
    #    *heavy* 10 bit/s result to its proxy n2 -- so that, ignoring the
    #    sharing edge, n2 is Q3's best host (scheme 2), while the sharing
    #    with Q1 flips the optimum to n1 (scheme 3)
    # Q4 requests  5 bit/s from s2, result 1 bit/s to n2
    specs = [
        ("Q1", {S1: 10.0}, {N1: 1.0}),
        ("Q2", {S2: 10.0}, {N1: 1.0}),
        ("Q3", {S1: 5.0}, {N2: 10.0}),
        ("Q4", {S2: 5.0}, {N2: 1.0}),
    ]
    for name, src, prox in specs:
        qg.add_qvertex(
            QVertex(
                vid=name,
                weight=0.1,
                mask=0,
                source_rates=dict(src),
                proxy_rates=dict(prox),
                members=(),
            )
        )
    for node in (S1, S2, N1, N2):
        clu = ng.covering_vertex(node)
        qg.add_nvertex(NVertex(vid=("n", node), node=node, clu=clu))
    for name, src, prox in specs:
        for node, rate in src.items():
            qg.add_edge(name, ("n", node), rate)
        for node, rate in prox.items():
            qg.add_edge(name, ("n", node), rate)
    # the sharing edge: Q1's requested data contains Q3's, so the edge
    # weight equals Q3's source edge weight (Section 3.1.2)
    qg.add_edge("Q1", "Q3", 5.0)

    pinned = qg.pinned_mapping(ng)
    schemes = {
        "scheme1": {**pinned, "Q1": "n1", "Q2": "n1", "Q3": "n2", "Q4": "n2"},
        "scheme2": {**pinned, "Q1": "n1", "Q4": "n1", "Q2": "n2", "Q3": "n2"},
        "scheme3": {**pinned, "Q1": "n1", "Q3": "n1", "Q2": "n2", "Q4": "n2"},
    }
    return Table2Instance(ng=ng, qg=qg, schemes=schemes)


def run() -> Dict[str, float]:
    """WEC of the three schemes plus what Algorithm 2 finds."""
    inst = build_instance()
    out = {
        name: inst.qg.wec(mapping, inst.ng)
        for name, mapping in inst.schemes.items()
    }
    result = map_graph(inst.qg, inst.ng)
    out["algorithm2"] = result.wec
    # with the paper's alpha = 0.1 the 2+2 load split is tight, so the
    # one-vertex-at-a-time refinement cannot pass through the infeasible
    # 3+1 intermediate state; a relaxed alpha shows the sharing-aware
    # optimum is exactly scheme 3
    relaxed = map_graph(inst.qg, inst.ng, alpha=1.5)
    out["algorithm2_relaxed"] = relaxed.wec
    return out


def format_results(results: Dict[str, float]) -> str:
    lines = ["Table 2: mapping schemes on the Figure 5 example (WEC)"]
    for name in (
        "scheme1", "scheme2", "scheme3", "algorithm2", "algorithm2_relaxed"
    ):
        lines.append(f"  {name:<19} WEC = {results[name]:.1f}")
    ordered = (
        results["scheme3"] < results["scheme2"] < results["scheme1"]
    )
    lines.append(f"  scheme3 < scheme2 < scheme1: {ordered}")
    lines.append(
        "  Algorithm 2 (relaxed alpha) reaches or beats scheme 3:"
        f" {results['algorithm2_relaxed'] <= results['scheme3'] + 1e-9}"
    )
    return "\n".join(lines)
