"""Figure 11: prototype study -- COSMOS vs two-phase operator placement.

The paper deploys a 30-node PlanetLab overlay (5 sources, 100 sensors)
and compares COSMOS against a global-operator-graph + network-aware
placement pipeline over 250/1000/4000 random queries.  Here the PlanetLab
overlay is a 30-node sample of the transit-stub WAN.

11(a): communication cost of the plans, normalised to COSMOS.
11(b): optimizer running time, normalised to the largest value (operator
placement at 4,000 queries).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Sequence

from ..core.cosmos import Cosmos, CosmosConfig
from ..placement.operator_graph import build_operator_graph
from ..placement.placement import place_operators
from ..placement.prototype import cosmos_cost, generate_prototype_workload
from ..topology.latency import LatencyOracle, select_roles
from ..topology.transit_stub import TransitStubParams, generate_transit_stub

__all__ = ["Fig11Row", "run"]


@dataclass
class Fig11Row:
    num_queries: int
    cost_op_placement: float
    cost_cosmos: float
    time_op_placement: float
    time_cosmos: float


def run(
    query_counts: Sequence[int] = (250, 1000, 4000),
    num_nodes: int = 30,
    num_sources: int = 5,
    num_sensors: int = 100,
    seed: int = 0,
) -> List[Fig11Row]:
    topo = generate_transit_stub(
        TransitStubParams(
            transit_domains=3,
            transit_nodes=3,
            stubs_per_transit_node=3,
            stub_nodes=4,
        ),
        seed=seed,
    )
    oracle = LatencyOracle(topo)
    sources, processors = select_roles(
        topo, num_sources, num_nodes - num_sources, seed=seed + 1
    )

    rows: List[Fig11Row] = []
    for n in query_counts:
        workload = generate_prototype_workload(
            n, sources, processors, num_sensors=num_sensors, seed=seed + n
        )

        # two-phase baseline: global operator graph + greedy placement
        t0 = time.perf_counter()
        graph = build_operator_graph(
            workload.proto_queries, workload.sensor_source, workload.sensor_rate
        )
        result = place_operators(graph, processors, oracle, seed=seed)
        t_op = time.perf_counter() - t0

        # COSMOS: coordinator tree with clusters of 2-3 members (Sec 4.2).
        # Its coordinators optimize their subtrees in parallel in a real
        # deployment, so the comparable "response time" is the critical
        # path through the tree, not the single-process wall time.
        cosmos = Cosmos(
            oracle,
            processors,
            workload.space,
            CosmosConfig(k=2, vmax=100, max_overlap_neighbors=20, seed=seed),
        )
        cosmos.reset_timers()
        placement = cosmos.distribute(workload.cosmos_queries)
        t_cosmos = cosmos.response_time()
        c_cosmos = cosmos_cost(workload, placement, oracle)

        rows.append(
            Fig11Row(
                num_queries=n,
                cost_op_placement=result.cost,
                cost_cosmos=c_cosmos,
                time_op_placement=t_op,
                time_cosmos=t_cosmos,
            )
        )
    return rows


def format_rows(rows: Sequence[Fig11Row]) -> str:
    t_max = max(max(r.time_op_placement, r.time_cosmos) for r in rows)
    lines = [
        "Figure 11(a): normalised communication cost (COSMOS = 1.0)",
        f"{'#q':>6} {'OpPlace':>9} {'COSMOS':>8}",
    ]
    for r in rows:
        lines.append(
            f"{r.num_queries:>6} {r.cost_op_placement / r.cost_cosmos:>9.2f}"
            f" {1.0:>8.2f}"
        )
    lines.append("")
    lines.append("Figure 11(b): normalised running time (max = 1.0)")
    lines.append(f"{'#q':>6} {'OpPlace':>9} {'COSMOS':>8}")
    for r in rows:
        lines.append(
            f"{r.num_queries:>6} {r.time_op_placement / t_max:>9.3f}"
            f" {r.time_cosmos / t_max:>8.3f}"
        )
    return "\n".join(lines)
