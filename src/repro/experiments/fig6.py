"""Figure 6: initial query distribution quality and running time.

Compares four initial-distribution schemes over a growing query
population:

* Naive        -- queries stay at their proxies;
* Greedy       -- global greedy mapping only;
* Hierarchical -- COSMOS (coarsen bottom-up, map top-down);
* Centralized  -- global Algorithm 2 (the optimality benchmark).

Figure 6(a) reports the weighted communication cost of each scheme;
Figure 6(b) the response time (critical path) and total CPU time of the
hierarchical scheme against the centralized one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..obs.timing import Stopwatch
from ..baselines.simple import (
    centralized_placement,
    greedy_placement,
    naive_placement,
)
from .config import ExperimentConfig, bench_scale, build_testbed

__all__ = ["Fig6Row", "run"]


@dataclass
class Fig6Row:
    """One x-axis point of Figures 6(a) and 6(b)."""

    num_queries: int
    cost_naive: float
    cost_greedy: float
    cost_hierarchical: float
    cost_centralized: float
    #: Figure 6(b): seconds
    time_centralized: float
    time_hierarchical_response: float
    time_hierarchical_total: float


def run(
    config: ExperimentConfig = None,
    query_counts: Sequence[int] = (500, 1000, 2000, 4000),
) -> List[Fig6Row]:
    """Run the Figure 6 sweep; one row per query count."""
    config = config or bench_scale()
    rows: List[Fig6Row] = []
    for n in query_counts:
        bed = build_testbed(config.with_queries(n))
        queries = bed.workload.queries

        pl_naive = naive_placement(queries)
        pl_greedy = greedy_placement(
            queries, bed.processors, bed.workload.space, bed.oracle
        )

        cosmos = bed.new_cosmos()
        cosmos.reset_timers()
        pl_hier = dict(cosmos.distribute(queries))
        t_resp = cosmos.response_time()
        t_total = cosmos.total_time()

        watch = Stopwatch()
        pl_cent = centralized_placement(
            queries, bed.processors, bed.workload.space, bed.oracle, max_outer=4
        )
        t_cent = watch.elapsed()

        rows.append(
            Fig6Row(
                num_queries=n,
                cost_naive=bed.cost(pl_naive),
                cost_greedy=bed.cost(pl_greedy),
                cost_hierarchical=bed.cost(pl_hier),
                cost_centralized=bed.cost(pl_cent),
                time_centralized=t_cent,
                time_hierarchical_response=t_resp,
                time_hierarchical_total=t_total,
            )
        )
    return rows


def format_rows(rows: Sequence[Fig6Row]) -> str:
    lines = [
        "Figure 6(a): weighted communication cost (x1000) vs #queries",
        f"{'#q':>6} {'Naive':>10} {'Greedy':>10} {'Hier':>10} {'Central':>10}",
    ]
    for r in rows:
        lines.append(
            f"{r.num_queries:>6} {r.cost_naive / 1e3:>10.1f}"
            f" {r.cost_greedy / 1e3:>10.1f} {r.cost_hierarchical / 1e3:>10.1f}"
            f" {r.cost_centralized / 1e3:>10.1f}"
        )
    lines.append("")
    lines.append("Figure 6(b): optimization time (s) vs #queries")
    lines.append(f"{'#q':>6} {'Cen.Total':>10} {'Hie.Total':>10} {'Hie.Resp':>10}")
    for r in rows:
        lines.append(
            f"{r.num_queries:>6} {r.time_centralized:>10.2f}"
            f" {r.time_hierarchical_total:>10.2f}"
            f" {r.time_hierarchical_response:>10.2f}"
        )
    return "\n".join(lines)
