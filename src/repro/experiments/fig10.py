"""Figure 10: perturbation of stream rates.

At runtime the rates of a batch of random substreams increase ("I") or
decrease ("D"), shifting both communication cost and processor load
(query load is proportional to input rate).  Three responses:

* No-Adaptive -- keep the initial placement;
* Adaptive    -- COSMOS adaptation round after each perturbation;
* Remapping   -- rerun the *centralized* mapping from scratch (better
  quality but, as the paper measures, ~7x more query migrations).

Reported per perturbation: weighted communication cost, load standard
deviation, and cumulative query migrations of Adaptive vs Remapping.

Load statistics can come from the static rate model (the original path)
or be *measured* from the discrete-event simulator's arrival process
(``load_source="sim"``), which adds realistic sampling noise to the
numbers adaptation reacts to.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from ..baselines.simple import centralized_placement
from .config import ExperimentConfig, bench_scale, build_testbed

__all__ = ["Fig10Series", "run", "PERTURBATION_PATTERN"]

#: The paper's I/D sequence along the x-axis of Figure 10.
PERTURBATION_PATTERN = ("I", "D", "I", "I", "I", "I", "I", "D", "D", "I")


@dataclass
class Fig10Series:
    steps: List[int] = field(default_factory=list)
    pattern: List[str] = field(default_factory=list)
    no_adaptive_cost: List[float] = field(default_factory=list)
    adaptive_cost: List[float] = field(default_factory=list)
    remapping_cost: List[float] = field(default_factory=list)
    no_adaptive_std: List[float] = field(default_factory=list)
    adaptive_std: List[float] = field(default_factory=list)
    remapping_std: List[float] = field(default_factory=list)
    adaptive_migrations: int = 0
    remapping_migrations: int = 0

    def migration_ratio(self) -> float:
        if self.adaptive_migrations == 0:
            return float("inf")
        return self.remapping_migrations / self.adaptive_migrations


def run(
    config: ExperimentConfig = None,
    pattern: Sequence[str] = PERTURBATION_PATTERN,
    perturbed_streams: int = 160,
    increase_factor: float = 3.0,
    load_source: str = "static",
    measure_duration: float = 60.0,
) -> Fig10Series:
    """Perturb ``perturbed_streams`` random substreams per step.

    The bench default (160) keeps the paper's ratio: 800 perturbed out of
    20,000 substreams = 4%.

    ``load_source`` selects where the refreshed load statistics come
    from after each perturbation:

    * ``"static"`` (default, the original path) -- the space's nominal
      expected rates, i.e. the optimizer is told the exact new rates;
    * ``"sim"`` -- rates *measured* by sampling the discrete-event
      simulator's Poisson tuple-arrival process over ``measure_duration``
      simulated seconds (:func:`repro.sim.workload.measure_rates`), so
      adaptation reacts to noisy observations the way a deployed system
      would (Section 3.8's statistics collection).
    """
    if load_source not in ("static", "sim"):
        raise ValueError(f"unknown load source {load_source!r}")
    config = config or bench_scale()
    bed = build_testbed(config)
    queries = bed.workload.queries
    rng = random.Random(config.seed + 10)
    measure_rng = np.random.default_rng(config.seed + 10)

    cosmos = bed.new_cosmos()
    cosmos.distribute(queries)
    pl_static = dict(cosmos.placement)
    pl_remap = dict(pl_static)
    prev_remap = dict(pl_static)

    series = Fig10Series()

    def snapshot(step: int, label: str) -> None:
        series.steps.append(step)
        series.pattern.append(label)
        series.no_adaptive_cost.append(bed.cost(pl_static))
        series.no_adaptive_std.append(bed.stddev(pl_static))
        placement = dict(cosmos.placement)
        series.adaptive_cost.append(bed.cost(placement))
        series.adaptive_std.append(bed.stddev(placement))
        series.remapping_cost.append(bed.cost(pl_remap))
        series.remapping_std.append(bed.stddev(pl_remap))

    snapshot(0, "-")
    for step, kind in enumerate(pattern, start=1):
        streams = rng.sample(range(len(bed.workload.space)), perturbed_streams)
        factor = increase_factor if kind == "I" else 1.0 / increase_factor
        bed.workload.space.perturb_rates(streams, factor)

        # statistics collection notices the change (Section 3.8)
        if load_source == "sim":
            from ..sim.workload import measure_rates

            measured = measure_rates(
                bed.workload.space, measure_duration, measure_rng
            )
            cosmos.refresh_statistics(bed.workload, rates=measured)
        else:
            cosmos.refresh_statistics(bed.workload)

        report = cosmos.adapt()
        series.adaptive_migrations += report.migrated_queries

        pl_remap = centralized_placement(
            queries, bed.processors, bed.workload.space, bed.oracle, max_outer=2
        )
        series.remapping_migrations += sum(
            1
            for q in queries
            if prev_remap.get(q.query_id) != pl_remap[q.query_id]
        )
        prev_remap = dict(pl_remap)
        snapshot(step, kind)
    return series


def format_series(s: Fig10Series) -> str:
    lines = [
        "Figure 10: perturbation of stream rates",
        f"{'step':>4} {'type':>4} | {'NoAd cost':>10} {'Adap cost':>10}"
        f" {'Remap cost':>10} | {'NoAd std':>8} {'Adap std':>8} {'Remap std':>9}",
    ]
    for i, step in enumerate(s.steps):
        lines.append(
            f"{step:>4} {s.pattern[i]:>4} | {s.no_adaptive_cost[i] / 1e3:>10.1f}"
            f" {s.adaptive_cost[i] / 1e3:>10.1f} {s.remapping_cost[i] / 1e3:>10.1f}"
            f" | {s.no_adaptive_std[i]:>8.2f} {s.adaptive_std[i]:>8.2f}"
            f" {s.remapping_std[i]:>9.2f}"
        )
    lines.append(
        f"migrations: adaptive={s.adaptive_migrations}"
        f" remapping={s.remapping_migrations}"
        f" ratio={s.migration_ratio():.1f}x"
    )
    return "\n".join(lines)
