"""Tests for the CQL parser, containment and query merging (Section 2.1)."""

import pytest

from repro.pubsub import Event
from repro.query.ast import NOW, AttrRef, Comparison, Literal, Window
from repro.query.containment import (
    contains,
    equivalent,
    selection_filter,
    selections_imply,
)
from repro.query.merging import (
    SharedGroup,
    merge_all,
    merge_queries,
    mergeable,
    split_subscription,
)
from repro.query.parser import ParseError, parse_query

Q1_TEXT = """
SELECT * FROM R [Now], S [Now]
WHERE R.b = S.b AND R.a > 10 AND S.c > 10
"""

Q3_TEXT = """
SELECT S2.* FROM Station1 [Range 30 Minutes] S1, Station2 [Now] S2
WHERE S1.snowHeight > S2.snowHeight AND S1.snowHeight >= 10
"""

Q4_TEXT = """
SELECT S1.snowHeight, S1.timestamp, S2.snowHeight, S2.timestamp
FROM Station1 [Range 1 Hour] S1, Station2 [Now] S2
WHERE S1.snowHeight > S2.snowHeight
"""


class TestWindow:
    def test_now_window(self):
        assert NOW.seconds == 0 and NOW.is_time

    def test_containment_time(self):
        assert Window(seconds=3600).contains(Window(seconds=1800))
        assert not Window(seconds=1800).contains(Window(seconds=3600))

    def test_containment_rows(self):
        assert Window(rows=100).contains(Window(rows=50))

    def test_mixed_windows_never_contain(self):
        assert not Window(seconds=10).contains(Window(rows=5))

    def test_invalid_windows(self):
        with pytest.raises(ValueError):
            Window()
        with pytest.raises(ValueError):
            Window(seconds=1, rows=1)
        with pytest.raises(ValueError):
            Window(rows=0)


class TestParser:
    def test_paper_q1(self):
        q = parse_query(Q1_TEXT, name="Q1")
        assert q.streams() == ["R", "S"]
        assert all(b.window == NOW for b in q.bindings)
        assert len(q.joins()) == 1
        assert len(q.selections()) == 2

    def test_paper_q3(self):
        q = parse_query(Q3_TEXT, name="Q3")
        assert q.binding("S1").window.seconds == 1800
        assert q.binding("S2").window == NOW
        assert q.projected_attrs("S2") is None  # S2.*
        assert q.projected_attrs("S1") == []

    def test_star_expansion(self):
        q = parse_query("SELECT * FROM R [Now], S [Now]")
        assert {s.stream for s in q.select} == {"R", "S"}
        assert all(s.attr is None for s in q.select)

    def test_alias_defaults_to_stream(self):
        q = parse_query("SELECT R.a FROM R [Rows 5]")
        assert q.bindings[0].alias == "R"
        assert q.bindings[0].window.rows == 5

    def test_units(self):
        q = parse_query("SELECT R.a FROM R [Range 2 Hours]")
        assert q.bindings[0].window.seconds == 7200

    def test_operators_normalised(self):
        q = parse_query("SELECT R.a FROM R [Now] WHERE R.a = 5 AND R.b <> 3")
        ops = sorted(c.op for c in q.where)
        assert ops == ["!=", "=="]

    def test_string_literal(self):
        q = parse_query("SELECT R.a FROM R [Now] WHERE R.kind = 'snow'")
        assert q.where[0].right.value == "snow"

    def test_unknown_alias_in_select_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT X.a FROM R [Now]")

    def test_duplicate_alias_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT R.a FROM R [Now] R, S [Now] R")

    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT FROM WHERE")

    def test_trailing_tokens_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT R.a FROM R [Now] garbage ] [")

    def test_roundtrip_str_parse(self):
        q = parse_query(Q3_TEXT, name="Q3")
        q2 = parse_query(str(q), name="Q3")
        assert q2.streams() == q.streams()
        assert len(q2.where) == len(q.where)


class TestContainment:
    def test_q5_contains_q3_and_q4(self):
        q3 = parse_query(Q3_TEXT, name="Q3")
        q4 = parse_query(Q4_TEXT, name="Q4")
        q5 = merge_queries(q3, q4, name="Q5")
        assert contains(q5, q3)
        assert contains(q5, q4)
        assert not contains(q3, q5)

    def test_selection_implication(self):
        strong = parse_query("SELECT R.a FROM R [Now] WHERE R.a > 20")
        weak = parse_query("SELECT R.a FROM R [Now] WHERE R.a > 10")
        assert selections_imply(strong, weak)
        assert not selections_imply(weak, strong)

    def test_window_blocks_containment(self):
        small = parse_query("SELECT R.a, R.timestamp FROM R [Range 10 Seconds]")
        big = parse_query("SELECT R.a, R.timestamp FROM R [Range 100 Seconds]")
        assert contains(big, small)
        assert not contains(small, big)

    def test_different_streams_not_contained(self):
        a = parse_query("SELECT R.a FROM R [Now]")
        b = parse_query("SELECT S.a FROM S [Now]")
        assert not contains(a, b)

    def test_different_joins_not_contained(self):
        a = parse_query("SELECT * FROM R [Now], S [Now] WHERE R.x = S.x")
        b = parse_query("SELECT * FROM R [Now], S [Now] WHERE R.y = S.y")
        assert not contains(a, b)

    def test_projection_blocks_containment(self):
        narrow = parse_query("SELECT R.a, R.timestamp FROM R [Now]")
        wants_all = parse_query("SELECT R.* FROM R [Now]")
        assert not contains(narrow, wants_all)
        assert contains(wants_all, narrow)

    def test_equivalence_is_mutual(self):
        a = parse_query("SELECT R.a, R.timestamp FROM R [Now] WHERE R.a > 5")
        b = parse_query("SELECT R.a, R.timestamp FROM R [Now] WHERE R.a > 5")
        assert equivalent(a, b)

    def test_selection_filter_extraction(self):
        q = parse_query("SELECT R.a FROM R [Now] WHERE R.a > 10 AND R.b < 5")
        f = selection_filter(q)
        assert f.matches({"R.a": 11, "R.b": 4})
        assert not f.matches({"R.a": 11, "R.b": 6})


class TestMerging:
    def test_q5_structure(self):
        q3 = parse_query(Q3_TEXT, name="Q3")
        q4 = parse_query(Q4_TEXT, name="Q4")
        q5 = merge_queries(q3, q4, name="Q5")
        # window hull = the larger window (1 hour)
        assert q5.binding("S1").window.seconds == 3600
        # selection hull drops the S1.snowHeight >= 10 constraint
        assert all("snowHeight" not in str(c) or c.is_join() for c in q5.where
                   if not c.is_join()) or len(q5.selections()) == 0
        # S2.* preserved (q3 wants all of S2)
        assert q5.projected_attrs("S2") is None

    def test_not_mergeable_different_streams(self):
        a = parse_query("SELECT R.a FROM R [Now]")
        b = parse_query("SELECT S.a FROM S [Now]")
        assert not mergeable(a, b)
        with pytest.raises(ValueError):
            merge_queries(a, b)

    def test_merge_is_commutative_in_containment(self):
        q3 = parse_query(Q3_TEXT, name="Q3")
        q4 = parse_query(Q4_TEXT, name="Q4")
        m1 = merge_queries(q3, q4)
        m2 = merge_queries(q4, q3)
        assert contains(m1, q3) and contains(m1, q4)
        assert contains(m2, q3) and contains(m2, q4)

    def test_split_subscription_reapplies_filters(self):
        q3 = parse_query(Q3_TEXT, name="Q3")
        q4 = parse_query(Q4_TEXT, name="Q4")
        q5 = merge_queries(q3, q4, name="Q5")
        p32 = split_subscription(q5, q3, "s5")
        assert p32.streams == frozenset({"s5"})
        # the residual selection survives in the subscription filter
        assert p32.filter.matches(
            {"S1.snowHeight": 12, "S1.timestamp_lag": 100.0}
        )
        assert not p32.filter.matches(
            {"S1.snowHeight": 5, "S1.timestamp_lag": 100.0}
        )
        # the smaller window becomes a timestamp-lag band
        assert not p32.filter.matches(
            {"S1.snowHeight": 12, "S1.timestamp_lag": 7200.0}
        )

    def test_split_subscription_requires_containment(self):
        q3 = parse_query(Q3_TEXT, name="Q3")
        small = parse_query(
            "SELECT S2.* FROM Station1 [Now] S1, Station2 [Now] S2"
            " WHERE S1.snowHeight > S2.snowHeight"
        )
        with pytest.raises(ValueError):
            split_subscription(small, q3, "s")

    def test_split_subscription_projection(self):
        q3 = parse_query(Q3_TEXT, name="Q3")
        q4 = parse_query(Q4_TEXT, name="Q4")
        q5 = merge_queries(q3, q4, name="Q5")
        p42 = split_subscription(q5, q4, "s5")
        assert p42.projection == frozenset(
            {"S1.snowHeight", "S1.timestamp", "S2.snowHeight", "S2.timestamp"}
        )

    def test_split_single_binding_has_no_window_band(self):
        """Selection-only results carry no ``timestamp_lag`` attribute,
        and their window has no semantic effect -- a band constraint
        (which the old code emitted) would drop every result."""
        small = parse_query(
            "SELECT R.a, R.timestamp FROM R [Range 10 Seconds] R"
            " WHERE R.a > 5", name="small",
        )
        big = parse_query(
            "SELECT R.a, R.timestamp FROM R [Range 100 Seconds] R"
            " WHERE R.a > 0", name="big",
        )
        merged = merge_queries(big, small, name="M")
        sub = split_subscription(merged, small, "s")
        assert not any(
            "timestamp_lag" in c.attr for c in sub.filter.constraints
        )
        # a selection result of the merged query still reaches the member
        assert sub.filter.matches({"R.a": 7, "R.timestamp": 3.0})
        assert not sub.filter.matches({"R.a": 3, "R.timestamp": 3.0})

    def test_split_lifetime_span_bounds(self):
        """Churn-exact carving: only results whose inputs were all
        emitted inside the member's lifetime match."""
        q3 = parse_query(Q3_TEXT, name="Q3")
        q4 = parse_query(Q4_TEXT, name="Q4")
        q5 = merge_queries(q3, q4, name="Q5")
        sub = split_subscription(
            q5, q3, "s5", emitted_after=10.0, emitted_before=20.0
        )
        ok = {
            "S1.snowHeight": 12, "S1.timestamp_lag": 100.0,
            "S1.timestamp": 15.0, "S2.timestamp": 16.0,
        }
        assert sub.filter.matches(ok)
        assert not sub.filter.matches({**ok, "S1.timestamp": 9.0})
        assert not sub.filter.matches({**ok, "S2.timestamp": 21.0})

    def test_split_projection_requests_filter_attributes(self):
        """In-network projection forwards only requested attributes; a
        carve whose filter reads an attribute its projection strips
        would match nothing one hop out, so the projection must cover
        every filter attribute."""
        q3 = parse_query(Q3_TEXT, name="Q3")
        q4 = parse_query(Q4_TEXT, name="Q4")
        q5 = merge_queries(q3, q4, name="Q5")
        sub = split_subscription(
            q5, q4, "s5", emitted_after=10.0, emitted_before=20.0
        )
        assert sub.projection is not None
        assert {c.attr for c in sub.filter.constraints} <= set(sub.projection)


class TestMergeAll:
    def test_fold_narrows_after_departure(self):
        q3 = parse_query(Q3_TEXT, name="Q3")
        q4 = parse_query(Q4_TEXT, name="Q4")
        merged = merge_queries(q3, q4, name="M")
        assert merged.binding("S1").window.seconds == 3600
        refolded = merge_all([q3], name="M")
        # forgetting Q4 brings the 30-minute window back
        assert refolded.binding("S1").window.seconds == 1800
        assert refolded.name == "M"

    def test_empty_fold_rejected(self):
        with pytest.raises(ValueError):
            merge_all([])


class TestSharedGroup:
    def q(self, name, window, threshold):
        return parse_query(
            f"SELECT R.a, R.timestamp FROM R [Range {window} Seconds] R"
            f" WHERE R.a > {threshold}", name=name,
        )

    def test_stable_gids_survive_retirement(self):
        group = SharedGroup(0)
        e1, _ = group.add(self.q("a", 10, 5))
        other = parse_query("SELECT S.b, S.timestamp FROM S [Now] S", name="b")
        e2, _ = group.add(other)
        assert (e1.gid, e2.gid) == (0, 1)
        entry, retired = group.remove("a")
        assert entry is None and [e.gid for e in retired] == [0]
        # a new group never recycles a retired id
        e3, _ = group.add(self.q("c", 10, 5))
        assert e3.gid == 2
        assert {e.gid for e in group.entries} == {1, 2}

    def test_redeclared_member_replaces_stale_version(self):
        group = SharedGroup(0)
        group.add(self.q("a", 10, 5))
        entry, _ = group.add(self.q("b", 50, 0))
        assert entry.merged.binding("R").window.seconds == 50
        # re-declare b with a narrow window: the fold must narrow back
        entry, retired = group.add(self.q("b", 10, 3))
        assert not retired
        assert entry.member_names() == ["a", "b"]
        assert entry.merged.binding("R").window.seconds == 10

    def test_remove_refolds_survivors(self):
        group = SharedGroup(0)
        group.add(self.q("a", 10, 5))
        group.add(self.q("b", 50, 0))
        entry, retired = group.remove("b")
        assert retired == []
        assert entry.merged.binding("R").window.seconds == 10
        assert len(entry.merged.selections()) == 1

    def test_collapse_retires_absorbed_group(self, monkeypatch):
        """A widened merged query can bridge two groups; the absorbed
        entry must be reported so its plan/adv/stream can be retired."""
        import repro.query.merging as merging

        real = merging.mergeable
        blocked = [True]

        def gated(a, b):
            # while blocked, pretend the two seed queries differ so they
            # found separate groups; afterwards restore real semantics
            if blocked[0]:
                return False
            return real(a, b)

        group = SharedGroup(0)
        monkeypatch.setattr(merging, "mergeable", gated)
        e1, _ = group.add(self.q("a", 10, 5))
        e2, _ = group.add(self.q("b", 20, 3))
        assert len(group.entries) == 2
        blocked[0] = False
        entry, retired = group.add(self.q("c", 30, 1))
        assert len(group.entries) == 1
        assert [e.gid for e in retired] == [e2.gid]
        assert sorted(entry.member_names()) == ["a", "b", "c"]
        assert entry.merged.binding("R").window.seconds == 30
