"""Integration tests: placement -> engines + pub/sub with result sharing."""

import pytest

from repro.core.sharing import SharingDeployment
from repro.engine import SensorFleet
from repro.query.parser import parse_query
from repro.topology import OverlayTree


def star_overlay(nodes, center):
    tree = OverlayTree(nodes=list(nodes))
    for n in nodes:
        if n != center:
            tree.add_link(center, n, 1.0)
    return tree


Q3 = parse_query(
    "SELECT S2.* FROM Station1 [Range 30 Minutes] S1, Station2 [Now] S2"
    " WHERE S1.snowHeight > S2.snowHeight AND S1.snowHeight >= 10",
    name="Q3",
)
Q4 = parse_query(
    "SELECT S1.snowHeight, S1.timestamp, S2.snowHeight, S2.timestamp"
    " FROM Station1 [Range 1 Hour] S1, Station2 [Now] S2"
    " WHERE S1.snowHeight > S2.snowHeight",
    name="Q4",
)


@pytest.fixture
def deployment():
    # nodes: 0 = hub/processor, 1,2 = sources, 3,4 = user proxies
    overlay = star_overlay([0, 1, 2, 3, 4], center=0)
    # seed 7 gives station baselines where S1.snowHeight > S2.snowHeight
    # actually fires (the join is otherwise legitimately empty)
    fleet = SensorFleet.build(2, stream_prefix="Station", seed=7)
    dep = SharingDeployment(
        overlay, stream_sources={"Station1": 1, "Station2": 2}
    )
    return dep, fleet


class TestSharingDeployment:
    def test_two_queries_one_executed(self, deployment):
        dep, _ = deployment
        dep.deploy(Q3, proxy=3, processor=0)
        dep.deploy(Q4, proxy=4, processor=0)
        assert dep.user_query_count() == 2
        assert dep.executed_query_count() == 1  # merged into one group

    def test_results_reach_both_users(self, deployment):
        dep, fleet = deployment
        dep.deploy(Q3, proxy=3, processor=0)
        dep.deploy(Q4, proxy=4, processor=0)
        dep.run(fleet.trace(start=0.0, steps=60))
        assert len(dep.results_of("Q3")) > 0
        assert len(dep.results_of("Q4")) > 0
        # Q4's window dominates Q3's, so Q4 sees at least as many results
        assert len(dep.results_of("Q4")) >= len(dep.results_of("Q3"))

    def test_carved_results_match_direct_execution(self, deployment):
        from repro.engine import Engine

        dep, fleet = deployment
        dep.deploy(Q3, proxy=3, processor=0)
        dep.deploy(Q4, proxy=4, processor=0)
        trace = fleet.trace(start=0.0, steps=60)
        dep.run(trace)

        direct = Engine()
        direct.add_query(Q3, result_stream="s3")
        direct.add_query(Q4, result_stream="s4")
        for t in trace:
            direct.push(t)
        assert len(dep.results_of("Q3")) == len(direct.results["Q3"])
        assert len(dep.results_of("Q4")) == len(direct.results["Q4"])

    def test_incompatible_queries_run_separately(self, deployment):
        dep, _ = deployment
        other = parse_query(
            "SELECT S1.temperature, S1.timestamp FROM Station1 [Now] S1"
            " WHERE S1.temperature < 0",
            name="Qtemp",
        )
        dep.deploy(Q3, proxy=3, processor=0)
        dep.deploy(other, proxy=4, processor=0)
        assert dep.executed_query_count() == 2

    def test_data_cost_accounted(self, deployment):
        dep, fleet = deployment
        dep.deploy(Q3, proxy=3, processor=0)
        dep.run(fleet.trace(start=0.0, steps=30))
        assert dep.weighted_data_cost() > 0

    def test_unnamed_query_rejected(self, deployment):
        dep, _ = deployment
        anon = parse_query("SELECT S1.snowHeight FROM Station1 [Now] S1")
        with pytest.raises(ValueError):
            dep.deploy(anon, proxy=3, processor=0)
