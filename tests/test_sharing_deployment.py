"""Integration tests: placement -> engines + pub/sub with result sharing."""

import pytest

from repro.core.sharing import SharingDeployment
from repro.engine import SensorFleet
from repro.query.parser import parse_query
from repro.topology import OverlayTree


def star_overlay(nodes, center):
    tree = OverlayTree(nodes=list(nodes))
    for n in nodes:
        if n != center:
            tree.add_link(center, n, 1.0)
    return tree


Q3 = parse_query(
    "SELECT S2.* FROM Station1 [Range 30 Minutes] S1, Station2 [Now] S2"
    " WHERE S1.snowHeight > S2.snowHeight AND S1.snowHeight >= 10",
    name="Q3",
)
Q4 = parse_query(
    "SELECT S1.snowHeight, S1.timestamp, S2.snowHeight, S2.timestamp"
    " FROM Station1 [Range 1 Hour] S1, Station2 [Now] S2"
    " WHERE S1.snowHeight > S2.snowHeight",
    name="Q4",
)


@pytest.fixture
def deployment():
    # nodes: 0 = hub/processor, 1,2 = sources, 3,4 = user proxies
    overlay = star_overlay([0, 1, 2, 3, 4], center=0)
    # seed 7 gives station baselines where S1.snowHeight > S2.snowHeight
    # actually fires (the join is otherwise legitimately empty)
    fleet = SensorFleet.build(2, stream_prefix="Station", seed=7)
    dep = SharingDeployment(
        overlay, stream_sources={"Station1": 1, "Station2": 2}
    )
    return dep, fleet


class TestSharingDeployment:
    def test_two_queries_one_executed(self, deployment):
        dep, _ = deployment
        dep.deploy(Q3, proxy=3, processor=0)
        dep.deploy(Q4, proxy=4, processor=0)
        assert dep.user_query_count() == 2
        assert dep.executed_query_count() == 1  # merged into one group

    def test_results_reach_both_users(self, deployment):
        dep, fleet = deployment
        dep.deploy(Q3, proxy=3, processor=0)
        dep.deploy(Q4, proxy=4, processor=0)
        dep.run(fleet.trace(start=0.0, steps=60))
        assert len(dep.results_of("Q3")) > 0
        assert len(dep.results_of("Q4")) > 0
        # Q4's window dominates Q3's, so Q4 sees at least as many results
        assert len(dep.results_of("Q4")) >= len(dep.results_of("Q3"))

    def test_carved_results_match_direct_execution(self, deployment):
        from repro.engine import Engine

        dep, fleet = deployment
        dep.deploy(Q3, proxy=3, processor=0)
        dep.deploy(Q4, proxy=4, processor=0)
        trace = fleet.trace(start=0.0, steps=60)
        dep.run(trace)

        direct = Engine()
        direct.add_query(Q3, result_stream="s3")
        direct.add_query(Q4, result_stream="s4")
        for t in trace:
            direct.push(t)
        assert len(dep.results_of("Q3")) == len(direct.results["Q3"])
        assert len(dep.results_of("Q4")) == len(direct.results["Q4"])

    def test_incompatible_queries_run_separately(self, deployment):
        dep, _ = deployment
        other = parse_query(
            "SELECT S1.temperature, S1.timestamp FROM Station1 [Now] S1"
            " WHERE S1.temperature < 0",
            name="Qtemp",
        )
        dep.deploy(Q3, proxy=3, processor=0)
        dep.deploy(other, proxy=4, processor=0)
        assert dep.executed_query_count() == 2

    def test_data_cost_accounted(self, deployment):
        dep, fleet = deployment
        dep.deploy(Q3, proxy=3, processor=0)
        dep.run(fleet.trace(start=0.0, steps=30))
        assert dep.weighted_data_cost() > 0

    def test_unnamed_query_rejected(self, deployment):
        dep, _ = deployment
        anon = parse_query("SELECT S1.snowHeight FROM Station1 [Now] S1")
        with pytest.raises(ValueError):
            dep.deploy(anon, proxy=3, processor=0)


def total_subscriptions(dep):
    return sum(dep.net.routing_table_sizes().values())


class TestP1Teardown:
    """Regression: re-merges used to leak stale ``p^1`` subscriptions."""

    def test_remerge_keeps_tables_flat(self, deployment):
        dep, _ = deployment
        dep.deploy(Q3, proxy=3, processor=0)
        dep.deploy(Q4, proxy=4, processor=0)
        settled = total_subscriptions(dep)
        # re-declaring a member re-merges the group; table size must not
        # creep (the old p^1/p^2 sets are torn down before reinstall)
        for _ in range(4):
            dep.deploy(Q4, proxy=4, processor=0)
            assert total_subscriptions(dep) == settled

    def test_remerge_data_cost_matches_fresh_deployment(self, deployment):
        dep, fleet = deployment
        dep.deploy(Q3, proxy=3, processor=0)
        dep.deploy(Q4, proxy=4, processor=0)
        dep.deploy(Q4, proxy=4, processor=0)  # re-merge
        trace = fleet.trace(start=0.0, steps=40)
        dep.run(trace)

        overlay = star_overlay([0, 1, 2, 3, 4], center=0)
        fresh = SharingDeployment(
            overlay, stream_sources={"Station1": 1, "Station2": 2}
        )
        fresh.deploy(Q3, proxy=3, processor=0)
        fresh.deploy(Q4, proxy=4, processor=0)
        fresh.run(trace)
        assert dep.weighted_data_cost() == fresh.weighted_data_cost()
        assert dep.results_of("Q3") == fresh.results_of("Q3")
        assert dep.results_of("Q4") == fresh.results_of("Q4")


class TestRedeploy:
    """Regression: re-deploying a member ignored a changed proxy."""

    def test_redeploy_rehomes_proxy(self, deployment):
        dep, fleet = deployment
        dep.deploy(Q3, proxy=3, processor=0)
        dep.deploy(Q3, proxy=4, processor=0)
        dq = dep.deployed["Q3"]
        assert dq.proxy == 4
        assert dep.net._subscriber_node[dq.result_subscription.sub_id] == 4
        dep.run(fleet.trace(start=0.0, steps=60))
        assert len(dep.results_of("Q3")) > 0

    def test_redeploy_moves_processor_cleanly(self, deployment):
        """A re-declaration on another processor must fully leave the old
        group -- no phantom member whose later re-merges clobber the
        live deployment's subscription."""
        dep, fleet = deployment
        dep.deploy(Q3, proxy=3, processor=0)
        dep.deploy(Q4, proxy=3, processor=0)
        dep.deploy(Q3, proxy=4, processor=1)
        assert dep.deployed["Q3"].processor == 1
        old_members = [
            m for e in dep.groups[0].entries for m in e.member_names()
        ]
        assert "Q3" not in old_members
        stream = dep.deployed["Q3"].result_subscription.streams
        # mutating the old group must not touch Q3's subscription
        q5 = parse_query(str(Q4), name="Q5")
        dep.deploy(q5, proxy=3, processor=0)
        assert dep.deployed["Q3"].result_subscription.streams == stream

    def test_redeploy_does_not_duplicate_member(self, deployment):
        dep, _ = deployment
        dep.deploy(Q3, proxy=3, processor=0)
        dep.deploy(Q3, proxy=3, processor=0)
        assert dep.user_query_count() == 1
        assert dep.executed_query_count() == 1
        (entry,) = dep.groups[0].entries
        assert entry.member_names() == ["Q3"]


class TestUndeploy:
    def test_undeploy_narrows_and_retires(self, deployment):
        dep, fleet = deployment
        dep.deploy(Q3, proxy=3, processor=0)
        dep.deploy(Q4, proxy=4, processor=0)
        dep.undeploy("Q4")
        # the group re-merged down to Q3 alone: its (narrower) window is
        # back and Q4's subscription is gone everywhere
        (entry,) = dep.groups[0].entries
        assert entry.merged.binding("S1").window.seconds == 30 * 60
        assert dep.user_query_count() == 1
        dep.run(fleet.trace(start=0.0, steps=60))
        assert len(dep.results_of("Q3")) > 0
        with pytest.raises(KeyError):
            dep.results_of("Q4")

    def test_undeploy_last_member_retires_group(self, deployment):
        dep, fleet = deployment
        dep.deploy(Q3, proxy=3, processor=0)
        stream = dep._group_runtime[(0, 0)].stream
        adv_id = dep._group_runtime[(0, 0)].adv.adv_id
        dep.undeploy("Q3")
        assert dep.executed_query_count() == 0
        assert (0, 0) not in dep._group_runtime
        # orphan advertisement retired from every broker
        for broker in dep.net.brokers.values():
            assert adv_id not in broker.table.advertisements
        # the next deployment gets a fresh stable gid, not a recycled one
        dep.deploy(Q3, proxy=3, processor=0)
        assert (0, 1) in dep._group_runtime
        assert dep._group_runtime[(0, 1)].stream != stream

    def test_unknown_name_raises(self, deployment):
        dep, _ = deployment
        with pytest.raises(KeyError):
            dep.undeploy("nope")


def chain_overlay():
    """proc 0 -- mid 5 -- proxies 3, 4, 6; sources 1, 2 off the processor.

    The proxies share the 5 -> 0 path segment, so one member's result
    subscription can cover-prune the others' propagation -- the scenario
    whose teardown used to leave the survivors starved.
    """
    tree = OverlayTree(nodes=[0, 1, 2, 3, 4, 5, 6])
    tree.add_link(0, 1, 1.0)
    tree.add_link(0, 2, 1.0)
    tree.add_link(0, 5, 1.0)
    tree.add_link(5, 3, 1.0)
    tree.add_link(5, 4, 1.0)
    tree.add_link(5, 6, 1.0)
    return tree


class TestCoveringRepair:
    """Satellite: the PR 3 ``force=True`` scenarios through the sharing
    layer -- teardown of a covering subscription must not starve the
    survivors it had pruned."""

    def make(self):
        fleet = SensorFleet.build(2, stream_prefix="Station", seed=7)
        dep = SharingDeployment(
            chain_overlay(), stream_sources={"Station1": 1, "Station2": 2}
        )

        def clone(name):
            return parse_query(
                "SELECT S2.* FROM Station1 [Range 30 Minutes] S1,"
                " Station2 [Now] S2"
                " WHERE S1.snowHeight > S2.snowHeight AND S1.snowHeight >= 10",
                name=name,
            )

        return dep, fleet, clone

    def test_undeploy_repairs_covered_survivors(self):
        dep, fleet, clone = self.make()
        # identical carves from three proxies: later propagations stop at
        # the shared mid broker, covered by the first subscription.  When
        # that coverer leaves, the survivors' fresh re-subscriptions
        # cover each *other* at the mid broker, so without the forced
        # repair pass neither reaches the processor again.
        dep.deploy(Q3, proxy=3, processor=0)
        dep.deploy(clone("Q3b"), proxy=4, processor=0)
        dep.deploy(clone("Q3c"), proxy=6, processor=0)
        dep.run(fleet.trace(start=0.0, steps=40))
        before_b = len(dep.results_of("Q3b"))
        before_c = len(dep.results_of("Q3c"))
        assert before_b > 0 and before_c > 0
        dep.undeploy("Q3")
        dep.run(fleet.trace(start=40 * 30.0, steps=40))
        assert len(dep.results_of("Q3b")) > before_b, (
            "survivor stopped receiving results after the coverer left"
        )
        assert len(dep.results_of("Q3c")) > before_c, (
            "survivor stopped receiving results after the coverer left"
        )

    def test_undeploy_mid_publish(self):
        """Tearing a member down from inside a result sink is safe."""
        dep, fleet, clone = self.make()
        dep.deploy(Q3, proxy=3, processor=0)
        dep.deploy(clone("Q3b"), proxy=4, processor=0)
        executed = dep.deployed["Q3"].executed_name
        fired = []

        def sink(_tuple):
            if not fired:
                fired.append(True)
                dep.undeploy("Q3b")

        dep.engines[0].on_result(executed, sink)
        dep.run(fleet.trace(start=0.0, steps=60))
        assert fired, "scenario never produced a result to trigger the sink"
        assert "Q3b" not in dep.deployed
        assert len(dep.results_of("Q3")) > 0
