"""Tests for substream interest vectors and the workload generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query.interest import SubstreamSpace, bits_of, iter_bits, mask_of
from repro.query.workload import WorkloadParams, generate_workload


@pytest.fixture(scope="module")
def space():
    return SubstreamSpace.random(200, sources=[10, 11, 12, 13], seed=5)


class TestMasks:
    def test_mask_roundtrip(self):
        ids = [0, 3, 17, 64, 100]
        assert bits_of(mask_of(ids)) == ids

    def test_iter_bits_empty(self):
        assert list(iter_bits(0)) == []

    def test_mask_of_duplicates(self):
        assert mask_of([2, 2, 2]) == mask_of([2])


class TestSpace:
    def test_random_space_dimensions(self, space):
        assert len(space) == 200
        assert set(int(s) for s in space.source_of) <= {10, 11, 12, 13}

    def test_rates_in_range(self, space):
        assert np.all(space.rates >= 1.0) and np.all(space.rates <= 10.0)

    def test_rate_of_mask(self, space):
        mask = mask_of([0, 1, 2])
        expected = float(space.rates[0] + space.rates[1] + space.rates[2])
        assert space.rate(mask) == pytest.approx(expected)

    def test_rate_empty_mask(self, space):
        assert space.rate(0) == 0.0

    def test_overlap_rate(self, space):
        a = mask_of([0, 1, 2, 3])
        b = mask_of([2, 3, 4])
        assert space.overlap_rate(a, b) == pytest.approx(
            float(space.rates[2] + space.rates[3])
        )

    def test_disjoint_overlap_zero(self, space):
        assert space.overlap_rate(mask_of([0, 1]), mask_of([5, 6])) == 0.0

    def test_rates_by_source_sums_to_rate(self, space):
        mask = mask_of(range(0, 50))
        by_source = space.rates_by_source(mask)
        assert sum(by_source.values()) == pytest.approx(space.rate(mask))

    def test_rates_by_source_keys(self, space):
        mask = mask_of(range(len(space)))
        assert set(space.rates_by_source(mask)) == set(space.sources)

    def test_source_mask_partition(self, space):
        union = 0
        for s in space.sources:
            m = space.source_mask(s)
            assert union & m == 0  # disjoint
            union |= m
        assert union == mask_of(range(len(space)))

    def test_perturb_rates(self, space):
        before = space.rate(mask_of([7]))
        space.perturb_rates([7], 2.0)
        assert space.rate(mask_of([7])) == pytest.approx(2.0 * before)
        space.perturb_rates([7], 0.5)  # restore

    @settings(max_examples=100, deadline=None)
    @given(ids_a=st.sets(st.integers(0, 199), max_size=30),
           ids_b=st.sets(st.integers(0, 199), max_size=30))
    def test_overlap_equals_set_intersection(self, space, ids_a, ids_b):
        """The bit-vector estimate is exact (Section 3.2's design goal)."""
        expected = sum(float(space.rates[i]) for i in ids_a & ids_b)
        got = space.overlap_rate(mask_of(ids_a), mask_of(ids_b))
        assert got == pytest.approx(expected)


class TestWorkload:
    @pytest.fixture(scope="class")
    def workload(self):
        params = WorkloadParams(
            num_substreams=500, num_queries=120, substreams_per_query=(10, 20)
        )
        return generate_workload(
            params, sources=[1, 2, 3], processors=[50, 51, 52, 53], seed=9
        )

    def test_query_count(self, workload):
        assert len(workload.queries) == 120

    def test_substream_counts_in_range(self, workload):
        for q in workload.queries:
            assert 10 <= len(bits_of(q.mask)) <= 20

    def test_proxies_are_processors(self, workload):
        assert all(q.proxy in (50, 51, 52, 53) for q in workload.queries)

    def test_groups_in_range(self, workload):
        assert all(0 <= q.group < 20 for q in workload.queries)

    def test_load_proportional_to_input_rate(self, workload):
        for q in workload.queries[:20]:
            expected = workload.params.load_factor * q.input_rate(workload.space)
            assert q.load == pytest.approx(expected)

    def test_result_rate_below_input_rate(self, workload):
        for q in workload.queries:
            assert 0 < q.result_rate < q.input_rate(workload.space)

    def test_unique_query_ids(self, workload):
        ids = [q.query_id for q in workload.queries]
        assert len(set(ids)) == len(ids)

    def test_deterministic(self):
        params = WorkloadParams(num_substreams=300, num_queries=30,
                                substreams_per_query=(5, 10))
        a = generate_workload(params, [1], [2], seed=4)
        b = generate_workload(params, [1], [2], seed=4)
        assert [q.mask for q in a.queries] == [q.mask for q in b.queries]

    def test_new_queries_extend_population(self, workload):
        n = len(workload.queries)
        fresh = workload.new_queries(5, [50, 51])
        assert len(workload.queries) == n + 5
        assert [q.query_id for q in fresh] == list(range(n, n + 5))

    def test_refresh_loads_after_perturbation(self, workload):
        q = workload.queries[0]
        sid = bits_of(q.mask)[0]
        workload.space.perturb_rates([sid], 10.0)
        old = q.load
        workload.refresh_loads()
        assert q.load > old
        workload.space.perturb_rates([sid], 0.1)
        workload.refresh_loads()

    def test_zipf_hot_spots_cluster_within_groups(self, workload):
        """Queries of the same group overlap more than across groups."""
        import itertools

        by_group = {}
        for q in workload.queries:
            by_group.setdefault(q.group, []).append(q)
        groups = [g for g, qs in by_group.items() if len(qs) >= 3]
        intra, inter = [], []
        for g in groups[:5]:
            qs = by_group[g][:3]
            for a, b in itertools.combinations(qs, 2):
                intra.append(workload.space.overlap_rate(a.mask, b.mask))
        for ga, gb in itertools.combinations(groups[:4], 2):
            a, b = by_group[ga][0], by_group[gb][0]
            inter.append(workload.space.overlap_rate(a.mask, b.mask))
        assert np.mean(intra) > np.mean(inter)
