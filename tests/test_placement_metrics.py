"""Tests for the operator-placement baseline, metrics and baselines."""

import pytest

from repro.baselines import (
    centralized_placement,
    greedy_placement,
    naive_placement,
    random_placement,
)
from repro.placement import (
    build_operator_graph,
    cosmos_cost,
    generate_prototype_workload,
    place_operators,
    placement_cost,
)
from repro.placement.operator_graph import _covers
from repro.sim.metrics import CostModel, RootedOverlay, load_stddev
from repro.topology import (
    LatencyOracle,
    OverlayTree,
    TransitStubParams,
    generate_transit_stub,
    select_roles,
)


@pytest.fixture(scope="module")
def env():
    topo = generate_transit_stub(
        TransitStubParams(transit_domains=2, transit_nodes=3,
                          stubs_per_transit_node=2, stub_nodes=4),
        seed=6,
    )
    oracle = LatencyOracle(topo)
    sources, processors = select_roles(topo, 4, 12, seed=7)
    return topo, oracle, sources, processors


class TestPredicateCovers:
    @pytest.mark.parametrize(
        "outer,inner,expected",
        [
            (("s", "a", ">", 3.0), ("s", "a", ">", 5.0), True),
            (("s", "a", ">", 5.0), ("s", "a", ">", 3.0), False),
            (("s", "a", "<", 8.0), ("s", "a", "<", 5.0), True),
            (("s", "a", ">", 5.0), ("s", "a", "<", 5.0), False),
            (("s", "a", ">=", 5.0), ("s", "a", ">", 5.0), True),
            (("s", "a", ">", 5.0), ("s", "a", ">=", 5.0), False),
        ],
    )
    def test_covers(self, outer, inner, expected):
        assert _covers(outer, inner) is expected


class TestOperatorGraph:
    @pytest.fixture(scope="class")
    def workload(self, env):
        _, oracle, sources, processors = env
        return generate_prototype_workload(
            60, sources, processors, num_sensors=20, seed=1
        )

    def test_sources_pinned(self, env, workload):
        graph = build_operator_graph(
            workload.proto_queries, workload.sensor_source, workload.sensor_rate
        )
        for v in graph.vertices.values():
            if v.kind == "source":
                assert v.pinned == workload.sensor_source[v.label]

    def test_sinks_pinned_to_proxies(self, env, workload):
        graph = build_operator_graph(
            workload.proto_queries, workload.sensor_source, workload.sensor_rate
        )
        sinks = [v for v in graph.vertices.values() if v.kind == "sink"]
        assert len(sinks) == len(workload.proto_queries)
        proxies = {q.query_id: q.proxy for q in workload.proto_queries}
        for v in sinks:
            assert v.pinned == proxies[v.queries[0]]

    def test_selection_sharing_happens(self, env, workload):
        graph = build_operator_graph(
            workload.proto_queries, workload.sensor_source, workload.sensor_rate
        )
        assert graph.shared_selection_count() > 0

    def test_selection_rates_never_exceed_input(self, env, workload):
        graph = build_operator_graph(
            workload.proto_queries, workload.sensor_source, workload.sensor_rate
        )
        for v in graph.vertices.values():
            if v.kind == "select":
                stream = v.label.split("@")[-1]
                assert v.out_rate <= workload.sensor_rate[stream] + 1e-9


class TestPlacement:
    @pytest.fixture(scope="class")
    def placed(self, env):
        _, oracle, sources, processors = env
        workload = generate_prototype_workload(
            60, sources, processors, num_sensors=20, seed=1
        )
        graph = build_operator_graph(
            workload.proto_queries, workload.sensor_source, workload.sensor_rate
        )
        result = place_operators(graph, processors, oracle, seed=2)
        return graph, result, oracle, processors

    def test_all_operators_placed(self, placed):
        graph, result, _, _ = placed
        assert set(result.assignment) == set(graph.vertices)

    def test_pinned_operators_stay(self, placed):
        graph, result, _, _ = placed
        for op_id, v in graph.vertices.items():
            if v.pinned is not None:
                assert result.assignment[op_id] == v.pinned

    def test_movable_on_candidate_nodes(self, placed):
        graph, result, _, processors = placed
        for op_id in graph.movable():
            assert result.assignment[op_id] in processors

    def test_cost_matches_recomputation(self, placed):
        graph, result, oracle, _ = placed
        assert result.cost == pytest.approx(
            placement_cost(graph, result.assignment, oracle)
        )

    def test_placement_beats_random(self, placed):
        import random

        graph, result, oracle, processors = placed
        rng = random.Random(3)
        random_assignment = dict(result.assignment)
        for op_id in graph.movable():
            random_assignment[op_id] = rng.choice(list(processors))
        assert result.cost <= placement_cost(graph, random_assignment, oracle)

    def test_cosmos_cost_helper(self, env):
        _, oracle, sources, processors = env
        workload = generate_prototype_workload(
            30, sources, processors, num_sensors=10, seed=4
        )
        placement = {q.query_id: q.proxy for q in workload.proto_queries}
        cost = cosmos_cost(workload, placement, oracle)
        assert cost > 0


class TestBaselines:
    @pytest.fixture(scope="class")
    def queries_env(self, env):
        from repro.query.workload import WorkloadParams, generate_workload

        _, oracle, sources, processors = env
        workload = generate_workload(
            WorkloadParams(num_substreams=400, num_queries=80,
                           substreams_per_query=(5, 15)),
            sources, processors, seed=9,
        )
        return oracle, processors, workload

    def test_naive_uses_proxies(self, queries_env):
        _, _, workload = queries_env
        pl = naive_placement(workload.queries)
        assert all(pl[q.query_id] == q.proxy for q in workload.queries)

    def test_random_uses_processors(self, queries_env):
        _, processors, workload = queries_env
        pl = random_placement(workload.queries, processors, seed=1)
        assert set(pl.values()) <= set(processors)

    def test_random_deterministic_per_seed(self, queries_env):
        _, processors, workload = queries_env
        a = random_placement(workload.queries, processors, seed=1)
        b = random_placement(workload.queries, processors, seed=1)
        assert a == b

    def test_centralized_not_worse_than_greedy(self, queries_env):
        oracle, processors, workload = queries_env
        cm = CostModel.over(None, workload.space, distance=oracle)
        pl_g = greedy_placement(
            workload.queries, processors, workload.space, oracle)
        pl_c = centralized_placement(
            workload.queries, processors, workload.space, oracle)
        assert cm.weighted_cost(pl_c, workload.queries) <= cm.weighted_cost(
            pl_g, workload.queries) * 1.001


class TestMetrics:
    def chain(self, n):
        tree = OverlayTree(nodes=list(range(n)))
        for i in range(n - 1):
            tree.add_link(i, i + 1, 2.0)
        return tree

    def test_rooted_overlay_path_latency(self):
        ro = RootedOverlay(self.chain(5))
        assert ro.path_latency(0, 4) == pytest.approx(8.0)
        assert ro.path_latency(2, 2) == 0.0

    def test_multicast_cost_union(self):
        ro = RootedOverlay(self.chain(5))
        # paths 0->2 and 0->4 share links: union is the 0..4 chain
        assert ro.multicast_cost(0, [2, 4]) == pytest.approx(8.0)

    def test_multicast_cost_empty(self):
        ro = RootedOverlay(self.chain(3))
        assert ro.multicast_cost(1, [1]) == 0.0

    def test_load_stddev_balanced_zero(self):
        from repro.query.workload import QuerySpec

        qs = [
            QuerySpec(query_id=i, proxy=0, mask=0, group=0, load=1.0,
                      result_rate=0, state_size=1)
            for i in range(4)
        ]
        pl = {0: 100, 1: 101, 2: 102, 3: 103}
        assert load_stddev(pl, qs, [100, 101, 102, 103]) == 0.0

    def test_load_stddev_capability_normalised(self):
        from repro.query.workload import QuerySpec

        qs = [
            QuerySpec(query_id=0, proxy=0, mask=0, group=0, load=2.0,
                      result_rate=0, state_size=1),
            QuerySpec(query_id=1, proxy=0, mask=0, group=0, load=1.0,
                      result_rate=0, state_size=1),
        ]
        pl = {0: 100, 1: 101}
        # capability 2 on the heavy node normalises both to 1.0
        assert load_stddev(pl, qs, [100, 101], {100: 2.0}) == 0.0

    def test_cost_model_requires_oracle_for_unicast(self):
        from repro.query.interest import SubstreamSpace

        space = SubstreamSpace.random(10, sources=[0], seed=0)
        cm = CostModel.over(None, space)
        with pytest.raises(ValueError):
            cm.weighted_cost({}, [], mode="unicast")

    def test_cost_model_unknown_mode(self, env):
        from repro.query.interest import SubstreamSpace

        _, oracle, _, _ = env
        space = SubstreamSpace.random(10, sources=[0], seed=0)
        cm = CostModel.over(None, space, distance=oracle)
        with pytest.raises(ValueError):
            cm.weighted_cost({}, [], mode="bogus")

    def test_unicast_cost_counts_distinct_hosts_once(self, env):
        from repro.query.interest import SubstreamSpace, mask_of
        from repro.query.workload import QuerySpec

        _, oracle, sources, processors = env
        space = SubstreamSpace.random(4, sources=sources[:1], seed=0)
        q1 = QuerySpec(query_id=0, proxy=processors[0], mask=mask_of([0]),
                       group=0, load=1, result_rate=0, state_size=1)
        q2 = QuerySpec(query_id=1, proxy=processors[0], mask=mask_of([0]),
                       group=0, load=1, result_rate=0, state_size=1)
        cm = CostModel.over(None, space, distance=oracle)
        src = int(space.source_of[0])
        both_same = cm.weighted_cost(
            {0: processors[0], 1: processors[0]}, [q1, q2])
        expected = float(space.rates[0]) * oracle(src, processors[0])
        assert both_same == pytest.approx(expected)
        split = cm.weighted_cost(
            {0: processors[0], 1: processors[1]}, [q1, q2])
        assert split > both_same
