"""Tests for subscriptions, routing tables and end-to-end pub/sub routing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pubsub import (
    Advertisement,
    Event,
    Filter,
    PubSubNetwork,
    Subscription,
    result_stream_name,
)
from repro.pubsub.routing import LOCAL, RoutingTable
from repro.topology import OverlayTree


def chain_tree(n):
    """0 - 1 - 2 - ... - (n-1), unit latencies."""
    tree = OverlayTree(nodes=list(range(n)))
    for i in range(n - 1):
        tree.add_link(i, i + 1, 1.0)
    return tree


def star_tree(n):
    """0 in the centre."""
    tree = OverlayTree(nodes=list(range(n)))
    for i in range(1, n):
        tree.add_link(0, i, 1.0)
    return tree


class TestSubscription:
    def test_matches_stream_and_filter(self):
        sub = Subscription.to_streams(["R"], filter=Filter.of(("a", ">", 10)))
        assert sub.matches(Event("R", {"a": 11}))
        assert not sub.matches(Event("R", {"a": 9}))
        assert not sub.matches(Event("S", {"a": 11}))

    def test_covering_requires_stream_superset(self):
        s1 = Subscription.to_streams(["R", "S"])
        s2 = Subscription.to_streams(["R"])
        assert s1.covers(s2)
        assert not s2.covers(s1)

    def test_merge_covers_both(self):
        s1 = Subscription.to_streams(["R"], filter=Filter.of(("a", ">", 10)))
        s2 = Subscription.to_streams(["S"], filter=Filter.of(("a", ">", 20)))
        m = s1.merge(s2)
        assert m.covers(s1) and m.covers(s2)

    def test_merge_projections(self):
        s1 = Subscription.to_streams(["R"], projection=["x"])
        s2 = Subscription.to_streams(["R"], projection=["y"])
        assert s1.merge(s2).projection == frozenset({"x", "y"})

    def test_merge_with_all_projection(self):
        s1 = Subscription.to_streams(["R"], projection=["x"])
        s2 = Subscription.to_streams(["R"])  # all attributes
        assert s1.merge(s2).projection is None

    def test_deliverable_projects(self):
        sub = Subscription.to_streams(["R"], projection=["x"])
        ev = sub.deliverable(Event("R", {"x": 1, "y": 2}, size=8))
        assert dict(ev.attributes) == {"x": 1}
        assert ev.size < 8

    def test_advertisement_intersection(self):
        adv = Advertisement(stream="R", filter=Filter.of(("a", ">=", 0)))
        sub_hit = Subscription.to_streams(["R"], filter=Filter.of(("a", ">", 10)))
        sub_miss = Subscription.to_streams(["R"], filter=Filter.of(("a", "<", -5)))
        assert adv.intersects(sub_hit)
        assert not adv.intersects(sub_miss)

    def test_result_stream_name_unique_per_processor(self):
        assert result_stream_name(1, "q") != result_stream_name(2, "q")


class TestRoutingTable:
    def test_covered_subscription_not_added(self):
        t = RoutingTable(broker=0)
        wide = Subscription.to_streams(["R"], filter=Filter.of(("a", ">", 0)))
        narrow = Subscription.to_streams(["R"], filter=Filter.of(("a", ">", 5)))
        assert t.add_subscription(wide, 1)
        assert not t.add_subscription(narrow, 1)

    def test_covering_subscription_prunes_covered(self):
        t = RoutingTable(broker=0)
        narrow = Subscription.to_streams(["R"], filter=Filter.of(("a", ">", 5)))
        wide = Subscription.to_streams(["R"], filter=Filter.of(("a", ">", 0)))
        t.add_subscription(narrow, 1)
        t.add_subscription(wide, 1)
        assert t.subscriptions[1] == [wide]

    def test_local_subscribers_never_covered_away(self):
        """Two distinct local subscribers with nested filters must both
        stay in the table -- covering only optimises forwarding state."""
        t = RoutingTable(broker=0)
        wide = Subscription.to_streams(["R"], filter=Filter.of(("a", ">", 0)))
        narrow = Subscription.to_streams(["R"], filter=Filter.of(("a", ">", 5)))
        assert t.add_subscription(wide, LOCAL)
        assert t.add_subscription(narrow, LOCAL)
        assert t.size() == 2

    def test_same_subscription_different_interfaces(self):
        t = RoutingTable(broker=0)
        sub = Subscription.to_streams(["R"])
        assert t.add_subscription(sub, 1)
        assert t.add_subscription(sub, 2)
        assert t.size() == 2

    def test_forwarding_excludes_arrival_interface(self):
        t = RoutingTable(broker=0)
        sub = Subscription.to_streams(["R"])
        t.add_subscription(sub, 1)
        ev = Event("R", {})
        assert t.forwarding_interfaces(ev, arrived_via=1) == set()
        assert t.forwarding_interfaces(ev, arrived_via=2) == {1}

    def test_remove_subscription(self):
        t = RoutingTable(broker=0)
        sub = Subscription.to_streams(["R"])
        t.add_subscription(sub, LOCAL)
        t.remove_subscription(sub.sub_id)
        assert t.size() == 0

    def test_duplicate_advertisement_ignored(self):
        t = RoutingTable(broker=0)
        adv = Advertisement(stream="R")
        assert t.add_advertisement(adv, 1)
        assert not t.add_advertisement(adv, 2)


class TestEndToEnd:
    def setup_method(self):
        self.tree = chain_tree(5)
        self.net = PubSubNetwork(self.tree)
        self.adv = Advertisement(stream="R", filter=Filter.of(("a", ">=", 0)))
        self.net.advertise(0, self.adv)

    def test_single_subscriber_delivery(self):
        sub = Subscription.to_streams(["R"], filter=Filter.of(("a", ">", 10)))
        self.net.subscribe(4, sub)
        deliveries = self.net.publish(0, Event("R", {"a": 15}))
        assert [(n, s.sub_id) for n, _, s in deliveries] == [(4, sub.sub_id)]

    def test_non_matching_not_delivered(self):
        sub = Subscription.to_streams(["R"], filter=Filter.of(("a", ">", 10)))
        self.net.subscribe(4, sub)
        assert self.net.publish(0, Event("R", {"a": 5})) == []

    def test_exactly_once_per_subscriber(self):
        subs = [
            Subscription.to_streams(["R"], filter=Filter.of(("a", ">", i)))
            for i in (5, 10)
        ]
        self.net.subscribe(4, subs[0])
        self.net.subscribe(2, subs[1])
        deliveries = self.net.publish(0, Event("R", {"a": 20}))
        assert sorted(n for n, _, _ in deliveries) == [2, 4]

    def test_link_crossed_at_most_once(self):
        """Figure 2's multicast property: one message per link."""
        for node in (2, 3, 4):
            self.net.subscribe(
                node, Subscription.to_streams(["R"])
            )
        self.net.reset_traffic()
        self.net.publish(0, Event("R", {"a": 1}, size=10))
        # chain 0-1-2-3-4, all links carry exactly one 10-byte message
        assert all(v == 10 for v in self.net.link_bytes.values())
        assert len(self.net.link_bytes) == 4

    def test_early_filtering_stops_at_first_broker(self):
        sub = Subscription.to_streams(["R"], filter=Filter.of(("a", ">", 10)))
        self.net.subscribe(4, sub)
        self.net.reset_traffic()
        self.net.publish(0, Event("R", {"a": 5}))
        assert self.net.total_data_bytes() == 0.0

    def test_in_network_projection_shrinks_messages(self):
        sub = Subscription.to_streams(["R"], projection=["a"])
        self.net.subscribe(4, sub)
        self.net.reset_traffic()
        self.net.publish(0, Event("R", {"a": 1, "b": 2, "c": 3, "d": 4}, size=8))
        # every link carries the projected (smaller) message
        assert all(v < 8 for v in self.net.link_bytes.values())

    def test_unsubscribe_stops_delivery(self):
        sub = Subscription.to_streams(["R"])
        self.net.subscribe(4, sub)
        self.net.unsubscribe(sub.sub_id)
        assert self.net.publish(0, Event("R", {"a": 1})) == []

    def test_covering_prevents_duplicate_propagation(self):
        wide = Subscription.to_streams(["R"], filter=Filter.of(("a", ">", 0)))
        narrow = Subscription.to_streams(["R"], filter=Filter.of(("a", ">", 10)))
        self.net.subscribe(4, wide)
        before = dict(self.net.control_bytes)
        self.net.subscribe(4, narrow)
        # the narrow subscription is covered at node 4's broker: no new
        # control traffic toward the source
        assert self.net.control_bytes == before

    def test_publish_rate_scales_traffic(self):
        sub = Subscription.to_streams(["R"])
        self.net.subscribe(1, sub)
        self.net.reset_traffic()
        self.net.publish_rate(0, Event("R", {"a": 1}, size=2.0), rate=5.0)
        assert self.net.total_data_bytes() == pytest.approx(10.0)

    def test_weighted_cost_uses_latency(self):
        sub = Subscription.to_streams(["R"])
        self.net.subscribe(4, sub)
        self.net.reset_traffic()
        self.net.publish(0, Event("R", {"a": 1}, size=1.0))
        # 4 unit-latency links x 1 byte
        assert self.net.weighted_data_cost() == pytest.approx(4.0)

    def test_star_topology_only_interested_branches(self):
        tree = star_tree(6)
        net = PubSubNetwork(tree)
        net.advertise(1, Advertisement(stream="R"))
        net.subscribe(2, Subscription.to_streams(["R"]))
        net.subscribe(3, Subscription.to_streams(["S"]))  # different stream
        net.reset_traffic()
        deliveries = net.publish(1, Event("R", {}, size=1.0))
        assert [n for n, _, _ in deliveries] == [2]
        used_links = set(net.link_bytes)
        assert used_links == {(0, 1), (0, 2)}

    def test_rejects_non_tree_overlay(self):
        tree = chain_tree(3)
        tree.add_link(0, 2, 1.0)  # cycle
        with pytest.raises(ValueError):
            PubSubNetwork(tree)

    def test_publisher_local_subscriber(self):
        sub = Subscription.to_streams(["R"])
        self.net.subscribe(0, sub)
        deliveries = self.net.publish(0, Event("R", {"a": 1}))
        assert [n for n, _, _ in deliveries] == [0]
        assert self.net.total_data_bytes() == 0.0


# ---------------------------------------------------------------------------
# property-based: delivery = exact match set, exactly once
# ---------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    thresholds=st.lists(st.integers(-5, 25), min_size=1, max_size=6),
    value=st.integers(-10, 30),
    data=st.data(),
)
def test_delivery_matches_semantics(thresholds, value, data):
    """Every matching subscription gets the event exactly once; no
    non-matching subscription ever receives it."""
    tree = chain_tree(6)
    net = PubSubNetwork(tree)
    net.advertise(0, Advertisement(stream="R"))
    subs = []
    for th in thresholds:
        node = data.draw(st.integers(0, 5))
        sub = Subscription.to_streams(["R"], filter=Filter.of(("a", ">", th)))
        net.subscribe(node, sub)
        subs.append((node, th, sub))
    deliveries = net.publish(0, Event("R", {"a": value}))
    got = {}
    for n, _, s in deliveries:
        got[s.sub_id] = got.get(s.sub_id, 0) + 1
    for node, th, sub in subs:
        if value > th:
            assert got.get(sub.sub_id) == 1, "matching sub must get it once"
        else:
            assert sub.sub_id not in got, "non-matching sub must not get it"
