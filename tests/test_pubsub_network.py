"""Tests for subscriptions, routing tables and end-to-end pub/sub routing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pubsub import (
    Advertisement,
    Event,
    Filter,
    PubSubNetwork,
    Subscription,
    result_stream_name,
)
from repro.pubsub.routing import LOCAL, RoutingTable
from repro.topology import OverlayTree


def chain_tree(n):
    """0 - 1 - 2 - ... - (n-1), unit latencies."""
    tree = OverlayTree(nodes=list(range(n)))
    for i in range(n - 1):
        tree.add_link(i, i + 1, 1.0)
    return tree


def star_tree(n):
    """0 in the centre."""
    tree = OverlayTree(nodes=list(range(n)))
    for i in range(1, n):
        tree.add_link(0, i, 1.0)
    return tree


class TestSubscription:
    def test_matches_stream_and_filter(self):
        sub = Subscription.to_streams(["R"], filter=Filter.of(("a", ">", 10)))
        assert sub.matches(Event("R", {"a": 11}))
        assert not sub.matches(Event("R", {"a": 9}))
        assert not sub.matches(Event("S", {"a": 11}))

    def test_covering_requires_stream_superset(self):
        s1 = Subscription.to_streams(["R", "S"])
        s2 = Subscription.to_streams(["R"])
        assert s1.covers(s2)
        assert not s2.covers(s1)

    def test_merge_covers_both(self):
        s1 = Subscription.to_streams(["R"], filter=Filter.of(("a", ">", 10)))
        s2 = Subscription.to_streams(["S"], filter=Filter.of(("a", ">", 20)))
        m = s1.merge(s2)
        assert m.covers(s1) and m.covers(s2)

    def test_merge_projections(self):
        s1 = Subscription.to_streams(["R"], projection=["x"])
        s2 = Subscription.to_streams(["R"], projection=["y"])
        assert s1.merge(s2).projection == frozenset({"x", "y"})

    def test_merge_with_all_projection(self):
        s1 = Subscription.to_streams(["R"], projection=["x"])
        s2 = Subscription.to_streams(["R"])  # all attributes
        assert s1.merge(s2).projection is None

    def test_deliverable_projects(self):
        sub = Subscription.to_streams(["R"], projection=["x"])
        ev = sub.deliverable(Event("R", {"x": 1, "y": 2}, size=8))
        assert dict(ev.attributes) == {"x": 1}
        assert ev.size < 8

    def test_advertisement_intersection(self):
        adv = Advertisement(stream="R", filter=Filter.of(("a", ">=", 0)))
        sub_hit = Subscription.to_streams(["R"], filter=Filter.of(("a", ">", 10)))
        sub_miss = Subscription.to_streams(["R"], filter=Filter.of(("a", "<", -5)))
        assert adv.intersects(sub_hit)
        assert not adv.intersects(sub_miss)

    def test_result_stream_name_unique_per_processor(self):
        assert result_stream_name(1, "q") != result_stream_name(2, "q")


class TestRoutingTable:
    def test_covered_subscription_not_added(self):
        t = RoutingTable(broker=0)
        wide = Subscription.to_streams(["R"], filter=Filter.of(("a", ">", 0)))
        narrow = Subscription.to_streams(["R"], filter=Filter.of(("a", ">", 5)))
        assert t.add_subscription(wide, 1)
        assert not t.add_subscription(narrow, 1)

    def test_covering_subscription_prunes_covered(self):
        t = RoutingTable(broker=0)
        narrow = Subscription.to_streams(["R"], filter=Filter.of(("a", ">", 5)))
        wide = Subscription.to_streams(["R"], filter=Filter.of(("a", ">", 0)))
        t.add_subscription(narrow, 1)
        t.add_subscription(wide, 1)
        assert t.subscriptions[1] == [wide]

    def test_local_subscribers_never_covered_away(self):
        """Two distinct local subscribers with nested filters must both
        stay in the table -- covering only optimises forwarding state."""
        t = RoutingTable(broker=0)
        wide = Subscription.to_streams(["R"], filter=Filter.of(("a", ">", 0)))
        narrow = Subscription.to_streams(["R"], filter=Filter.of(("a", ">", 5)))
        assert t.add_subscription(wide, LOCAL)
        assert t.add_subscription(narrow, LOCAL)
        assert t.size() == 2

    def test_same_subscription_different_interfaces(self):
        t = RoutingTable(broker=0)
        sub = Subscription.to_streams(["R"])
        assert t.add_subscription(sub, 1)
        assert t.add_subscription(sub, 2)
        assert t.size() == 2

    def test_forwarding_excludes_arrival_interface(self):
        t = RoutingTable(broker=0)
        sub = Subscription.to_streams(["R"])
        t.add_subscription(sub, 1)
        ev = Event("R", {})
        assert t.forwarding_interfaces(ev, arrived_via=1) == set()
        assert t.forwarding_interfaces(ev, arrived_via=2) == {1}

    def test_remove_subscription(self):
        t = RoutingTable(broker=0)
        sub = Subscription.to_streams(["R"])
        t.add_subscription(sub, LOCAL)
        t.remove_subscription(sub.sub_id)
        assert t.size() == 0

    def test_duplicate_advertisement_ignored(self):
        t = RoutingTable(broker=0)
        adv = Advertisement(stream="R")
        assert t.add_advertisement(adv, 1)
        assert not t.add_advertisement(adv, 2)


class TestEndToEnd:
    def setup_method(self):
        self.tree = chain_tree(5)
        self.net = PubSubNetwork(self.tree)
        self.adv = Advertisement(stream="R", filter=Filter.of(("a", ">=", 0)))
        self.net.advertise(0, self.adv)

    def test_single_subscriber_delivery(self):
        sub = Subscription.to_streams(["R"], filter=Filter.of(("a", ">", 10)))
        self.net.subscribe(4, sub)
        deliveries = self.net.publish(0, Event("R", {"a": 15}))
        assert [(n, s.sub_id) for n, _, s in deliveries] == [(4, sub.sub_id)]

    def test_non_matching_not_delivered(self):
        sub = Subscription.to_streams(["R"], filter=Filter.of(("a", ">", 10)))
        self.net.subscribe(4, sub)
        assert self.net.publish(0, Event("R", {"a": 5})) == []

    def test_exactly_once_per_subscriber(self):
        subs = [
            Subscription.to_streams(["R"], filter=Filter.of(("a", ">", i)))
            for i in (5, 10)
        ]
        self.net.subscribe(4, subs[0])
        self.net.subscribe(2, subs[1])
        deliveries = self.net.publish(0, Event("R", {"a": 20}))
        assert sorted(n for n, _, _ in deliveries) == [2, 4]

    def test_link_crossed_at_most_once(self):
        """Figure 2's multicast property: one message per link."""
        for node in (2, 3, 4):
            self.net.subscribe(
                node, Subscription.to_streams(["R"])
            )
        self.net.reset_traffic()
        self.net.publish(0, Event("R", {"a": 1}, size=10))
        # chain 0-1-2-3-4, all links carry exactly one 10-byte message
        assert all(v == 10 for v in self.net.link_bytes.values())
        assert len(self.net.link_bytes) == 4

    def test_early_filtering_stops_at_first_broker(self):
        sub = Subscription.to_streams(["R"], filter=Filter.of(("a", ">", 10)))
        self.net.subscribe(4, sub)
        self.net.reset_traffic()
        self.net.publish(0, Event("R", {"a": 5}))
        assert self.net.total_data_bytes() == 0.0

    def test_in_network_projection_shrinks_messages(self):
        sub = Subscription.to_streams(["R"], projection=["a"])
        self.net.subscribe(4, sub)
        self.net.reset_traffic()
        self.net.publish(0, Event("R", {"a": 1, "b": 2, "c": 3, "d": 4}, size=8))
        # every link carries the projected (smaller) message
        assert all(v < 8 for v in self.net.link_bytes.values())

    def test_unsubscribe_stops_delivery(self):
        sub = Subscription.to_streams(["R"])
        self.net.subscribe(4, sub)
        self.net.unsubscribe(sub.sub_id)
        assert self.net.publish(0, Event("R", {"a": 1})) == []

    def test_covering_prevents_duplicate_propagation(self):
        wide = Subscription.to_streams(["R"], filter=Filter.of(("a", ">", 0)))
        narrow = Subscription.to_streams(["R"], filter=Filter.of(("a", ">", 10)))
        self.net.subscribe(4, wide)
        before = dict(self.net.control_bytes)
        self.net.subscribe(4, narrow)
        # the narrow subscription is covered at node 4's broker: no new
        # control traffic toward the source
        assert self.net.control_bytes == before

    def test_publish_rate_scales_traffic(self):
        sub = Subscription.to_streams(["R"])
        self.net.subscribe(1, sub)
        self.net.reset_traffic()
        self.net.publish_rate(0, Event("R", {"a": 1}, size=2.0), rate=5.0)
        assert self.net.total_data_bytes() == pytest.approx(10.0)

    def test_weighted_cost_uses_latency(self):
        sub = Subscription.to_streams(["R"])
        self.net.subscribe(4, sub)
        self.net.reset_traffic()
        self.net.publish(0, Event("R", {"a": 1}, size=1.0))
        # 4 unit-latency links x 1 byte
        assert self.net.weighted_data_cost() == pytest.approx(4.0)

    def test_star_topology_only_interested_branches(self):
        tree = star_tree(6)
        net = PubSubNetwork(tree)
        net.advertise(1, Advertisement(stream="R"))
        net.subscribe(2, Subscription.to_streams(["R"]))
        net.subscribe(3, Subscription.to_streams(["S"]))  # different stream
        net.reset_traffic()
        deliveries = net.publish(1, Event("R", {}, size=1.0))
        assert [n for n, _, _ in deliveries] == [2]
        used_links = set(net.link_bytes)
        assert used_links == {(0, 1), (0, 2)}

    def test_rejects_non_tree_overlay(self):
        tree = chain_tree(3)
        tree.add_link(0, 2, 1.0)  # cycle
        with pytest.raises(ValueError):
            PubSubNetwork(tree)

    def test_publisher_local_subscriber(self):
        sub = Subscription.to_streams(["R"])
        self.net.subscribe(0, sub)
        deliveries = self.net.publish(0, Event("R", {"a": 1}))
        assert [n for n, _, _ in deliveries] == [0]
        assert self.net.total_data_bytes() == 0.0


class TestBrokerRemoval:
    """Graceful departure: ``remove_broker`` retires attached state."""

    def setup_method(self):
        self.net = PubSubNetwork(chain_tree(4))

    def test_last_advertiser_retires_advertisement(self):
        # Regression: node 0 is the *only* advertiser of "R".  Removing it
        # must retire the advertisement tree-wide, not leave dangling
        # routes pointing at a producer that no longer exists.
        adv = Advertisement(stream="R")
        self.net.advertise(0, adv)
        sub = Subscription.to_streams(["R"])
        self.net.subscribe(3, sub)
        assert any(
            adv.adv_id in b.table.advertisements for b in self.net.brokers.values()
        )
        subs, advs = self.net.remove_broker(0)
        assert subs == [] and advs == [adv.adv_id]
        for broker in self.net.brokers.values():
            assert adv.adv_id not in broker.table.advertisements
        # a later subscriber must not route toward the dead advertiser
        late = Subscription.to_streams(["R"])
        before = dict(self.net.control_bytes)
        self.net.subscribe(2, late)
        assert self.net.control_bytes == before, "no adverts left to chase"

    def test_other_advertisers_survive(self):
        a0 = Advertisement(stream="R")
        a2 = Advertisement(stream="R")
        self.net.advertise(0, a0)
        self.net.advertise(2, a2)
        self.net.remove_broker(0)
        assert a2.adv_id in self.net._broker(3).table.advertisements
        sub = Subscription.to_streams(["R"])
        self.net.subscribe(3, sub)
        assert [n for n, _, _ in self.net.publish(2, Event("R", {"a": 1}))] == [3]

    def test_attached_subscriptions_unsubscribed_tree_wide(self):
        self.net.advertise(0, Advertisement(stream="R"))
        gone = Subscription.to_streams(["R"])
        kept = Subscription.to_streams(["R"])
        self.net.subscribe(3, gone)
        self.net.subscribe(2, kept)
        subs, _ = self.net.remove_broker(3)
        assert subs == [gone.sub_id]
        for broker in self.net.brokers.values():
            assert all(
                e.sub_id != gone.sub_id for _, e in broker.table.iter_entries()
            )
        # `kept` had been covered upstream by `gone`, so its entries
        # vanish with it -- the caller repairs with the force=True pass
        # (the PR 3 covering-repair machinery recovery policies reuse).
        self.net.subscribe(2, kept, force=True)
        assert [n for n, _, _ in self.net.publish(0, Event("R", {"a": 1}))] == [2]

    def test_version_bumped(self):
        self.net.advertise(0, Advertisement(stream="R"))
        before = self.net.version
        self.net.remove_broker(0)
        assert self.net.version > before


class TestBrokerLossAndRecovery:
    """``reset_broker`` wipes one table; reflood + force-resubscribe heals."""

    def setup_method(self):
        self.net = PubSubNetwork(chain_tree(4))
        self.adv = Advertisement(stream="R")
        self.net.advertise(0, self.adv)
        self.sub = Subscription.to_streams(["R"])
        self.net.subscribe(3, self.sub)

    def test_reset_silences_paths_across_the_broker(self):
        assert len(self.net.publish(0, Event("R", {"a": 1}))) == 1
        self.net.reset_broker(1)
        assert self.net._broker(1).table.size() == 0
        assert self.net._broker(1).table.advertisements == {}
        # the event dies at the wiped broker
        assert self.net.publish(0, Event("R", {"a": 2})) == []

    def test_reflood_then_force_resubscribe_repairs_delivery(self):
        self.net.reset_broker(1)
        assert self.net.publish(0, Event("R", {"a": 2})) == []
        # recovery order matters: adverts first (repopulate the wiped
        # broker's pointers), then the force=True subscription pass.
        self.net.reflood_advertisements()
        assert self.adv.adv_id in self.net._broker(1).table.advertisements
        self.net.subscribe(3, self.sub, force=True)
        assert [n for n, _, _ in self.net.publish(0, Event("R", {"a": 3}))] == [3]

    def test_reflood_is_idempotent_on_healthy_brokers(self):
        sizes = dict(self.net.routing_table_sizes())
        self.net.reflood_advertisements()
        assert self.net.routing_table_sizes() == sizes
        for broker in self.net.brokers.values():
            assert list(broker.table.advertisements) == [self.adv.adv_id]

    def test_routing_table_clear_matches_fresh_table(self):
        table = self.net._broker(2).table
        table.clear()
        fresh = RoutingTable(broker=2, use_index=table.use_index)
        assert table.advertisements == fresh.advertisements
        assert table.subscriptions == fresh.subscriptions
        assert table.size() == 0
        assert table.match_event(Event("R", {"a": 1})).interfaces == set()


class TestLinkPartition:
    def setup_method(self):
        self.net = PubSubNetwork(chain_tree(4))
        self.net.advertise(0, Advertisement(stream="R"))
        self.sub = Subscription.to_streams(["R"])
        self.net.subscribe(3, self.sub)

    def test_down_link_drops_events_without_charging(self):
        self.net.set_link_down(1, 2)
        before = self.net.total_data_bytes()
        assert self.net.publish(0, Event("R", {"a": 1}, size=8.0)) == []
        # the hop 0->1 is still charged; the partitioned 1->2 is not
        assert self.net.link_bytes.get((0, 1), 0.0) > before
        assert (1, 2) not in self.net.link_bytes

    def test_path_is_up_and_healing(self):
        assert self.net.path_is_up(0, 3)
        self.net.set_link_down(1, 2)
        assert not self.net.path_is_up(0, 3)
        assert not self.net.path_is_up(3, 0)
        assert self.net.path_is_up(0, 1)
        assert self.net.path_is_up(2, 3)
        assert self.net.path_is_up(2, 2)
        self.net.set_link_up(1, 2)
        assert self.net.path_is_up(0, 3)
        assert [n for n, _, _ in self.net.publish(0, Event("R", {"a": 1}))] == [3]

    def test_non_overlay_link_rejected(self):
        with pytest.raises(ValueError):
            self.net.set_link_down(0, 3)


# ---------------------------------------------------------------------------
# property-based: delivery = exact match set, exactly once
# ---------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    thresholds=st.lists(st.integers(-5, 25), min_size=1, max_size=6),
    value=st.integers(-10, 30),
    data=st.data(),
)
def test_delivery_matches_semantics(thresholds, value, data):
    """Every matching subscription gets the event exactly once; no
    non-matching subscription ever receives it."""
    tree = chain_tree(6)
    net = PubSubNetwork(tree)
    net.advertise(0, Advertisement(stream="R"))
    subs = []
    for th in thresholds:
        node = data.draw(st.integers(0, 5))
        sub = Subscription.to_streams(["R"], filter=Filter.of(("a", ">", th)))
        net.subscribe(node, sub)
        subs.append((node, th, sub))
    deliveries = net.publish(0, Event("R", {"a": value}))
    got = {}
    for n, _, s in deliveries:
        got[s.sub_id] = got.get(s.sub_id, 0) + 1
    for node, th, sub in subs:
        if value > th:
            assert got.get(sub.sub_id) == 1, "matching sub must get it once"
        else:
            assert sub.sub_id not in got, "non-matching sub must not get it"
