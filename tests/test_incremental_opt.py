"""Incremental optimizer parity: delta maintenance == full rebuild.

The optimizer stack delta-maintains its state across adaptation rounds --
journaled graph mutations patch :class:`GraphArrays` snapshots in place,
:class:`CostWorkspace` syncs instead of being reconstructed, coarse plans
replay over signature-identical inputs, and converged coordinator levels
skip their phases.  Every one of those shortcuts claims *bit-identical*
results to the full-rebuild reference mode (``incremental=False``); these
property-style tests drive randomized insert / remove / adapt / perturb
interleavings through both modes side by side and assert exact equality
of placements, per-coordinator vertex aggregates and WEC.
"""

import random

import numpy as np
import pytest

from repro.core import Cosmos, CosmosConfig
from repro.core.coarsening import (
    coarsen_cached,
    plan_key,
    vertex_sig,
)
from repro.core.fastcost import CostWorkspace
from repro.core.graphs import (
    GraphArrays,
    NetVertex,
    NetworkGraph,
    build_query_graph,
    qvertex_from_query,
)
from repro.query.interest import SubstreamSpace, mask_of
from repro.query.workload import QuerySpec, WorkloadParams, generate_workload
from repro.topology import (
    LatencyOracle,
    TransitStubParams,
    generate_transit_stub,
    select_roles,
)

PARITY_SEEDS = list(range(8))


@pytest.fixture(scope="module")
def env():
    topo = generate_transit_stub(
        TransitStubParams(transit_domains=2, transit_nodes=3,
                          stubs_per_transit_node=3, stub_nodes=4),
        seed=3,
    )
    oracle = LatencyOracle(topo)
    sources, processors = select_roles(topo, 5, 16, seed=4)
    return topo, oracle, sources, processors


def make_workload(env, seed, num_queries=100):
    _, _, sources, processors = env
    return generate_workload(
        WorkloadParams(num_substreams=400, num_queries=num_queries,
                       substreams_per_query=(8, 16)),
        sources, processors, seed=seed,
    )


def make_pair(env, workload, vmax=15):
    """Two Cosmos instances over one workload: incremental vs reference."""
    _, oracle, _, processors = env
    pair = []
    for incremental in (True, False):
        cosmos = Cosmos(
            oracle, processors, workload.space,
            CosmosConfig(k=4, vmax=vmax, incremental=incremental),
        )
        pair.append(cosmos)
    return pair


def coord_fingerprint(coord):
    """Content signature of one coordinator's optimizer state.

    Coarse vertex *ids* embed a process-global counter and legitimately
    differ between two runs; member keys and aggregate signatures do not.
    """
    sigs = sorted(vertex_sig(v) for v in coord.vertices.values())
    # non-leaf targets are child coordinator names (instance-specific
    # counters too) -- normalize them to the child's cluster membership
    norm = {
        c.name: tuple(sorted(c.cluster.members)) for c in coord.children
    }
    assign = sorted(
        (plan_key(coord.vertices[vid]), norm.get(target, target))
        for vid, target in coord.assignment.items()
        if vid in coord.vertices
    )
    return sigs, assign


def assert_parity(ca, cb):
    assert dict(ca.placement) == dict(cb.placement)
    coords_a = ca.root.all_coordinators()
    coords_b = cb.root.all_coordinators()
    assert len(coords_a) == len(coords_b)
    for a, b in zip(coords_a, coords_b):
        # coordinator names embed a process-global counter and differ
        # between instances; pair by traversal order + cluster identity
        assert a.cluster.members == b.cluster.members
        assert coord_fingerprint(a) == coord_fingerprint(b)
        # WEC of the current assignment must agree bit for bit: the
        # incremental side evaluates a patched snapshot + synced
        # workspace, the reference side a fresh rebuild
        wa = a.qg.wec(a.assignment, a.ng)
        wb = b.qg.wec(b.assignment, b.ng)
        assert wa == wb


class TestCosmosModeParity:
    """Randomized interleavings drive both modes to identical states."""

    @pytest.mark.parametrize("seed", PARITY_SEEDS)
    def test_interleaved_ops_bit_identical(self, env, seed):
        _, _, _, processors = env
        workload = make_workload(env, seed=100 + seed)
        ca, cb = make_pair(env, workload)
        rng = random.Random(9000 + seed)

        for cosmos in (ca, cb):
            cosmos.distribute(workload.queries)
        assert_parity(ca, cb)

        live = [q.query_id for q in workload.queries]
        specs = {q.query_id: q for q in workload.queries}
        for _ in range(6):
            r = rng.random()
            if r < 0.35:
                fresh = workload.new_queries(rng.randint(1, 5), processors)
                for q in fresh:
                    specs[q.query_id] = q
                    live.append(q.query_id)
                    ha = ca.insert(q)
                    hb = cb.insert(q)
                    assert ha == hb
            elif r < 0.60 and len(live) > 10:
                for qid in rng.sample(live, rng.randint(1, 4)):
                    live.remove(qid)
                    assert ca.remove(qid) == cb.remove(qid)
            elif r < 0.80:
                ca.adapt()
                cb.adapt()
            else:
                ids = workload.space.random_substreams(20, rng)
                workload.space.perturb_rates(ids, rng.choice([0.25, 4.0]))
                for cosmos in (ca, cb):
                    cosmos.refresh_statistics(workload)
                ca.adapt()
                cb.adapt()
            assert dict(ca.placement) == dict(cb.placement)
        assert_parity(ca, cb)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_membership_churn_parity(self, env, seed):
        """Processor join/leave rebuilds the hierarchy through the coarse
        plan cache on the incremental side; placements must not diverge."""
        workload = make_workload(env, seed=200 + seed)
        ca, cb = make_pair(env, workload)
        for cosmos in (ca, cb):
            cosmos.distribute(workload.queries)
        specs = {q.query_id: q for q in workload.queries}

        victim = sorted(set(ca.placement.values()))[seed]
        orphans_a = ca.remove_processor(victim)
        orphans_b = cb.remove_processor(victim)
        assert orphans_a == orphans_b
        for qid in orphans_a:
            assert ca.insert(specs[qid]) == cb.insert(specs[qid])
        ca.adapt()
        cb.adapt()
        assert_parity(ca, cb)

        ca.add_processor(victim)
        cb.add_processor(victim)
        ca.adapt()
        cb.adapt()
        assert_parity(ca, cb)

    def test_repeat_adapt_converges_and_skips(self, env):
        from repro.obs.registry import MetricsRegistry, set_active

        workload = make_workload(env, seed=300)
        ca, cb = make_pair(env, workload)
        for cosmos in (ca, cb):
            cosmos.distribute(workload.queries)
        # steady-state rounds: converged coordinator levels must skip
        # their optimization phases (tie-break churn may keep a level
        # busy indefinitely, so global quiescence is not asserted) while
        # the two modes stay in lockstep round after round
        reg = MetricsRegistry()
        set_active(reg)
        try:
            for _ in range(5):
                ca.adapt()
                cb.adapt()
                assert dict(ca.placement) == dict(cb.placement)
        finally:
            set_active(None)
        assert reg.counters.get("opt.adapt_skips", 0) > 0
        # skipped levels really did no per-round work: every coordinator
        # that reported zero moves kept its assignment verbatim
        for a, b in zip(ca.root.all_coordinators(),
                        cb.root.all_coordinators()):
            assert (a._last_moves == 0) == (b._last_moves == 0)
            if a._last_moves == 0:
                assert coord_fingerprint(a) == coord_fingerprint(b)


class TestRemovalCycles:
    """Satellite: insert -> remove -> insert cycles neither leak vertices
    nor corrupt the delta-maintained snapshot cache."""

    def test_long_churn_cycle_no_leaks(self, env):
        _, oracle, _, processors = env
        workload = make_workload(env, seed=400, num_queries=80)
        cosmos = Cosmos(
            oracle, processors, workload.space,
            CosmosConfig(k=4, vmax=10, incremental=True),
        )
        cosmos.distribute(workload.queries)
        rng = random.Random(42)
        live = [q.query_id for q in workload.queries]
        specs = {q.query_id: q for q in workload.queries}

        for round_no in range(10):
            victims = rng.sample(live, 6)
            for qid in victims:
                live.remove(qid)
                assert cosmos.remove(qid)
            fresh = workload.new_queries(6, processors)
            for q in fresh:
                specs[q.query_id] = q
                live.append(q.query_id)
                cosmos.insert(q)
            if round_no % 3 == 2:
                cosmos.adapt()

        live_set = set(live)
        assert set(cosmos.placement) == live_set
        for coord in cosmos.root.all_coordinators():
            members = [
                m for v in coord.vertices.values() for m in v.members
            ]
            # no departed query survives in any (coarse) vertex, and no
            # member is double-counted after strip/compress cycles
            assert set(members) <= live_set
            assert len(members) == len(set(members))
            for v in coord.vertices.values():
                if v.children:
                    assert v.weight == pytest.approx(
                        sum(c.weight for c in v.children)
                    )
            # the delta-maintained snapshot still agrees with a scratch
            # rebuild of the same graph, bit for bit
            arrays = coord.qg.arrays_for(coord.ng)
            fresh_arrays = GraphArrays(coord.qg, coord.ng)
            mapping = {
                vid: t for vid, t in coord.assignment.items()
                if vid in coord.qg.qverts
            }
            assert arrays.wec(mapping) == fresh_arrays.wec(mapping)
            assert np.array_equal(
                arrays.loads(mapping), fresh_arrays.loads(mapping)
            )
            # no orphaned n-vertices accumulate in the live graph
            for nvid in coord.qg.nverts:
                assert coord.qg.neighbors(nvid), f"orphan n-vertex {nvid}"


class TestCoarsePlanReuse:
    @pytest.fixture(scope="class")
    def coarse_env(self, env):
        workload = make_workload(env, seed=500, num_queries=60)
        _, oracle, _, processors = env
        ng = NetworkGraph(
            [
                NetVertex(vid=("p", p), site=p, capability=1.0,
                          covers=frozenset([p]))
                for p in processors[:5]
            ],
            oracle,
        )
        verts = [qvertex_from_query(q, workload.space) for q in workload.queries]
        graph = build_query_graph(verts, workload.space, ng)
        return workload, ng, graph

    def _rebuild(self, coarse_env):
        workload, ng, _ = coarse_env
        verts = [
            qvertex_from_query(q, workload.space) for q in workload.queries
        ]
        return build_query_graph(verts, workload.space, ng)

    def test_full_hit_bit_identical(self, coarse_env):
        workload, _, graph = coarse_env
        out1, plan, reused1 = coarsen_cached(
            graph, 12, workload.space, origin="t", rng=random.Random(7)
        )
        assert reused1 == "none"
        fresh_graph = self._rebuild(coarse_env)
        out2, plan2, reused2 = coarsen_cached(
            fresh_graph, 12, workload.space, origin="t",
            rng=random.Random(7), plan=plan, mode="replay",
        )
        assert reused2 == "full"
        assert plan2 is plan
        assert [vertex_sig(v) for v in out1] == [vertex_sig(v) for v in out2]
        # replay rebinds children to the *current* input objects
        current = {plan_key(v): v for v in fresh_graph.qverts.values()}
        for v in out2:
            stack = list(v.children)
            while stack:
                c = stack.pop()
                if c.children:
                    stack.extend(c.children)
                else:
                    assert current[plan_key(c)] is c

    def test_dirty_input_misses_in_replay_mode(self, coarse_env):
        workload, _, graph = coarse_env
        out1, plan, _ = coarsen_cached(
            graph, 12, workload.space, origin="t", rng=random.Random(7)
        )
        fresh_graph = self._rebuild(coarse_env)
        dirty = next(iter(fresh_graph.qverts.values()))
        dirty.weight *= 3.0
        out2, plan2, reused = coarsen_cached(
            fresh_graph, 12, workload.space, origin="t",
            rng=random.Random(7), plan=plan, mode="replay",
        )
        assert reused == "none"
        assert plan2 is not plan

    def test_partial_reuse_invariants(self, coarse_env):
        workload, _, graph = coarse_env
        out1, plan, _ = coarsen_cached(
            graph, 12, workload.space, origin="t", rng=random.Random(7)
        )
        fresh_graph = self._rebuild(coarse_env)
        dirty = next(iter(fresh_graph.qverts.values()))
        dirty.weight *= 3.0
        out2, plan2, reused = coarsen_cached(
            fresh_graph, 12, workload.space, origin="t",
            rng=random.Random(7), plan=plan, mode="partial",
        )
        assert reused == "partial"
        assert len(out2) <= 12
        # the coarse outputs partition exactly the input member universe
        in_members = sorted(
            m for v in fresh_graph.qverts.values() for m in v.members
        )
        out_members = sorted(m for v in out2 for m in v.members)
        assert in_members == out_members
        for v in out2:
            if v.children:
                assert v.weight == pytest.approx(
                    sum(c.weight for c in v.children)
                )


class TestSnapshotAndWorkspaceParity:
    """Randomized mutation sequences: patched state == scratch state."""

    @pytest.fixture(scope="class")
    def small(self):
        space = SubstreamSpace.random(300, sources=[0, 40, 80], seed=11)
        ng = NetworkGraph(
            [
                NetVertex(vid=f"P{i}", site=i * 5, capability=1.0,
                          covers=frozenset([i * 5]))
                for i in range(5)
            ],
            lambda a, b: abs(a - b),
        )
        return space, ng

    def _make_graph(self, space, ng, n, seed):
        rng = random.Random(seed)
        verts = []
        for i in range(n):
            ids = rng.sample(range(len(space)), rng.randint(4, 14))
            mask = mask_of(ids)
            verts.append(qvertex_from_query(
                QuerySpec(query_id=i, proxy=rng.choice([0, 5, 10]),
                          mask=mask, group=0, load=0.01 * space.rate(mask),
                          result_rate=1.0, state_size=rng.uniform(1, 4)),
                space,
            ))
        return build_query_graph(verts, space, ng)

    @pytest.mark.parametrize("seed", PARITY_SEEDS)
    def test_patched_arrays_and_synced_workspace(self, small, seed):
        space, ng = small
        g = self._make_graph(space, ng, 24, seed)
        ws = CostWorkspace(g, ng)
        rng = random.Random(seed * 13 + 1)
        next_qid = 1000

        for step in range(120):
            op = rng.random()
            qvids = list(g.qverts)
            if op < 0.40 and len(qvids) >= 2:
                a, b = rng.sample(qvids, 2)
                if rng.random() < 0.3:
                    g.set_edge(a, b, 0.0)
                else:
                    g.set_edge(a, b, rng.uniform(0.1, 5.0))
            elif op < 0.60:
                ids = rng.sample(range(len(space)), rng.randint(4, 14))
                mask = mask_of(ids)
                v = qvertex_from_query(
                    QuerySpec(query_id=next_qid, proxy=rng.choice([0, 5, 10]),
                              mask=mask, group=0,
                              load=0.01 * space.rate(mask),
                              result_rate=1.0, state_size=1.0),
                    space,
                )
                next_qid += 1
                g.add_qvertex(v)
                if qvids:
                    g.set_edge(v.vid, rng.choice(qvids), rng.uniform(0.1, 2))
            elif op < 0.75 and len(qvids) > 5:
                g.remove_vertex(rng.choice(qvids))
            else:
                pass  # no-op round: snapshots must still agree

            if step % 10 == 9:
                mapping = {
                    vid: rng.choice(ng.ids()) for vid in g.qverts
                }
                patched = g.arrays_for(ng)
                fresh = GraphArrays(g, ng)
                assert patched.wec(mapping) == fresh.wec(mapping)
                assert np.array_equal(
                    patched.loads(mapping), fresh.loads(mapping)
                )
                ws.ensure_synced()
                ws.init_positions(mapping)
                ws2 = CostWorkspace(g, ng)
                ws2.init_positions(mapping)
                for vid in list(g.qverts)[:8]:
                    got = ws.attach_costs(vid)
                    want = ws2.attach_costs(vid)
                    assert np.array_equal(got, want)

    @pytest.mark.parametrize("seed", [0, 3, 5])
    def test_tracked_wec_matches_full_recompute(self, small, seed):
        space, ng = small
        g = self._make_graph(space, ng, 30, seed + 50)
        arrays = g.arrays_for(ng)
        rng = random.Random(seed)
        mapping = {vid: rng.choice(ng.ids()) for vid in g.qverts}
        total = arrays.begin_moves(mapping)
        assert total == arrays.wec(mapping)
        for _ in range(60):
            vid = rng.choice(list(g.qverts))
            target = rng.choice(ng.ids())
            mapping[vid] = target
            tracked = arrays.update(vid, target)
            assert tracked == pytest.approx(arrays.wec(mapping), rel=1e-9)
