"""Tests for pub/sub constraints, filters, matching and covering."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pubsub.predicates import AttributeRange, Constraint, Filter, TRUE_FILTER


class TestConstraint:
    @pytest.mark.parametrize(
        "op,value,probe,expected",
        [
            ("==", 5, 5, True),
            ("==", 5, 6, False),
            ("!=", 5, 6, True),
            ("!=", 5, 5, False),
            ("<", 5, 4, True),
            ("<", 5, 5, False),
            ("<=", 5, 5, True),
            (">", 5, 6, True),
            (">", 5, 5, False),
            (">=", 5, 5, True),
        ],
    )
    def test_matching_ops(self, op, value, probe, expected):
        assert Constraint("a", op, value).matches(probe) is expected

    def test_in_operator(self):
        c = Constraint("a", "in", [1, 2, 3])
        assert c.matches(2)
        assert not c.matches(4)

    def test_in_normalises_to_frozenset(self):
        c = Constraint("a", "in", [1, 2])
        assert isinstance(c.value, frozenset)

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            Constraint("a", "~", 1)

    def test_none_never_matches(self):
        assert not Constraint("a", ">", 0).matches(None)


class TestFilterMatching:
    def test_true_filter_matches_everything(self):
        assert TRUE_FILTER.matches({})
        assert TRUE_FILTER.matches({"x": 1})

    def test_conjunction(self):
        f = Filter.of(("a", ">", 10), ("a", "<", 20))
        assert f.matches({"a": 15})
        assert not f.matches({"a": 5})
        assert not f.matches({"a": 25})

    def test_missing_attribute_fails(self):
        f = Filter.of(("a", ">", 10))
        assert not f.matches({"b": 15})

    def test_multi_attribute(self):
        f = Filter.of(("a", ">", 1), ("b", "==", "x"))
        assert f.matches({"a": 2, "b": "x"})
        assert not f.matches({"a": 2, "b": "y"})

    def test_contradiction_is_empty(self):
        f = Filter.of(("a", ">", 10), ("a", "<", 5))
        assert f.is_empty()
        assert not f.matches({"a": 7})

    def test_equality_contradiction(self):
        f = Filter.of(("a", "==", 1), ("a", "==", 2))
        assert f.is_empty()

    def test_equality_with_interval(self):
        f = Filter.of(("a", "==", 5), ("a", ">", 3))
        assert f.matches({"a": 5})
        f2 = Filter.of(("a", "==", 2), ("a", ">", 3))
        assert f2.is_empty()

    def test_not_equal_carves_hole(self):
        f = Filter.of(("a", ">", 0), ("a", "!=", 5))
        assert f.matches({"a": 4})
        assert not f.matches({"a": 5})

    def test_boundary_point_interval(self):
        f = Filter.of(("a", ">=", 5), ("a", "<=", 5))
        assert f.matches({"a": 5})
        assert not f.is_empty()
        g = Filter.of(("a", ">", 5), ("a", "<=", 5))
        assert g.is_empty()


class TestCovering:
    def test_true_covers_all(self):
        assert TRUE_FILTER.covers(Filter.of(("a", ">", 10)))

    def test_specific_does_not_cover_true(self):
        assert not Filter.of(("a", ">", 10)).covers(TRUE_FILTER)

    def test_wider_interval_covers(self):
        wide = Filter.of(("a", ">", 10))
        narrow = Filter.of(("a", ">", 20))
        assert wide.covers(narrow)
        assert not narrow.covers(wide)

    def test_same_bound_inclusivity(self):
        ge = Filter.of(("a", ">=", 10))
        gt = Filter.of(("a", ">", 10))
        assert ge.covers(gt)
        assert not gt.covers(ge)

    def test_extra_attribute_in_covered(self):
        f1 = Filter.of(("a", ">", 10))
        f2 = Filter.of(("a", ">", 10), ("b", "<", 5))
        assert f1.covers(f2)
        assert not f2.covers(f1)

    def test_membership_covering(self):
        f1 = Filter.of(("a", "in", [1, 2, 3]))
        f2 = Filter.of(("a", "in", [1, 2]))
        assert f1.covers(f2)
        assert not f2.covers(f1)

    def test_interval_covers_membership(self):
        f1 = Filter.of(("a", ">", 0))
        f2 = Filter.of(("a", "in", [1, 2]))
        assert f1.covers(f2)

    def test_empty_covered_by_anything(self):
        empty = Filter.of(("a", ">", 2), ("a", "<", 1))
        assert Filter.of(("a", "==", 99)).covers(empty)

    def test_exclusion_blocks_covering(self):
        f1 = Filter.of(("a", ">", 0), ("a", "!=", 5))
        f2 = Filter.of(("a", ">", 0))
        assert not f1.covers(f2)
        assert f2.covers(f1)


class TestHull:
    def test_hull_covers_both(self):
        f1 = Filter.of(("a", ">", 10), ("a", "<", 20))
        f2 = Filter.of(("a", ">", 15), ("a", "<", 30))
        h = f1.hull(f2)
        assert h.covers(f1) and h.covers(f2)

    def test_hull_drops_uncommon_attributes(self):
        f1 = Filter.of(("a", ">", 10), ("b", "<", 5))
        f2 = Filter.of(("a", ">", 12))
        h = f1.hull(f2)
        assert h.attributes() == frozenset({"a"})

    def test_hull_of_memberships(self):
        f1 = Filter.of(("a", "in", [1, 2]))
        f2 = Filter.of(("a", "in", [3]))
        h = f1.hull(f2)
        assert h.matches({"a": 1}) and h.matches({"a": 3})
        assert not h.matches({"a": 4})

    def test_conjoin(self):
        f = Filter.of(("a", ">", 10)).conjoin(Filter.of(("a", "<", 20)))
        assert f.matches({"a": 15})
        assert not f.matches({"a": 25})


# ---------------------------------------------------------------------------
# property-based: covering must be consistent with match semantics
# ---------------------------------------------------------------------------

_ops = st.sampled_from(["==", "!=", "<", "<=", ">", ">="])
_vals = st.integers(-20, 20)


def _filters(max_constraints=3):
    return st.lists(
        st.tuples(st.sampled_from(["a", "b"]), _ops, _vals),
        min_size=0,
        max_size=max_constraints,
    ).map(lambda triples: Filter.of(*triples))


@settings(max_examples=300, deadline=None)
@given(f1=_filters(), f2=_filters(), probe=st.dictionaries(
    st.sampled_from(["a", "b"]), _vals, min_size=0, max_size=2))
def test_covering_implies_match_superset(f1, f2, probe):
    """If f1 covers f2, every assignment matching f2 matches f1."""
    if f1.covers(f2) and f2.matches(probe):
        assert f1.matches(probe)


@settings(max_examples=200, deadline=None)
@given(f1=_filters(), f2=_filters(), probe=st.dictionaries(
    st.sampled_from(["a", "b"]), _vals, min_size=0, max_size=2))
def test_hull_matches_union(f1, f2, probe):
    """The hull matches everything either input matches."""
    h = f1.hull(f2)
    if f1.matches(probe) or f2.matches(probe):
        assert h.matches(probe)


@settings(max_examples=200, deadline=None)
@given(f=_filters())
def test_covering_reflexive(f):
    if not f.is_empty():
        assert f.covers(f)


@settings(max_examples=200, deadline=None)
@given(f1=_filters(), f2=_filters(), f3=_filters())
def test_covering_transitive(f1, f2, f3):
    if f1.covers(f2) and f2.covers(f3):
        assert f1.covers(f3)
