"""Tests for the discrete-event cluster simulator."""

import json

import numpy as np
import pytest

from repro.query.interest import SubstreamSpace
from repro.query.workload import WorkloadParams, generate_workload
from repro.sim import (
    ChurnParams,
    EventLoop,
    HotSpotShift,
    ScenarioParams,
    SimWorkloadParams,
    measure_rates,
    oracle_results,
    run_scenario,
)
from repro.sim.workload import SimQueryFactory, stream_name
from repro.topology.latency import select_roles
from repro.topology.transit_stub import TransitStubParams, generate_transit_stub


class TestEventLoop:
    def test_time_order(self):
        loop = EventLoop()
        seen = []
        loop.schedule(3.0, lambda: seen.append("c"))
        loop.schedule(1.0, lambda: seen.append("a"))
        loop.schedule(2.0, lambda: seen.append("b"))
        loop.run()
        assert seen == ["a", "b", "c"]

    def test_ties_fire_in_scheduling_order(self):
        loop = EventLoop()
        seen = []
        for tag in "abc":
            loop.schedule(5.0, lambda t=tag: seen.append(t))
        loop.run()
        assert seen == ["a", "b", "c"]

    def test_past_scheduling_raises(self):
        """Scheduling before ``now`` is a causality bug, not a clamp."""
        loop = EventLoop()
        failures = []

        def at_two():
            try:
                loop.schedule(1.0, lambda: None)
            except ValueError as exc:
                failures.append(exc)

        loop.schedule(2.0, at_two)
        loop.run()
        assert len(failures) == 1
        assert loop.now == 2.0

    def test_past_scheduling_within_epsilon_clamped(self):
        """Float round-off below ``past_epsilon`` still clamps to now."""
        loop = EventLoop()
        seen = []
        loop.schedule(
            2.0, lambda: loop.schedule(2.0 - 1e-12, lambda: seen.append("ok"))
        )
        loop.run()
        assert seen == ["ok"]
        assert loop.now == 2.0

    def test_run_until_horizon(self):
        loop = EventLoop()
        seen = []
        loop.schedule(1.0, lambda: seen.append(1))
        loop.schedule(9.0, lambda: seen.append(9))
        assert loop.run_until(5.0) == 1
        assert seen == [1] and loop.now == 5.0
        assert len(loop) == 1

    def test_actions_can_reschedule(self):
        loop = EventLoop()
        ticks = []

        def tick():
            ticks.append(loop.now)
            if loop.now < 3.0:
                loop.schedule_in(1.0, tick)

        loop.schedule(1.0, tick)
        loop.run_until(10.0)
        assert ticks == [1.0, 2.0, 3.0]


class TestSeedThreading:
    """Satellite: one numpy Generator reproduces every layer."""

    def test_transit_stub_rng_param(self):
        p = TransitStubParams()
        a = generate_transit_stub(p, rng=np.random.default_rng(3))
        b = generate_transit_stub(p, rng=np.random.default_rng(3))
        c = generate_transit_stub(p, rng=np.random.default_rng(4))
        assert a.adjacency == b.adjacency
        assert a.adjacency != c.adjacency
        # legacy int-seed path is untouched
        assert (
            generate_transit_stub(p, seed=5).adjacency
            == generate_transit_stub(p, seed=5).adjacency
        )

    def test_select_roles_rng_param(self):
        topo = generate_transit_stub(TransitStubParams(), seed=1)
        a = select_roles(topo, 4, 8, rng=np.random.default_rng(2))
        b = select_roles(topo, 4, 8, rng=np.random.default_rng(2))
        assert a == b

    def test_substream_space_rng_param(self):
        a = SubstreamSpace.random(50, [1, 2], rng=np.random.default_rng(9))
        b = SubstreamSpace.random(50, [1, 2], rng=np.random.default_rng(9))
        assert np.array_equal(a.rates, b.rates)
        assert np.array_equal(a.source_of, b.source_of)

    def test_generate_workload_rng_param(self):
        params = WorkloadParams(num_substreams=100, num_queries=20)
        a = generate_workload(params, [0, 1], [5, 6, 7], rng=np.random.default_rng(4))
        b = generate_workload(params, [0, 1], [5, 6, 7], rng=np.random.default_rng(4))
        assert [q.mask for q in a.queries] == [q.mask for q in b.queries]
        assert [q.proxy for q in a.queries] == [q.proxy for q in b.queries]

    def test_sim_factory_reproducible(self):
        space = SubstreamSpace.random(30, [0], rng=np.random.default_rng(1))
        make = lambda seed: SimQueryFactory(
            space, [10, 11], SimWorkloadParams(num_substreams=30),
            np.random.default_rng(seed),
        ).make_batch(10)
        a, b = make(7), make(7)
        assert [q.text for q in a] == [q.text for q in b]
        assert [q.spec.mask for q in a] == [q.spec.mask for q in b]


class TestMeasureRates:
    def test_converges_to_nominal(self):
        space = SubstreamSpace.random(200, [0], rng=np.random.default_rng(0))
        measured = measure_rates(space, 10000.0, np.random.default_rng(1))
        assert np.allclose(measured, space.rates, rtol=0.2)

    def test_noisy_at_short_durations(self):
        space = SubstreamSpace.random(200, [0], rng=np.random.default_rng(0))
        measured = measure_rates(space, 0.5, np.random.default_rng(1))
        assert not np.allclose(measured, space.rates, rtol=1e-3)

    def test_rejects_bad_duration(self):
        space = SubstreamSpace.random(5, [0], rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            measure_rates(space, 0.0, np.random.default_rng(1))


class TestMidDrainRemoval:
    """Satellite regression: a unit force-drained mid-stream (a member
    departing its shared group, a crashed host's recovery) leaves its
    already-scheduled release events in the loop; those stale events must
    not deliver *later* pending tuples before their own release time.
    """

    @staticmethod
    def _mini_cluster():
        """A one-query cluster wired just deep enough for the scalar
        delivery machinery (`_publish_rows` -> `_release_one`)."""
        from types import SimpleNamespace

        from repro.engine.executor import Engine
        from repro.query.interest import mask_of
        from repro.query.workload import QuerySpec
        from repro.sim.cluster import SimCluster, _QueryState
        from repro.sim.workload import SimQuery
        from repro.query.parser import parse_query

        c = SimCluster.__new__(SimCluster)
        c.loop = EventLoop()
        c._sharing = False
        c._batching = False
        c.record = False
        c.obs = None
        c.results_total = 0
        c._interval_results = 0
        c.engines = {0: Engine(node=0, use_batches=False)}
        c.queries = {}
        c._units = c.queries
        c.space = SimpleNamespace(source_of=[1])
        ast = parse_query(
            "SELECT A.value FROM S0 [Range 5 Seconds] A", name="q0"
        )
        plan = c.engines[0].add_query(ast, result_stream="out_q0")
        spec = QuerySpec(
            query_id=0, proxy=0, mask=mask_of([0]), group=0,
            load=1.0, result_rate=1.0, state_size=0.0,
        )
        simq = SimQuery(
            spec=spec, ast=ast, text="", streams=("S0",), substreams=(0,)
        )
        qs = _QueryState(simq=simq, host=0, sub=None, plan=plan, slack=1.0)
        c.queries[0] = qs

        class _OneSubNet:
            """Every publish reaches the single query's subscription."""

            def __init__(self):
                from repro.pubsub.subscriptions import Subscription

                self.sub = Subscription.to_streams(("S0",))

            def publish(self, source, event):
                return [(0, event, self.sub)]

        c.network = _OneSubNet()
        c._by_sub = {c.network.sub.sub_id: 0}
        c.actions = None
        return c, qs

    def test_stale_release_event_cannot_deliver_early(self):
        from repro.engine.tuples import StreamTuple

        c, qs = self._mini_cluster()
        loop = c.loop
        seq = iter(range(1, 10))

        def publish():
            t = loop.now
            tup = StreamTuple("S0", {"value": 1, "timestamp": t})
            c._publish_rows(0, [(next(seq), tup)])

        # x1 published at t=1.0, release 2.0 (slack 1s)
        loop.schedule(1.0, publish)
        # mid-drain at t=1.5: x1 force-delivered, its release event at
        # t=2.0 is now stale but still queued
        loop.schedule(1.5, lambda: c._drain_unit_completely(qs))
        # x2 published at t=1.8, release max(2.8, last_release)=2.8
        loop.schedule(1.8, publish)
        loop.run()
        # x2 must be delivered at ITS release (latency 1.0s), not when
        # the stale t=2.0 event fires (latency 0.2s)
        assert c.results_total == 2
        assert qs.lat_max == pytest.approx(1.0)


def churn_scenario() -> ScenarioParams:
    return ScenarioParams(
        duration=20.0,
        sample_interval=4.0,
        adapt_interval=8.0,
        initial_placement="skewed",
        churn=ChurnParams(arrival_rate=0.4, mean_lifetime=12.0),
        hotspot=HotSpotShift(at=10.0, substreams=8, factor=3.0),
    )


def small_workload() -> SimWorkloadParams:
    return SimWorkloadParams(num_substreams=40, num_queries=24)


class TestRunScenario:
    def test_steady_state_produces_results_and_latencies(self):
        report = run_scenario(
            seed=1,
            workload=small_workload(),
            scenario=ScenarioParams(duration=15.0, sample_interval=5.0,
                                    adapt_interval=None),
        )
        summary = report.trace.summary()
        assert summary["results_total"] > 0
        assert summary["mean_latency_s"] > 0.0
        # latency can never beat the smallest intra-stub link (1 ms)
        assert summary["max_latency_s"] >= 0.001
        assert report.tuples_emitted > 0
        # no adaptation configured -> no migrations, no marks
        assert summary["migrations_total"] == 0
        assert report.trace.adaptations == []

    def test_trace_is_deterministic(self):
        a = run_scenario(seed=5, workload=small_workload(), scenario=churn_scenario())
        b = run_scenario(seed=5, workload=small_workload(), scenario=churn_scenario())
        assert json.dumps(a.trace.to_dict(), sort_keys=True) == json.dumps(
            b.trace.to_dict(), sort_keys=True
        )

    def test_trace_round_trips_through_dict(self):
        """Satellite: ``to_dict`` is versioned and ``from_dict`` inverts it."""
        from repro.sim.trace import TRACE_SCHEMA_VERSION, SimTrace

        report = run_scenario(
            seed=5, workload=small_workload(), scenario=churn_scenario()
        )
        trace = report.trace
        data = trace.to_dict(include_timing=True)
        assert data["schema_version"] == TRACE_SCHEMA_VERSION
        rebuilt = SimTrace.from_dict(json.loads(json.dumps(data)))
        assert rebuilt == trace
        # timing-stripped dicts reconstruct with optimizer_cpu_s zeroed
        stripped = SimTrace.from_dict(trace.to_dict())
        assert stripped.to_dict() == trace.to_dict()
        assert all(a.optimizer_cpu_s == 0.0 for a in stripped.adaptations)
        # unknown versions fail loudly instead of misparsing
        bad = trace.to_dict()
        bad["schema_version"] = TRACE_SCHEMA_VERSION + 1
        with pytest.raises(ValueError):
            SimTrace.from_dict(bad)

    def test_seeds_differ(self):
        a = run_scenario(seed=5, workload=small_workload(), scenario=churn_scenario())
        b = run_scenario(seed=6, workload=small_workload(), scenario=churn_scenario())
        assert json.dumps(a.trace.to_dict(), sort_keys=True) != json.dumps(
            b.trace.to_dict(), sort_keys=True
        )

    def test_churn_adaptation_improves_balance(self):
        """Satellite: churn + adaptation; stddev drops after a round."""
        report = run_scenario(
            seed=7, workload=small_workload(), scenario=churn_scenario()
        )
        assert report.trace.adaptations, "no adaptation rounds fired"
        first = report.trace.adaptations[0]
        assert first.stddev_after < first.stddev_before
        assert first.migrated_queries > 0
        # churn actually happened
        kinds = {e[1] for e in report.trace.events}
        assert "query_add" in kinds and "query_remove" in kinds

    @pytest.mark.parametrize("seed", [0, 7, 11])
    def test_results_match_single_engine_oracle(self, seed):
        """Satellite: every emitted result tuple matches the oracle run."""
        report = run_scenario(
            seed=seed,
            workload=small_workload(),
            scenario=churn_scenario(),
            record=True,
        )
        oracle = oracle_results(report.actions)
        assert set(report.results) == set(oracle)
        total = 0
        for query_id, got in report.results.items():
            assert got == oracle[query_id], f"query {query_id} diverged"
            total += len(got)
        assert total > 0, "scenario emitted no results to compare"

    def test_hotspot_shifts_traffic(self):
        quiet = run_scenario(
            seed=3,
            workload=small_workload(),
            scenario=ScenarioParams(duration=20.0, sample_interval=5.0,
                                    adapt_interval=None),
        )
        shifted = run_scenario(
            seed=3,
            workload=small_workload(),
            scenario=ScenarioParams(duration=20.0, sample_interval=5.0,
                                    adapt_interval=None,
                                    hotspot=HotSpotShift(at=8.0, substreams=12,
                                                         factor=4.0)),
        )
        assert ("hotspot" in {e[1] for e in shifted.trace.events})
        assert shifted.tuples_emitted > quiet.tuples_emitted

    def test_rejects_unknown_placement_mode(self):
        with pytest.raises(ValueError):
            run_scenario(
                seed=0,
                workload=small_workload(),
                scenario=ScenarioParams(initial_placement="nope"),
            )


class TestFig10SimLoads:
    """Satellite: fig10 sourcing loads from the simulator measurement."""

    def test_sim_load_source_runs(self):
        from repro.experiments import fig10
        from repro.experiments.config import bench_scale

        config = bench_scale(num_queries=120)
        series = fig10.run(
            config=config, pattern=("I", "D"), perturbed_streams=40,
            load_source="sim", measure_duration=20.0,
        )
        assert len(series.steps) == 3  # snapshot 0 + two perturbations
        assert series.adaptive_migrations >= 0

    def test_static_and_sim_paths_diverge(self):
        from repro.experiments import fig10
        from repro.experiments.config import bench_scale

        config = bench_scale(num_queries=120)
        static = fig10.run(config=config, pattern=("I",), perturbed_streams=40)
        sim = fig10.run(
            config=config, pattern=("I",), perturbed_streams=40,
            load_source="sim", measure_duration=5.0,
        )
        # short, noisy measurements must not match the exact static loads
        assert static.adaptive_std != sim.adaptive_std

    def test_rejects_unknown_source(self):
        from repro.experiments import fig10

        with pytest.raises(ValueError):
            fig10.run(load_source="bogus")
