"""Tests for the benchmark subsystem: registry, timers, report, CLI."""

import json

import pytest

from repro.bench import (
    SCALES,
    SCENARIOS,
    Timing,
    format_table,
    measure,
    run_scenarios,
    validate_report,
    write_report,
)
from repro.bench.cli import main
from repro.bench.scenarios import SyntheticOracle, synthetic_testbed


class TestTimers:
    def test_measure_returns_result_and_timing(self):
        result, timing = measure(lambda: 42, repeat=3)
        assert result == 42
        assert isinstance(timing, Timing)
        assert timing.repeat == 3
        assert 0 <= timing.best <= timing.mean

    def test_measure_rejects_zero_repeat(self):
        with pytest.raises(ValueError):
            measure(lambda: None, repeat=0)


class TestSyntheticFixtures:
    def test_oracle_is_metric_like(self):
        oracle = SyntheticOracle(10, seed=1)
        assert oracle(3, 3) == 0.0
        assert oracle(2, 7) == pytest.approx(oracle(7, 2))
        assert len(oracle.row(0)) == 10

    def test_testbed_shapes(self):
        qg, ng, space, mapping = synthetic_testbed(
            num_queries=30, num_processors=5,
            num_substreams=200, num_sources=4,
        )
        assert len(qg.qverts) == 30
        assert len(ng) == 5
        assert set(mapping) == set(qg.qverts)
        assert all(t in ng.vertices for t in mapping.values())


class TestRegistry:
    def test_expected_scenarios_registered(self):
        for name in (
            "wec_eval", "diffusion", "coarsening",
            "attach_costs", "rebalance", "distribute_e2e",
            "sim_steady", "sim_churn", "sim_hotspot", "sim_scale",
            "sim_sharing", "sim_faults",
        ):
            assert name in SCENARIOS

    def test_scales_have_required_keys(self):
        for scale in SCALES.values():
            assert {"wec_queries", "processors", "repeat"} <= set(scale)
            assert {"scale_sweep", "scale_events"} <= set(scale["sim"])

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError):
            run_scenarios("smoke", only=["nope"])


class TestReportRoundtrip:
    def test_write_validate_format(self, tmp_path):
        results = run_scenarios("smoke", only=["wec_eval", "diffusion"])
        assert [r["name"] for r in results] == ["wec_eval", "diffusion"]
        out = tmp_path / "BENCH_core.json"
        report = write_report(results, str(out), "smoke")
        assert report["schema"] == "cosmos-bench/1"
        loaded = validate_report(str(out))
        assert loaded["scale"] == "smoke"
        assert len(loaded["scenarios"]) == 2
        table = format_table(results)
        assert "wec_eval" in table and "speedup" in table

    def test_validate_rejects_malformed(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "cosmos-bench/1"}))
        with pytest.raises(ValueError):
            validate_report(str(bad))
        bad.write_text(json.dumps({"schema": "other", "scenarios": [{}]}))
        with pytest.raises(ValueError):
            validate_report(str(bad))

    def test_wec_scenario_meets_speedup_and_parity(self):
        # even at smoke scale the vectorised WEC is well past 5x
        (result,) = run_scenarios("smoke", only=["wec_eval"])
        assert result["speedup"] >= 5.0
        assert result["parity"]["rel_err"] < 1e-9


class TestCli:
    def test_list_mode(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "wec_eval" in out

    def test_run_writes_report(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        code = main(
            ["--scale", "smoke", "--scenario", "diffusion",
             "--out", str(out)]
        )
        assert code == 0
        report = validate_report(str(out))
        assert report["scenarios"][0]["name"] == "diffusion"
