"""Tests for the continuous-query engine and result-stream sharing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Engine, SensorFleet, SlidingWindow, StreamTuple
from repro.pubsub import Event
from repro.query.ast import Window
from repro.query.merging import merge_queries, split_subscription
from repro.query.parser import parse_query


def tup(stream, ts, **values):
    values["timestamp"] = ts
    return StreamTuple(stream, values)


class TestSlidingWindow:
    def test_time_window_evicts(self):
        w = SlidingWindow(Window(seconds=10))
        w.insert(tup("R", 0, a=1))
        w.insert(tup("R", 15, a=2))
        w.insert(tup("R", 20, a=3))
        assert [t.get("a") for t in w.contents()] == [2, 3]

    def test_now_window_keeps_current_instant(self):
        w = SlidingWindow(Window(seconds=0))
        w.insert(tup("R", 1, a=1))
        w.insert(tup("R", 1, a=2))
        assert len(w.contents(now=1)) == 2
        assert len(w.contents(now=2)) == 0

    def test_row_window(self):
        w = SlidingWindow(Window(rows=2))
        for i in range(5):
            w.insert(tup("R", i, a=i))
        assert [t.get("a") for t in w.contents()] == [3, 4]

    def test_out_of_order_rejected(self):
        w = SlidingWindow(Window(seconds=10))
        w.insert(tup("R", 5))
        with pytest.raises(ValueError):
            w.insert(tup("R", 4))


class TestSingleStreamQueries:
    def test_selection(self):
        e = Engine()
        e.add_query(parse_query(
            "SELECT R.a, R.timestamp FROM R [Now] WHERE R.a > 10", name="q"))
        e.push(tup("R", 1, a=5))
        e.push(tup("R", 2, a=15))
        assert len(e.results["q"]) == 1
        assert e.results["q"][0].get("R.a") == 15

    def test_projection(self):
        e = Engine()
        e.add_query(parse_query(
            "SELECT R.a FROM R [Now]", name="q"))
        e.push(tup("R", 1, a=5, b=7))
        out = e.results["q"][0]
        assert out.get("R.a") == 5
        assert out.get("R.b") is None

    def test_star_keeps_everything(self):
        e = Engine()
        e.add_query(parse_query("SELECT R.* FROM R [Now]", name="q"))
        e.push(tup("R", 1, a=5, b=7))
        out = e.results["q"][0]
        assert out.get("R.a") == 5 and out.get("R.b") == 7


class TestJoins:
    def q(self, text, name="j"):
        e = Engine()
        e.add_query(parse_query(text, name=name))
        return e

    def test_band_join_matches_within_window(self):
        e = self.q(
            "SELECT * FROM R [Range 10 Seconds] R, S [Now] S"
            " WHERE R.a = S.a"
        )
        e.push(tup("R", 0, a=1))
        e.push(tup("S", 5, a=1))
        assert len(e.results["j"]) == 1

    def test_join_ignores_expired_partners(self):
        e = self.q(
            "SELECT * FROM R [Range 10 Seconds] R, S [Now] S"
            " WHERE R.a = S.a"
        )
        e.push(tup("R", 0, a=1))
        e.push(tup("S", 50, a=1))  # R tuple expired
        assert e.results["j"] == []

    def test_join_predicate_filters(self):
        e = self.q(
            "SELECT * FROM R [Range 10 Seconds] R, S [Now] S"
            " WHERE R.a > S.a"
        )
        e.push(tup("R", 0, a=5))
        e.push(tup("S", 1, a=3))
        e.push(tup("S", 2, a=9))
        assert len(e.results["j"]) == 1

    def test_join_output_qualified(self):
        e = self.q(
            "SELECT * FROM R [Range 10 Seconds] R, S [Now] S WHERE R.a = S.a"
        )
        e.push(tup("R", 0, a=1, x=7))
        e.push(tup("S", 1, a=1, y=8))
        out = e.results["j"][0]
        assert out.get("R.x") == 7 and out.get("S.y") == 8
        assert out.get("R.timestamp_lag") == 1.0
        assert out.get("S.timestamp_lag") == 0.0

    def test_selection_pushdown_before_join(self):
        e = self.q(
            "SELECT * FROM R [Range 100 Seconds] R, S [Now] S"
            " WHERE R.a = S.a AND R.a > 10"
        )
        plan = e.plans["j"]
        e.push(tup("R", 0, a=5))   # filtered before the join window
        assert plan.join.state_size() == 0
        e.push(tup("R", 1, a=15))
        assert plan.join.state_size() == 1


class TestEngineManagement:
    def test_remove_query(self):
        e = Engine()
        e.add_query(parse_query("SELECT R.a FROM R [Now]", name="q"))
        e.remove_query("q")
        e.push(tup("R", 1, a=5))
        assert e.results["q"] == []

    def test_remove_query_releases_all_state(self):
        """Regression: churned queries must not leak sinks/results/readers."""
        e = Engine()
        e.add_query(parse_query("SELECT R.a FROM R [Now]", name="q"))
        e.on_result("q", lambda t: None)
        e.push(tup("R", 1, a=5))
        assert e.results["q"]  # buffered before removal
        e.remove_query("q")
        assert "q" not in e.results
        assert "q" not in e._sinks
        assert all(
            n != "q" for readers in e._readers.values() for n, _ in readers
        )

    def test_remove_query_returns_plan_with_state(self):
        e = Engine()
        e.add_query(parse_query(
            "SELECT * FROM R [Range 100 Seconds] R, S [Now] S WHERE R.a = S.a",
            name="q"))
        e.push(tup("R", 1, a=1))
        plan = e.remove_query("q")
        assert plan.state_size() == 1  # join window survives the detach

    def test_adopt_plan_preserves_window_state(self):
        """A migrated join keeps matching against pre-migration tuples."""
        src = Engine()
        src.add_query(parse_query(
            "SELECT * FROM R [Range 100 Seconds] R, S [Now] S WHERE R.a = S.a",
            name="q"))
        src.push(tup("R", 1, a=1))
        plan = src.remove_query("q")
        dst = Engine()
        dst.adopt_plan(plan)
        out = dst.push(tup("S", 2, a=1))
        assert len(out) == 1  # joined against state carried over

    def test_adopt_plan_rejects_duplicates(self):
        e = Engine()
        plan = e.add_query(parse_query("SELECT R.a FROM R [Now]", name="q"))
        e.remove_query("q")
        e.adopt_plan(plan)
        with pytest.raises(ValueError):
            e.adopt_plan(plan)

    def test_push_query_routes_to_single_plan(self):
        e = Engine()
        e.add_query(parse_query("SELECT R.a FROM R [Now]", name="q1"))
        e.add_query(parse_query("SELECT R.a FROM R [Now]", name="q2"))
        out = e.push_query("q1", tup("R", 1, a=5))
        assert len(out) == 1
        assert e.plans["q1"].results_emitted == 1
        assert e.plans["q2"].results_emitted == 0
        # unknown names are a no-op (query may have churned away)
        assert e.push_query("gone", tup("R", 2, a=5)) == []

    def test_remove_unknown_raises(self):
        with pytest.raises(KeyError):
            Engine().remove_query("nope")

    def test_duplicate_name_rejected(self):
        e = Engine()
        e.add_query(parse_query("SELECT R.a FROM R [Now]", name="q"))
        with pytest.raises(ValueError):
            e.add_query(parse_query("SELECT R.b FROM R [Now]", name="q"))

    def test_result_sink_callback(self):
        e = Engine()
        e.add_query(parse_query("SELECT R.a FROM R [Now]", name="q"))
        seen = []
        e.on_result("q", seen.append)
        e.push(tup("R", 1, a=5))
        assert len(seen) == 1

    def test_cpu_costs_accumulate(self):
        e = Engine()
        e.add_query(parse_query("SELECT R.a FROM R [Now]", name="q"))
        for i in range(10):
            e.push(tup("R", i, a=i))
        assert e.cpu_costs()["q"] >= 10


class TestRetainResults:
    """Regression: `push` must not grow `results` unboundedly when capped."""

    def q(self, **kwargs):
        e = Engine(**kwargs)
        e.add_query(parse_query("SELECT R.a FROM R [Now]", name="q"))
        return e

    def test_default_retains_everything(self):
        e = self.q()
        for i in range(50):
            e.push(tup("R", i, a=i))
        assert len(e.results["q"]) == 50

    def test_cap_keeps_newest(self):
        e = self.q(retain_results=10)
        for i in range(50):
            e.push(tup("R", i, a=i))
        assert len(e.results["q"]) == 10
        assert [t.get("R.a") for t in e.results["q"]] == list(range(40, 50))

    def test_zero_disables_buffering_but_not_sinks(self):
        e = self.q(retain_results=0)
        seen = []
        e.on_result("q", seen.append)
        out = [r for i in range(20) for r in e.push(tup("R", i, a=i))]
        assert e.results["q"] == []
        assert len(seen) == 20 and len(out) == 20

    def test_cap_applies_to_push_batch(self):
        from repro.engine import TupleBatch

        e = self.q(retain_results=5)
        rows = [tup("R", float(i), a=i) for i in range(30)]
        e.push_batch(TupleBatch.from_tuples("R", rows))
        assert len(e.results["q"]) == 5
        assert [t.get("R.a") for t in e.results["q"]] == list(range(25, 30))

    def test_negative_cap_rejected(self):
        with pytest.raises(ValueError):
            Engine(retain_results=-1)


@st.composite
def checkpoint_case(draw):
    """A join workload with a checkpoint cut somewhere inside it.

    Timestamp increments are drawn from a set that includes the exact
    window extents, so runs land tuples exactly on eviction boundaries
    (``ts == now - seconds`` survives, anything older is dropped).
    """
    wr = draw(st.integers(2, 6))
    ws = draw(st.integers(2, 6))
    n = draw(st.integers(0, 20))
    rows = []
    t = 0.0
    for _ in range(n):
        t += draw(
            st.sampled_from([0.0, 1.0, float(wr), float(ws), float(max(wr, ws)) + 1.0])
        )
        rows.append((draw(st.sampled_from(["R", "S"])), t, draw(st.integers(0, 5))))
    cut = draw(st.integers(0, n))
    return wr, ws, rows, cut


class TestCheckpointRestore:
    """Satellite: ``checkpoint() -> adopt_plan()`` round-trips exactly.

    Covers empty, partially filled, and eviction-boundary windows on
    both the scalar deque plane and the columnar batch plane, and checks
    the snapshot is fully independent of the still-running original.
    """

    QUERY = (
        "SELECT * FROM R [Range {wr} Seconds] R,"
        " S [Range {ws} Seconds] S WHERE R.a > S.a"
    )

    def _engine(self, wr, ws, use_batches):
        e = Engine(use_batches=use_batches)
        e.add_query(parse_query(self.QUERY.format(wr=wr, ws=ws), name="q"))
        return e

    @given(checkpoint_case())
    @settings(max_examples=60, deadline=None)
    def test_scalar_roundtrip_exact(self, case):
        wr, ws, rows, cut = case
        ref = self._engine(wr, ws, use_batches=False)
        live = self._engine(wr, ws, use_batches=False)
        for stream, t, a in rows[:cut]:
            ref.push(tup(stream, t, a=a))
            live.push(tup(stream, t, a=a))
        snap = live.plans["q"].checkpoint()
        assert snap.cpu_cost() == live.plans["q"].cpu_cost()
        assert snap.state_size() == live.plans["q"].state_size()
        restored = Engine(use_batches=False)
        restored.adopt_plan(snap)
        n_prefix = len(ref.results["q"])
        for stream, t, a in rows[cut:]:
            # mutate the original first: a shallow snapshot would diverge
            live.push(tup(stream, t, a=a))
            restored.push(tup(stream, t, a=a))
            ref.push(tup(stream, t, a=a))
        assert [r.values for r in restored.results["q"]] == [
            r.values for r in ref.results["q"][n_prefix:]
        ]
        assert restored.plans["q"].cpu_cost() == ref.plans["q"].cpu_cost()
        assert (
            restored.plans["q"].results_emitted
            == ref.plans["q"].results_emitted
        )

    @given(checkpoint_case())
    @settings(max_examples=60, deadline=None)
    def test_batch_roundtrip_exact(self, case):
        from repro.engine import TupleBatch

        wr, ws, rows, cut = case

        def chunks(seq):
            """Consecutive same-stream rows as one multi-row batch."""
            out, run = [], []
            for stream, t, a in seq:
                if run and run[0].stream != stream:
                    out.append(TupleBatch.from_tuples(run[0].stream, run))
                    run = []
                run.append(tup(stream, t, a=a))
            if run:
                out.append(TupleBatch.from_tuples(run[0].stream, run))
            return out

        ref = self._engine(wr, ws, use_batches=True)
        live = self._engine(wr, ws, use_batches=True)
        for batch in chunks(rows[:cut]):
            ref.push_batch(batch)
            live.push_batch(batch)
        snap = live.plans["q"].checkpoint()
        assert snap.cpu_cost() == live.plans["q"].cpu_cost()
        assert snap.state_size() == live.plans["q"].state_size()
        restored = Engine(use_batches=True)
        restored.adopt_plan(snap)
        n_prefix = len(ref.results["q"])
        for batch in chunks(rows[cut:]):
            live.push_batch(batch)
            restored.push_batch(batch)
            ref.push_batch(batch)
        assert [r.values for r in restored.results["q"]] == [
            r.values for r in ref.results["q"][n_prefix:]
        ]
        assert restored.plans["q"].cpu_cost() == ref.plans["q"].cpu_cost()

    def test_selection_only_plan_roundtrip(self):
        e = Engine()
        e.add_query(parse_query(
            "SELECT R.a FROM R [Now] WHERE R.a > 2", name="q"))
        e.push(tup("R", 1, a=5))
        snap = e.plans["q"].checkpoint()
        other = Engine()
        other.adopt_plan(snap)
        out = other.push(tup("R", 2, a=4))
        assert len(out) == 1
        assert other.plans["q"].results_emitted == 2  # counter carried over

    def test_checkpoint_shares_no_window_state(self):
        e = Engine(use_batches=False)
        e.add_query(parse_query(
            "SELECT * FROM R [Range 100 Seconds] R, S [Now] S"
            " WHERE R.a = S.a", name="q"))
        e.push(tup("R", 1, a=1))
        snap = e.plans["q"].checkpoint()
        e.push(tup("R", 2, a=2))  # original grows after the snapshot
        assert snap.state_size() == 1
        assert e.plans["q"].state_size() == 2


class TestSensors:
    def test_fleet_streams_unique(self):
        fleet = SensorFleet.build(5, seed=1)
        assert len(set(fleet.streams())) == 5

    def test_trace_time_ordered_per_stream(self):
        fleet = SensorFleet.build(3, seed=1)
        trace = fleet.trace(start=0.0, steps=20)
        last = {}
        for t in trace:
            assert t.timestamp >= last.get(t.stream, -1)
            last[t.stream] = t.timestamp

    def test_readings_have_expected_attributes(self):
        fleet = SensorFleet.build(1, seed=1)
        reading = fleet.stations[0].reading(0.0)
        for attr in ("stationId", "snowHeight", "temperature", "windSpeed"):
            assert reading.get(attr) is not None

    def test_snow_height_nonnegative(self):
        fleet = SensorFleet.build(2, seed=3)
        for t in fleet.trace(0.0, 200):
            assert t.get("snowHeight") >= 0

    def test_deterministic(self):
        a = SensorFleet.build(2, seed=5).trace(0.0, 10)
        b = SensorFleet.build(2, seed=5).trace(0.0, 10)
        assert [t.values for t in a] == [t.values for t in b]


class TestResultSharing:
    """End-to-end Section 2.1: running Q5 serves both Q3 and Q4."""

    def setup_method(self):
        self.q3 = parse_query(
            "SELECT S2.* FROM Station1 [Range 30 Minutes] S1,"
            " Station2 [Now] S2 WHERE S1.snowHeight > S2.snowHeight"
            " AND S1.snowHeight >= 10",
            name="Q3",
        )
        self.q4 = parse_query(
            "SELECT S1.snowHeight, S1.timestamp, S2.snowHeight, S2.timestamp"
            " FROM Station1 [Range 1 Hour] S1, Station2 [Now] S2"
            " WHERE S1.snowHeight > S2.snowHeight",
            name="Q4",
        )
        self.q5 = merge_queries(self.q3, self.q4, name="Q5")
        fleet = SensorFleet.build(2, stream_prefix="Station", seed=7)
        self.trace = fleet.trace(start=0.0, steps=100)

    def _run(self, query, name):
        e = Engine()
        e.add_query(query, result_stream="out")
        for t in self.trace:
            e.push(t)
        return e.results[query.name]

    def test_carved_q3_equals_direct(self):
        direct = self._run(self.q3, "Q3")
        shared = self._run(self.q5, "Q5")
        p32 = split_subscription(self.q5, self.q3, "out")
        carved = [t for t in shared if p32.matches(Event("out", t.values))]
        assert len(carved) == len(direct)

    def test_carved_q4_equals_direct(self):
        direct = self._run(self.q4, "Q4")
        shared = self._run(self.q5, "Q5")
        p42 = split_subscription(self.q5, self.q4, "out")
        carved = [t for t in shared if p42.matches(Event("out", t.values))]
        assert len(carved) == len(direct)

    def test_shared_results_superset(self):
        direct3 = self._run(self.q3, "Q3")
        direct4 = self._run(self.q4, "Q4")
        shared = self._run(self.q5, "Q5")
        assert len(shared) >= max(len(direct3), len(direct4))


class TestPlanWidening:
    """In-place plan widening: the shared plane's member-join mechanism."""

    def setup_method(self):
        self.q3 = parse_query(
            "SELECT S2.* FROM Station1 [Range 30 Minutes] S1,"
            " Station2 [Now] S2 WHERE S1.snowHeight > S2.snowHeight"
            " AND S1.snowHeight >= 10",
            name="Q3",
        )
        self.q4 = parse_query(
            "SELECT S1.snowHeight, S1.timestamp, S2.snowHeight, S2.timestamp"
            " FROM Station1 [Range 1 Hour] S1, Station2 [Now] S2"
            " WHERE S1.snowHeight > S2.snowHeight",
            name="Q4",
        )
        fleet = SensorFleet.build(2, stream_prefix="Station", seed=7)
        self.trace = fleet.trace(start=0.0, steps=100)

    def test_widened_plan_equals_merged_compile(self):
        """Widening mid-stream keeps state and matches the merged query
        for every tuple pushed after the widening point."""
        widened = Engine()
        plan = widened.add_query(self.q3, result_stream="out")
        merged = merge_queries(self.q3, self.q4, name="Q3")
        cut = len(self.trace) // 2
        for t in self.trace[:cut]:
            widened.push(t)
        plan.widen_to(merged)
        after_widen = []
        for t in self.trace[cut:]:
            after_widen.extend(widened.push(t))
        # reference: the merged query compiled fresh and fed everything
        reference = Engine()
        reference.add_query(merge_queries(self.q3, self.q4, name="M"), result_stream="out")
        ref_results = []
        for i, t in enumerate(self.trace):
            out = reference.push(t)
            if i >= cut:
                ref_results.extend(out)
        # the widened plan's post-widen results that pair with post-widen
        # partners must appear in the reference run (pre-widen partners
        # outside Q3's windows are legitimately absent: they were never
        # buffered under the narrow plan)
        ref_values = [t.values for t in ref_results]
        for r in after_widen:
            assert r.values in ref_values

    def test_window_specs_updated(self):
        engine = Engine()
        plan = engine.add_query(self.q3, result_stream="out")
        merged = merge_queries(self.q3, self.q4, name="Q3")
        plan.widen_to(merged)
        assert plan.join.left_window.spec.seconds == 3600
        # the weakened selection hull dropped the >= 10 constraint
        assert plan.selects["S1"].predicates == []
        assert plan.query is merged

    def test_rejects_name_change(self):
        engine = Engine()
        plan = engine.add_query(self.q3, result_stream="out")
        with pytest.raises(ValueError):
            plan.widen_to(merge_queries(self.q3, self.q4, name="other"))

    def test_rejects_narrowing(self):
        engine = Engine()
        merged = merge_queries(self.q3, self.q4, name="M")
        plan = engine.add_query(merged, result_stream="out")
        narrow = parse_query(str(self.q3), name="M")
        with pytest.raises(ValueError):
            plan.widen_to(narrow)
