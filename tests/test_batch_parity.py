"""Batch/scalar data-plane parity: the columnar path must be bit-identical.

Three layers of cross-checks, all seeded:

* converters and operators in isolation (``TupleBatch`` round trips,
  Select/Project/WindowJoin batch vs scalar);
* a randomized workload generator driving whole plans and ``Engine``
  instances tuple-for-tuple against the batch entry points, including
  empty batches, ``[Now]`` windows and row-window eviction boundaries;
* full simulator runs (churn + hot spots + adaptation) comparing traces,
  per-query delivery results, per-link traffic and CPU counters between
  ``use_batches=True`` and the scalar reference.
"""

import json

import numpy as np
import pytest

from repro.engine import (
    Engine,
    Project,
    Select,
    StreamTuple,
    TupleBatch,
    WindowJoin,
    compile_query,
)
from repro.query.ast import AttrRef, Comparison, Literal, Window
from repro.query.parser import parse_query
from repro.sim import (
    ChurnParams,
    HotSpotShift,
    ScenarioParams,
    SimWorkloadParams,
    oracle_results,
    run_scenario,
)


def tup(stream, ts, **values):
    values["timestamp"] = ts
    return StreamTuple(stream, values)


def dicts(tuples):
    return [dict(t.values) for t in tuples]


class TestTupleBatchConverters:
    def test_round_trip_preserves_values_and_types(self):
        rows = [
            tup("R", 1.0, a=5, b=2.5, c="x", d=True),
            tup("R", 2.0, a=7, b=3.5, c="y", d=False),
        ]
        back = TupleBatch.from_tuples("R", rows).to_tuples()
        assert dicts(back) == dicts(rows)
        assert [type(t.values["a"]) for t in back] == [int, int]
        assert [type(t.values["b"]) for t in back] == [float, float]
        assert [type(t.values["d"]) for t in back] == [bool, bool]

    def test_missing_attributes_round_trip(self):
        rows = [
            tup("R", 1.0, a=1),
            tup("R", 2.0, b=2),
            tup("R", 3.0, a=3, b=4),
        ]
        batch = TupleBatch.from_tuples("R", rows)
        assert dicts(batch.to_tuples()) == dicts(rows)

    def test_none_value_distinct_from_absent(self):
        rows = [tup("R", 1.0, a=None), tup("R", 2.0)]
        back = TupleBatch.from_tuples("R", rows).to_tuples()
        assert "a" in back[0].values and back[0].values["a"] is None
        assert "a" not in back[1].values

    def test_empty_batch(self):
        batch = TupleBatch.from_tuples("R", [])
        assert batch.n == 0 and batch.to_tuples() == []

    def test_wrong_stream_rejected(self):
        with pytest.raises(ValueError):
            TupleBatch.from_tuples("R", [tup("S", 1.0)])

    def test_mixed_type_column_falls_back_to_objects(self):
        rows = [tup("R", 1.0, a=1), tup("R", 2.0, a="one")]
        back = TupleBatch.from_tuples("R", rows).to_tuples()
        assert dicts(back) == dicts(rows)

    def test_slicing_and_concat(self):
        rows = [tup("R", float(i), a=i) for i in range(6)]
        batch = TupleBatch.from_tuples("R", rows)
        head = batch.filter(np.array([True, True, False, False, False, False]))
        tail = batch.take(np.arange(2, 6))
        assert dicts(head.to_tuples()) == dicts(rows[:2])
        assert dicts(tail.to_tuples()) == dicts(rows[2:])
        glued = TupleBatch.concat("R", [head, TupleBatch.empty("R"), tail])
        assert dicts(glued.to_tuples()) == dicts(rows)
        renamed = glued.with_stream("S")
        assert renamed.stream == "S" and renamed.n == 6

    def test_concat_mismatched_layouts(self):
        a = TupleBatch.from_tuples("R", [tup("R", 1.0, a=1)])
        b = TupleBatch.from_tuples("R", [tup("R", 2.0, b=2.5), tup("R", 3.0)])
        glued = TupleBatch.concat("R", [a, b])
        assert dicts(glued.to_tuples()) == [
            {"a": 1, "timestamp": 1.0},
            {"b": 2.5, "timestamp": 2.0},
            {"timestamp": 3.0},
        ]


def random_tuples(rng, streams, n, int_values=True, start=0.0, dt_scale=0.5):
    """Timestamp-ordered tuples over ``streams`` with integer values."""
    out = []
    t = start
    for _ in range(n):
        t += float(rng.exponential(dt_scale))
        s = streams[int(rng.integers(len(streams)))]
        values = {"value": int(rng.integers(0, 100))}
        if not int_values:
            values["value"] = float(rng.random() * 100)
        if rng.random() < 0.5:
            values["aux"] = int(rng.integers(0, 10))
        out.append(tup(s, t, **values))
    return out


def random_partition(rng, tuples, empty_every=5):
    """Split a tuple list into same-stream batches, some empty."""
    batches = []
    i = 0
    while i < len(tuples):
        if rng.random() < 1.0 / empty_every:
            batches.append(TupleBatch.from_tuples(tuples[i].stream, []))
        j = i
        k = int(rng.integers(1, 8))
        while j < len(tuples) and tuples[j].stream == tuples[i].stream and j - i < k:
            j += 1
        batches.append(TupleBatch.from_tuples(tuples[i].stream, tuples[i:j]))
        i = j
    return batches


class TestOperatorParity:
    def test_select_parity(self):
        rng = np.random.default_rng(1)
        preds = [
            Comparison(AttrRef("R", "value"), ">", Literal(30)),
            Comparison(AttrRef("R", "value"), "<=", Literal(80)),
        ]
        rows = [
            tup("R", float(i), **{"R.value": int(v)})
            for i, v in enumerate(rng.integers(0, 100, size=200))
        ]
        scalar, batch = Select(preds), Select(preds)
        want = [r for t in rows for r in scalar.process(t)]
        got_batch, rows_idx = batch.process_batch(TupleBatch.from_tuples("R", rows))
        assert dicts(got_batch.to_tuples()) == dicts(want)
        assert scalar.inspected == batch.inspected
        assert rows_idx.tolist() == sorted(rows_idx.tolist())

    def test_select_no_predicates_passes_everything(self):
        rows = [tup("R", 1.0, a=1), tup("R", 2.0, a=2)]
        sel = Select([])
        out, idx = sel.process_batch(TupleBatch.from_tuples("R", rows))
        assert dicts(out.to_tuples()) == dicts(rows)
        assert sel.inspected == 2 and idx.tolist() == [0, 1]

    def test_select_missing_attribute_fails_row(self):
        preds = [Comparison(AttrRef("R", "a"), ">", Literal(0))]
        rows = [tup("R", 1.0, **{"R.a": 1}), tup("R", 2.0)]
        scalar, batch = Select(preds), Select(preds)
        want = [r for t in rows for r in scalar.process(t)]
        got, _ = batch.process_batch(TupleBatch.from_tuples("R", rows))
        assert dicts(got.to_tuples()) == dicts(want) == [dict(rows[0].values)]

    def test_project_parity(self):
        rows = [tup("R", 1.0, **{"A.a": 1, "A.b": 2}), tup("R", 2.0, **{"A.a": 3})]
        for attrs in (None, ["A.a"], []):
            scalar, batch = Project(attrs), Project(attrs)
            want = [r for t in rows for r in scalar.process(t)]
            got, _ = batch.process_batch(TupleBatch.from_tuples("R", rows))
            assert dicts(got.to_tuples()) == dicts(want)
            assert scalar.inspected == batch.inspected

    @pytest.mark.parametrize(
        "left_win,right_win",
        [
            (Window(seconds=5), Window(seconds=3)),
            (Window(seconds=0), Window(seconds=10)),  # [Now] probe side
            (Window(rows=3), Window(seconds=4)),
            (Window(rows=1), Window(rows=5)),  # eviction boundary
        ],
    )
    def test_window_join_parity(self, left_win, right_win):
        rng = np.random.default_rng(3)
        preds = [Comparison(AttrRef("A", "value"), ">", AttrRef("B", "value"))]

        def make():
            return WindowJoin("A", left_win, "B", right_win, preds, "out")

        scalar, batch = make(), make()
        tuples = random_tuples(rng, ["L", "R"], 150)
        alias = {"L": "A", "R": "B"}
        want = []
        for t in tuples:
            want.extend(scalar.process_side(alias[t.stream], t))
        got = []
        for b in random_partition(rng, tuples):
            out, idx = batch.process_batch_side(alias[b.stream], b)
            got.extend(out.to_tuples())
            assert len(idx) == out.n
        assert dicts(got) == dicts(want)
        assert scalar.inspected == batch.inspected
        assert scalar.state_size() == batch.state_size()

    def test_mixed_scalar_batch_pushes_rejected(self):
        join = WindowJoin(
            "A", Window(seconds=5), "B", Window(seconds=5), [], "out"
        )
        join.process_batch_side("A", TupleBatch.from_tuples("L", [tup("L", 1.0)]))
        with pytest.raises(TypeError):
            join.process_side("A", tup("L", 2.0))
        join2 = WindowJoin(
            "A", Window(seconds=5), "B", Window(seconds=5), [], "out"
        )
        join2.process_side("A", tup("L", 1.0))
        with pytest.raises(TypeError):
            join2.process_batch_side(
                "A", TupleBatch.from_tuples("L", [tup("L", 2.0)])
            )


QUERY_SHAPES = [
    "SELECT * FROM {a} [{wa}] A WHERE A.value > {thr}",
    "SELECT A.value FROM {a} [{wa}] A",
    "SELECT * FROM {a} [{wa}] A, {b} [{wb}] B WHERE A.value > B.value",
    "SELECT A.value, B.value FROM {a} [{wa}] A, {b} [{wb}] B"
    " WHERE A.value = B.value AND A.value > {thr}",
]

WINDOWS = ["Now", "Range 3 Seconds", "Range 10 Seconds", "Rows 1", "Rows 4"]


def random_queries(rng, streams, count):
    queries = []
    for i in range(count):
        shape = QUERY_SHAPES[int(rng.integers(len(QUERY_SHAPES)))]
        a, b = rng.choice(len(streams), size=2, replace=False)
        text = shape.format(
            a=streams[int(a)],
            b=streams[int(b)],
            wa=WINDOWS[int(rng.integers(len(WINDOWS)))],
            wb=WINDOWS[int(rng.integers(len(WINDOWS)))],
            thr=int(rng.integers(0, 80)),
        )
        queries.append(parse_query(text, name=f"q{i}"))
    return queries


class TestRandomizedEngineParity:
    """Satellite: seeded generator cross-checking whole engines."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_engine_push_batch_matches_scalar(self, seed):
        rng = np.random.default_rng(seed)
        streams = [f"S{i}" for i in range(4)]
        queries = random_queries(rng, streams, 6)
        scalar = Engine(use_batches=False)
        batch = Engine()
        for q in queries:
            scalar.add_query(q)
            batch.add_query(q)
        tuples = random_tuples(rng, streams, 300)
        for t in tuples:
            scalar.push(t)
        for b in random_partition(rng, tuples):
            batch.push_batch(b)
        for q in queries:
            assert dicts(scalar.results[q.name]) == dicts(
                batch.results[q.name]
            ), f"query {q.name} diverged (seed {seed})"
        assert scalar.cpu_costs() == batch.cpu_costs()
        assert scalar.state_sizes() == batch.state_sizes()

    @pytest.mark.parametrize("seed", [10, 11, 12])
    def test_push_query_batch_matches_scalar_per_row(self, seed):
        rng = np.random.default_rng(seed)
        streams = [f"S{i}" for i in range(3)]
        queries = random_queries(rng, streams, 4)
        scalar = Engine(use_batches=False)
        batch = Engine()
        for q in queries:
            scalar.add_query(q)
            batch.add_query(q)
        tuples = random_tuples(rng, streams, 200)
        name = queries[0].name
        want_rows = [dicts(scalar.push_query(name, t)) for t in tuples]
        got_rows = []
        for b in random_partition(rng, tuples):
            got_rows.extend(dicts(row) for row in batch.push_query_batch(name, b))
        assert got_rows == want_rows
        assert scalar.plans[name].cpu_cost() == batch.plans[name].cpu_cost()

    def test_empty_batch_is_noop(self):
        e = Engine()
        e.add_query(parse_query("SELECT R.a FROM R [Now]", name="q"))
        assert e.push_batch(TupleBatch.from_tuples("R", [])) == []
        assert e.push_query_batch("q", TupleBatch.from_tuples("R", [])) == []
        assert e.cpu_costs()["q"] == 0

    def test_unknown_stream_batch_is_noop(self):
        e = Engine()
        e.add_query(parse_query("SELECT R.a FROM R [Now]", name="q"))
        out = e.push_batch(TupleBatch.from_tuples("X", [tup("X", 1.0, a=1)]))
        assert out == []

    def test_self_join_falls_back_to_scalar_interleaving(self):
        text = (
            "SELECT * FROM R [Range 10 Seconds] A, R [Range 10 Seconds] B"
            " WHERE A.value > B.value"
        )
        scalar = Engine(use_batches=False)
        scalar.add_query(parse_query(text, name="q"))
        batch = Engine()
        batch.add_query(parse_query(text, name="q"))
        rows = [tup("R", float(i), value=int(v)) for i, v in enumerate([5, 9, 2, 7])]
        for t in rows:
            scalar.push(t)
        batch.push_batch(TupleBatch.from_tuples("R", rows))
        assert dicts(scalar.results["q"]) == dicts(batch.results["q"])
        assert scalar.cpu_costs() == batch.cpu_costs()


def _sim_scenario(use_batches):
    return ScenarioParams(
        duration=20.0,
        sample_interval=4.0,
        adapt_interval=8.0,
        initial_placement="skewed",
        churn=ChurnParams(arrival_rate=0.4, mean_lifetime=12.0),
        hotspot=HotSpotShift(at=10.0, substreams=8, factor=3.0),
        use_batches=use_batches,
    )


class TestSimulatorBatchParity:
    """Tentpole acceptance: full sim runs bit-identical on both planes."""

    @pytest.mark.parametrize("seed", [0, 7])
    def test_full_run_bit_identical(self, seed):
        wl = SimWorkloadParams(num_substreams=40, num_queries=24)
        scalar = run_scenario(
            seed=seed, workload=wl, scenario=_sim_scenario(False), record=True
        )
        batch = run_scenario(
            seed=seed, workload=wl, scenario=_sim_scenario(True), record=True
        )
        assert json.dumps(scalar.trace.to_dict(), sort_keys=True) == json.dumps(
            batch.trace.to_dict(), sort_keys=True
        ), "trace time series diverged"
        assert scalar.results == batch.results, "delivery results diverged"
        assert scalar.link_bytes == batch.link_bytes, "link traffic diverged"
        assert scalar.cpu_costs == batch.cpu_costs, "CPU counters diverged"
        assert scalar.tuples_emitted == batch.tuples_emitted
        assert batch.trace.total_results() > 0

    def test_batch_plane_matches_oracle(self):
        wl = SimWorkloadParams(num_substreams=40, num_queries=24)
        report = run_scenario(
            seed=11, workload=wl, scenario=_sim_scenario(True), record=True
        )
        oracle = oracle_results(report.actions)
        assert set(report.results) == set(oracle)
        assert sum(map(len, report.results.values())) > 0
        for query_id, got in report.results.items():
            assert got == oracle[query_id], f"query {query_id} diverged"
